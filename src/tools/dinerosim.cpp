// dinerosim — the modified-DineroIV stand-in: trace-driven cache
// simulation with per-variable / per-function / per-set statistics and
// the trace transformation module.
//
//   dinerosim --trace t.out --size 32768 --block 32 --assoc 1
//   dinerosim --trace t.out --rules soa2aos.rules
//             --xform-out transformed_trace.out --per-set
#include <cstdio>
#include <fstream>

#include "analysis/advisor.hpp"
#include "analysis/report.hpp"
#include "analysis/set_activity.hpp"
#include "analysis/var_stats.hpp"
#include "cache/hierarchy.hpp"
#include "cache/multicore.hpp"
#include "cache/sim.hpp"
#include "core/rule_parser.hpp"
#include "core/transformer.hpp"
#include "trace/binary.hpp"
#include "trace/din.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/string_util.hpp"

namespace {

using namespace tdt;

cache::ReplacementPolicy parse_replacement(const std::string& s) {
  if (s == "lru") return cache::ReplacementPolicy::Lru;
  if (s == "fifo") return cache::ReplacementPolicy::Fifo;
  if (s == "random") return cache::ReplacementPolicy::Random;
  if (s == "rr" || s == "round-robin") {
    return cache::ReplacementPolicy::RoundRobin;
  }
  throw_config_error("unknown replacement policy '" + s +
                     "' (lru|fifo|random|rr)");
}

std::vector<trace::TraceRecord> load_trace(trace::TraceContext& ctx,
                                           const std::string& path) {
  if (ends_with(path, ".tdtb")) {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw_io_error("cannot open '" + path + "'");
    std::string blob((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    return trace::read_binary_trace(ctx, {blob.data(), blob.size()});
  }
  if (ends_with(path, ".din")) {
    return trace::read_din_file(ctx, path);
  }
  return trace::read_trace_file(ctx, path);
}

cache::PrefetchPolicy parse_prefetch(const std::string& s) {
  if (s == "none") return cache::PrefetchPolicy::None;
  if (s == "always") return cache::PrefetchPolicy::Always;
  if (s == "miss") return cache::PrefetchPolicy::Miss;
  if (s == "tagged") return cache::PrefetchPolicy::Tagged;
  throw_config_error("unknown prefetch policy '" + s +
                     "' (none|always|miss|tagged)");
}

cache::PagePolicy parse_page_policy(const std::string& s) {
  if (s == "identity") return cache::PagePolicy::Identity;
  if (s == "first-touch") return cache::PagePolicy::FirstTouch;
  if (s == "random") return cache::PagePolicy::Random;
  throw_config_error("unknown page policy '" + s +
                     "' (identity|first-touch|random)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    FlagParser flags("dinerosim",
                     "trace-driven cache simulator with transformations");
    const auto* trace_path = flags.add_string("trace", "", "input trace file");
    const auto* rules_path =
        flags.add_string("rules", "", "transformation rule file (optional)");
    const auto* xform_out = flags.add_string(
        "xform-out", "", "write the transformed trace here (default "
                         "transformed_trace.out when --rules is given)");
    const auto* size = flags.add_uint("size", 32768, "cache bytes");
    const auto* block = flags.add_uint("block", 32, "block bytes");
    const auto* assoc =
        flags.add_uint("assoc", 1, "ways per set (0 = fully associative)");
    const auto* repl =
        flags.add_string("replacement", "lru", "lru|fifo|random|rr");
    const auto* per_set =
        flags.add_bool("per-set", false, "print per-set activity table");
    const auto* per_var =
        flags.add_bool("per-var", false, "print per-variable statistics");
    const auto* conflicts =
        flags.add_bool("conflicts", false, "print eviction conflict pairs");
    const auto* gnuplot = flags.add_string(
        "gnuplot", "", "write <prefix>.dat/.gp for plotting");
    const auto* l2_size = flags.add_uint(
        "l2-size", 0, "add an L2 level of this many bytes (0 = none)");
    const auto* l2_assoc = flags.add_uint("l2-assoc", 8, "L2 ways per set");
    const auto* l2_block = flags.add_uint("l2-block", 64, "L2 block bytes");
    const auto* page_policy = flags.add_string(
        "page-policy", "identity",
        "virtual->physical mapping: identity|first-touch|random");
    const auto* page_size = flags.add_uint("page-size", 4096, "page bytes");
    const auto* page_frames = flags.add_uint(
        "page-frames", 0, "physical frame count (0 = unbounded)");
    const auto* page_seed =
        flags.add_uint("page-seed", 1, "random page policy seed");
    const auto* modify_rw = flags.add_bool(
        "modify-read-write", false,
        "count Modify as a read followed by a write (DineroIV style)");
    const auto* prefetch = flags.add_string(
        "prefetch", "none", "L1 prefetch: none|always|miss|tagged");
    const auto* advise =
        flags.add_bool("advise", false, "print transformation suggestions");
    const auto* cores = flags.add_uint(
        "cores", 0, "run a MESI multicore simulation with this many "
                    "private caches instead of the hierarchy (records "
                    "route by thread id)");
    if (!flags.parse(argc, argv)) return 0;
    if (trace_path->empty()) {
      throw_config_error("--trace is required");
    }

    trace::TraceContext ctx;
    std::vector<trace::TraceRecord> records = load_trace(ctx, *trace_path);

    // Optional transformation pass.
    if (!rules_path->empty()) {
      core::RuleSet rules = core::parse_rules_file(*rules_path);
      for (const core::RuleDiagnostic& d : rules.validate()) {
        std::fprintf(stderr, "dinerosim: rule %s: %s\n",
                     d.severity == core::RuleDiagnostic::Severity::Error
                         ? "error"
                         : "warning",
                     d.message.c_str());
      }
      core::TransformStats tstats;
      records = core::transform_trace(rules, ctx, records, {}, &tstats);
      std::fprintf(stderr,
                   "dinerosim: transformed %llu records (%llu rewritten, "
                   "%llu inserted, %llu passthrough, %llu skipped)\n",
                   static_cast<unsigned long long>(tstats.records_out),
                   static_cast<unsigned long long>(tstats.rewritten),
                   static_cast<unsigned long long>(tstats.inserted),
                   static_cast<unsigned long long>(tstats.passthrough),
                   static_cast<unsigned long long>(tstats.skipped));
      for (const std::string& d : tstats.diagnostics) {
        std::fprintf(stderr, "dinerosim: %s\n", d.c_str());
      }
      const std::string out_path =
          xform_out->empty() ? "transformed_trace.out" : *xform_out;
      trace::write_trace_file(ctx, records, out_path);
    }

    // Multicore mode short-circuits the single-core hierarchy path.
    if (*cores != 0) {
      cache::CacheConfig cc;
      cc.size = *size;
      cc.block_size = *block;
      cc.assoc = static_cast<std::uint32_t>(*assoc);
      cache::MesiSystem mesi(cc, static_cast<std::uint32_t>(*cores));
      cache::MultiCoreSim msim(mesi, ctx);
      msim.simulate(records);
      std::fputs(msim.report().c_str(), stdout);
      return 0;
    }

    cache::CacheConfig config;
    config.size = *size;
    config.block_size = *block;
    config.assoc = static_cast<std::uint32_t>(*assoc);
    config.replacement = parse_replacement(*repl);
    config.prefetch = parse_prefetch(*prefetch);
    std::vector<cache::CacheConfig> levels{config};
    if (*l2_size != 0) {
      cache::CacheConfig l2;
      l2.name = "L2";
      l2.size = *l2_size;
      l2.assoc = static_cast<std::uint32_t>(*l2_assoc);
      l2.block_size = *l2_block;
      levels.push_back(l2);
    }
    cache::CacheHierarchy hierarchy(std::move(levels));
    cache::PageMapper mapper(parse_page_policy(*page_policy), *page_size,
                             *page_frames, *page_seed);
    cache::SimOptions sim_options;
    sim_options.modify_is_read_write = *modify_rw;
    if (mapper.policy() != cache::PagePolicy::Identity) {
      sim_options.page_mapper = &mapper;
    }
    cache::TraceCacheSim sim(hierarchy, sim_options);

    analysis::SetActivityCollector sets(ctx, config.num_sets());
    analysis::VarStatsCollector vars(ctx);
    analysis::ConflictCollector conf(ctx);
    analysis::AdjacencyCollector adj(ctx, config.block_size);
    sim.add_observer(&sets);
    if (*per_var || *advise) sim.add_observer(&vars);
    if (*conflicts || *advise) sim.add_observer(&conf);
    if (*advise) sim.add_observer(&adj);
    sim.simulate(records);

    std::fputs(hierarchy.report().c_str(), stdout);
    if (*per_set) {
      std::fputs(analysis::set_table(sets, sets.variables()).c_str(), stdout);
    }
    if (*per_var) std::fputs(vars.report().c_str(), stdout);
    if (*conflicts) std::fputs(conf.report().c_str(), stdout);
    if (*advise) {
      std::fputs(
          analysis::render(analysis::advise(vars, conf, {}, &adj)).c_str(),
          stdout);
    }
    if (!gnuplot->empty()) {
      analysis::write_gnuplot(sets, sets.variables(), *gnuplot,
                              config.describe());
      std::fprintf(stderr, "dinerosim: wrote %s.dat and %s.gp\n",
                   gnuplot->c_str(), gnuplot->c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "dinerosim: %s\n", e.what());
    return 1;
  }
}
