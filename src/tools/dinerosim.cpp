// dinerosim — the modified-DineroIV stand-in: trace-driven cache
// simulation with per-variable / per-function / per-set statistics and
// the trace transformation module.
//
//   dinerosim --trace t.out --size 32768 --block 32 --assoc 1
//   dinerosim --trace t.out --rules soa2aos.rules
//             --xform-out transformed_trace.out --per-set
//   dinerosim --trace huge.tdtb --on-error=skip --max-errors 1000
//
// The trace is streamed record-by-record through the transformer and the
// simulator (traces larger than memory work), with the error-recovery
// policy from --on-error; exit code 0 = clean, 1 = completed with
// recovered errors, 2 = fatal (docs/robustness.md).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "tdt/tdt.hpp"
#include "tools/cli_common.hpp"
#include "tools/entries.hpp"
#include "tools/obs_support.hpp"

int tdt::tools::dinerosim_run(const tdt::service::ToolIO& io, int argc,
                              char** argv) {
  using namespace tdt;
  {
    FlagParser flags("dinerosim",
                     "trace-driven cache simulator with transformations");
    flags.set_streams(io.out, io.err);
    const auto* trace_path = flags.add_string("trace", "", "input trace file");
    const auto* rules_path =
        flags.add_string("rules", "", "transformation rule file (optional)");
    const auto* xform_out = flags.add_string(
        "xform-out", "", "write the transformed trace here (default "
                         "transformed_trace.out when --rules is given)");
    const auto* per_set =
        flags.add_bool("per-set", false, "print per-set activity table");
    const auto* per_var =
        flags.add_bool("per-var", false, "print per-variable statistics");
    const auto* conflicts =
        flags.add_bool("conflicts", false, "print eviction conflict pairs");
    const auto* gnuplot = flags.add_string(
        "gnuplot", "", "write <prefix>.dat/.gp for plotting");
    const auto* advise =
        flags.add_bool("advise", false, "print transformation suggestions");
    const auto* cores = flags.add_uint(
        "cores", 0, "run a MESI multicore simulation with this many "
                    "private caches instead of the hierarchy (records "
                    "route by thread id)");
    const auto* sweep = flags.add_string(
        "sweep", "", "simulate several configurations in one trace pass: "
                     "';'-separated points of ','-separated key=value "
                     "overrides (size|block|assoc|repl|prefetch), e.g. "
                     "\"assoc=1;assoc=2;size=8k,assoc=4\"");
    const auto* affinity_report = flags.add_string(
        "affinity-report", "",
        "also profile field affinity/heat on the raw (pre-transform) "
        "records and write the report here — a second consumer of the "
        "same ingest, no extra trace pass; combines with any mode");
    const auto* affinity_window = flags.add_uint(
        "affinity-window", 32,
        "co-access reuse window in records for --affinity-report");
    const tools::CacheFlags cache_flags = tools::CacheFlags::add(flags);
    const tools::CommonFlags common = tools::CommonFlags::add(
        flags, {.error_policy = true, .jobs = true, .governor = true,
                .ingest = true, .compress = true});
    if (!flags.parse(argc, argv)) return 0;
    if (trace_path->empty()) {
      throw_config_error("--trace is required");
    }
    if (common.wants_compress() && rules_path->empty()) {
      throw_config_error(
          "--compress shapes the transformed trace; it needs --rules and "
          "an --xform-out ending in .tdtb");
    }
    common.arm_faults();
    Governor governor;
    common.configure(governor);

    std::optional<obs::Registry> registry_store;
    if (common.wants_registry()) registry_store.emplace("dinerosim");
    obs::Registry* registry = registry_store ? &*registry_store : nullptr;

    DiagEngine diags = common.make_diags(io.errs);

    trace::TraceContext ctx;

    // The pipeline is built back to front: terminal simulator sink, an
    // optional transformed-trace writer teed next to it, an optional
    // transformer in front, then the streaming reader drives the chain.
    std::optional<core::RuleSet> rules;
    if (!rules_path->empty()) {
      obs::PhaseTimer phase(registry, "parse-rules");
      rules = core::parse_rules_file(*rules_path);
      for (const core::RuleDiagnostic& d : rules->validate()) {
        std::fprintf(io.err, "dinerosim: rule %s: %s\n",
                     d.severity == core::RuleDiagnostic::Severity::Error
                         ? "error"
                         : "warning",
                     d.message.c_str());
      }
    }

    // Terminal sink: MESI multicore or the single-core hierarchy.
    std::optional<cache::MesiSystem> mesi;
    std::optional<cache::MultiCoreSim> msim;
    std::optional<cache::CacheHierarchy> hierarchy;
    std::optional<cache::TraceCacheSim> sim;
    cache::PageMapper mapper(cache_flags.parsed_page_policy(),
                             *cache_flags.page_size, *cache_flags.page_frames,
                             *cache_flags.page_seed);

    cache::CacheConfig config = cache_flags.l1_geometry();

    analysis::SetActivityCollector sets(ctx, config.num_sets());
    analysis::VarStatsCollector vars(ctx);
    analysis::ConflictCollector conf(ctx);
    analysis::AdjacencyCollector adj(ctx, config.block_size);

    trace::ParallelOptions pipeline_options;
    pipeline_options.jobs = *common.jobs <= 1 ? 0 : *common.jobs;
    pipeline_options.registry = registry;
    pipeline_options.worker_timeout = common.worker_timeout_seconds();
    pipeline_options.memory = &governor.memory;

    std::optional<cache::ParallelSweep> sweep_engine;
    std::optional<trace::ParallelFanOut> fanout;
    trace::TraceSink* terminal = nullptr;
    if (!sweep->empty()) {
      if (*cores != 0 || *per_set || *per_var || *conflicts || *advise ||
          !gnuplot->empty()) {
        throw_config_error(
            "--sweep cannot be combined with --cores, --per-set, --per-var, "
            "--conflicts, --advise, or --gnuplot");
      }
      std::vector<std::string> warnings;
      sweep_engine.emplace(
          cache::parse_sweep_spec(*sweep, cache_flags.l1(),
                                  cache_flags.extra_levels(), &warnings),
          cache_flags.sim_options(), cache_flags.page_spec());
      tools::print_warnings(io.err, "dinerosim", warnings);
      fanout.emplace(sweep_engine->sinks(), pipeline_options);
      terminal = &*fanout;
    } else if (*cores != 0) {
      if (*common.jobs > 1) {
        throw_config_error("--cores routes records by thread id and cannot "
                           "run with --jobs > 1");
      }
      mesi.emplace(config, static_cast<std::uint32_t>(*cores));
      msim.emplace(*mesi, ctx);
      terminal = &*msim;
    } else {
      config = cache_flags.l1();  // --gnuplot labels carry the policies
      std::vector<cache::CacheConfig> levels{config};
      for (cache::CacheConfig& level : cache_flags.extra_levels()) {
        levels.push_back(std::move(level));
      }
      hierarchy.emplace(std::move(levels));
      cache::SimOptions sim_options = cache_flags.sim_options();
      if (mapper.policy() != cache::PagePolicy::Identity) {
        sim_options.page_mapper = &mapper;
      }
      sim.emplace(*hierarchy, sim_options);
      sim->add_observer(&sets);
      if (*per_var || *advise) sim->add_observer(&vars);
      if (*conflicts || *advise) sim->add_observer(&conf);
      if (*advise) sim->add_observer(&adj);
      terminal = &*sim;
      if (*common.jobs > 1) {
        // Single-config pipeline: one worker simulates while the reader
        // parses the next batch. Output is identical to the inline run.
        fanout.emplace(std::vector<trace::TraceSink*>{&*sim},
                       pipeline_options);
        terminal = &*fanout;
      }
    }

    // Optional transformation stage in front of the terminal sink, with
    // the transformed trace teed out to a file as it streams through.
    std::ofstream xform_file;
    std::optional<trace::WriterSink> xform_writer;
    std::optional<trace::BinaryTraceSink> xform_binary;
    std::optional<trace::TeeSink> tee;
    std::optional<core::TraceTransformer> transformer;
    trace::TraceSink* head = terminal;
    if (rules.has_value()) {
      const std::string out_path =
          xform_out->empty() ? "transformed_trace.out" : *xform_out;
      const bool binary_out =
          out_path.size() > 5 &&
          out_path.compare(out_path.size() - 5, 5, ".tdtb") == 0;
      if (common.wants_compress() && !binary_out) {
        throw_config_error(
            "--compress applies to TDTB output; name the transformed "
            "trace *.tdtb (--xform-out x.tdtb)");
      }
      xform_file.open(out_path, binary_out
                                    ? std::ios::binary | std::ios::out
                                    : std::ios::out);
      if (!xform_file) {
        throw_io_error("cannot open '" + out_path + "' for writing");
      }
      trace::TraceSink* writer_sink = nullptr;
      if (binary_out) {
        xform_binary.emplace(ctx, xform_file, /*pid=*/0,
                             common.writer_options());
        writer_sink = &*xform_binary;
      } else {
        xform_writer.emplace(ctx, xform_file);
        writer_sink = &*xform_writer;
      }
      tee.emplace(std::vector<trace::TraceSink*>{writer_sink, terminal});
      core::TransformOptions xopt;
      xopt.diags = &diags;
      transformer.emplace(*rules, ctx, *tee, xopt);
      head = &*transformer;
    }

    // Outermost stage: --progress heartbeat on raw input records.
    std::optional<obs::Heartbeat> heartbeat;
    std::optional<trace::ProgressSink> progress_sink;
    if (*common.progress) {
      heartbeat.emplace("dinerosim", *io.errs);
      progress_sink.emplace(*head, *heartbeat);
      head = &*progress_sink;
    }

    // Optional second consumer of the same ingest: the affinity profiler
    // taps the raw records next to the simulation chain — a two-sink
    // view graph instead of a second pass over the trace.
    std::optional<analysis::AffinityCollector> affinity;
    if (!affinity_report->empty()) {
      analysis::AffinityOptions profile_options;
      profile_options.window = static_cast<std::uint32_t>(*affinity_window);
      affinity.emplace(ctx, profile_options);
    }

    trace::GraphResult stream_result;
    {
      obs::PhaseTimer phase(registry, "stream");
      trace::ViewSourceOptions source_options;
      source_options.diags = &diags;
      source_options.ingest = common.ingest_mode();
      source_options.jobs = static_cast<int>(*common.jobs);
      const trace::View source =
          trace::View::source(ctx, *trace_path, source_options);
      trace::Graph graph;
      graph.add_sink(source, *head);
      if (affinity.has_value()) graph.add_sink(source, *affinity);
      stream_result =
          graph.run({.registry = registry, .governor = &governor});
    }
    if (stream_result.deadline_hit) {
      std::fprintf(io.err,
                   "dinerosim: deadline expired after %llu records; "
                   "results below cover that prefix only\n",
                   static_cast<unsigned long long>(stream_result.records));
    }

    if (transformer.has_value()) {
      const core::TransformStats& tstats = transformer->stats();
      std::fprintf(io.err,
                   "dinerosim: transformed %llu records (%llu rewritten, "
                   "%llu inserted, %llu passthrough, %llu skipped)\n",
                   static_cast<unsigned long long>(tstats.records_out),
                   static_cast<unsigned long long>(tstats.rewritten),
                   static_cast<unsigned long long>(tstats.inserted),
                   static_cast<unsigned long long>(tstats.passthrough),
                   static_cast<unsigned long long>(tstats.skipped));
    }

    if (affinity.has_value()) {
      std::ofstream out(*affinity_report);
      if (!out) {
        throw_io_error("cannot open '" + *affinity_report + "' for writing");
      }
      out << affinity->report();
      std::fprintf(io.err,
                   "dinerosim: wrote affinity report for %llu records to %s\n",
                   static_cast<unsigned long long>(affinity->records_seen()),
                   affinity_report->c_str());
    }

    obs::PhaseTimer report_phase(registry, "report");
    if (sweep_engine.has_value()) {
      std::fputs(sweep_engine->report().c_str(), io.out);
    } else if (msim.has_value()) {
      std::fputs(msim->report().c_str(), io.out);
    } else {
      std::fputs(hierarchy->report().c_str(), io.out);
      if (*per_set) {
        std::fputs(analysis::set_table(sets, sets.variables()).c_str(),
                   io.out);
      }
      if (*per_var) std::fputs(vars.report().c_str(), io.out);
      if (*conflicts) std::fputs(conf.report().c_str(), io.out);
      if (*advise) {
        std::fputs(
            analysis::render(analysis::advise(vars, conf, {}, &adj)).c_str(),
            io.out);
      }
      if (!gnuplot->empty()) {
        analysis::write_gnuplot(sets, sets.variables(), *gnuplot,
                                config.describe());
        std::fprintf(io.err, "dinerosim: wrote %s.dat and %s.gp\n",
                     gnuplot->c_str(), gnuplot->c_str());
      }
    }

    report_phase.stop();

    bool degraded = stream_result.deadline_hit;
    if (fanout.has_value()) {
      const trace::PipelineCounters& fc = fanout->counters();
      std::fputs(fc.summary().c_str(), io.err);
      if (fc.recovered_workers > 0) {
        // Stalls are the watchdog's catch (P001); throws and premature
        // exits surface at join (P002). Either way the replay restored
        // full results, so these are warnings — but the run was
        // degraded, and finalize_exit floors the code at 1.
        const std::string tail =
            " worker(s) by sequential re-simulation; results are complete";
        if (fc.stalled_workers > 0) {
          diags.report(DiagSeverity::Warning, DiagCode::PipeWorkerStalled,
                       "recovered " + std::to_string(fc.stalled_workers) +
                           " stalled" + tail);
        }
        if (fc.recovered_workers > fc.stalled_workers) {
          diags.report(
              DiagSeverity::Warning, DiagCode::PipeWorkerFailed,
              "recovered " +
                  std::to_string(fc.recovered_workers - fc.stalled_workers) +
                  " failed" + tail);
        }
        degraded = true;
      }
    }
    const std::string summary = diags.summary();
    if (!summary.empty()) {
      std::fprintf(io.err, "dinerosim: %s", summary.c_str());
    }

    if (registry != nullptr) {
      tools::fold_diags(registry, diags);
      if (transformer.has_value()) {
        tools::fold_transform(registry, transformer->stats());
      }
      if (sweep_engine.has_value()) {
        tools::fold_sweep(registry, *sweep_engine);
        registry->counter("sim.records_simulated")
            .add(sweep_engine->sim(0).records_simulated());
      } else if (sim.has_value()) {
        tools::fold_hierarchy(registry, *hierarchy);
        registry->counter("sim.records_simulated")
            .add(sim->records_simulated());
      }
      governor.fold(registry);
      common.write(*registry);
    }
    return tools::finalize_exit(diags.exit_code(), degraded);
  }
}

#ifndef TDT_TOOL_LIBRARY
int main(int argc, char** argv) {
  return tdt::tools::run_tool(
      {"dinerosim", "sweep", tdt::tools::dinerosim_run}, argc, argv);
}
#endif
