// tdtune — the trace-driven layout autotuner (docs/AUTOTUNE.md).
//
// One streaming pass profiles per-structure field affinity and heat;
// the candidate generator turns the profiles into concrete T1/T2/T3
// rule sets; every candidate is replayed through the transformer into a
// cache sweep and ranked by simulated miss reduction vs the baseline.
//
//   tdtune trace.out
//   tdtune trace.out --report --emit-best best.rules
//   tdtune trace.out --sweep "assoc=1;assoc=4" --json report.json
//
// The emitted rules file is bit-for-bit the rule set that was scored:
// feeding it back through `dinerosim --rules best.rules --sweep <spec>`
// reproduces the reported miss counts exactly.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "tdt/tdt.hpp"
#include "tools/cli_common.hpp"
#include "tools/entries.hpp"
#include "tools/obs_support.hpp"

int tdt::tools::tdtune_run(const tdt::service::ToolIO& io, int argc,
                           char** argv) {
  using namespace tdt;
  {
    FlagParser flags("tdtune",
                     "trace-driven layout autotuner: profiles field affinity "
                     "and heat, generates candidate transformation rules, "
                     "and ranks them by simulated cache misses");
    flags.set_streams(io.out, io.err);
    const auto* trace_flag =
        flags.add_string("trace", "", "input trace file (or pass it "
                                      "positionally)");
    const auto* window = flags.add_uint(
        "window", 32, "co-access reuse window in records");
    const auto* min_accesses = flags.add_uint(
        "min-accesses", 64, "ignore structures with fewer accesses");
    const auto* cold_percent = flags.add_uint(
        "cold-percent", 10, "fields below this percentage of their "
                            "structure's accesses are cold (T2 outlining)");
    const auto* affinity_percent = flags.add_uint(
        "affinity-percent", 50,
        "normalized co-access percentage at or above which two fields "
        "cluster into one out structure (T1 regrouping)");
    const auto* max_candidates =
        flags.add_uint("max-candidates", 16, "cap on generated candidates");
    const auto* stride_injects = flags.add_bool(
        "stride-injects", true,
        "charge stride remaps one index-arithmetic load per access "
        "(--stride-injects=false to disable)");
    const auto* report = flags.add_bool(
        "report", false, "print the affinity/heat profile before the "
                         "ranking table");
    const auto* emit_best = flags.add_string(
        "emit-best", "", "write the winning rules file here (skipped when "
                         "no candidate beats the baseline)");
    const auto* json_path = flags.add_string(
        "json", "", "write the tdt-autotune/1 JSON report to this file "
                    "('-' = stdout)");
    const auto* sweep = flags.add_string(
        "sweep", "", "evaluate candidates over several cache "
                     "configurations in one pass per candidate; same "
                     "spec syntax as dinerosim --sweep (empty = the "
                     "single configuration from the cache flags)");
    const tools::CacheFlags cache = tools::CacheFlags::add(flags);
    const tools::CommonFlags common = tools::CommonFlags::add(
        flags, {.error_policy = true, .jobs = true, .governor = true,
                .ingest = true});
    if (!flags.parse(argc, argv)) return 0;

    std::string trace_path = *trace_flag;
    if (trace_path.empty() && !flags.positional().empty()) {
      trace_path = flags.positional().front();
    }
    if (flags.positional().size() > 1 ||
        (!trace_flag->empty() && !flags.positional().empty())) {
      throw_config_error("expected exactly one trace file");
    }
    if (trace_path.empty()) {
      throw_config_error("a trace file is required (positional or --trace)");
    }
    common.arm_faults();
    Governor governor;
    common.configure(governor);

    std::optional<obs::Registry> registry_store;
    if (common.wants_registry()) registry_store.emplace("tdtune");
    obs::Registry* registry = registry_store ? &*registry_store : nullptr;

    DiagEngine diags = common.make_diags(io.errs);

    // One pass, two consumers of the same ingest: the records land in
    // memory (evaluation replays them once per candidate) while the
    // affinity profiler sees the identical batches — a two-sink view
    // graph, so the trace is read exactly once.
    trace::TraceContext ctx;
    analysis::AffinityOptions profile_options;
    profile_options.window = static_cast<std::uint32_t>(*window);
    analysis::AffinityCollector affinity(ctx, profile_options);
    // The recorded trace is replayed once per candidate: a hard
    // requirement under --max-memory (exhaustion exits 2).
    trace::VectorSink recorder(&governor.memory);
    trace::TraceSink* record_head = &recorder;
    std::optional<obs::Heartbeat> heartbeat;
    std::optional<trace::ProgressSink> progress_sink;
    if (*common.progress) {
      heartbeat.emplace("tdtune", *io.errs);
      progress_sink.emplace(*record_head, *heartbeat);
      record_head = &*progress_sink;
    }
    trace::GraphResult stream_result;
    {
      obs::PhaseTimer phase(registry, "stream");
      trace::ViewSourceOptions source_options;
      source_options.diags = &diags;
      source_options.ingest = common.ingest_mode();
      source_options.jobs = static_cast<int>(*common.jobs);
      const trace::View source =
          trace::View::source(ctx, trace_path, source_options);
      trace::Graph graph;
      graph.add_sink(source, *record_head);
      graph.add_sink(source, affinity);
      stream_result =
          graph.run({.registry = registry, .governor = &governor});
    }
    if (stream_result.deadline_hit) {
      std::fprintf(io.err,
                   "tdtune: deadline expired after %llu records; tuning on "
                   "that prefix only\n",
                   static_cast<unsigned long long>(stream_result.records));
    }
    const std::vector<trace::TraceRecord> records = recorder.take();

    std::fprintf(io.err, "tdtune: profiled %llu records, %zu structures\n",
                 static_cast<unsigned long long>(affinity.records_seen()),
                 affinity.structs().size());
    if (*report) std::fputs(affinity.report().c_str(), io.out);

    analysis::AutotuneOptions options;
    options.min_accesses = *min_accesses;
    options.cold_fraction = static_cast<double>(*cold_percent) / 100.0;
    options.affinity_threshold =
        static_cast<double>(*affinity_percent) / 100.0;
    options.max_candidates = *max_candidates;
    options.stride_injects = *stride_injects;

    std::vector<analysis::Candidate> candidates;
    {
      obs::PhaseTimer phase(registry, "generate");
      candidates = analysis::generate_candidates(affinity.structs(), options);
    }
    std::fprintf(io.err, "tdtune: generated %zu candidate(s)\n",
                 candidates.size());
    if (registry != nullptr) {
      registry->counter("autotune.structs").add(affinity.structs().size());
    }

    std::vector<cache::SweepPoint> points;
    if (sweep->empty()) {
      cache::SweepPoint base;
      base.levels.push_back(cache.l1());
      for (cache::CacheConfig& level : cache.extra_levels()) {
        base.levels.push_back(std::move(level));
      }
      points.push_back(std::move(base));
    } else {
      std::vector<std::string> warnings;
      points = cache::parse_sweep_spec(*sweep, cache.l1(),
                                       cache.extra_levels(), &warnings);
      tools::print_warnings(io.err, "tdtune", warnings);
    }

    const analysis::Autotuner tuner(ctx, options);
    const analysis::AutotuneResult result =
        tuner.evaluate(records, std::move(candidates), points,
                       cache.sim_options(), cache.page_spec(),
                       static_cast<std::size_t>(*common.jobs), registry);

    std::fputs(result.table().c_str(), io.out);
    std::fprintf(io.out,
                 "baseline: merged L1 totals: %llu accesses, %llu misses\n",
                 static_cast<unsigned long long>(result.baseline.accesses),
                 static_cast<unsigned long long>(result.baseline.misses));
    if (const analysis::RankedCandidate* best = result.best()) {
      std::fprintf(io.out,
                   "best (%s): merged L1 totals: %llu accesses, %llu "
                   "misses\n",
                   best->candidate.name.c_str(),
                   static_cast<unsigned long long>(best->eval.accesses),
                   static_cast<unsigned long long>(best->eval.misses));
      std::fprintf(io.out, "rationale: %s\n",
                   best->candidate.rationale.c_str());
    } else {
      std::fputs("no candidate beats the baseline\n", io.out);
    }

    if (!json_path->empty()) {
      if (*json_path == "-") {
        std::fputs(result.json().c_str(), io.out);
      } else {
        std::ofstream out(*json_path);
        if (!out) {
          throw_io_error("cannot open '" + *json_path + "' for writing");
        }
        out << result.json();
      }
    }

    if (!emit_best->empty()) {
      if (const analysis::RankedCandidate* best = result.best()) {
        std::ofstream out(*emit_best);
        if (!out) {
          throw_io_error("cannot open '" + *emit_best + "' for writing");
        }
        out << best->candidate.rules_text;
        std::fprintf(io.err, "tdtune: wrote %s (%s)\n", emit_best->c_str(),
                     best->candidate.name.c_str());
      } else {
        std::fprintf(io.err,
                     "tdtune: no candidate beats the baseline; not writing "
                     "%s\n",
                     emit_best->c_str());
      }
    }

    const std::string summary = diags.summary();
    if (!summary.empty()) std::fprintf(io.err, "tdtune: %s", summary.c_str());
    if (registry != nullptr) {
      tools::fold_diags(registry, diags);
      governor.fold(registry);
      common.write(*registry);
    }
    return tools::finalize_exit(diags.exit_code(),
                                stream_result.deadline_hit);
  }
}

#ifndef TDT_TOOL_LIBRARY
int main(int argc, char** argv) {
  return tdt::tools::run_tool({"tdtune", "autotune", tdt::tools::tdtune_run},
                              argc, argv);
}
#endif
