// tracediff — the paper's step 5: side-by-side comparison of an original
// trace with its transformed counterpart (Figures 5, 8, 9).
//
//   tracediff original.out transformed_trace.out [--max-rows 64] [--summary]
//
// Exit code: 0 = traces identical and no recovered errors, 1 =
// differences found and/or input errors recovered under --on-error,
// 2 = fatal/usage.
#include <cstdio>
#include <iostream>
#include <optional>

#include "tdt/tdt.hpp"
#include "tools/cli_common.hpp"
#include "tools/entries.hpp"
#include "tools/obs_support.hpp"

int tdt::tools::tracediff_run(const tdt::service::ToolIO& io, int argc,
                              char** argv) {
  using namespace tdt;
  {
    FlagParser flags("tracediff", "side-by-side trace comparison");
    flags.set_streams(io.out, io.err);
    const auto* max_rows =
        flags.add_uint("max-rows", 0, "limit printed rows (0 = all)");
    const auto* summary_only =
        flags.add_bool("summary", false, "print only the summary counts");
    const tools::CommonFlags common = tools::CommonFlags::add(
        flags, {.jobs = true, .governor = true, .ingest = true});
    if (!flags.parse(argc, argv)) return 0;
    if (flags.positional().size() != 2) {
      std::fprintf(io.err,
                   "usage: tracediff <original> <transformed> [flags]\n");
      return 2;
    }
    common.arm_faults();
    Governor governor;
    common.configure(governor);

    std::optional<obs::Registry> registry_store;
    if (common.wants_registry()) registry_store.emplace("tracediff");
    obs::Registry* registry = registry_store ? &*registry_store : nullptr;

    DiagEngine diags = common.make_diags(io.errs);

    std::optional<obs::Heartbeat> heartbeat;
    if (*common.progress) heartbeat.emplace("tracediff", *io.errs);

    trace::TraceContext ctx;
    // Both traces must be memory-resident for the diff: a hard
    // requirement under --max-memory (exhaustion exits 2, never a
    // silently truncated diff).
    trace::VectorSink original_sink(&governor.memory);
    trace::VectorSink transformed_sink(&governor.memory);
    bool deadline_hit = false;
    for (int side = 0; side < 2; ++side) {
      trace::VectorSink& sink = side == 0 ? original_sink : transformed_sink;
      trace::TraceSink* head = &sink;
      std::optional<trace::ProgressSink> progress_sink;
      if (heartbeat.has_value() && side == 0) {
        // Heartbeat covers the first (usually larger) streaming read;
        // finish() on the second would double-print the total.
        progress_sink.emplace(sink, *heartbeat);
        head = &*progress_sink;
      }
      obs::PhaseTimer phase(registry,
                            side == 0 ? "stream-original" : "stream-transformed");
      trace::ViewSourceOptions source_options;
      source_options.diags = &diags;
      source_options.ingest = common.ingest_mode();
      source_options.jobs = static_cast<int>(*common.jobs);
      const trace::GraphResult r =
          trace::View::source(ctx, flags.positional()[side], source_options)
              .drain(*head, {.registry = registry, .governor = &governor});
      deadline_hit = deadline_hit || r.deadline_hit;
    }
    if (deadline_hit) {
      std::fprintf(io.err, "tracediff: deadline expired mid-read; the diff "
                           "below compares truncated traces\n");
    }
    const auto& original = original_sink.records();
    const auto& transformed = transformed_sink.records();
    obs::PhaseTimer diff_phase(registry, "diff");
    const auto entries = trace::diff_traces(original, transformed);
    const trace::DiffSummary s = trace::summarize(entries);
    diff_phase.stop();

    if (!*summary_only) {
      const std::size_t rows =
          *max_rows == 0 ? entries.size() : static_cast<std::size_t>(*max_rows);
      std::fputs(trace::render_side_by_side(ctx, original, transformed,
                                            entries, rows)
                     .c_str(),
                 io.out);
    }
    std::fprintf(io.out,
                 "same %llu  modified %llu  inserted %llu  deleted %llu\n",
                 static_cast<unsigned long long>(s.same),
                 static_cast<unsigned long long>(s.modified),
                 static_cast<unsigned long long>(s.inserted),
                 static_cast<unsigned long long>(s.deleted));

    const std::string summary = diags.summary();
    if (!summary.empty()) {
      std::fprintf(io.err, "tracediff: %s", summary.c_str());
    }
    if (registry != nullptr) {
      tools::fold_diags(registry, diags);
      registry->counter("diff.same").add(s.same);
      registry->counter("diff.modified").add(s.modified);
      registry->counter("diff.inserted").add(s.inserted);
      registry->counter("diff.deleted").add(s.deleted);
      governor.fold(registry);
      common.write(*registry);
    }
    const bool differs = s.modified + s.inserted + s.deleted != 0;
    return differs || !diags.clean() || deadline_hit ? 1 : 0;
  }
}

#ifndef TDT_TOOL_LIBRARY
int main(int argc, char** argv) {
  return tdt::tools::run_tool(
      {"tracediff", "trace-diff", tdt::tools::tracediff_run}, argc, argv);
}
#endif
