// tracediff — the paper's step 5: side-by-side comparison of an original
// trace with its transformed counterpart (Figures 5, 8, 9).
//
//   tracediff original.out transformed_trace.out [--max-rows 64] [--summary]
//
// Exit code: 0 = traces identical and no recovered errors, 1 =
// differences found and/or input errors recovered under --on-error,
// 2 = fatal/usage.
#include <cstdio>
#include <iostream>

#include "trace/diff.hpp"
#include "trace/stream.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tdt;
  try {
    FlagParser flags("tracediff", "side-by-side trace comparison");
    const auto* max_rows =
        flags.add_uint("max-rows", 0, "limit printed rows (0 = all)");
    const auto* summary_only =
        flags.add_bool("summary", false, "print only the summary counts");
    const auto* on_error = flags.add_string(
        "on-error", "strict", "malformed-input policy: strict|skip|repair");
    const auto* max_errors = flags.add_uint(
        "max-errors", DiagEngine::kDefaultMaxErrors,
        "give up after this many recovered errors (0 = unlimited)");
    if (!flags.parse(argc, argv)) return 0;
    if (flags.positional().size() != 2) {
      std::fprintf(stderr,
                   "usage: tracediff <original> <transformed> [flags]\n");
      return 2;
    }

    DiagEngine diags(parse_error_policy(*on_error), *max_errors);
    diags.set_echo(&std::cerr);

    trace::TraceContext ctx;
    trace::VectorSink original_sink;
    trace::stream_trace_file(ctx, flags.positional()[0], original_sink,
                             &diags);
    trace::VectorSink transformed_sink;
    trace::stream_trace_file(ctx, flags.positional()[1], transformed_sink,
                             &diags);
    const auto& original = original_sink.records();
    const auto& transformed = transformed_sink.records();
    const auto entries = trace::diff_traces(original, transformed);
    const trace::DiffSummary s = trace::summarize(entries);

    if (!*summary_only) {
      const std::size_t rows =
          *max_rows == 0 ? entries.size() : static_cast<std::size_t>(*max_rows);
      std::fputs(trace::render_side_by_side(ctx, original, transformed,
                                            entries, rows)
                     .c_str(),
                 stdout);
    }
    std::printf("same %llu  modified %llu  inserted %llu  deleted %llu\n",
                static_cast<unsigned long long>(s.same),
                static_cast<unsigned long long>(s.modified),
                static_cast<unsigned long long>(s.inserted),
                static_cast<unsigned long long>(s.deleted));

    const std::string summary = diags.summary();
    if (!summary.empty()) {
      std::fprintf(stderr, "tracediff: %s", summary.c_str());
    }
    const bool differs = s.modified + s.inserted + s.deleted != 0;
    return differs || !diags.clean() ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "tracediff: %s\n", e.what());
    return 2;
  }
}
