// tracediff — the paper's step 5: side-by-side comparison of an original
// trace with its transformed counterpart (Figures 5, 8, 9).
//
//   tracediff original.out transformed_trace.out [--max-rows 64] [--summary]
#include <cstdio>

#include "trace/diff.hpp"
#include "trace/reader.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tdt;
  try {
    FlagParser flags("tracediff", "side-by-side trace comparison");
    const auto* max_rows =
        flags.add_uint("max-rows", 0, "limit printed rows (0 = all)");
    const auto* summary_only =
        flags.add_bool("summary", false, "print only the summary counts");
    if (!flags.parse(argc, argv)) return 0;
    if (flags.positional().size() != 2) {
      std::fprintf(stderr,
                   "usage: tracediff <original> <transformed> [flags]\n");
      return 2;
    }

    trace::TraceContext ctx;
    const auto original = trace::read_trace_file(ctx, flags.positional()[0]);
    const auto transformed = trace::read_trace_file(ctx, flags.positional()[1]);
    const auto entries = trace::diff_traces(original, transformed);
    const trace::DiffSummary s = trace::summarize(entries);

    if (!*summary_only) {
      const std::size_t rows =
          *max_rows == 0 ? entries.size() : static_cast<std::size_t>(*max_rows);
      std::fputs(trace::render_side_by_side(ctx, original, transformed,
                                            entries, rows)
                     .c_str(),
                 stdout);
    }
    std::printf("same %llu  modified %llu  inserted %llu  deleted %llu\n",
                static_cast<unsigned long long>(s.same),
                static_cast<unsigned long long>(s.modified),
                static_cast<unsigned long long>(s.inserted),
                static_cast<unsigned long long>(s.deleted));
    return s.modified + s.inserted + s.deleted == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "tracediff: %s\n", e.what());
    return 2;
  }
}
