// gtracer — the synthetic Gleipnir: traces a built-in kernel and writes
// the Gleipnir-format (or binary) trace file.
//
//   gtracer --kernel t1_soa --len 1024 --out trace.out
//   gtracer --kernel linked_list --len 4096 --shuffle --out list.tdtb --binary
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "tdt/tdt.hpp"
#include "tools/cli_common.hpp"
#include "tools/entries.hpp"
#include "tools/obs_support.hpp"

namespace {

using namespace tdt;

tracer::Program make_kernel(layout::TypeTable& types, const std::string& name,
                            std::int64_t len, std::int64_t sets,
                            std::int64_t cacheline, bool shuffle,
                            std::uint64_t seed) {
  if (name == "listing1") return tracer::make_listing1(types);
  if (name == "t1_soa") return tracer::make_t1_soa(types, len);
  if (name == "t1_aos") return tracer::make_t1_aos(types, len);
  if (name == "t2_inline") return tracer::make_t2_inline(types, len);
  if (name == "t2_outlined") return tracer::make_t2_outlined(types, len);
  if (name == "t3_contiguous") return tracer::make_t3_contiguous(types, len);
  if (name == "t3_strided") {
    return tracer::make_t3_strided(types, len, sets, cacheline);
  }
  if (name == "matmul_ijk") return tracer::make_matmul(types, len, false);
  if (name == "matmul_ikj") return tracer::make_matmul(types, len, true);
  if (name == "row_major") return tracer::make_row_col(types, len, len, false);
  if (name == "col_major") return tracer::make_row_col(types, len, len, true);
  if (name == "linked_list") {
    return tracer::make_linked_list(types, len, shuffle, seed);
  }
  throw_config_error(
      "unknown kernel '" + name +
      "' (try: listing1, t1_soa, t1_aos, t2_inline, t2_outlined, "
      "t3_contiguous, t3_strided, matmul_ijk, matmul_ikj, row_major, "
      "col_major, linked_list)");
}

}  // namespace

int tdt::tools::gtracer_run(const tdt::service::ToolIO& io, int argc,
                            char** argv) {
  {
    FlagParser flags("gtracer", "synthetic Gleipnir trace generator");
    flags.set_streams(io.out, io.err);
    const auto* kernel = flags.add_string("kernel", "t1_soa", "kernel name");
    const auto* source = flags.add_string(
        "source", "", "parse a C-subset kernel source file instead of "
                      "using a built-in kernel");
    const auto* len = flags.add_int("len", 16, "kernel size parameter LEN/N");
    const auto* sets = flags.add_int("sets", 16, "t3_strided: target set count");
    const auto* line =
        flags.add_int("cache-line", 32, "t3_strided: cache line bytes");
    const auto* shuffle =
        flags.add_bool("shuffle", false, "linked_list: randomize node order");
    const auto* seed = flags.add_uint("seed", 42, "linked_list shuffle seed");
    const auto* out = flags.add_string("out", "", "output file ('-' = stdout)");
    const auto* binary =
        flags.add_bool("binary", false, "write compact TDTB binary format");
    const auto* din = flags.add_bool(
        "din", false, "write classic DineroIV din format (drops metadata)");
    const auto* pid = flags.add_uint("pid", 4242, "PID for the START marker");
    const tools::CommonFlags common = tools::CommonFlags::add(
        flags, {.error_policy = false, .compress = true, .connect = false});
    if (!flags.parse(argc, argv)) return 0;
    if (common.wants_compress() && !*binary) {
      throw_config_error("--compress requires --binary (TDTB output)");
    }
    common.arm_faults();

    std::optional<obs::Registry> registry_store;
    if (common.wants_registry()) registry_store.emplace("gtracer");
    obs::Registry* registry = registry_store ? &*registry_store : nullptr;

    std::optional<obs::Heartbeat> heartbeat;
    if (*common.progress) heartbeat.emplace("gtracer", *io.errs);

    layout::TypeTable types;
    trace::TraceContext ctx;
    obs::PhaseTimer generate_phase(registry, "generate");
    const tracer::Program prog =
        source->empty() ? make_kernel(types, *kernel, *len, *sets, *line,
                                      *shuffle, *seed)
                        : tracer::parse_kernel_file(*source, types);
    const std::vector<trace::TraceRecord> records =
        tracer::run_program(types, ctx, prog);
    generate_phase.stop();
    if (heartbeat.has_value()) {
      heartbeat->tick(records.size());
      heartbeat->finish();
    }

    obs::PhaseTimer write_phase(registry, "write");
    if (*din) {
      if (out->empty() || *out == "-") {
        std::fputs(trace::write_din_string(records).c_str(), io.out);
      } else {
        trace::write_din_file(records, *out);
      }
    } else if (*binary) {
      if (out->empty() || *out == "-") {
        throw_config_error("--binary requires --out <file>");
      }
      const std::vector<char> blob = trace::write_binary_trace(
          ctx, records, *pid, common.writer_options());
      std::ofstream f(*out, std::ios::binary);
      if (!f) throw_io_error("cannot open '" + *out + "'");
      f.write(blob.data(), static_cast<std::streamsize>(blob.size()));
      if (!f) throw_io_error("writing '" + *out + "' failed");
    } else if (out->empty() || *out == "-") {
      std::fputs(trace::write_trace_string(ctx, records, *pid).c_str(),
                 io.out);
    } else if (out->size() > 3 &&
               out->compare(out->size() - 3, 3, ".gz") == 0) {
      // A .gz output name gzips the text trace, matching the transparent
      // .gz ingest on the reader side.
      if (!trace::gzip_available()) {
        throw_config_error("'" + *out + "': gzip output needs zlib, which "
                           "this build does not carry");
      }
      std::string gz;
      if (!trace::gzip_compress(trace::write_trace_string(ctx, records, *pid),
                                gz)) {
        throw_io_error("gzip compression failed for '" + *out + "'");
      }
      std::ofstream f(*out, std::ios::binary);
      if (!f) throw_io_error("cannot open '" + *out + "'");
      f.write(gz.data(), static_cast<std::streamsize>(gz.size()));
      if (!f) throw_io_error("writing '" + *out + "' failed");
    } else {
      trace::write_trace_file(ctx, records, *out, *pid);
    }
    write_phase.stop();
    std::fprintf(io.err, "gtracer: %zu records from %s'%s'\n",
                 records.size(), source->empty() ? "kernel " : "source ",
                 source->empty() ? kernel->c_str() : source->c_str());
    if (registry != nullptr) {
      registry->counter("trace.records").add(records.size());
      common.write(*registry);
    }
    return 0;
  }
}

#ifndef TDT_TOOL_LIBRARY
int main(int argc, char** argv) {
  return tdt::tools::run_tool({"gtracer", nullptr, tdt::tools::gtracer_run},
                              argc, argv);
}
#endif
