// Shared observability glue for the CLI tools: registers the common
// --metrics-json / --trace-spans / --progress flags and folds the
// subsystem statistics structs (DiagEngine, TransformStats, CacheLevel,
// ParallelSweep) into an obs::Registry under the documented metric
// names (docs/OBSERVABILITY.md).
//
// Everything here follows the null-registry convention: passing nullptr
// makes every fold a no-op, so the tools call these unconditionally and
// stay byte-identical when the flags are off.
#pragma once

#include <string>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/sweep.hpp"
#include "core/transformer.hpp"
#include "util/diag.hpp"
#include "util/flags.hpp"
#include "util/obs.hpp"

namespace tdt::tools {

/// The three observability flags every tool shares. Register with add()
/// before FlagParser::parse; export with write() at the end of the run.
struct ObsFlags {
  const std::string* metrics_json = nullptr;
  const std::string* trace_spans = nullptr;
  const bool* progress = nullptr;

  static ObsFlags add(FlagParser& flags) {
    ObsFlags f;
    f.metrics_json = flags.add_string(
        "metrics-json", "",
        "write a tdt-metrics/1 JSON metrics snapshot to this file");
    f.trace_spans = flags.add_string(
        "trace-spans", "",
        "write a Chrome trace_event span file (Perfetto-loadable) here");
    f.progress = flags.add_bool(
        "progress", false, "periodic one-line records/s heartbeat on stderr");
    return f;
  }

  /// True when any export was requested (the tool should build a Registry).
  [[nodiscard]] bool wants_registry() const {
    return !metrics_json->empty() || !trace_spans->empty();
  }

  /// Writes the requested export files; empty paths are skipped.
  void write(const obs::Registry& registry) const {
    if (!metrics_json->empty()) registry.write_metrics_file(*metrics_json);
    if (!trace_spans->empty()) registry.write_spans_file(*trace_spans);
  }
};

/// Folds diagnostics totals and per-code counts into diag.* counters
/// (diag.errors, diag.warnings, diag.<kebab-code-name>).
inline void fold_diags(obs::Registry* reg, const DiagEngine& diags) {
  if (reg == nullptr) return;
  reg->counter("diag.errors").add(diags.errors());
  reg->counter("diag.warnings").add(diags.warnings());
  for (const auto& [code, n] : diags.counts()) {
    reg->counter("diag." + std::string(diag_code_name(code))).add(n);
  }
}

/// Folds the transformer counters into transform.* counters.
inline void fold_transform(obs::Registry* reg, const core::TransformStats& s) {
  if (reg == nullptr) return;
  reg->counter("transform.records_in").add(s.records_in);
  reg->counter("transform.records_out").add(s.records_out);
  reg->counter("transform.rewritten").add(s.rewritten);
  reg->counter("transform.inserted").add(s.inserted);
  reg->counter("transform.passthrough").add(s.passthrough);
  reg->counter("transform.skipped").add(s.skipped);
  reg->counter("transform.plan_hits").add(s.plan_hits);
  reg->counter("transform.plan_misses").add(s.plan_misses);
}

/// Folds one cache level under `prefix` (e.g. "cache.L1"): the full
/// LevelStats counter set plus a per-set activity histogram
/// (<prefix>.set_accesses: one sample per set, value = accesses to it).
inline void fold_level(obs::Registry* reg, const std::string& prefix,
                       const cache::CacheLevel& level) {
  if (reg == nullptr) return;
  const cache::LevelStats& s = level.stats();
  reg->counter(prefix + ".read_hits").add(s.read_hits);
  reg->counter(prefix + ".read_misses").add(s.read_misses);
  reg->counter(prefix + ".write_hits").add(s.write_hits);
  reg->counter(prefix + ".write_misses").add(s.write_misses);
  reg->counter(prefix + ".miss_compulsory").add(s.compulsory);
  reg->counter(prefix + ".miss_capacity").add(s.capacity);
  reg->counter(prefix + ".miss_conflict").add(s.conflict);
  reg->counter(prefix + ".evictions").add(s.evictions);
  reg->counter(prefix + ".writebacks").add(s.writebacks);
  reg->counter(prefix + ".prefetches").add(s.prefetches);
  reg->counter(prefix + ".prefetch_hits").add(s.prefetch_hits);
  reg->gauge(prefix + ".miss_ratio").set(s.miss_ratio());
  obs::HistogramData sets;
  for (const cache::SetStats& ss : level.set_stats()) {
    sets.record(ss.hits + ss.misses);
  }
  if (!sets.empty()) reg->histogram(prefix + ".set_accesses").merge(sets);
}

/// Folds every level of a hierarchy under "<prefix>.<level-name>".
inline void fold_hierarchy(obs::Registry* reg, const cache::CacheHierarchy& h,
                           const std::string& prefix = "cache") {
  if (reg == nullptr) return;
  for (std::size_t i = 0; i < h.depth(); ++i) {
    const cache::CacheLevel& level = h.level(i);
    fold_level(reg, prefix + "." + level.config().name, level);
  }
}

/// Folds a sweep: per-point hierarchies under "cache.p<i>" plus the
/// point count gauge.
inline void fold_sweep(obs::Registry* reg, const cache::ParallelSweep& sweep) {
  if (reg == nullptr) return;
  reg->gauge("sweep.points").set(static_cast<double>(sweep.size()));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    fold_hierarchy(reg, sweep.hierarchy(i), "cache.p" + std::to_string(i));
  }
}

}  // namespace tdt::tools
