// traceinfo — quick trace statistics: access mix, per-function and
// per-variable counts, footprint. Reads Gleipnir text, din, or TDTB
// binary traces (format guessed from the extension).
//
//   traceinfo trace.out [--block 32] [--top 16] [--on-error=skip]
//
// Exit code: 0 = clean, 1 = completed with recovered errors, 2 = fatal.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>

#include "tdt/tdt.hpp"
#include "tools/cli_common.hpp"
#include "tools/entries.hpp"
#include "tools/obs_support.hpp"

namespace {

/// Renders the TDTB container section: version, codec, frame count,
/// compression ratio, and the per-frame record table (capped by --top).
/// Printed only for TDTB inputs, so text-trace output stays byte-
/// identical to earlier releases.
void print_container(std::FILE* out, const tdt::trace::TdtbContainerInfo& c,
                     std::uint64_t top) {
  using tdt::trace::Codec;
  const auto ull = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  const auto codec_label = [](std::uint8_t id) -> std::string {
    const std::optional<Codec> codec = tdt::trace::codec_from_id(id);
    if (codec) return std::string(tdt::trace::codec_name(*codec));
    return "unknown(" + std::to_string(id) + ")";
  };
  std::fprintf(out, "== container ==\n");
  std::fprintf(out, "  %-16s TDTB v%u\n", "format", c.version);
  std::fprintf(out, "  %-16s %llu\n", "pid", ull(c.pid));
  std::fprintf(out, "  %-16s %llu\n", "file bytes", ull(c.file_bytes));
  if (c.version < tdt::trace::kTdtbVersionFramed) {
    if (c.total_records != 0) {
      std::fprintf(out, "  %-16s %llu\n", "records", ull(c.total_records));
    }
    std::fprintf(out, "\n");
    return;
  }
  std::fprintf(out, "  %-16s %s\n", "codec", codec_label(c.default_codec).c_str());
  if (!c.has_index) {
    std::fprintf(out, "  %-16s invalid (footer or frame index failed "
                "validation)\n\n", "frame index");
    return;
  }
  std::uint64_t payload = 0;
  std::uint64_t stored = 0;
  for (const tdt::trace::TdtbFrameInfo& f : c.frames) {
    payload += f.usize;
    stored += f.csize;
  }
  std::fprintf(out, "  %-16s %zu\n", "frames", c.frames.size());
  std::fprintf(out, "  %-16s %llu\n", "records", ull(c.total_records));
  std::fprintf(out, "  %-16s %llu\n", "payload bytes", ull(payload));
  std::fprintf(out, "  %-16s %llu\n", "stored bytes", ull(stored));
  if (stored > 0) {
    std::fprintf(out, "  %-16s %.2fx\n", "compression",
                static_cast<double>(payload) / static_cast<double>(stored));
  }
  const std::size_t rows =
      top == 0 ? c.frames.size()
               : std::min<std::size_t>(c.frames.size(),
                                       static_cast<std::size_t>(top));
  if (rows > 0) {
    std::fprintf(out, "  %6s %8s %12s %12s %12s\n", "frame", "codec", "records",
                "payload", "stored");
    for (std::size_t i = 0; i < rows; ++i) {
      const tdt::trace::TdtbFrameInfo& f = c.frames[i];
      std::fprintf(out, "  %6zu %8s %12llu %12llu %12llu\n", i,
                  codec_label(f.codec).c_str(), ull(f.records), ull(f.usize),
                  ull(f.csize));
    }
    if (rows < c.frames.size()) {
      std::fprintf(out, "  (%zu more frames; raise --top to list them)\n",
                  c.frames.size() - rows);
    }
  }
  std::fprintf(out, "\n");
}

/// Terminal sink feeding the stats collector.
class StatsSink final : public tdt::trace::TraceSink {
 public:
  explicit StatsSink(std::uint64_t block_size) : stats_(block_size) {}

  void on_record(const tdt::trace::TraceRecord& rec) override {
    stats_.add(rec);
  }
  void push_batch(std::span<const tdt::trace::TraceRecord> batch) override {
    stats_.add_all(batch);
  }
  [[nodiscard]] tdt::trace::TraceStats& stats() noexcept { return stats_; }

 private:
  tdt::trace::TraceStats stats_;
};

}  // namespace

int tdt::tools::traceinfo_run(const tdt::service::ToolIO& io, int argc,
                              char** argv) {
  using namespace tdt;
  {
    FlagParser flags("traceinfo", "trace statistics");
    flags.set_streams(io.out, io.err);
    const auto* block =
        flags.add_uint("block", 32, "footprint tracking granularity in bytes");
    const auto* top = flags.add_uint("top", 16, "rows per ranking table");
    const tools::CommonFlags common = tools::CommonFlags::add(
        flags, {.jobs = true, .governor = true, .ingest = true});
    if (!flags.parse(argc, argv)) return 0;
    if (flags.positional().size() != 1) {
      std::fprintf(io.err, "usage: traceinfo <trace-file> [flags]\n");
      return 2;
    }
    common.arm_faults();
    Governor governor;
    common.configure(governor);

    std::optional<obs::Registry> registry_store;
    if (common.wants_registry()) registry_store.emplace("traceinfo");
    obs::Registry* registry = registry_store ? &*registry_store : nullptr;

    DiagEngine diags = common.make_diags(io.errs);

    const std::string& path = flags.positional()[0];
    if (trace::guess_trace_format(path) == trace::TraceFormat::Tdtb) {
      if (const std::optional<trace::TdtbContainerInfo> container =
              trace::probe_tdtb_file(path)) {
        print_container(io.out, *container, *top);
      }
    }

    trace::TraceContext ctx;
    StatsSink sink(*block);
    trace::TraceSink* head = &sink;
    std::optional<obs::Heartbeat> heartbeat;
    std::optional<trace::ProgressSink> progress_sink;
    if (*common.progress) {
      heartbeat.emplace("traceinfo", *io.errs);
      progress_sink.emplace(sink, *heartbeat);
      head = &*progress_sink;
    }
    trace::StreamResult stream_result;
    {
      obs::PhaseTimer phase(registry, "stream");
      trace::StreamOptions stream_options;
      stream_options.diags = &diags;
      stream_options.registry = registry;
      stream_options.governor = &governor;
      stream_options.ingest = common.ingest_mode();
      stream_options.jobs = static_cast<int>(*common.jobs);
      stream_result = trace::stream_trace_file(ctx, path, *head,
                                               stream_options);
    }
    if (stream_result.deadline_hit) {
      std::fprintf(io.err,
                   "traceinfo: deadline expired after %llu records; "
                   "statistics below cover that prefix only\n",
                   static_cast<unsigned long long>(stream_result.records));
    }
    {
      obs::PhaseTimer phase(registry, "report");
      std::fputs(sink.stats().report(ctx, *top).c_str(), io.out);
    }

    const std::string summary = diags.summary();
    if (!summary.empty()) {
      std::fprintf(io.err, "traceinfo: %s", summary.c_str());
    }
    if (registry != nullptr) {
      tools::fold_diags(registry, diags);
      governor.fold(registry);
      common.write(*registry);
    }
    return tools::finalize_exit(diags.exit_code(),
                                stream_result.deadline_hit);
  }
}

#ifndef TDT_TOOL_LIBRARY
int main(int argc, char** argv) {
  return tdt::tools::run_tool(
      {"traceinfo", "trace-info", tdt::tools::traceinfo_run}, argc, argv);
}
#endif
