// traceinfo — quick trace statistics: access mix, per-function and
// per-variable counts, footprint. Reads Gleipnir text, din, or TDTB
// binary traces (format guessed from the extension).
//
//   traceinfo trace.out [--block 32] [--top 16] [--on-error=skip]
//
// Exit code: 0 = clean, 1 = completed with recovered errors, 2 = fatal.
#include <cstdio>
#include <iostream>

#include "trace/stats.hpp"
#include "trace/stream.hpp"
#include "util/diag.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

namespace {

/// Terminal sink feeding the stats collector.
class StatsSink final : public tdt::trace::TraceSink {
 public:
  explicit StatsSink(std::uint64_t block_size) : stats_(block_size) {}

  void on_record(const tdt::trace::TraceRecord& rec) override {
    stats_.add(rec);
  }
  void push_batch(std::span<const tdt::trace::TraceRecord> batch) override {
    stats_.add_all(batch);
  }
  [[nodiscard]] tdt::trace::TraceStats& stats() noexcept { return stats_; }

 private:
  tdt::trace::TraceStats stats_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tdt;
  try {
    FlagParser flags("traceinfo", "trace statistics");
    const auto* block =
        flags.add_uint("block", 32, "footprint tracking granularity in bytes");
    const auto* top = flags.add_uint("top", 16, "rows per ranking table");
    const auto* on_error = flags.add_string(
        "on-error", "strict", "malformed-input policy: strict|skip|repair");
    const auto* max_errors = flags.add_uint(
        "max-errors", DiagEngine::kDefaultMaxErrors,
        "give up after this many recovered errors (0 = unlimited)");
    if (!flags.parse(argc, argv)) return 0;
    if (flags.positional().size() != 1) {
      std::fprintf(stderr, "usage: traceinfo <trace-file> [flags]\n");
      return 2;
    }

    DiagEngine diags(parse_error_policy(*on_error), *max_errors);
    diags.set_echo(&std::cerr);

    trace::TraceContext ctx;
    StatsSink sink(*block);
    trace::stream_trace_file(ctx, flags.positional()[0], sink, &diags);
    std::fputs(sink.stats().report(ctx, *top).c_str(), stdout);

    const std::string summary = diags.summary();
    if (!summary.empty()) {
      std::fprintf(stderr, "traceinfo: %s", summary.c_str());
    }
    return diags.exit_code();
  } catch (const Error& e) {
    std::fprintf(stderr, "traceinfo: %s\n", e.what());
    return 2;
  }
}
