// traceinfo — quick trace statistics: access mix, per-function and
// per-variable counts, footprint.
//
//   traceinfo trace.out [--block 32] [--top 16]
#include <cstdio>

#include "trace/reader.hpp"
#include "trace/stats.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tdt;
  try {
    FlagParser flags("traceinfo", "trace statistics");
    const auto* block =
        flags.add_uint("block", 32, "block size for footprint in blocks");
    const auto* top = flags.add_uint("top", 16, "rows per ranking table");
    if (!flags.parse(argc, argv)) return 0;
    if (flags.positional().size() != 1) {
      std::fprintf(stderr, "usage: traceinfo <trace-file> [flags]\n");
      return 2;
    }

    trace::TraceContext ctx;
    const auto records = trace::read_trace_file(ctx, flags.positional()[0]);
    trace::TraceStats stats;
    stats.add_all(records);
    std::fputs(stats.report(ctx, *top).c_str(), stdout);
    std::printf("footprint at %llu-byte blocks: %llu blocks\n",
                static_cast<unsigned long long>(*block),
                static_cast<unsigned long long>(stats.footprint_blocks(*block)));
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "traceinfo: %s\n", e.what());
    return 2;
  }
}
