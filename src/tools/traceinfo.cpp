// traceinfo — quick trace statistics: access mix, per-function and
// per-variable counts, footprint. Reads Gleipnir text, din, or TDTB
// binary traces (format guessed from the extension).
//
//   traceinfo trace.out [--block 32] [--top 16] [--on-error=skip]
//
// Exit code: 0 = clean, 1 = completed with recovered errors, 2 = fatal.
#include <cstdio>
#include <iostream>
#include <optional>

#include "tdt/tdt.hpp"
#include "tools/cli_common.hpp"
#include "tools/obs_support.hpp"

namespace {

/// Terminal sink feeding the stats collector.
class StatsSink final : public tdt::trace::TraceSink {
 public:
  explicit StatsSink(std::uint64_t block_size) : stats_(block_size) {}

  void on_record(const tdt::trace::TraceRecord& rec) override {
    stats_.add(rec);
  }
  void push_batch(std::span<const tdt::trace::TraceRecord> batch) override {
    stats_.add_all(batch);
  }
  [[nodiscard]] tdt::trace::TraceStats& stats() noexcept { return stats_; }

 private:
  tdt::trace::TraceStats stats_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tdt;
  return tools::run_tool("traceinfo", [&]() -> int {
    FlagParser flags("traceinfo", "trace statistics");
    const auto* block =
        flags.add_uint("block", 32, "footprint tracking granularity in bytes");
    const auto* top = flags.add_uint("top", 16, "rows per ranking table");
    const tools::CommonFlags common =
        tools::CommonFlags::add(flags, {.governor = true, .ingest = true});
    if (!flags.parse(argc, argv)) return 0;
    if (flags.positional().size() != 1) {
      std::fprintf(stderr, "usage: traceinfo <trace-file> [flags]\n");
      return 2;
    }
    common.arm_faults();
    Governor governor;
    common.configure(governor);

    std::optional<obs::Registry> registry_store;
    if (common.wants_registry()) registry_store.emplace("traceinfo");
    obs::Registry* registry = registry_store ? &*registry_store : nullptr;

    DiagEngine diags = common.make_diags();

    trace::TraceContext ctx;
    StatsSink sink(*block);
    trace::TraceSink* head = &sink;
    std::optional<obs::Heartbeat> heartbeat;
    std::optional<trace::ProgressSink> progress_sink;
    if (*common.progress) {
      heartbeat.emplace("traceinfo", std::cerr);
      progress_sink.emplace(sink, *heartbeat);
      head = &*progress_sink;
    }
    trace::StreamResult stream_result;
    {
      obs::PhaseTimer phase(registry, "stream");
      stream_result = trace::stream_trace_file(ctx, flags.positional()[0],
                                               *head, &diags, registry,
                                               &governor,
                                               common.ingest_mode());
    }
    if (stream_result.deadline_hit) {
      std::fprintf(stderr,
                   "traceinfo: deadline expired after %llu records; "
                   "statistics below cover that prefix only\n",
                   static_cast<unsigned long long>(stream_result.records));
    }
    {
      obs::PhaseTimer phase(registry, "report");
      std::fputs(sink.stats().report(ctx, *top).c_str(), stdout);
    }

    const std::string summary = diags.summary();
    if (!summary.empty()) {
      std::fprintf(stderr, "traceinfo: %s", summary.c_str());
    }
    if (registry != nullptr) {
      tools::fold_diags(registry, diags);
      governor.fold(registry);
      common.write(*registry);
    }
    return tools::finalize_exit(diags.exit_code(),
                                stream_result.deadline_hit);
  });
}
