// tdtd — the persistent sweep/autotune daemon (docs/SERVICE.md).
//
// Serves the tool bodies over a unix-domain socket speaking tdt-rpc/1:
//
//   tdtd --socket /tmp/tdt.sock --workers 4 --memo-bytes 128m
//   dinerosim --connect /tmp/tdt.sock --trace t.out --sweep "assoc=1;assoc=4"
//   tdtd --socket /tmp/tdt.sock --rpc shutdown
//
// The daemon registers one OpHandler per tool op, closing over exactly
// the entry points the standalone binaries run (tools/entries.hpp), so a
// daemon-served request and a local run execute the same code and differ
// only in where the bytes land. Repeated identical requests on unchanged
// inputs are answered from the result memo, byte-identical to the cold
// run.
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tdt/service.hpp"
#include "tdt/tdt.hpp"
#include "tools/cli_common.hpp"
#include "tools/entries.hpp"

namespace {

using namespace tdt;

/// Terminal sink that folds every transformed record's canonical text
/// rendering into a CRC32, so two runs agree iff the transformed traces
/// are byte-identical — the paper's step-5 comparison as one number.
class DigestSink final : public trace::TraceSink {
 public:
  explicit DigestSink(const trace::TraceContext& ctx) : ctx_(&ctx) {}

  void on_record(const trace::TraceRecord& rec) override {
    std::string line = ctx_->format_record(rec);
    line.push_back('\n');
    crc_.update(line.data(), line.size());
    ++records_;
  }

  [[nodiscard]] std::uint32_t value() const noexcept { return crc_.value(); }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  const trace::TraceContext* ctx_;
  Crc32 crc_;
  std::uint64_t records_ = 0;
};

/// The `transform-digest` op: stream a trace through the transformer
/// under a rule file and report the digest of the transformed trace
/// without materializing it. Exists only behind the daemon (and shares
/// its error contract with the standalone tools via run_tool_body).
int transform_digest_run(const service::ToolIO& io, int argc, char** argv) {
  FlagParser flags("transform-digest",
                   "digest of the transformed trace: streams the input "
                   "through the rule transformer and reports a CRC32 over "
                   "the canonical text rendering of the result");
  flags.set_streams(io.out, io.err);
  const auto* trace_flag = flags.add_string(
      "trace", "", "input trace file (or pass it positionally)");
  const auto* rules_path =
      flags.add_string("rules", "", "transformation rule file (required)");
  const tools::CommonFlags common = tools::CommonFlags::add(
      flags, {.governor = true, .ingest = true, .connect = false});
  if (!flags.parse(argc, argv)) return 0;

  std::string trace_path = *trace_flag;
  if (trace_path.empty() && !flags.positional().empty()) {
    trace_path = flags.positional().front();
  }
  if (flags.positional().size() > 1 ||
      (!trace_flag->empty() && !flags.positional().empty())) {
    throw_config_error("expected exactly one trace file");
  }
  if (trace_path.empty()) {
    throw_config_error("a trace file is required (positional or --trace)");
  }
  if (rules_path->empty()) throw_config_error("--rules is required");
  common.arm_faults();
  Governor governor;
  common.configure(governor);
  DiagEngine diags = common.make_diags(io.errs);

  const core::RuleSet rules = core::parse_rules_file(*rules_path);
  for (const core::RuleDiagnostic& d : rules.validate()) {
    std::fprintf(io.err, "transform-digest: rule %s: %s\n",
                 d.severity == core::RuleDiagnostic::Severity::Error
                     ? "error"
                     : "warning",
                 d.message.c_str());
  }

  trace::TraceContext ctx;
  DigestSink digest(ctx);
  core::TransformOptions xopt;
  xopt.diags = &diags;
  core::TraceTransformer transformer(rules, ctx, digest, xopt);

  trace::StreamOptions stream_options;
  stream_options.diags = &diags;
  stream_options.governor = &governor;
  stream_options.ingest = common.ingest_mode();
  const trace::StreamResult stream_result =
      trace::stream_trace_file(ctx, trace_path, transformer, stream_options);
  if (stream_result.deadline_hit) {
    std::fprintf(io.err,
                 "transform-digest: deadline expired after %llu records; "
                 "the digest covers that prefix only\n",
                 static_cast<unsigned long long>(stream_result.records));
  }

  const core::TransformStats& stats = transformer.stats();
  std::fprintf(io.out,
               "transform-digest: crc32:%08x records_in=%llu "
               "records_out=%llu rewritten=%llu inserted=%llu\n",
               digest.value(),
               static_cast<unsigned long long>(stats.records_in),
               static_cast<unsigned long long>(stats.records_out),
               static_cast<unsigned long long>(stats.rewritten),
               static_cast<unsigned long long>(stats.inserted));

  const std::string summary = diags.summary();
  if (!summary.empty()) {
    std::fprintf(io.err, "transform-digest: %s", summary.c_str());
  }
  return tools::finalize_exit(diags.exit_code(), stream_result.deadline_hit);
}

/// Wraps a tool entry point as an OpHandler: the daemon hands over the
/// captured ToolIO and the request's argument vector; the body runs
/// under the same run_tool_body contract as a standalone invocation.
service::OpHandler tool_op(const char* name, std::string_view op,
                           int (*run)(const service::ToolIO&, int, char**),
                           std::vector<std::string> input_flags,
                           bool positional_inputs,
                           std::vector<std::string> bool_flags) {
  service::OpHandler handler;
  handler.op = std::string(op);
  handler.input_flags = std::move(input_flags);
  handler.positional_inputs = positional_inputs;
  handler.bool_flags = std::move(bool_flags);
  handler.run = [name, run](const service::ToolIO& io,
                            const std::vector<std::string>& args) {
    std::vector<std::string> storage;
    storage.reserve(args.size() + 1);
    storage.emplace_back(name);
    storage.insert(storage.end(), args.begin(), args.end());
    std::vector<char*> argv;
    argv.reserve(storage.size());
    for (std::string& s : storage) argv.push_back(s.data());
    return tools::run_tool_body(name, io, [&] {
      return run(io, static_cast<int>(argv.size()), argv.data());
    });
  };
  return handler;
}

void register_ops(service::Daemon& daemon) {
  daemon.register_op(tool_op(
      "dinerosim", service::kOpSweep, tools::dinerosim_run, {"trace"},
      /*positional_inputs=*/false,
      {"per-set", "per-var", "conflicts", "advise", "modify-read-write",
       "progress"}));
  daemon.register_op(tool_op(
      "tdtune", service::kOpAutotune, tools::tdtune_run, {"trace"},
      /*positional_inputs=*/true,
      {"stride-injects", "report", "modify-read-write", "progress"}));
  daemon.register_op(tool_op("traceinfo", service::kOpTraceInfo,
                             tools::traceinfo_run, {},
                             /*positional_inputs=*/true, {"progress"}));
  daemon.register_op(tool_op("tracediff", service::kOpTraceDiff,
                             tools::tracediff_run, {},
                             /*positional_inputs=*/true,
                             {"summary", "progress"}));
  daemon.register_op(tool_op("transform-digest", service::kOpTransformDigest,
                             transform_digest_run, {"trace", "rules"},
                             /*positional_inputs=*/true, {"progress"}));
}

std::atomic<service::Daemon*> g_daemon{nullptr};

void handle_signal(int) {
  if (service::Daemon* daemon = g_daemon.load()) daemon->request_shutdown();
}

/// Client mode (`--rpc <op> [args...]`): one request against a running
/// daemon, captured output relayed verbatim, remote exit code returned.
int run_rpc(const service::ToolIO& io, const std::string& socket,
            const std::string& op, std::vector<std::string> args) {
  service::Session session(socket);
  return session.run_tool(op, std::move(args), io.out, io.err);
}

int tdtd_run(const service::ToolIO& io, int argc, char** argv) {
  FlagParser flags("tdtd", "the tdt sweep/autotune daemon (tdt-rpc/1 over a "
                           "unix-domain socket; see docs/SERVICE.md)");
  flags.set_streams(io.out, io.err);
  const auto* socket = flags.add_string(
      "socket", "", "unix-domain socket path to listen on (required)");
  const auto* workers = flags.add_uint(
      "workers", 2, "tool-request executor threads");
  const auto* queue = flags.add_uint(
      "queue", 8, "pending tool requests before new ones are refused "
                  "with status \"busy\"");
  const auto* memo_bytes = flags.add_string(
      "memo-bytes", "64m", "result-memo budget, bytes with optional k/m/g "
                           "suffix (0 disables the memo)");
  const auto* request_max_memory = flags.add_string(
      "request-max-memory", "", "default --max-memory appended to every "
                                "tool request that does not set its own "
                                "(empty = none)");
  const auto* request_deadline = flags.add_string(
      "request-deadline", "", "default --deadline appended to every tool "
                              "request that does not set its own "
                              "(empty = none)");
  const auto* detach = flags.add_bool(
      "detach", false, "fork to the background; the parent prints the "
                       "socket and exits 0 once the daemon is accepting");
  const auto* pid_file = flags.add_string(
      "pid-file", "", "write the daemon's pid here after the socket is "
                      "bound");
  const auto* rpc = flags.add_string(
      "rpc", "", "client mode: send this op (status|metrics|shutdown|"
                 "register-trace|...) to the daemon at --socket, relay "
                 "its reply, and exit with the remote exit code; "
                 "positional arguments travel as the op's arguments "
                 "(put them after a bare -- so the op's own flags are "
                 "not parsed here)");
  if (!flags.parse(argc, argv)) return 0;
  if (socket->empty()) {
    throw_config_error("--socket is required");
  }

  if (!rpc->empty()) {
    return run_rpc(io, *socket, *rpc, flags.positional());
  }
  if (!flags.positional().empty()) {
    throw_config_error("positional arguments only make sense with --rpc");
  }

  service::DaemonConfig config;
  config.socket_path = *socket;
  config.workers = static_cast<unsigned>(*workers);
  config.queue_capacity = static_cast<std::size_t>(*queue);
  config.memo_bytes = tools::parse_byte_size(*memo_bytes, "--memo-bytes");
  config.request_max_memory = *request_max_memory;
  config.request_deadline = *request_deadline;
  if (config.workers == 0) throw_config_error("--workers must be at least 1");
  if (config.queue_capacity == 0) {
    throw_config_error("--queue must be at least 1");
  }
  if (!request_max_memory->empty()) {
    (void)tools::parse_byte_size(*request_max_memory, "--request-max-memory");
  }
  if (!request_deadline->empty()) {
    (void)tools::parse_seconds(*request_deadline, "--request-deadline");
  }

  int ready_fd = -1;
  if (*detach) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) throw_io_error("pipe failed for --detach");
    const pid_t pid = ::fork();
    if (pid < 0) throw_io_error("fork failed for --detach");
    if (pid > 0) {
      // Parent: wait for the child's readiness byte so a failed bind
      // surfaces here as exit 2, not as a silent orphan.
      ::close(pipe_fds[1]);
      char byte = 0;
      const ssize_t n = ::read(pipe_fds[0], &byte, 1);
      ::close(pipe_fds[0]);
      if (n == 1 && byte == 'r') {
        std::fprintf(io.out, "tdtd: listening on %s (pid %d)\n",
                     socket->c_str(), static_cast<int>(pid));
        return 0;
      }
      std::fprintf(io.err, "tdtd: daemon failed to start\n");
      return 2;
    }
    ::close(pipe_fds[0]);
    ::setsid();
    // Drop the inherited std fds: a caller capturing our output reads
    // until every copy of its pipe's write end closes, so a daemon that
    // kept them would hang that caller for its whole lifetime.
    const int devnull = ::open("/dev/null", O_RDWR);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      if (devnull > STDERR_FILENO) ::close(devnull);
    }
    ready_fd = pipe_fds[1];
  }

  service::Daemon daemon(config);
  register_ops(daemon);
  try {
    daemon.start();
  } catch (const Error&) {
    if (ready_fd >= 0) ::close(ready_fd);  // parent reads EOF -> exit 2
    throw;
  }

  if (!pid_file->empty()) {
    if (std::FILE* f = std::fopen(pid_file->c_str(), "w")) {
      std::fprintf(f, "%d\n", static_cast<int>(::getpid()));
      std::fclose(f);
    } else {
      std::fprintf(io.err, "tdtd: warning: cannot write pid file '%s'\n",
                   pid_file->c_str());
    }
  }

  g_daemon.store(&daemon);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (ready_fd >= 0) {
    (void)!::write(ready_fd, "r", 1);
    ::close(ready_fd);
  } else {
    std::fprintf(io.err, "tdtd: listening on %s (pid %d)\n", socket->c_str(),
                 static_cast<int>(::getpid()));
  }

  daemon.wait();
  g_daemon.store(nullptr);
  std::fprintf(io.err, "tdtd: shut down\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return tdt::tools::run_tool({"tdtd", nullptr, tdtd_run}, argc, argv);
}
