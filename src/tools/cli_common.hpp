// Shared CLI option handling for the tools (gtracer, dinerosim,
// tracediff, traceinfo, tdtune, tdtd). One place registers the common
// flag block — --on-error/--max-errors, --metrics-json/--trace-spans/
// --progress, --jobs — so spellings, help text, and defaults cannot
// drift between tools, and one place implements the exit-code contract
// (docs/robustness.md): 0 = clean, 1 = completed with recovered errors,
// 2 = fatal/usage.
//
// Since the tdtd redesign, every tool body is a ToolSpec: a function of
// (ToolIO, argc, argv) that never names stdout/stderr directly. run_tool
// picks the backend — the local pipeline against the process streams,
// or, when --connect <socket> is given, a daemon Session that runs the
// identical body server-side and relays captured bytes — so both paths
// are byte-identical by construction (docs/SERVICE.md).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "cache/page_map.hpp"
#include "cache/sim.hpp"
#include "cache/sweep.hpp"
#include "service/io.hpp"
#include "trace/binary.hpp"
#include "trace/source.hpp"
#include "util/diag.hpp"
#include "util/flags.hpp"
#include "util/governor.hpp"
#include "util/obs.hpp"

namespace tdt::tools {

/// Which optional members of the common flag block a tool registers.
struct CommonFlagChoices {
  bool error_policy = true;  ///< --on-error / --max-errors
  bool jobs = false;         ///< --jobs / --worker-timeout (pipeline tools)
  bool governor = false;     ///< --max-memory / --deadline (streaming tools)
  bool ingest = false;       ///< --ingest (trace-reading tools)
  bool compress = false;     ///< --compress (TDTB-writing tools)
  bool connect = true;       ///< --connect (daemon-routable tools)
};

/// The shared flag block. Register with add() before FlagParser::parse;
/// the common flags are registered last so every tool's --help ends with
/// the same block in the same order.
struct CommonFlags {
  const std::string* on_error = nullptr;
  const std::uint64_t* max_errors = nullptr;
  const std::uint64_t* jobs = nullptr;
  const std::string* worker_timeout = nullptr;
  const std::string* max_memory = nullptr;
  const std::string* deadline = nullptr;
  const std::string* ingest = nullptr;
  const std::string* compress = nullptr;
  const std::string* fault_spec = nullptr;
  const std::string* metrics_json = nullptr;
  const std::string* trace_spans = nullptr;
  const bool* progress = nullptr;

  static CommonFlags add(FlagParser& flags, CommonFlagChoices choices = {});

  /// Builds the DiagEngine from --on-error/--max-errors with its echo on
  /// `echo` (the tool's error stream, io.errs). Only valid when
  /// error_policy flags were registered.
  [[nodiscard]] DiagEngine make_diags(std::ostream* echo) const;

  /// Arms the process-global fault injector: TDT_FAULT_SPEC first, then
  /// --fault-spec on top when given (the flag wins). Call once, before
  /// any trace I/O or pipeline threads. Throws Error{Config} on a bad
  /// spec.
  void arm_faults() const;

  /// --worker-timeout in seconds (0 = supervision off). Throws
  /// Error{Config} on a malformed value.
  [[nodiscard]] double worker_timeout_seconds() const;

  /// Parsed --ingest backend selection (Auto when the flag was not
  /// registered). Throws Error{Config} on an unknown backend name.
  [[nodiscard]] trace::IngestMode ingest_mode() const;

  /// True when --compress was registered and given a value (the tool
  /// should write the TDTB v3 framed container).
  [[nodiscard]] bool wants_compress() const {
    return compress != nullptr && !compress->empty();
  }

  /// Binary-writer options from --compress: the flag absent or empty
  /// yields the plain v2 default; `zstd|lz4|none[:level]` selects the v3
  /// framed container with that frame codec. Throws Error{Config} on an
  /// unknown codec or malformed level (availability is checked by the
  /// writer so its error can name the remedy).
  [[nodiscard]] trace::BinaryWriterOptions writer_options() const;

  /// Applies --max-memory/--deadline to `governor`. Only valid when the
  /// governor flags were registered.
  void configure(Governor& governor) const;

  /// True when any metrics export was requested (the tool should build an
  /// obs::Registry).
  [[nodiscard]] bool wants_registry() const {
    return !metrics_json->empty() || !trace_spans->empty();
  }

  /// Writes the requested export files; empty paths are skipped.
  void write(const obs::Registry& registry) const {
    if (!metrics_json->empty()) registry.write_metrics_file(*metrics_json);
    if (!trace_spans->empty()) registry.write_spans_file(*trace_spans);
  }
};

/// The cache-geometry flag block shared by dinerosim and tdtune: L1
/// geometry and policies, optional L2, virtual->physical page mapping,
/// and the Modify-handling switch. Canonical spelling for the
/// replacement policy is --repl (matching the sweep-spec key); its old
/// deprecated alias has been removed after the one-release warning
/// window (docs/RULES.md).
struct CacheFlags {
  const std::uint64_t* size = nullptr;
  const std::uint64_t* block = nullptr;
  const std::uint64_t* assoc = nullptr;
  const std::string* repl = nullptr;
  const std::string* prefetch = nullptr;
  const std::uint64_t* l2_size = nullptr;
  const std::uint64_t* l2_assoc = nullptr;
  const std::uint64_t* l2_block = nullptr;
  const std::string* page_policy = nullptr;
  const std::uint64_t* page_size = nullptr;
  const std::uint64_t* page_frames = nullptr;
  const std::uint64_t* page_seed = nullptr;
  const bool* modify_rw = nullptr;

  static CacheFlags add(FlagParser& flags);

  /// L1 geometry without policies (matches the old dinerosim behaviour of
  /// applying --repl/--prefetch only where they are meaningful).
  [[nodiscard]] cache::CacheConfig l1_geometry() const;

  /// L1 geometry plus replacement/prefetch policies.
  [[nodiscard]] cache::CacheConfig l1() const;

  /// The optional L2 level; empty when --l2-size is 0.
  [[nodiscard]] std::vector<cache::CacheConfig> extra_levels() const;

  [[nodiscard]] cache::PagePolicy parsed_page_policy() const;
  [[nodiscard]] cache::PageMapSpec page_spec() const;
  [[nodiscard]] cache::SimOptions sim_options() const;
};

/// Parses "lru" | "fifo" | "random" | "rr" | "round-robin".
[[nodiscard]] cache::ReplacementPolicy parse_replacement(
    const std::string& text);

/// Parses "identity" | "first-touch" | "random".
[[nodiscard]] cache::PagePolicy parse_page_policy(const std::string& text);

/// Parses a byte count with an optional k/m/g suffix (binary units,
/// case-insensitive): "64m" -> 67108864, "4096" -> 4096. Throws
/// Error{Config} on anything else; 0 means "unlimited".
[[nodiscard]] std::uint64_t parse_byte_size(const std::string& text,
                                            const char* flag);

/// Parses a non-negative duration in seconds ("2.5", "0"). Throws
/// Error{Config} on anything else.
[[nodiscard]] double parse_seconds(const std::string& text, const char* flag);

/// The exit-code contract's degraded rung: a run that completed but lost
/// something on the way — a recovered worker, a deadline-truncated
/// stream — must exit at least 1 even when the diag engine is clean.
[[nodiscard]] inline int finalize_exit(int diag_exit, bool degraded) noexcept {
  return degraded && diag_exit < 1 ? 1 : diag_exit;
}

/// One tool's identity and body, the unit run_tool dispatches on.
struct ToolSpec {
  const char* name;    ///< diagnostic prefix ("dinerosim")
  /// The tdt-rpc/1 op a daemon serves this tool as; nullptr for tools
  /// that only run locally (gtracer writes trace files where it runs).
  const char* rpc_op;
  /// The tool body. All output must go through `io` — that is the whole
  /// contract that makes a daemon-served run byte-identical.
  int (*run)(const service::ToolIO& io, int argc, char** argv);
};

/// Runs `body` against `io` under the shared fatal-error contract: a
/// tdt::Error escaping it prints "<tool>: <message>" on io.err and
/// yields exit code 2; after the body, io.out is flushed and checked —
/// a failed write (EPIPE, ENOSPC) prints a diagnostic on io.err and
/// yields exit code 2. Both run_tool backends and the tdtd worker wrap
/// tool bodies in exactly this, so failure output cannot drift between
/// them.
int run_tool_body(const char* tool, const service::ToolIO& io,
                  const std::function<int()>& body);

/// Every tool's main() is one line of this. Picks the backend: without
/// --connect, runs spec.run locally against the process streams
/// (SIGPIPE ignored so a downstream `head -1` surfaces as a stream
/// error instead of killing the process). With --connect <socket>, the
/// flag is stripped from argv, the remaining arguments travel to the
/// tdtd daemon as op spec.rpc_op, and the reply's captured
/// stdout/stderr bytes and exit code are relayed verbatim.
int run_tool(const ToolSpec& spec, int argc, char** argv);

/// Prints each warning as "<tool>: warning: <text>" on `err`.
void print_warnings(std::FILE* err, const char* tool,
                    const std::vector<std::string>& warnings);

}  // namespace tdt::tools
