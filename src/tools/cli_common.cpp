#include "tools/cli_common.hpp"

#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "service/client.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace tdt::tools {

CommonFlags CommonFlags::add(FlagParser& flags, CommonFlagChoices choices) {
  CommonFlags f;
  if (choices.error_policy) {
    f.on_error = flags.add_string(
        "on-error", "strict", "malformed-input policy: strict|skip|repair");
    f.max_errors = flags.add_uint(
        "max-errors", DiagEngine::kDefaultMaxErrors,
        "give up after this many recovered errors (0 = unlimited)");
  }
  if (choices.jobs) {
    f.jobs = flags.add_uint(
        "jobs", 1, "worker threads for the one-pass pipeline (1 = inline; "
                   "results are identical at any job count)");
    f.worker_timeout = flags.add_string(
        "worker-timeout", "0",
        "seconds without worker progress before the watchdog declares it "
        "stalled and re-simulates its share sequentially (0 = off; "
        "recovery exits 1)");
  }
  if (choices.governor) {
    f.max_memory = flags.add_string(
        "max-memory", "0",
        "budget for accounted in-memory state, bytes with optional k/m/g "
        "suffix (0 = unlimited; exhaustion of a hard requirement exits 2)");
    f.deadline = flags.add_string(
        "deadline", "0",
        "wall-clock seconds before the run stops reading and reports "
        "partial results with exit code 1 (0 = none)");
  }
  if (choices.ingest) {
    f.ingest = flags.add_string(
        "ingest", "auto",
        "text-trace ingest backend: auto|mmap|stream|overlapped (auto = "
        "mmap regular files, overlapped reads for pipes/stdin)");
  }
  if (choices.compress) {
    f.compress = flags.add_string(
        "compress", "",
        "write TDTB output as the v3 framed container with this frame "
        "codec: zstd|lz4|none[:level] (empty = plain v2; none stores "
        "frames verbatim but keeps the seekable index for --jobs decode)");
  }
  f.fault_spec = flags.add_string(
      "fault-spec", "",
      "deterministic fault injection spec, e.g. \"seed=7;worker.stall:1:2\" "
      "(see docs/robustness.md; overrides TDT_FAULT_SPEC)");
  f.metrics_json = flags.add_string(
      "metrics-json", "",
      "write a tdt-metrics/1 JSON metrics snapshot to this file");
  f.trace_spans = flags.add_string(
      "trace-spans", "",
      "write a Chrome trace_event span file (Perfetto-loadable) here");
  f.progress = flags.add_bool(
      "progress", false, "periodic one-line records/s heartbeat on stderr");
  if (choices.connect) {
    // Registered for --help only: run_tool strips --connect from argv
    // before the body's parser ever sees it (the value below is never
    // read).
    flags.add_string(
        "connect", "",
        "route this run through the tdtd daemon at this unix socket "
        "(tdt-rpc/1); output and exit code match a local run");
  }
  return f;
}

DiagEngine CommonFlags::make_diags(std::ostream* echo) const {
  internal_check(on_error != nullptr, "tool did not register --on-error");
  DiagEngine diags(parse_error_policy(*on_error), *max_errors);
  diags.set_echo(echo);
  return diags;
}

void CommonFlags::arm_faults() const {
  fault::FaultInjector::install_from_env();
  if (fault_spec != nullptr && !fault_spec->empty()) {
    fault::FaultInjector::install(*fault_spec);
  }
}

trace::IngestMode CommonFlags::ingest_mode() const {
  if (ingest == nullptr || *ingest == "auto") return trace::IngestMode::Auto;
  if (*ingest == "mmap") return trace::IngestMode::Mmap;
  if (*ingest == "stream") return trace::IngestMode::Stream;
  if (*ingest == "overlapped") return trace::IngestMode::Overlapped;
  throw Error(ErrorKind::Config,
              "bad --ingest '" + *ingest +
                  "' (expected auto|mmap|stream|overlapped)");
}

trace::BinaryWriterOptions CommonFlags::writer_options() const {
  trace::BinaryWriterOptions options;
  if (!wants_compress()) return options;
  const trace::CompressSpec spec = trace::parse_compress_spec(*compress);
  options.version = trace::kTdtbVersionFramed;
  options.codec = spec.codec;
  options.level = spec.level;
  return options;
}

double CommonFlags::worker_timeout_seconds() const {
  if (worker_timeout == nullptr) return 0;
  return parse_seconds(*worker_timeout, "--worker-timeout");
}

void CommonFlags::configure(Governor& governor) const {
  internal_check(max_memory != nullptr,
                 "tool did not register the governor flags");
  governor.memory.set_limit(parse_byte_size(*max_memory, "--max-memory"));
  governor.set_deadline(parse_seconds(*deadline, "--deadline"));
}

CacheFlags CacheFlags::add(FlagParser& flags) {
  CacheFlags f;
  f.size = flags.add_uint("size", 32768, "cache bytes");
  f.block = flags.add_uint("block", 32, "block bytes");
  f.assoc =
      flags.add_uint("assoc", 1, "ways per set (0 = fully associative)");
  f.repl = flags.add_string("repl", "lru", "lru|fifo|random|rr");
  f.prefetch = flags.add_string(
      "prefetch", "none", "L1 prefetch: none|always|miss|tagged");
  f.l2_size = flags.add_uint(
      "l2-size", 0, "add an L2 level of this many bytes (0 = none)");
  f.l2_assoc = flags.add_uint("l2-assoc", 8, "L2 ways per set");
  f.l2_block = flags.add_uint("l2-block", 64, "L2 block bytes");
  f.page_policy = flags.add_string(
      "page-policy", "identity",
      "virtual->physical mapping: identity|first-touch|random");
  f.page_size = flags.add_uint("page-size", 4096, "page bytes");
  f.page_frames = flags.add_uint(
      "page-frames", 0, "physical frame count (0 = unbounded)");
  f.page_seed = flags.add_uint("page-seed", 1, "random page policy seed");
  f.modify_rw = flags.add_bool(
      "modify-read-write", false,
      "count Modify as a read followed by a write (DineroIV style)");
  return f;
}

cache::CacheConfig CacheFlags::l1_geometry() const {
  cache::CacheConfig config;
  config.size = *size;
  config.block_size = *block;
  config.assoc = static_cast<std::uint32_t>(*assoc);
  return config;
}

cache::CacheConfig CacheFlags::l1() const {
  cache::CacheConfig config = l1_geometry();
  config.replacement = parse_replacement(*repl);
  config.prefetch = cache::parse_prefetch_policy(*prefetch);
  return config;
}

std::vector<cache::CacheConfig> CacheFlags::extra_levels() const {
  std::vector<cache::CacheConfig> levels;
  if (*l2_size != 0) {
    cache::CacheConfig l2;
    l2.name = "L2";
    l2.size = *l2_size;
    l2.assoc = static_cast<std::uint32_t>(*l2_assoc);
    l2.block_size = *l2_block;
    levels.push_back(l2);
  }
  return levels;
}

cache::PagePolicy CacheFlags::parsed_page_policy() const {
  return parse_page_policy(*page_policy);
}

cache::PageMapSpec CacheFlags::page_spec() const {
  cache::PageMapSpec spec;
  spec.policy = parsed_page_policy();
  spec.page_size = *page_size;
  spec.frames = *page_frames;
  spec.seed = *page_seed;
  return spec;
}

cache::SimOptions CacheFlags::sim_options() const {
  cache::SimOptions options;
  options.modify_is_read_write = *modify_rw;
  return options;
}

cache::ReplacementPolicy parse_replacement(const std::string& text) {
  if (text == "round-robin") return cache::ReplacementPolicy::RoundRobin;
  return cache::parse_replacement_policy(text);
}

cache::PagePolicy parse_page_policy(const std::string& text) {
  if (text == "identity") return cache::PagePolicy::Identity;
  if (text == "first-touch") return cache::PagePolicy::FirstTouch;
  if (text == "random") return cache::PagePolicy::Random;
  throw_config_error("unknown page policy '" + text +
                     "' (identity|first-touch|random)");
}

std::uint64_t parse_byte_size(const std::string& text, const char* flag) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || errno == ERANGE) {
    throw_config_error(std::string(flag) + ": bad byte count '" + text + "'");
  }
  std::uint64_t scale = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': scale = 1ull << 10; break;
      case 'm': scale = 1ull << 20; break;
      case 'g': scale = 1ull << 30; break;
      default:
        throw_config_error(std::string(flag) + ": bad size suffix in '" +
                           text + "' (use k, m, or g)");
    }
    if (end[1] != '\0') {
      throw_config_error(std::string(flag) + ": trailing junk in '" + text +
                         "'");
    }
  }
  if (value > UINT64_MAX / scale) {
    throw_config_error(std::string(flag) + ": '" + text + "' overflows");
  }
  return value * scale;
}

double parse_seconds(const std::string& text, const char* flag) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      !(value >= 0)) {
    throw_config_error(std::string(flag) + ": bad duration '" + text +
                       "' (non-negative seconds)");
  }
  return value;
}

int run_tool_body(const char* tool, const service::ToolIO& io,
                  const std::function<int()>& body) {
  int code;
  try {
    code = body();
  } catch (const Error& e) {
    std::fprintf(io.err, "%s: %s\n", tool, e.what());
    return 2;
  }
  // The report goes to io.out through buffered stdio; an EPIPE/ENOSPC on
  // the final flush is the last chance to notice the output never
  // arrived (docs/robustness.md: exit 2, diagnostic on the error
  // stream).
  if (std::fflush(io.out) != 0 || std::ferror(io.out) != 0) {
    std::fprintf(io.err, "%s: error: writing to stdout failed (broken pipe "
                         "or disk full?); output is incomplete\n", tool);
    return 2;
  }
  return code;
}

int run_tool(const ToolSpec& spec, int argc, char** argv) {
  // A downstream reader that goes away (dinerosim | head) must surface
  // as a write error we can report, not a silent SIGPIPE death.
  std::signal(SIGPIPE, SIG_IGN);
  const service::ToolIO io = service::standard_io();

  // Backend selection happens before the body's own parser runs: strip
  // --connect out of argv and keep everything else, in order, both as a
  // local argv and as the argument vector a daemon request would carry.
  std::string socket;
  std::vector<char*> local_argv{argv[0]};
  std::vector<std::string> forward;
  bool verbatim = false;  // a bare "--" ends flag interpretation
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--") verbatim = true;
    if (!verbatim && arg == "--connect") {
      if (i + 1 >= argc) {
        std::fprintf(io.err, "%s: --connect needs a socket path\n", spec.name);
        return 2;
      }
      socket = argv[++i];
      continue;
    }
    if (!verbatim && arg.rfind("--connect=", 0) == 0) {
      socket = std::string(arg.substr(10));
      continue;
    }
    local_argv.push_back(argv[i]);
    forward.emplace_back(arg);
  }

  if (socket.empty()) {
    const int local_argc = static_cast<int>(local_argv.size());
    return run_tool_body(spec.name, io, [&] {
      return spec.run(io, local_argc, local_argv.data());
    });
  }
  if (spec.rpc_op == nullptr) {
    std::fprintf(io.err, "%s: this tool runs locally; --connect is not "
                         "supported\n", spec.name);
    return 2;
  }
  return run_tool_body(spec.name, io, [&] {
    service::Session session(socket);
    return session.run_tool(spec.rpc_op, std::move(forward), io.out, io.err);
  });
}

void print_warnings(std::FILE* err, const char* tool,
                    const std::vector<std::string>& warnings) {
  for (const std::string& w : warnings) {
    std::fprintf(err, "%s: warning: %s\n", tool, w.c_str());
  }
}

}  // namespace tdt::tools
