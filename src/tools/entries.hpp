// The tool bodies as linkable entry points. Each tool's .cpp defines
// its <name>_run function and, unless TDT_TOOL_LIBRARY is defined, a
// main() that wraps it in run_tool. Compiling the same sources a second
// time with TDT_TOOL_LIBRARY produces tdt_tools_lib: the identical
// bodies without mains, which is what tdtd, the service tests, and the
// benchmarks link — a daemon-served request and a standalone run
// execute the same machine code by construction.
#pragma once

#include "tdt/service.hpp"

namespace tdt::tools {

int gtracer_run(const service::ToolIO& io, int argc, char** argv);
int dinerosim_run(const service::ToolIO& io, int argc, char** argv);
int tracediff_run(const service::ToolIO& io, int argc, char** argv);
int traceinfo_run(const service::ToolIO& io, int argc, char** argv);
int tdtune_run(const service::ToolIO& io, int argc, char** argv);

}  // namespace tdt::tools
