// Kernel source parser: a C subset large enough to express the paper's
// listings nearly verbatim, compiled into the tracer's mini-language AST.
// With this, `gtracer --source kernel.c` plays the role of "compile with
// -g and run under Gleipnir" for user-written kernels.
//
// Supported subset:
//   * struct definitions, `typedef struct {...} Name;`, anonymous struct
//     fields (named after the field, as the paper's Listing 6 uses)
//   * global and local declarations with initializers, multi-declarators
//   * `void f(T a, U b)` functions, `int main(...)`; array parameters
//     decay to pointers
//   * assignments (=, +=), increment (i++), for loops, function calls,
//     `return`, GLEIPNIR_START/STOP_INSTRUMENTATION
//   * expressions with C precedence, comparisons, casts `(int)e`,
//     `sizeof(T)`, address-of, pointer `->` and `[]` access
//   * `p = malloc(N * sizeof(T));` / `free(p);`
//   * `#define NAME <integer>` constants (simple object-like macros)
#pragma once

#include <string>
#include <string_view>

#include "layout/type.hpp"
#include "tracer/ast.hpp"

namespace tdt::tracer {

/// Parses kernel source into a Program, registering its types in `types`.
/// Throws Error{Parse} / Error{Semantic} on unsupported or malformed
/// constructs.
[[nodiscard]] Program parse_kernel(std::string_view source,
                                   layout::TypeTable& types);

/// Reads and parses a kernel source file. Throws Error{Io} when the file
/// cannot be read.
[[nodiscard]] Program parse_kernel_file(const std::string& path,
                                        layout::TypeTable& types);

}  // namespace tdt::tracer
