// Abstract syntax for the synthetic tracer's mini-language: a typed
// C subset (declarations, assignments, for-loops, calls) sufficient to
// express every kernel in the paper's listings. The interpreter
// (interp.hpp) executes these programs and emits one Gleipnir trace
// record per memory access, which substitutes for running a compiled
// binary under Valgrind+Gleipnir.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "layout/type.hpp"

namespace tdt::tracer {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One selector step in an l-value: `.field`, `[index]`, or `->field`
/// (pointer dereference plus field selection, as in
/// `lS2[lI].mRarelyUsed->mY`).
struct LValueStep {
  enum class Kind : std::uint8_t { Field, Index, Arrow };

  Kind kind = Kind::Field;
  std::string field;  // Field / Arrow
  ExprPtr index;      // Index

  LValueStep(Kind k, std::string f) : kind(k), field(std::move(f)) {}
  explicit LValueStep(ExprPtr idx)
      : kind(Kind::Index), index(std::move(idx)) {}
};

/// An assignable location: variable name plus selector chain.
/// Move-only because index expressions own subtrees.
struct LValue {
  std::string name;
  std::vector<LValueStep> steps;

  LValue() = default;
  explicit LValue(std::string n) : name(std::move(n)) {}
  LValue(LValue&&) noexcept = default;
  LValue& operator=(LValue&&) noexcept = default;

  /// Appends `.field`.
  LValue&& field(std::string f) &&;
  /// Appends `[index]`.
  LValue&& index(ExprPtr idx) &&;
  /// Appends `[constant]`.
  LValue&& index(std::int64_t idx) &&;
  /// Appends `->field`.
  LValue&& arrow(std::string f) &&;

  /// Deep copy (expression subtrees cloned).
  [[nodiscard]] LValue clone() const;
};

/// Expression node.
struct Expr {
  enum class Op : std::uint8_t {
    IntLit,    ///< integer constant
    RealLit,   ///< floating constant
    Read,      ///< read of an l-value (emits Load records)
    AddrOf,    ///< address of an l-value (no memory access; array decay)
    Add, Sub, Mul, Div, Mod,
    Lt, Le, Gt, Ge, Eq, Ne,
    Neg,
    CastInt,   ///< (int) e
    CastReal,  ///< (double) e
  };

  Op op = Op::IntLit;
  std::int64_t int_value = 0;
  double real_value = 0;
  LValue place;  // Read / AddrOf
  ExprPtr lhs;
  ExprPtr rhs;

  [[nodiscard]] ExprPtr clone() const;
};

// --- expression builders ---------------------------------------------

/// Integer literal.
ExprPtr lit(std::int64_t v);
/// Floating literal.
ExprPtr real_lit(double v);
/// Read of a bare variable.
ExprPtr rd(std::string name);
/// Read of an l-value.
ExprPtr rd(LValue place);
/// Address-of (array decay / pointer formation).
ExprPtr addr(LValue place);
/// Binary operation.
ExprPtr bin(Expr::Op op, ExprPtr l, ExprPtr r);
ExprPtr add(ExprPtr l, ExprPtr r);
ExprPtr sub(ExprPtr l, ExprPtr r);
ExprPtr mul(ExprPtr l, ExprPtr r);
ExprPtr div(ExprPtr l, ExprPtr r);
ExprPtr mod(ExprPtr l, ExprPtr r);
ExprPtr lt(ExprPtr l, ExprPtr r);
ExprPtr cast_int(ExprPtr e);
ExprPtr cast_real(ExprPtr e);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node.
struct Stmt {
  enum class Kind : std::uint8_t {
    Block,       ///< { body... }
    DeclLocal,   ///< type name; with optional initializer
    Assign,      ///< place = value  (Store; Modify when `compound`)
    For,         ///< for (init; cond; step) body
    Call,        ///< callee(args...)
    StartInstr,  ///< GLEIPNIR_START_INSTRUMENTATION
    StopInstr,   ///< GLEIPNIR_STOP_INSTRUMENTATION
    HeapAlloc,   ///< place = malloc(count * sizeof(elem_type))
    HeapFree,    ///< free(place)
    If,          ///< if (cond) body [else else_body]
    While,       ///< while (cond) body
  };

  Kind kind = Kind::Block;
  std::vector<StmtPtr> body;           // Block / For body
  std::string name;                    // DeclLocal var name / Call callee
  layout::TypeId type = layout::kInvalidType;  // DeclLocal / HeapAlloc elem
  LValue place;                        // Assign / HeapAlloc / HeapFree target
  ExprPtr value;                       // Assign RHS / DeclLocal init
  bool compound = false;               // Assign: read-modify-write
  StmtPtr init;                        // For
  ExprPtr cond;                        // For
  StmtPtr step;                        // For
  std::vector<ExprPtr> args;           // Call
  ExprPtr count;                       // HeapAlloc element count
  StmtPtr else_body;                   // If
};

// --- statement builders ------------------------------------------------

StmtPtr block(std::vector<StmtPtr> body);
StmtPtr decl_local(std::string name, layout::TypeId type,
                   ExprPtr init = nullptr);
StmtPtr assign(LValue place, ExprPtr value);
/// Read-modify-write: `place = place + value` traced as a Modify.
StmtPtr modify(LValue place, ExprPtr value);
StmtPtr for_loop(StmtPtr init, ExprPtr cond, StmtPtr step, StmtPtr body);
/// Canonical counted loop: for (iter = 0; iter < bound; iter++) body.
StmtPtr count_loop(std::string iter, ExprPtr bound, StmtPtr body);
StmtPtr call(std::string callee, std::vector<ExprPtr> args);
StmtPtr start_instr();
StmtPtr stop_instr();
StmtPtr heap_alloc(LValue place, layout::TypeId elem_type, ExprPtr count);
StmtPtr heap_free(LValue place);
/// if (cond) then_body [else else_body]
StmtPtr if_stmt(ExprPtr cond, StmtPtr then_body, StmtPtr else_body = nullptr);
/// while (cond) body
StmtPtr while_loop(ExprPtr cond, StmtPtr body);

/// A function definition.
struct FunctionDef {
  std::string name;
  struct Param {
    std::string name;
    layout::TypeId type = layout::kInvalidType;
  };
  std::vector<Param> params;
  StmtPtr body;
};

/// A whole program: globals + functions; execution starts at `main`.
struct Program {
  struct Global {
    std::string name;
    layout::TypeId type = layout::kInvalidType;
  };
  std::vector<Global> globals;
  std::vector<FunctionDef> functions;

  [[nodiscard]] const FunctionDef* find_function(std::string_view name) const;
};

}  // namespace tdt::tracer
