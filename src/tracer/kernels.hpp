// Kernel library: mini-language programs reproducing every listing in the
// paper plus additional workloads used by the examples and ablation
// benches. Each factory registers the types it needs in the caller's
// TypeTable (reusing structs already defined there) and returns a Program
// ready for the Interpreter.
#pragma once

#include <cstdint>

#include "layout/type.hpp"
#include "tracer/ast.hpp"

namespace tdt::tracer {

/// Paper Listing 1/2: global struct array + locals, function call `foo`.
/// Demonstrates every metadata feature of the trace format (GV/GS/LV/LS,
/// frames, parameter passing).
Program make_listing1(layout::TypeTable& types);

/// Paper Listing 4 ("1A" in Fig 5): structure-of-arrays walk.
///   struct MyStructOfArrays { int mX[len]; double mY[len]; } lSoA;
///   for i: lSoA.mX[i] = i; lSoA.mY[i] = i;
Program make_t1_soa(layout::TypeTable& types, std::int64_t len);

/// Paper Listing 3 ("1B"): the hand-written array-of-structures version.
///   struct MyStruct { int mX; double mY; } lAoS[len];
Program make_t1_aos(layout::TypeTable& types, std::int64_t len);

/// Paper Listing 6 ("2A"): nested hot/cold struct accessed inline.
Program make_t2_inline(layout::TypeTable& types, std::int64_t len);

/// Paper Listing 7 ("2B"): hand-outlined version with a pointer to a
/// separate cold-storage pool (extra indirection loads).
Program make_t2_outlined(layout::TypeTable& types, std::int64_t len);

/// Paper Listing 9 ("3A"): contiguous array walk.
Program make_t3_contiguous(layout::TypeTable& types, std::int64_t len);

/// Paper Listing 10 ("3B"): hand-strided set-pinning walk.
/// Index formula: (i/IPL)*(sets*IPL) + (i%IPL), IPL = cacheline/sizeof(int).
Program make_t3_strided(layout::TypeTable& types, std::int64_t len,
                        std::int64_t sets, std::int64_t cacheline);

/// Dense square matmul C += A*B on double[n][n] globals; `ikj` selects the
/// cache-friendlier loop order for the layout-study example.
Program make_matmul(layout::TypeTable& types, std::int64_t n, bool ikj);

/// Row-major array swept in row or column order (classic stride study).
Program make_row_col(layout::TypeTable& types, std::int64_t rows,
                     std::int64_t cols, bool column_order);

/// Heap linked-list build + pointer-chasing walk. `shuffled` links nodes
/// in a pseudo-random order (seeded) to destroy spatial locality —
/// exercises the dynamic-structure extension of the rule engine.
Program make_linked_list(layout::TypeTable& types, std::int64_t nodes,
                         bool shuffled, std::uint64_t seed = 42);

}  // namespace tdt::tracer
