#include "tracer/kernels.hpp"

#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tdt::tracer {
namespace {

using layout::PendingField;
using layout::TypeId;
using layout::TypeTable;

/// Defines `name` if absent, otherwise returns the existing definition so
/// kernels can share one TypeTable — after verifying the existing body
/// matches (a kernel re-instantiated with a different LEN must not pick
/// up the old layout silently).
TypeId ensure_struct(TypeTable& types, std::string name,
                     std::vector<PendingField> fields) {
  if (const TypeId existing = types.find_struct(name);
      existing != layout::kInvalidType) {
    const auto current = types.fields(existing);
    bool same = current.size() == fields.size();
    for (std::size_t i = 0; same && i < fields.size(); ++i) {
      same = current[i].name == fields[i].name &&
             current[i].type == fields[i].type;
    }
    if (!same) {
      tdt::throw_semantic_error(
          "struct '" + name +
          "' already defined with a different body; use a fresh TypeTable "
          "for kernels with different size parameters");
    }
    return existing;
  }
  return types.define_struct(std::move(name), std::move(fields));
}

LValue lv(std::string name) { return LValue(std::move(name)); }

}  // namespace

Program make_listing1(TypeTable& types) {
  const TypeId t_int = types.int_type();
  const TypeId t_double = types.double_type();
  const TypeId type_a = ensure_struct(
      types, "_typeA",
      {{"dl", t_double}, {"myArray", types.array_of(t_int, 10)}});

  Program prog;
  prog.globals = {
      {"glStruct", type_a},
      {"glStructArray", types.array_of(type_a, 10)},
      {"glScalar", t_int},
      {"glArray", types.array_of(t_int, 10)},
  };

  // void foo(struct _typeA StrcParam[]) — array parameter decays to pointer.
  FunctionDef foo;
  foo.name = "foo";
  foo.params = {{"StrcParam", types.pointer_to(type_a)}};
  {
    std::vector<StmtPtr> body;
    body.push_back(decl_local("i", t_int));
    std::vector<StmtPtr> loop;
    loop.push_back(assign(lv("glStructArray").index(rd("i")).field("dl"),
                          rd("glScalar")));
    loop.push_back(assign(lv("glStructArray")
                              .index(rd("i"))
                              .field("myArray")
                              .index(rd("i")),
                          rd(lv("glArray").index(add(rd("i"), lit(1))))));
    loop.push_back(assign(lv("StrcParam").index(rd("i")).field("dl"),
                          rd(lv("glArray").index(rd("i")))));
    body.push_back(count_loop("i", lit(2), block(std::move(loop))));
    foo.body = block(std::move(body));
  }

  FunctionDef main_fn;
  main_fn.name = "main";
  {
    std::vector<StmtPtr> body;
    body.push_back(start_instr());
    body.push_back(decl_local("lcStrcArray", types.array_of(type_a, 5)));
    body.push_back(decl_local("i", t_int));
    body.push_back(decl_local("lcScalar", t_int));
    body.push_back(decl_local("lcArray", types.array_of(t_int, 10)));
    body.push_back(assign(lv("glScalar"), lit(321)));
    body.push_back(assign(lv("lcScalar"), lit(123)));
    std::vector<StmtPtr> loop;
    loop.push_back(
        assign(lv("lcArray").index(rd("i")), rd("glScalar")));
    body.push_back(count_loop("i", lit(2), block(std::move(loop))));
    std::vector<ExprPtr> args;
    args.push_back(rd("lcStrcArray"));  // array decays to pointer
    body.push_back(call("foo", std::move(args)));
    body.push_back(stop_instr());
    main_fn.body = block(std::move(body));
  }

  prog.functions.push_back(std::move(foo));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_t1_soa(TypeTable& types, std::int64_t len) {
  const TypeId t_int = types.int_type();
  const TypeId t_double = types.double_type();
  const TypeId soa = ensure_struct(
      types, "MyStructOfArrays",
      {{"mX", types.array_of(t_int, static_cast<std::uint64_t>(len))},
       {"mY", types.array_of(t_double, static_cast<std::uint64_t>(len))}});

  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("lSoA", soa));
  body.push_back(decl_local("lI", t_int));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(assign(lv("lSoA").field("mX").index(rd("lI")),
                        cast_int(rd("lI"))));
  loop.push_back(assign(lv("lSoA").field("mY").index(rd("lI")),
                        cast_real(rd("lI"))));
  body.push_back(count_loop("lI", lit(len), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_t1_aos(TypeTable& types, std::int64_t len) {
  const TypeId t_int = types.int_type();
  const TypeId t_double = types.double_type();
  const TypeId elem =
      ensure_struct(types, "MyStruct", {{"mX", t_int}, {"mY", t_double}});

  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local(
      "lAoS", types.array_of(elem, static_cast<std::uint64_t>(len))));
  body.push_back(decl_local("lI", t_int));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(assign(lv("lAoS").index(rd("lI")).field("mX"),
                        cast_int(rd("lI"))));
  loop.push_back(assign(lv("lAoS").index(rd("lI")).field("mY"),
                        cast_real(rd("lI"))));
  body.push_back(count_loop("lI", lit(len), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_t2_inline(TypeTable& types, std::int64_t len) {
  const TypeId t_int = types.int_type();
  const TypeId t_double = types.double_type();
  const TypeId rare =
      ensure_struct(types, "mRarelyUsed", {{"mY", t_double}, {"mZ", t_int}});
  const TypeId inline_struct = ensure_struct(
      types, "MyInlineStruct",
      {{"mFrequentlyUsed", t_int}, {"mRarelyUsed", rare}});

  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local(
      "lS1", types.array_of(inline_struct, static_cast<std::uint64_t>(len))));
  body.push_back(decl_local("lI", t_int));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(assign(lv("lS1").index(rd("lI")).field("mFrequentlyUsed"),
                        rd("lI")));
  loop.push_back(assign(
      lv("lS1").index(rd("lI")).field("mRarelyUsed").field("mY"), rd("lI")));
  loop.push_back(assign(
      lv("lS1").index(rd("lI")).field("mRarelyUsed").field("mZ"), rd("lI")));
  body.push_back(count_loop("lI", lit(len), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_t2_outlined(TypeTable& types, std::int64_t len) {
  const TypeId t_int = types.int_type();
  const TypeId t_double = types.double_type();
  const TypeId rare =
      ensure_struct(types, "RarelyUsed", {{"mY", t_double}, {"mZ", t_int}});
  const TypeId outlined = ensure_struct(
      types, "MyOutlinedStruct",
      {{"mFrequentlyUsed", t_int}, {"mRarelyUsed", types.pointer_to(rare)}});

  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  // Declaration order follows Listing 7: storage pool first, then lS2.
  body.push_back(decl_local(
      "lStorageForRarelyUsed",
      types.array_of(rare, static_cast<std::uint64_t>(len))));
  body.push_back(decl_local(
      "lS2", types.array_of(outlined, static_cast<std::uint64_t>(len))));
  body.push_back(decl_local("lI", t_int));
  // Pointer setup happens before instrumentation starts (untraced).
  std::vector<StmtPtr> setup;
  setup.push_back(assign(lv("lS2").index(rd("lI")).field("mRarelyUsed"),
                         add(rd("lStorageForRarelyUsed"), rd("lI"))));
  body.push_back(count_loop("lI", lit(len), block(std::move(setup))));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(assign(lv("lS2").index(rd("lI")).field("mFrequentlyUsed"),
                        rd("lI")));
  loop.push_back(assign(
      lv("lS2").index(rd("lI")).field("mRarelyUsed").arrow("mY"), rd("lI")));
  loop.push_back(assign(
      lv("lS2").index(rd("lI")).field("mRarelyUsed").arrow("mZ"), rd("lI")));
  body.push_back(count_loop("lI", lit(len), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_t3_contiguous(TypeTable& types, std::int64_t len) {
  const TypeId t_int = types.int_type();
  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local(
      "lContiguousArray",
      types.array_of(t_int, static_cast<std::uint64_t>(len))));
  body.push_back(decl_local("lI", t_int));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  loop.push_back(assign(lv("lContiguousArray").index(rd("lI")), rd("lI")));
  body.push_back(count_loop("lI", lit(len), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_t3_strided(TypeTable& types, std::int64_t len, std::int64_t sets,
                        std::int64_t cacheline) {
  const TypeId t_int = types.int_type();
  const std::int64_t ipl = cacheline / 4;  // ITEMSPERLINE = CACHELINE/sizeof(int)
  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local(
      "lSetHashingArray",
      types.array_of(t_int, static_cast<std::uint64_t>(len * sets))));
  body.push_back(decl_local("lITEMSPERLINE", t_int));
  body.push_back(decl_local("lI", t_int));
  // Initialized before instrumentation, so the init store is untraced but
  // every in-loop read appears (Fig 9's repeated ITEMSPERLINE loads).
  body.push_back(assign(lv("lITEMSPERLINE"), lit(ipl)));
  body.push_back(start_instr());
  std::vector<StmtPtr> loop;
  // lSetHashingArray[(lI/IPL)*(sets*IPL) + (lI%IPL)] = lI;
  auto index_formula =
      add(mul(div(rd("lI"), rd("lITEMSPERLINE")),
              mul(lit(sets), rd("lITEMSPERLINE"))),
          mod(rd("lI"), rd("lITEMSPERLINE")));
  loop.push_back(assign(
      lv("lSetHashingArray").index(std::move(index_formula)), rd("lI")));
  body.push_back(count_loop("lI", lit(len), block(std::move(loop))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_matmul(TypeTable& types, std::int64_t n, bool ikj) {
  const TypeId t_int = types.int_type();
  const TypeId t_double = types.double_type();
  const TypeId row = types.array_of(t_double, static_cast<std::uint64_t>(n));
  const TypeId mat = types.array_of(row, static_cast<std::uint64_t>(n));

  Program prog;
  prog.globals = {{"A", mat}, {"B", mat}, {"C", mat}};
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("i", t_int));
  body.push_back(decl_local("j", t_int));
  body.push_back(decl_local("k", t_int));
  body.push_back(start_instr());

  // C[i][j] += A[i][k] * B[k][j]
  auto update = [&]() {
    return modify(lv("C").index(rd("i")).index(rd("j")),
                  mul(rd(lv("A").index(rd("i")).index(rd("k"))),
                      rd(lv("B").index(rd("k")).index(rd("j")))));
  };

  StmtPtr nest;
  if (ikj) {
    std::vector<StmtPtr> inner;
    inner.push_back(update());
    auto j_loop = count_loop("j", lit(n), block(std::move(inner)));
    std::vector<StmtPtr> mid;
    mid.push_back(std::move(j_loop));
    auto k_loop = count_loop("k", lit(n), block(std::move(mid)));
    std::vector<StmtPtr> outer;
    outer.push_back(std::move(k_loop));
    nest = count_loop("i", lit(n), block(std::move(outer)));
  } else {
    std::vector<StmtPtr> inner;
    inner.push_back(update());
    auto k_loop = count_loop("k", lit(n), block(std::move(inner)));
    std::vector<StmtPtr> mid;
    mid.push_back(std::move(k_loop));
    auto j_loop = count_loop("j", lit(n), block(std::move(mid)));
    std::vector<StmtPtr> outer;
    outer.push_back(std::move(j_loop));
    nest = count_loop("i", lit(n), block(std::move(outer)));
  }
  body.push_back(std::move(nest));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_row_col(TypeTable& types, std::int64_t rows, std::int64_t cols,
                     bool column_order) {
  const TypeId t_int = types.int_type();
  const TypeId row = types.array_of(t_int, static_cast<std::uint64_t>(cols));
  const TypeId mat = types.array_of(row, static_cast<std::uint64_t>(rows));

  Program prog;
  prog.globals = {{"M", mat}};
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("i", t_int));
  body.push_back(decl_local("j", t_int));
  body.push_back(start_instr());
  std::vector<StmtPtr> inner;
  if (column_order) {
    // for j: for i: M[i][j] — stride `cols` ints between accesses.
    inner.push_back(assign(lv("M").index(rd("i")).index(rd("j")),
                           add(rd("i"), rd("j"))));
    auto i_loop = count_loop("i", lit(rows), block(std::move(inner)));
    std::vector<StmtPtr> outer;
    outer.push_back(std::move(i_loop));
    body.push_back(count_loop("j", lit(cols), block(std::move(outer))));
  } else {
    inner.push_back(assign(lv("M").index(rd("i")).index(rd("j")),
                           add(rd("i"), rd("j"))));
    auto j_loop = count_loop("j", lit(cols), block(std::move(inner)));
    std::vector<StmtPtr> outer;
    outer.push_back(std::move(j_loop));
    body.push_back(count_loop("i", lit(rows), block(std::move(outer))));
  }
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

Program make_linked_list(TypeTable& types, std::int64_t nodes, bool shuffled,
                         std::uint64_t seed) {
  const TypeId t_int = types.int_type();
  TypeId node_type = types.find_struct("ListNode");
  if (node_type == layout::kInvalidType) {
    node_type = types.forward_struct("ListNode");
    types.complete_struct(
        node_type,
        {{"value", t_int}, {"next", types.pointer_to(node_type)}});
  }
  const TypeId node_ptr = types.pointer_to(node_type);

  // Visit order: identity or a seeded Fisher-Yates shuffle.
  std::vector<std::int64_t> order(static_cast<std::size_t>(nodes));
  std::iota(order.begin(), order.end(), 0);
  if (shuffled) {
    Xoshiro256 rng(seed);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
  }

  Program prog;
  FunctionDef main_fn;
  main_fn.name = "main";
  std::vector<StmtPtr> body;
  body.push_back(decl_local("head", node_ptr));
  body.push_back(decl_local("p", node_ptr));
  body.push_back(decl_local("acc", t_int));
  body.push_back(decl_local("lI", t_int));
  body.push_back(heap_alloc(lv("head"), node_type, lit(nodes)));
  // Link pass (untraced): head[order[k]].next = &head[order[k+1]].
  for (std::int64_t k = 0; k + 1 < nodes; ++k) {
    body.push_back(assign(
        lv("head").index(lit(order[static_cast<std::size_t>(k)])).field("next"),
        add(rd("head"), lit(order[static_cast<std::size_t>(k + 1)]))));
  }
  body.push_back(assign(
      lv("head").index(lit(order[static_cast<std::size_t>(nodes - 1)])).field(
          "next"),
      lit(0)));
  body.push_back(assign(lv("p"), add(rd("head"), lit(order[0]))));
  body.push_back(assign(lv("acc"), lit(0)));
  body.push_back(start_instr());
  std::vector<StmtPtr> walk;
  walk.push_back(modify(lv("acc"), rd(lv("p").arrow("value"))));
  walk.push_back(assign(lv("p"), rd(lv("p").arrow("next"))));
  body.push_back(count_loop("lI", lit(nodes), block(std::move(walk))));
  body.push_back(stop_instr());
  main_fn.body = block(std::move(body));
  prog.functions.push_back(std::move(main_fn));
  return prog;
}

}  // namespace tdt::tracer
