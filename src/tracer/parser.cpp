#include "tracer/parser.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "layout/decl_parser.hpp"
#include "util/error.hpp"
#include "util/lexer.hpp"
#include "util/string_util.hpp"

namespace tdt::tracer {
namespace {

using layout::DeclParser;
using layout::PendingField;
using layout::TypeId;
using layout::TypeTable;

/// Extracts simple `#define NAME <integer>` macros. The lexer skips
/// `#`-lines as comments, so this prepass is the whole preprocessor.
std::unordered_map<std::string, std::int64_t> scan_defines(
    std::string_view source) {
  std::unordered_map<std::string, std::int64_t> defines;
  std::size_t pos = 0;
  while (pos < source.size()) {
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    const std::string_view line = trim(source.substr(pos, eol - pos));
    pos = eol + 1;
    if (!starts_with(line, "#define")) continue;
    const auto fields = split_ws(line);
    if (fields.size() != 3) continue;  // function-like or empty: ignore
    const auto value = parse_int(fields[2]);
    if (value.has_value() && is_identifier(fields[1])) {
      defines.emplace(std::string(fields[1]), *value);
    }
  }
  return defines;
}

/// Substitutes whole-word macro uses with their values, so defines work
/// everywhere the grammar wants an integer literal (array extents, loop
/// bounds, expressions).
std::string expand_defines(
    std::string_view source,
    const std::unordered_map<std::string, std::int64_t>& defines) {
  std::string out;
  out.reserve(source.size());
  std::size_t i = 0;
  while (i < source.size()) {
    // Leave #define lines intact (the lexer skips them as comments).
    if (source[i] == '#') {
      while (i < source.size() && source[i] != '\n') out += source[i++];
      continue;
    }
    if (is_ident_start(source[i])) {
      const std::size_t start = i;
      while (i < source.size() && is_ident_char(source[i])) ++i;
      const std::string_view word = source.substr(start, i - start);
      if (auto it = defines.find(std::string(word)); it != defines.end()) {
        out += std::to_string(it->second);
      } else {
        out += word;
      }
      continue;
    }
    out += source[i++];
  }
  return out;
}

class KernelParser {
 public:
  KernelParser(std::string_view source, TypeTable& types)
      : defines_(scan_defines(source)),
        expanded_(expand_defines(source, defines_)),
        lex_(expanded_),
        types_(&types),
        decls_(types) {}

  Program parse() {
    while (!lex_.at_end()) {
      parse_top_level();
    }
    if (program_.find_function("main") == nullptr) {
      throw_parse_error("kernel source has no main function");
    }
    return std::move(program_);
  }

 private:
  // --- type helpers -------------------------------------------------------

  bool peek_is_type() {
    const Token& t = lex_.peek();
    if (t.kind != TokKind::Ident) return false;
    if (t.text == "struct" || t.text == "const" || t.text == "typedef") {
      return true;
    }
    static constexpr std::string_view kKeywords[] = {
        "char", "short", "int", "long", "float",
        "double", "bool", "signed", "unsigned", "void"};
    for (std::string_view k : kKeywords) {
      if (t.text == k) return true;
    }
    return types_->find_struct(t.text) != layout::kInvalidType;
  }

  void skip_const() {
    while (lex_.peek().is("const")) lex_.next();
  }

  /// Parses a type-spec, accepting anonymous `struct { ... }` bodies
  /// (named after `field_hint`) in addition to DeclParser's forms.
  TypeId parse_type_spec(const std::string& field_hint) {
    skip_const();
    if (lex_.peek().is("struct")) {
      // `struct { ... }` (anonymous) or `struct Name [{...}]`.
      Lexer probe = lex_;
      probe.next();
      if (probe.peek().is("{")) {
        lex_.next();  // struct
        std::vector<PendingField> fields = parse_field_list();
        std::string name = field_hint;
        while (types_->find_struct(name) != layout::kInvalidType) {
          name += "_";
        }
        return types_->define_struct(name, std::move(fields));
      }
      // `struct Name { ... }` definition in type position?
      Token kw = lex_.next();  // struct
      Token name = lex_.expect(TokKind::Ident, "struct name");
      (void)kw;
      if (lex_.peek().is("{")) {
        std::vector<PendingField> fields = parse_field_list();
        return types_->define_struct(std::string(name.text),
                                     std::move(fields));
      }
      const TypeId id = types_->find_struct(name.text);
      if (id == layout::kInvalidType) {
        throw_parse_error("reference to undefined struct '" +
                              std::string(name.text) + "'",
                          name.loc);
      }
      return id;
    }
    return decls_.parse_type_spec(lex_);
  }

  /// Field list between braces, supporting anonymous struct fields.
  std::vector<PendingField> parse_field_list() {
    lex_.expect("{");
    std::vector<PendingField> fields;
    while (!lex_.accept("}")) {
      if (lex_.peek().is("struct")) {
        Lexer probe = lex_;
        probe.next();
        if (probe.peek().kind == TokKind::Ident) {
          probe.next();
          if (probe.peek().is(";")) {
            // `struct Name;` shorthand: embedded field named after it.
            lex_.next();
            Token name = lex_.expect(TokKind::Ident, "struct name");
            lex_.expect(";");
            const TypeId st = types_->find_struct(name.text);
            if (st == layout::kInvalidType) {
              throw_parse_error("reference to undefined struct '" +
                                    std::string(name.text) + "'",
                                name.loc);
            }
            fields.push_back(PendingField{std::string(name.text), st});
            continue;
          }
        }
      }
      // `type declarator ;` where the type may be an anonymous struct —
      // peek ahead for the declarator name to use as the hint.
      const TypeId base = parse_type_spec(peek_declarator_name());
      layout::VarDecl d = decls_.parse_declarator(lex_, base);
      lex_.expect(";");
      fields.push_back(PendingField{std::move(d.name), d.type});
    }
    return fields;
  }

  /// Best-effort scan for the declarator name following an anonymous
  /// struct body (used only to name anonymous structs meaningfully).
  std::string peek_declarator_name() {
    Lexer probe = lex_;
    int depth = 0;
    for (int guard = 0; guard < 4096; ++guard) {
      const Token t = probe.next();
      if (t.kind == TokKind::End) break;
      if (t.is("{")) ++depth;
      if (t.is("}")) {
        --depth;
        if (depth == 0) {
          // The declarator name follows the closing brace.
          Token name = probe.next();
          if (name.kind == TokKind::Ident) return std::string(name.text);
          break;
        }
      }
      if (depth == 0 && t.kind == TokKind::Ident && !t.is("struct") &&
          !t.is("const")) {
        return std::string(t.text);
      }
    }
    return "anon";
  }

  // --- top level -----------------------------------------------------------

  void parse_top_level() {
    if (lex_.accept("typedef")) {
      // typedef struct {...} Name;  /  typedef struct Old New; (aliasing
      // an existing struct is rejected to keep the type table simple).
      lex_.expect("struct");
      if (!lex_.peek().is("{")) {
        throw_parse_error("only `typedef struct { ... } Name;` is supported",
                          lex_.loc());
      }
      std::vector<PendingField> fields = parse_field_list();
      Token name = lex_.expect(TokKind::Ident, "typedef name");
      lex_.expect(";");
      types_->define_struct(std::string(name.text), std::move(fields));
      return;
    }
    if (lex_.peek().is("void")) {
      parse_function(/*returns_int=*/false);
      return;
    }
    // Distinguish `int main(...)` from a global declaration.
    {
      Lexer probe = lex_;
      if (probe.peek().is("int")) {
        probe.next();
        if (probe.peek().is("main")) {
          parse_function(/*returns_int=*/true);
          return;
        }
      }
    }
    if (lex_.peek().is("struct")) {
      // `struct Name { ... };` definition or a struct-typed global.
      Lexer probe = lex_;
      probe.next();
      probe.next();
      if (probe.peek().is("{")) {
        const TypeId base = parse_type_spec("anon");
        if (lex_.accept(";")) return;  // bare definition
        parse_global_declarators(base);
        return;
      }
    }
    const TypeId base = parse_type_spec(peek_declarator_name());
    parse_global_declarators(base);
  }

  void parse_global_declarators(TypeId base) {
    do {
      layout::VarDecl d = decls_.parse_declarator(lex_, base);
      program_.globals.push_back({std::move(d.name), d.type});
    } while (lex_.accept(","));
    lex_.expect(";");
  }

  void parse_function(bool returns_int) {
    lex_.next();  // return type keyword
    Token name = lex_.expect(TokKind::Ident, "function name");
    FunctionDef fn;
    fn.name = std::string(name.text);
    lex_.expect("(");
    if (!lex_.accept(")")) {
      if (lex_.accept("void")) {
        lex_.expect(")");
      } else {
        do {
          fn.params.push_back(parse_param());
        } while (lex_.accept(","));
        lex_.expect(")");
      }
    }
    fn.body = parse_block();
    (void)returns_int;
    program_.functions.push_back(std::move(fn));
  }

  FunctionDef::Param parse_param() {
    TypeId base = parse_type_spec("param");
    while (lex_.accept("*")) base = types_->pointer_to(base);
    Token name = lex_.expect(TokKind::Ident, "parameter name");
    // `T p[]` decays to `T* p`.
    if (lex_.accept("[")) {
      lex_.expect("]");
      base = types_->pointer_to(base);
    }
    return FunctionDef::Param{std::string(name.text), base};
  }

  // --- statements ----------------------------------------------------------

  StmtPtr parse_block() {
    lex_.expect("{");
    std::vector<StmtPtr> body;
    while (!lex_.accept("}")) {
      if (StmtPtr s = parse_stmt()) body.push_back(std::move(s));
    }
    return block(std::move(body));
  }

  /// Parses one statement; returns nullptr for statements with no runtime
  /// effect (bare `return;`).
  StmtPtr parse_stmt() {
    if (lex_.peek().is("{")) return parse_block();
    if (lex_.accept("for")) return parse_for();
    if (lex_.accept("while")) {
      lex_.expect("(");
      ExprPtr cond = parse_expr();
      lex_.expect(")");
      StmtPtr body = parse_stmt();
      if (!body) body = block({});
      return while_loop(std::move(cond), std::move(body));
    }
    if (lex_.accept("if")) {
      lex_.expect("(");
      ExprPtr cond = parse_expr();
      lex_.expect(")");
      StmtPtr then_body = parse_stmt();
      if (!then_body) then_body = block({});
      StmtPtr else_body;
      if (lex_.accept("else")) {
        else_body = parse_stmt();
        if (!else_body) else_body = block({});
      }
      return if_stmt(std::move(cond), std::move(then_body),
                     std::move(else_body));
    }
    if (lex_.accept("typedef")) {
      // Function-scope `typedef struct { ... } Name;` (paper Listings 3/4
      // declare their structs inside main). Types are program-global.
      lex_.expect("struct");
      if (!lex_.peek().is("{")) {
        throw_parse_error("only `typedef struct { ... } Name;` is supported",
                          lex_.loc());
      }
      std::vector<PendingField> fields = parse_field_list();
      Token name = lex_.expect(TokKind::Ident, "typedef name");
      lex_.expect(";");
      types_->define_struct(std::string(name.text), std::move(fields));
      return nullptr;
    }
    if (lex_.peek().is("GLEIPNIR_START_INSTRUMENTATION")) {
      lex_.next();
      lex_.expect(";");
      return start_instr();
    }
    if (lex_.peek().is("GLEIPNIR_STOP_INSTRUMENTATION")) {
      lex_.next();
      lex_.expect(";");
      return stop_instr();
    }
    if (lex_.accept("return")) {
      // Return values carry no memory traffic in the paper's kernels;
      // a constant expression is parsed and dropped.
      if (!lex_.peek().is(";")) (void)parse_expr();
      lex_.expect(";");
      return nullptr;
    }
    if (lex_.peek().is("free")) {
      lex_.next();
      lex_.expect("(");
      LValue place = parse_lvalue();
      lex_.expect(")");
      lex_.expect(";");
      return heap_free(std::move(place));
    }
    if (peek_is_type()) {
      StmtPtr s = parse_local_decls();
      lex_.expect(";");
      return s;
    }
    StmtPtr s = parse_simple_stmt();
    lex_.expect(";");
    return s;
  }

  /// `type declarator [= init] (, declarator [= init])*` — wrapped in a
  /// Block when more than one declarator.
  StmtPtr parse_local_decls() {
    const TypeId base = parse_type_spec(peek_declarator_name());
    std::vector<StmtPtr> decls;
    do {
      layout::VarDecl d = decls_.parse_declarator(lex_, base);
      ExprPtr init;
      if (lex_.accept("=")) init = parse_expr();
      decls.push_back(decl_local(std::move(d.name), d.type, std::move(init)));
    } while (lex_.accept(","));
    if (decls.size() == 1) return std::move(decls.front());
    return block(std::move(decls));
  }

  /// Assignment, increment, compound assignment, call, or malloc.
  StmtPtr parse_simple_stmt() {
    const Token& t = lex_.peek();
    if (t.kind != TokKind::Ident) {
      throw_parse_error("expected a statement, got '" + std::string(t.text) +
                            "'",
                        t.loc);
    }
    // Function call?  `name(args...)`
    {
      Lexer probe = lex_;
      Token name = probe.next();
      if (probe.peek().is("(")) {
        lex_ = probe;
        lex_.next();  // '('
        std::vector<ExprPtr> args;
        if (!lex_.accept(")")) {
          do {
            args.push_back(parse_expr());
          } while (lex_.accept(","));
          lex_.expect(")");
        }
        return call(std::string(name.text), std::move(args));
      }
    }
    LValue place = parse_lvalue();
    if (lex_.accept("++")) {
      return modify(std::move(place), lit(1));
    }
    if (lex_.accept("+=")) {
      return modify(std::move(place), parse_expr());
    }
    lex_.expect("=");
    // malloc?
    if (lex_.peek().is("malloc")) {
      lex_.next();
      lex_.expect("(");
      auto [elem, count] = parse_malloc_arg();
      lex_.expect(")");
      return heap_alloc(std::move(place), elem, std::move(count));
    }
    return assign(std::move(place), parse_expr());
  }

  /// `N * sizeof(T)` / `sizeof(T) * N` / `sizeof(T)`.
  std::pair<TypeId, ExprPtr> parse_malloc_arg() {
    if (lex_.peek().is("sizeof")) {
      const TypeId elem = parse_sizeof_type();
      if (lex_.accept("*")) {
        return {elem, parse_expr()};
      }
      return {elem, lit(1)};
    }
    ExprPtr count = parse_mul_operand_until_sizeof();
    lex_.expect("*");
    const TypeId elem = parse_sizeof_type();
    return {elem, std::move(count)};
  }

  /// Parses the count part of `count * sizeof(T)`: a multiplicative
  /// expression that stops before the `* sizeof`.
  ExprPtr parse_mul_operand_until_sizeof() {
    ExprPtr out = parse_unary();
    for (;;) {
      Lexer probe = lex_;
      if (probe.accept("*") && probe.peek().is("sizeof")) return out;
      if (lex_.accept("*")) {
        out = mul(std::move(out), parse_unary());
      } else {
        return out;
      }
    }
  }

  TypeId parse_sizeof_type() {
    lex_.expect("sizeof");
    lex_.expect("(");
    const TypeId t = parse_type_spec("sizeof");
    lex_.expect(")");
    return t;
  }

  StmtPtr parse_for() {
    lex_.expect("(");
    StmtPtr init;
    if (!lex_.peek().is(";")) {
      init = peek_is_type() ? parse_local_decls() : parse_simple_stmt();
    } else {
      init = block({});
    }
    lex_.expect(";");
    ExprPtr cond = lex_.peek().is(";") ? lit(1) : parse_expr();
    lex_.expect(";");
    StmtPtr step = lex_.peek().is(")") ? block({}) : parse_simple_stmt();
    lex_.expect(")");
    StmtPtr body = parse_stmt();
    if (!body) body = block({});
    return for_loop(std::move(init), std::move(cond), std::move(step),
                    std::move(body));
  }

  // --- expressions ---------------------------------------------------------

  LValue parse_lvalue() {
    Token name = lex_.expect(TokKind::Ident, "variable name");
    LValue place{std::string(name.text)};
    // Steps are appended in place (the fluent &&-qualified builders are
    // for expression-style construction, not incremental parsing).
    for (;;) {
      if (lex_.accept("[")) {
        place.steps.emplace_back(parse_expr());
        lex_.expect("]");
      } else if (lex_.accept(".")) {
        place.steps.emplace_back(
            LValueStep::Kind::Field,
            std::string(lex_.expect(TokKind::Ident, "field name").text));
      } else if (lex_.accept("->")) {
        place.steps.emplace_back(
            LValueStep::Kind::Arrow,
            std::string(lex_.expect(TokKind::Ident, "field name").text));
      } else {
        return place;
      }
    }
  }

  ExprPtr parse_expr() { return parse_comparison(); }

  ExprPtr parse_comparison() {
    ExprPtr out = parse_additive();
    for (;;) {
      Expr::Op op;
      if (lex_.accept("<")) {
        op = Expr::Op::Lt;
      } else if (lex_.accept("<=")) {
        op = Expr::Op::Le;
      } else if (lex_.accept(">")) {
        op = Expr::Op::Gt;
      } else if (lex_.accept(">=")) {
        op = Expr::Op::Ge;
      } else if (lex_.accept("==")) {
        op = Expr::Op::Eq;
      } else if (lex_.accept("!=")) {
        op = Expr::Op::Ne;
      } else {
        return out;
      }
      out = bin(op, std::move(out), parse_additive());
    }
  }

  ExprPtr parse_additive() {
    ExprPtr out = parse_multiplicative();
    for (;;) {
      if (lex_.accept("+")) {
        out = add(std::move(out), parse_multiplicative());
      } else if (lex_.accept("-")) {
        out = sub(std::move(out), parse_multiplicative());
      } else {
        return out;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr out = parse_unary();
    for (;;) {
      if (lex_.accept("*")) {
        out = mul(std::move(out), parse_unary());
      } else if (lex_.accept("/")) {
        out = div(std::move(out), parse_unary());
      } else if (lex_.accept("%")) {
        out = mod(std::move(out), parse_unary());
      } else {
        return out;
      }
    }
  }

  ExprPtr parse_unary() {
    if (lex_.accept("-")) {
      auto e = std::make_unique<Expr>();
      e->op = Expr::Op::Neg;
      e->lhs = parse_unary();
      return e;
    }
    if (lex_.accept("&")) {
      return addr(parse_lvalue());
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = lex_.peek();
    if (t.kind == TokKind::Number) {
      Token n = lex_.next();
      return n.is_float() ? real_lit(n.real())
                          : lit(static_cast<std::int64_t>(n.number()));
    }
    if (t.is("(")) {
      // Cast or parenthesized expression: a type name after '(' is a cast.
      Lexer probe = lex_;
      probe.next();
      const Token& inner = probe.peek();
      const bool is_cast =
          inner.kind == TokKind::Ident &&
          (inner.is("int") || inner.is("double") || inner.is("float") ||
           inner.is("long") || inner.is("short") || inner.is("char") ||
           inner.is("unsigned") || inner.is("signed"));
      if (is_cast) {
        lex_.next();  // '('
        const TypeId target = decls_.parse_type_spec(lex_);
        lex_.expect(")");
        ExprPtr operand = parse_unary();
        if (target == types_->double_type() ||
            target == types_->float_type()) {
          return cast_real(std::move(operand));
        }
        return cast_int(std::move(operand));
      }
      lex_.next();
      ExprPtr e = parse_expr();
      lex_.expect(")");
      return e;
    }
    if (t.is("sizeof")) {
      const TypeId st = parse_sizeof_type();
      return lit(static_cast<std::int64_t>(types_->size_of(st)));
    }
    if (t.kind == TokKind::Ident) {
      if (auto it = defines_.find(std::string(t.text)); it != defines_.end()) {
        lex_.next();
        return lit(it->second);
      }
      return rd(parse_lvalue());
    }
    throw_parse_error("expected an expression, got '" +
                          std::string(t.kind == TokKind::End ? "<end>"
                                                             : t.text) +
                          "'",
                      t.loc);
  }

  std::unordered_map<std::string, std::int64_t> defines_;
  std::string expanded_;
  Lexer lex_;
  TypeTable* types_;
  DeclParser decls_;
  Program program_;
};

}  // namespace

Program parse_kernel(std::string_view source, layout::TypeTable& types) {
  return KernelParser(source, types).parse();
}

Program parse_kernel_file(const std::string& path, layout::TypeTable& types) {
  std::ifstream in(path);
  if (!in) {
    throw_io_error("cannot open kernel source '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_kernel(buf.str(), types);
}

}  // namespace tdt::tracer
