#include "tracer/ast.hpp"

#include <utility>

namespace tdt::tracer {

LValue&& LValue::field(std::string f) && {
  steps.emplace_back(LValueStep::Kind::Field, std::move(f));
  return std::move(*this);
}

LValue&& LValue::index(ExprPtr idx) && {
  steps.emplace_back(std::move(idx));
  return std::move(*this);
}

LValue&& LValue::index(std::int64_t idx) && {
  steps.emplace_back(lit(idx));
  return std::move(*this);
}

LValue&& LValue::arrow(std::string f) && {
  steps.emplace_back(LValueStep::Kind::Arrow, std::move(f));
  return std::move(*this);
}

LValue LValue::clone() const {
  LValue out(name);
  for (const LValueStep& s : steps) {
    switch (s.kind) {
      case LValueStep::Kind::Field:
        out.steps.emplace_back(LValueStep::Kind::Field, s.field);
        break;
      case LValueStep::Kind::Arrow:
        out.steps.emplace_back(LValueStep::Kind::Arrow, s.field);
        break;
      case LValueStep::Kind::Index:
        out.steps.emplace_back(s.index->clone());
        break;
    }
  }
  return out;
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->op = op;
  out->int_value = int_value;
  out->real_value = real_value;
  out->place = place.clone();
  if (lhs) out->lhs = lhs->clone();
  if (rhs) out->rhs = rhs->clone();
  return out;
}

ExprPtr lit(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->op = Expr::Op::IntLit;
  e->int_value = v;
  return e;
}

ExprPtr real_lit(double v) {
  auto e = std::make_unique<Expr>();
  e->op = Expr::Op::RealLit;
  e->real_value = v;
  return e;
}

ExprPtr rd(std::string name) { return rd(LValue(std::move(name))); }

ExprPtr rd(LValue place) {
  auto e = std::make_unique<Expr>();
  e->op = Expr::Op::Read;
  e->place = std::move(place);
  return e;
}

ExprPtr addr(LValue place) {
  auto e = std::make_unique<Expr>();
  e->op = Expr::Op::AddrOf;
  e->place = std::move(place);
  return e;
}

ExprPtr bin(Expr::Op op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr add(ExprPtr l, ExprPtr r) { return bin(Expr::Op::Add, std::move(l), std::move(r)); }
ExprPtr sub(ExprPtr l, ExprPtr r) { return bin(Expr::Op::Sub, std::move(l), std::move(r)); }
ExprPtr mul(ExprPtr l, ExprPtr r) { return bin(Expr::Op::Mul, std::move(l), std::move(r)); }
ExprPtr div(ExprPtr l, ExprPtr r) { return bin(Expr::Op::Div, std::move(l), std::move(r)); }
ExprPtr mod(ExprPtr l, ExprPtr r) { return bin(Expr::Op::Mod, std::move(l), std::move(r)); }
ExprPtr lt(ExprPtr l, ExprPtr r) { return bin(Expr::Op::Lt, std::move(l), std::move(r)); }

ExprPtr cast_int(ExprPtr e) {
  auto out = std::make_unique<Expr>();
  out->op = Expr::Op::CastInt;
  out->lhs = std::move(e);
  return out;
}

ExprPtr cast_real(ExprPtr e) {
  auto out = std::make_unique<Expr>();
  out->op = Expr::Op::CastReal;
  out->lhs = std::move(e);
  return out;
}

StmtPtr block(std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Block;
  s->body = std::move(body);
  return s;
}

StmtPtr decl_local(std::string name, layout::TypeId type, ExprPtr init) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::DeclLocal;
  s->name = std::move(name);
  s->type = type;
  s->value = std::move(init);
  return s;
}

StmtPtr assign(LValue place, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Assign;
  s->place = std::move(place);
  s->value = std::move(value);
  return s;
}

StmtPtr modify(LValue place, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Assign;
  s->place = std::move(place);
  s->value = std::move(value);
  s->compound = true;
  return s;
}

StmtPtr for_loop(StmtPtr init, ExprPtr cond, StmtPtr step, StmtPtr body) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::For;
  s->init = std::move(init);
  s->cond = std::move(cond);
  s->step = std::move(step);
  s->body.push_back(std::move(body));
  return s;
}

StmtPtr count_loop(std::string iter, ExprPtr bound, StmtPtr body) {
  // for (iter = 0; iter < bound; iter += 1) body
  auto init = assign(LValue(iter), lit(0));
  auto cond = lt(rd(iter), std::move(bound));
  auto step = modify(LValue(iter), lit(1));
  return for_loop(std::move(init), std::move(cond), std::move(step),
                  std::move(body));
}

StmtPtr call(std::string callee, std::vector<ExprPtr> args) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Call;
  s->name = std::move(callee);
  s->args = std::move(args);
  return s;
}

StmtPtr start_instr() {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::StartInstr;
  return s;
}

StmtPtr stop_instr() {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::StopInstr;
  return s;
}

StmtPtr heap_alloc(LValue place, layout::TypeId elem_type, ExprPtr count) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::HeapAlloc;
  s->place = std::move(place);
  s->type = elem_type;
  s->count = std::move(count);
  return s;
}

StmtPtr heap_free(LValue place) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::HeapFree;
  s->place = std::move(place);
  return s;
}

StmtPtr if_stmt(ExprPtr cond, StmtPtr then_body, StmtPtr else_body) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::If;
  s->cond = std::move(cond);
  s->body.push_back(std::move(then_body));
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr while_loop(ExprPtr cond, StmtPtr body) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::While;
  s->cond = std::move(cond);
  s->body.push_back(std::move(body));
  return s;
}

const FunctionDef* Program::find_function(std::string_view name) const {
  for (const FunctionDef& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace tdt::tracer
