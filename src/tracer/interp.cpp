#include "tracer/interp.hpp"

#include "util/error.hpp"

namespace tdt::tracer {

using layout::TypeKind;
using trace::AccessKind;

Interpreter::Interpreter(layout::TypeTable& types, trace::TraceContext& ctx,
                         trace::TraceSink& sink, InterpOptions options)
    : types_(&types),
      ctx_(&ctx),
      sink_(&sink),
      options_(options),
      space_(options.address_space),
      symbols_(types, space_) {
  enabled_ = options_.start_enabled;
}

Symbol Interpreter::current_function() const {
  internal_check(!call_stack_.empty(), "no active function");
  return call_stack_.back();
}

void Interpreter::emit(AccessKind kind, std::uint64_t address,
                       std::uint32_t size, bool annotate) {
  if (!enabled_) return;
  if (emitted_ >= options_.max_records) {
    throw_semantic_error("trace record budget exhausted (" +
                         std::to_string(options_.max_records) + ")");
  }
  trace::TraceRecord rec;
  rec.kind = kind;
  rec.address = address;
  rec.size = size;
  rec.function = current_function();
  rec.thread = 1;
  if (annotate) {
    if (auto res = symbols_.resolve_address(address)) {
      rec.scope = res->var->scope(*types_);
      rec.var.base = ctx_->intern(res->var->name);
      for (const layout::PathStep& step : res->path) {
        rec.var.steps.push_back(
            step.is_field()
                ? trace::VarStep::make_field(ctx_->intern(step.field))
                : trace::VarStep::make_index(step.index));
      }
      if (!res->var->global) {
        // Frame distance from the executing frame, as Gleipnir reports it:
        // 0 = own frame, 1 = caller's, ... (paper Listing 2: foo accessing
        // main's lcStrcArray shows frame 1).
        rec.frame = static_cast<std::uint16_t>(space_.current_frame() -
                                               res->var->frame);
      }
    }
  }
  ++emitted_;
  sink_->on_record(rec);
}

Value Interpreter::memory_value(std::uint64_t address,
                                layout::TypeId type) const {
  if (auto it = memory_.find(address); it != memory_.end()) {
    return it->second;
  }
  // Uninitialized memory reads as zero of the leaf's kind.
  if (types_->kind(type) == TypeKind::Pointer) {
    return Value::from_ptr(0, types_->element(type));
  }
  if (type == types_->double_type() || type == types_->float_type()) {
    return Value::from_real(0);
  }
  return Value::from_int(0);
}

Interpreter::Location Interpreter::resolve(const LValue& place) {
  const memsim::VarInfo* var = symbols_.lookup(place.name);
  if (var == nullptr) {
    throw_semantic_error("use of undeclared variable '" + place.name + "'");
  }
  Location loc{var->base, var->type};
  for (const LValueStep& step : place.steps) {
    switch (step.kind) {
      case LValueStep::Kind::Field: {
        if (types_->kind(loc.type) != TypeKind::Struct) {
          throw_semantic_error("'." + step.field + "' applied to non-struct " +
                               types_->render(loc.type));
        }
        const layout::FieldInfo* f = types_->find_field(loc.type, step.field);
        if (f == nullptr) {
          throw_semantic_error("struct " + types_->render(loc.type) +
                               " has no field '" + step.field + "'");
        }
        loc.address += f->offset;
        loc.type = f->type;
        break;
      }
      case LValueStep::Kind::Index: {
        const Value idx = eval(*step.index);
        const std::int64_t i = idx.as_int();
        if (types_->kind(loc.type) == TypeKind::Array) {
          const layout::TypeId elem = types_->element(loc.type);
          loc.address += static_cast<std::uint64_t>(i) * types_->size_of(elem);
          loc.type = elem;
        } else if (types_->kind(loc.type) == TypeKind::Pointer) {
          // p[i]: load the pointer, then index off its value.
          const Value p = memory_value(loc.address, loc.type);
          emit(AccessKind::Load, loc.address, 8);
          const layout::TypeId elem = types_->element(loc.type);
          loc.address =
              p.addr + static_cast<std::uint64_t>(i) * types_->size_of(elem);
          loc.type = elem;
        } else {
          throw_semantic_error("index applied to scalar " +
                               types_->render(loc.type));
        }
        break;
      }
      case LValueStep::Kind::Arrow: {
        if (types_->kind(loc.type) != TypeKind::Pointer) {
          throw_semantic_error("'->' applied to non-pointer " +
                               types_->render(loc.type));
        }
        const Value p = memory_value(loc.address, loc.type);
        emit(AccessKind::Load, loc.address, 8);
        layout::TypeId target = types_->element(loc.type);
        if (types_->kind(target) != TypeKind::Struct) {
          throw_semantic_error("'->' into non-struct pointee " +
                               types_->render(target));
        }
        const layout::FieldInfo* f = types_->find_field(target, step.field);
        if (f == nullptr) {
          throw_semantic_error("struct " + types_->render(target) +
                               " has no field '" + step.field + "'");
        }
        loc.address = p.addr + f->offset;
        loc.type = f->type;
        break;
      }
    }
  }
  return loc;
}

Value Interpreter::load(const Location& loc) {
  switch (types_->kind(loc.type)) {
    case TypeKind::Array:
      // Array decays to a pointer to its first element; no memory access.
      return Value::from_ptr(loc.address, types_->element(loc.type));
    case TypeKind::Struct:
      throw_semantic_error("cannot read whole struct " +
                           types_->render(loc.type));
    case TypeKind::Primitive:
    case TypeKind::Pointer: {
      const Value v = memory_value(loc.address, loc.type);
      emit(AccessKind::Load, loc.address,
           static_cast<std::uint32_t>(types_->size_of(loc.type)));
      return v;
    }
  }
  return {};
}

void Interpreter::store(const Location& loc, const Value& v, bool compound) {
  const TypeKind k = types_->kind(loc.type);
  if (k == TypeKind::Array || k == TypeKind::Struct) {
    throw_semantic_error("cannot assign whole aggregate " +
                         types_->render(loc.type));
  }
  // Coerce the value to the destination's kind so later reads see the
  // type the location declares.
  Value stored = v;
  if (k == TypeKind::Pointer) {
    if (v.kind != Value::Kind::Ptr) {
      stored = Value::from_ptr(static_cast<std::uint64_t>(v.as_int()),
                               types_->element(loc.type));
    }
  } else if (loc.type == types_->double_type() ||
             loc.type == types_->float_type()) {
    stored = Value::from_real(v.as_real());
  } else {
    stored = Value::from_int(v.as_int());
  }
  if (compound) {
    const Value old = memory_value(loc.address, loc.type);
    if (stored.kind == Value::Kind::Real) {
      stored = Value::from_real(old.as_real() + v.as_real());
    } else if (stored.kind == Value::Kind::Ptr) {
      stored = Value::from_ptr(
          old.addr + static_cast<std::uint64_t>(v.as_int()) *
                         types_->size_of(stored.pointee),
          stored.pointee);
    } else {
      stored = Value::from_int(old.as_int() + v.as_int());
    }
  }
  memory_[loc.address] = stored;
  emit(compound ? AccessKind::Modify : AccessKind::Store, loc.address,
       static_cast<std::uint32_t>(types_->size_of(loc.type)));
}

Value Interpreter::eval_binary(const Expr& expr) {
  const Value l = eval(*expr.lhs);
  const Value r = eval(*expr.rhs);
  using Op = Expr::Op;
  // Pointer arithmetic scales by pointee size, as in C.
  if (l.kind == Value::Kind::Ptr &&
      (expr.op == Op::Add || expr.op == Op::Sub)) {
    const std::uint64_t scale =
        l.pointee == layout::kInvalidType ? 1 : types_->size_of(l.pointee);
    const std::int64_t n = r.as_int();
    const std::uint64_t moved = static_cast<std::uint64_t>(n) * scale;
    return Value::from_ptr(
        expr.op == Op::Add ? l.addr + moved : l.addr - moved, l.pointee);
  }
  const bool real = l.kind == Value::Kind::Real || r.kind == Value::Kind::Real;
  switch (expr.op) {
    case Op::Add:
      return real ? Value::from_real(l.as_real() + r.as_real())
                  : Value::from_int(l.as_int() + r.as_int());
    case Op::Sub:
      return real ? Value::from_real(l.as_real() - r.as_real())
                  : Value::from_int(l.as_int() - r.as_int());
    case Op::Mul:
      return real ? Value::from_real(l.as_real() * r.as_real())
                  : Value::from_int(l.as_int() * r.as_int());
    case Op::Div:
      if (real) return Value::from_real(l.as_real() / r.as_real());
      if (r.as_int() == 0) throw_semantic_error("integer division by zero");
      return Value::from_int(l.as_int() / r.as_int());
    case Op::Mod:
      if (r.as_int() == 0) throw_semantic_error("integer modulo by zero");
      return Value::from_int(l.as_int() % r.as_int());
    case Op::Lt:
      return Value::from_int(real ? l.as_real() < r.as_real()
                                  : l.as_int() < r.as_int());
    case Op::Le:
      return Value::from_int(real ? l.as_real() <= r.as_real()
                                  : l.as_int() <= r.as_int());
    case Op::Gt:
      return Value::from_int(real ? l.as_real() > r.as_real()
                                  : l.as_int() > r.as_int());
    case Op::Ge:
      return Value::from_int(real ? l.as_real() >= r.as_real()
                                  : l.as_int() >= r.as_int());
    case Op::Eq:
      return Value::from_int(real ? l.as_real() == r.as_real()
                                  : l.as_int() == r.as_int());
    case Op::Ne:
      return Value::from_int(real ? l.as_real() != r.as_real()
                                  : l.as_int() != r.as_int());
    default:
      internal_check(false, "non-binary op in eval_binary");
      return {};
  }
}

Value Interpreter::eval(const Expr& expr) {
  using Op = Expr::Op;
  switch (expr.op) {
    case Op::IntLit:
      return Value::from_int(expr.int_value);
    case Op::RealLit:
      return Value::from_real(expr.real_value);
    case Op::Read:
      return load(resolve(expr.place));
    case Op::AddrOf: {
      const Location loc = resolve(expr.place);
      const layout::TypeId deref =
          types_->kind(loc.type) == TypeKind::Array ? types_->element(loc.type)
                                                    : loc.type;
      return Value::from_ptr(loc.address, deref);
    }
    case Op::Neg: {
      const Value v = eval(*expr.lhs);
      return v.kind == Value::Kind::Real ? Value::from_real(-v.as_real())
                                         : Value::from_int(-v.as_int());
    }
    case Op::CastInt:
      return Value::from_int(eval(*expr.lhs).as_int());
    case Op::CastReal:
      return Value::from_real(eval(*expr.lhs).as_real());
    default:
      return eval_binary(expr);
  }
}

void Interpreter::exec_block(const Stmt& stmt) {
  for (const StmtPtr& s : stmt.body) exec(*s);
}

void Interpreter::exec_call(const Stmt& stmt) {
  const FunctionDef* callee = program_->find_function(stmt.name);
  if (callee == nullptr) {
    throw_semantic_error("call to undefined function '" + stmt.name + "'");
  }
  if (callee->params.size() != stmt.args.size()) {
    throw_semantic_error("call to '" + stmt.name + "' passes " +
                         std::to_string(stmt.args.size()) + " args, expects " +
                         std::to_string(callee->params.size()));
  }
  // Evaluate arguments in the caller's context.
  std::vector<Value> args;
  args.reserve(stmt.args.size());
  for (const ExprPtr& a : stmt.args) args.push_back(eval(*a));

  if (options_.emit_call_overhead) {
    // Return-address push by the caller (un-annotated 8-byte store).
    const std::uint64_t ra = space_.alloc_stack(8, 8);
    emit(AccessKind::Store, ra, 8, /*annotate=*/false);
  }
  symbols_.push_scope();
  call_stack_.push_back(ctx_->intern(callee->name));
  if (options_.emit_call_overhead) {
    // Saved frame pointer, attributed to the callee.
    const std::uint64_t fp = space_.alloc_stack(8, 8);
    emit(AccessKind::Store, fp, 8, /*annotate=*/false);
  }
  // Bind parameters: declared as locals of the callee, stores traced.
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& p = callee->params[i];
    const memsim::VarInfo& v = symbols_.declare_local(p.name, p.type);
    Location loc{v.base, v.type};
    store(loc, args[i], /*compound=*/false);
  }
  exec(*callee->body);
  call_stack_.pop_back();
  symbols_.pop_scope();
}

void Interpreter::exec(const Stmt& stmt) {
  using Kind = Stmt::Kind;
  switch (stmt.kind) {
    case Kind::Block:
      exec_block(stmt);
      return;
    case Kind::DeclLocal: {
      const memsim::VarInfo& v = symbols_.declare_local(stmt.name, stmt.type);
      if (stmt.value) {
        const Value init = eval(*stmt.value);
        store(Location{v.base, v.type}, init, /*compound=*/false);
      }
      return;
    }
    case Kind::Assign: {
      const Value v = eval(*stmt.value);
      const Location loc = resolve(stmt.place);
      store(loc, v, stmt.compound);
      return;
    }
    case Kind::For: {
      exec(*stmt.init);
      for (;;) {
        const Value c = eval(*stmt.cond);
        if (c.as_int() == 0) break;
        exec_block(stmt);
        exec(*stmt.step);
      }
      return;
    }
    case Kind::Call:
      exec_call(stmt);
      return;
    case Kind::StartInstr: {
      enabled_ = true;
      if (options_.emit_zzq_marker) {
        // The Valgrind client-request macro writes and reads an 8-byte
        // result slot; Gleipnir shows it as `_zzq_result` (Listing 2).
        const memsim::VarInfo* existing = symbols_.lookup("_zzq_result");
        const memsim::VarInfo& v =
            existing != nullptr && !existing->global
                ? *existing
                : symbols_.declare_local("_zzq_result", types_->long_type());
        emit(AccessKind::Store, v.base, 8);
        emit(AccessKind::Load, v.base, 8, /*annotate=*/false);
      }
      return;
    }
    case Kind::StopInstr:
      enabled_ = false;
      return;
    case Kind::HeapAlloc: {
      const Value n = eval(*stmt.count);
      const std::int64_t count = n.as_int();
      if (count <= 0) {
        throw_semantic_error("heap_alloc with non-positive element count");
      }
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(count) * types_->size_of(stmt.type);
      const std::uint64_t addr = space_.heap_alloc(bytes);
      // Register a pseudo-variable so accesses through the pointer get
      // named, the way Gleipnir names heap blocks by allocation site.
      const layout::TypeId block_type =
          types_->array_of(stmt.type, static_cast<std::uint64_t>(count));
      symbols_.declare_at("heap#" + std::to_string(heap_serial_++), block_type,
                          addr, /*global=*/true);
      const Location loc = resolve(stmt.place);
      store(loc, Value::from_ptr(addr, stmt.type), /*compound=*/false);
      return;
    }
    case Kind::If: {
      const Value c = eval(*stmt.cond);
      if (c.as_int() != 0) {
        exec(*stmt.body.front());
      } else if (stmt.else_body) {
        exec(*stmt.else_body);
      }
      return;
    }
    case Kind::While: {
      for (;;) {
        const Value c = eval(*stmt.cond);
        if (c.as_int() == 0) break;
        exec(*stmt.body.front());
      }
      return;
    }
    case Kind::HeapFree: {
      const Location loc = resolve(stmt.place);
      const Value p = memory_value(loc.address, loc.type);
      emit(AccessKind::Load, loc.address, 8);
      space_.heap_free(p.addr);
      return;
    }
  }
}

void Interpreter::run(const Program& program) {
  program_ = &program;
  for (const Program::Global& g : program.globals) {
    symbols_.declare_global(g.name, g.type);
  }
  const FunctionDef* main_fn = program.find_function("main");
  if (main_fn == nullptr) {
    throw_semantic_error("program has no 'main' function");
  }
  symbols_.push_scope();
  call_stack_.push_back(ctx_->intern("main"));
  exec(*main_fn->body);
  call_stack_.pop_back();
  symbols_.pop_scope();
  sink_->on_end();
  program_ = nullptr;
}

std::vector<trace::TraceRecord> run_program(layout::TypeTable& types,
                                            trace::TraceContext& ctx,
                                            const Program& program,
                                            InterpOptions options) {
  trace::VectorSink sink;
  Interpreter interp(types, ctx, sink, options);
  interp.run(program);
  return sink.take();
}

}  // namespace tdt::tracer
