// The synthetic tracer: executes a mini-language Program and emits one
// Gleipnir-format TraceRecord per memory access into a TraceSink. This is
// the stand-in for running a compiled binary under Valgrind+Gleipnir:
// loop-counter loads, index arithmetic, call overhead stores and the
// GLEIPNIR_START/STOP instrumentation window all appear in the emitted
// trace exactly as in the paper's Listing 2 / Figure 5 snippets.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "layout/type.hpp"
#include "memsim/address_space.hpp"
#include "memsim/symbol_table.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"
#include "tracer/ast.hpp"

namespace tdt::tracer {

/// A runtime value: integer, floating, or pointer.
struct Value {
  enum class Kind : std::uint8_t { Int, Real, Ptr };

  Kind kind = Kind::Int;
  std::int64_t i = 0;
  double d = 0;
  std::uint64_t addr = 0;
  layout::TypeId pointee = layout::kInvalidType;

  static Value from_int(std::int64_t v) {
    Value out;
    out.kind = Kind::Int;
    out.i = v;
    return out;
  }
  static Value from_real(double v) {
    Value out;
    out.kind = Kind::Real;
    out.d = v;
    return out;
  }
  static Value from_ptr(std::uint64_t a, layout::TypeId pointee) {
    Value out;
    out.kind = Kind::Ptr;
    out.addr = a;
    out.pointee = pointee;
    return out;
  }

  [[nodiscard]] std::int64_t as_int() const noexcept {
    switch (kind) {
      case Kind::Int: return i;
      case Kind::Real: return static_cast<std::int64_t>(d);
      case Kind::Ptr: return static_cast<std::int64_t>(addr);
    }
    return 0;
  }
  [[nodiscard]] double as_real() const noexcept {
    switch (kind) {
      case Kind::Int: return static_cast<double>(i);
      case Kind::Real: return d;
      case Kind::Ptr: return static_cast<double>(addr);
    }
    return 0;
  }
};

/// Interpreter options.
struct InterpOptions {
  /// Emit the unnamed 8-byte stores around a call (return address and
  /// saved frame pointer), visible as un-annotated lines in the paper's
  /// Listing 2.
  bool emit_call_overhead = true;
  /// Emit the `_zzq_result` store/load pair the Valgrind client-request
  /// macro produces at GLEIPNIR_START_INSTRUMENTATION.
  bool emit_zzq_marker = true;
  /// Start with instrumentation already enabled (kernels without explicit
  /// markers trace everything).
  bool start_enabled = false;
  /// Abort after this many emitted records (runaway-loop guard).
  std::uint64_t max_records = 1ULL << 32;
  /// Address-space layout. Multi-threaded studies give each thread's
  /// interpreter a distinct stack_base so per-thread locals don't falsely
  /// collide, while globals stay shared (same global_base).
  memsim::AddressSpaceConfig address_space;
};

/// Executes programs, emitting trace records.
class Interpreter {
 public:
  /// `types` is mutable because heap allocations mint fresh array types.
  Interpreter(layout::TypeTable& types, trace::TraceContext& ctx,
              trace::TraceSink& sink, InterpOptions options = {});

  /// Runs `program` from its `main` function. Throws Error{Semantic} on
  /// undeclared variables, bad selectors, or a missing main.
  void run(const Program& program);

  /// Records emitted so far.
  [[nodiscard]] std::uint64_t records_emitted() const noexcept {
    return emitted_;
  }

  /// The address space (inspectable after run; e.g. heap live bytes).
  [[nodiscard]] const memsim::AddressSpace& space() const noexcept {
    return space_;
  }

 private:
  struct Location {
    std::uint64_t address = 0;
    layout::TypeId type = layout::kInvalidType;
  };

  void exec(const Stmt& stmt);
  void exec_block(const Stmt& stmt);
  void exec_call(const Stmt& stmt);
  Value eval(const Expr& expr);
  Value eval_binary(const Expr& expr);

  /// Resolves an l-value to an address+type, emitting loads for index
  /// expressions and pointer dereferences along the way.
  Location resolve(const LValue& place);

  /// Emits an access record for `address`, naming it via the symbol table.
  void emit(trace::AccessKind kind, std::uint64_t address, std::uint32_t size,
            bool annotate = true);

  Value load(const Location& loc);
  void store(const Location& loc, const Value& v, bool compound);

  Value memory_value(std::uint64_t address, layout::TypeId type) const;

  Symbol current_function() const;

  const Program* program_ = nullptr;
  layout::TypeTable* types_;
  trace::TraceContext* ctx_;
  trace::TraceSink* sink_;
  InterpOptions options_;

  memsim::AddressSpace space_;
  memsim::SymbolTable symbols_;
  std::unordered_map<std::uint64_t, Value> memory_;
  std::vector<Symbol> call_stack_;
  bool enabled_ = false;
  std::uint64_t emitted_ = 0;
  std::uint64_t heap_serial_ = 0;
};

/// Convenience: run `program` and return the emitted records.
std::vector<trace::TraceRecord> run_program(layout::TypeTable& types,
                                            trace::TraceContext& ctx,
                                            const Program& program,
                                            InterpOptions options = {});

}  // namespace tdt::tracer
