// Parser for C-like type and variable declarations, e.g.
//
//   struct _typeA { double dl; int myArray[10]; };
//   struct _typeA glStructArray[10];
//   int glArray[10];
//
// This is the subset of C used by the paper's rule files (Listings 5, 8,
// 11) and by kernel definitions in tdt::tracer. The transformation-rule
// parser (tdt::core) reuses the exposed helpers for its extended syntax.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "layout/type.hpp"
#include "util/lexer.hpp"

namespace tdt::layout {

/// A declared variable: `int glArray[10];` -> { "glArray", int[10] }.
struct VarDecl {
  std::string name;
  TypeId type = kInvalidType;
};

/// A struct definition with the paper's optional trailing array count:
/// `struct lAoS { ... }[16];` -> { "lAoS", <struct type>, 16 }.
/// array_count == 0 means no trailing `[N]`.
struct StructDecl {
  std::string name;
  TypeId type = kInvalidType;
  std::uint64_t array_count = 0;
};

/// Stateless parsing helpers over a shared TypeTable.
class DeclParser {
 public:
  explicit DeclParser(TypeTable& table) : table_(&table) {}

  /// Parses a whole source: any mix of struct definitions and variable
  /// declarations. Struct definitions are registered in the table; variable
  /// declarations are returned.
  std::vector<VarDecl> parse_all(std::string_view src);

  /// Parses `struct Name { fields... } [N]? ;` starting at the `struct`
  /// keyword. When `define` is true the struct is registered in the table.
  StructDecl parse_struct_decl(Lexer& lex, bool define = true);

  /// Parses a type specifier: primitive (with signed/unsigned/long
  /// combinations), `struct Name` reference, or a bare identifier naming a
  /// known struct. Throws Error{Parse} when nothing matches.
  TypeId parse_type_spec(Lexer& lex);

  /// Parses `*`* name `[N]`* and composes the final type from `base`.
  VarDecl parse_declarator(Lexer& lex, TypeId base);

  /// Parses the field list between `{` and `}` (both consumed).
  std::vector<PendingField> parse_field_list(Lexer& lex);

 private:
  TypeTable* table_;
};

/// Convenience wrapper: parse declarations from `src` into `table`.
std::vector<VarDecl> parse_declarations(std::string_view src,
                                        TypeTable& table);

}  // namespace tdt::layout
