// Field paths: the bridge between symbolic trace metadata
// ("glStructArray[0].myArray[1]") and byte offsets inside a type. The
// transformation engine works almost entirely in terms of paths — a rule
// matches a path in the `in` layout and re-resolves it in the `out` layout.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "layout/type.hpp"
#include "util/small_vector.hpp"

namespace tdt::layout {

/// One step of a field path: either a struct-field selection by name or an
/// array-index selection.
struct PathStep {
  enum class Kind : std::uint8_t { Field, Index };

  Kind kind = Kind::Field;
  std::string field;        // when kind == Field
  std::uint64_t index = 0;  // when kind == Index

  static PathStep make_field(std::string name) {
    return PathStep{Kind::Field, std::move(name), 0};
  }
  static PathStep make_index(std::uint64_t i) {
    return PathStep{Kind::Index, {}, i};
  }

  [[nodiscard]] bool is_field() const noexcept { return kind == Kind::Field; }
  [[nodiscard]] bool is_index() const noexcept { return kind == Kind::Index; }

  friend bool operator==(const PathStep& a, const PathStep& b) {
    return a.kind == b.kind &&
           (a.kind == Kind::Field ? a.field == b.field : a.index == b.index);
  }
};

/// A sequence of path steps relative to some root type.
using Path = SmallVector<PathStep, 4>;

/// Result of resolving a path: the byte offset from the root and the type
/// of the addressed sub-object.
struct Resolved {
  std::uint64_t offset = 0;
  TypeId type = kInvalidType;
};

/// Resolves `path` against `root`. Throws Error{Semantic} on an unknown
/// field, an index applied to a non-array, or an out-of-range index.
[[nodiscard]] Resolved resolve_path(const TypeTable& table, TypeId root,
                                    std::span<const PathStep> path);

/// Maps a byte offset back to the deepest path containing it. Returns
/// nullopt when `offset` lands in padding or outside the type. On success,
/// `remainder` receives the offset within the returned leaf (non-zero for
/// unaligned sub-accesses into a primitive).
[[nodiscard]] std::optional<Path> path_at_offset(const TypeTable& table,
                                                 TypeId root,
                                                 std::uint64_t offset,
                                                 std::uint64_t* remainder = nullptr);

/// Invokes `fn(path, offset, leaf_type)` for every primitive/pointer leaf
/// of `root`, in layout order.
void for_each_leaf(
    const TypeTable& table, TypeId root,
    const std::function<void(const Path&, std::uint64_t, TypeId)>& fn);

/// Renders a path as Gleipnir prints it: ".mX[3]" / "[0].dl". Leading base
/// name is not included (it belongs to the variable, not the path).
[[nodiscard]] std::string format_path(std::span<const PathStep> path);

/// Parses the textual path form produced by format_path. Accepts an
/// optional leading '.'; throws Error{Parse} on malformed input.
[[nodiscard]] Path parse_path(std::string_view text);

/// Name-based structural equivalence of leaf field names between two types:
/// the paper's rules match `in`/`out` structures by element name. Returns
/// the leaf field names (ignoring indices) of `root` in layout order.
[[nodiscard]] std::vector<std::string> leaf_field_names(const TypeTable& table,
                                                        TypeId root);

}  // namespace tdt::layout
