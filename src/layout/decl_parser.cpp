#include "layout/decl_parser.hpp"

#include "util/error.hpp"

namespace tdt::layout {
namespace {

bool is_type_keyword(std::string_view s) {
  return s == "char" || s == "short" || s == "int" || s == "long" ||
         s == "float" || s == "double" || s == "bool" || s == "signed" ||
         s == "unsigned";
}

}  // namespace

TypeId DeclParser::parse_type_spec(Lexer& lex) {
  const Token& t = lex.peek();
  if (t.is("struct")) {
    lex.next();
    Token name = lex.expect(TokKind::Ident, "struct name");
    const TypeId id = table_->find_struct(name.text);
    if (id == kInvalidType) {
      throw_parse_error("reference to undefined struct '" +
                            std::string(name.text) + "'",
                        name.loc);
    }
    return id;
  }
  if (t.kind == TokKind::Ident && is_type_keyword(t.text)) {
    // Absorb [signed|unsigned] [short|long [long]] [int|char|double] combos.
    bool saw_long = false, saw_short = false;
    std::string base;
    while (lex.peek().kind == TokKind::Ident &&
           is_type_keyword(lex.peek().text)) {
      std::string_view w = lex.next().text;
      if (w == "signed" || w == "unsigned") {
        continue;  // signedness does not affect layout
      }
      if (w == "long") {
        saw_long = true;
        continue;
      }
      if (w == "short") {
        saw_short = true;
        continue;
      }
      base = std::string(w);
    }
    if (base == "double") return table_->double_type();
    if (base == "float") return table_->float_type();
    if (base == "char") return table_->char_type();
    if (base == "bool") return table_->bool_type();
    if (saw_long) return table_->long_type();
    if (saw_short) return table_->short_type();
    // bare "int", "signed", "unsigned"
    return table_->int_type();
  }
  if (t.kind == TokKind::Ident) {
    // typedef-style bare struct name
    const TypeId id = table_->find_struct(t.text);
    if (id != kInvalidType) {
      lex.next();
      return id;
    }
  }
  throw_parse_error("expected a type, got '" +
                        std::string(t.kind == TokKind::End ? "<end>" : t.text) +
                        "'",
                    t.loc);
}

namespace {

std::uint64_t parse_extent_expr(Lexer& lex);

// Constant integer expressions in array extents: numbers, parentheses,
// * / % + -. (Macro identifiers are expanded before parsing.)
std::uint64_t parse_extent_primary(Lexer& lex) {
  if (lex.accept("(")) {
    const std::uint64_t v = parse_extent_expr(lex);
    lex.expect(")");
    return v;
  }
  return lex.expect(TokKind::Number, "array length").number();
}

std::uint64_t parse_extent_term(Lexer& lex) {
  std::uint64_t v = parse_extent_primary(lex);
  for (;;) {
    if (lex.accept("*")) {
      v *= parse_extent_primary(lex);
    } else if (lex.accept("/")) {
      const std::uint64_t d = parse_extent_primary(lex);
      if (d == 0) throw_parse_error("division by zero in array length");
      v /= d;
    } else if (lex.accept("%")) {
      const std::uint64_t d = parse_extent_primary(lex);
      if (d == 0) throw_parse_error("modulo by zero in array length");
      v %= d;
    } else {
      return v;
    }
  }
}

std::uint64_t parse_extent_expr(Lexer& lex) {
  std::uint64_t v = parse_extent_term(lex);
  for (;;) {
    if (lex.accept("+")) {
      v += parse_extent_term(lex);
    } else if (lex.accept("-")) {
      v -= parse_extent_term(lex);
    } else {
      return v;
    }
  }
}

}  // namespace

VarDecl DeclParser::parse_declarator(Lexer& lex, TypeId base) {
  TypeId type = base;
  while (lex.accept("*")) {
    type = table_->pointer_to(type);
  }
  Token name = lex.expect(TokKind::Ident, "declarator name");
  // Collect array extents left-to-right, then wrap right-to-left so that
  // `int a[2][3]` becomes array(2, array(3, int)).
  std::vector<std::uint64_t> extents;
  while (lex.accept("[")) {
    extents.push_back(parse_extent_expr(lex));
    lex.expect("]");
  }
  for (std::size_t i = extents.size(); i-- > 0;) {
    type = table_->array_of(type, extents[i]);
  }
  return VarDecl{std::string(name.text), type};
}

std::vector<PendingField> DeclParser::parse_field_list(Lexer& lex) {
  lex.expect("{");
  std::vector<PendingField> fields;
  while (!lex.accept("}")) {
    if (lex.peek().is("struct")) {
      // Two forms: `struct Name field;` (named field of previously defined
      // struct) and the paper's shorthand `struct Name;` meaning an
      // embedded field *named after* the struct (Listing 8, `struct
      // mRarelyUsed;`).
      lex.next();
      Token name = lex.expect(TokKind::Ident, "struct name");
      const TypeId st = table_->find_struct(name.text);
      if (st == kInvalidType) {
        throw_parse_error("reference to undefined struct '" +
                              std::string(name.text) + "'",
                          name.loc);
      }
      if (lex.accept(";")) {
        fields.push_back(PendingField{std::string(name.text), st});
        continue;
      }
      VarDecl d = parse_declarator(lex, st);
      lex.expect(";");
      fields.push_back(PendingField{std::move(d.name), d.type});
      continue;
    }
    const TypeId base = parse_type_spec(lex);
    VarDecl d = parse_declarator(lex, base);
    lex.expect(";");
    fields.push_back(PendingField{std::move(d.name), d.type});
  }
  return fields;
}

StructDecl DeclParser::parse_struct_decl(Lexer& lex, bool define) {
  lex.expect("struct");
  Token name = lex.expect(TokKind::Ident, "struct name");
  std::vector<PendingField> fields = parse_field_list(lex);
  StructDecl decl;
  decl.name = std::string(name.text);
  if (lex.accept("[")) {
    Token n = lex.expect(TokKind::Number, "array length");
    decl.array_count = n.number();
    lex.expect("]");
  }
  lex.expect(";");
  if (define) {
    decl.type = table_->define_struct(decl.name, std::move(fields));
  }
  return decl;
}

std::vector<VarDecl> DeclParser::parse_all(std::string_view src) {
  Lexer lex(src);
  std::vector<VarDecl> vars;
  while (!lex.at_end()) {
    if (lex.peek().is("struct")) {
      // Could be a struct definition or a variable of struct type; decide
      // by whether a '{' follows the name. The lexer has only one token of
      // lookahead, so probe with a scratch lexer is avoided by parsing the
      // name and branching.
      Lexer probe = lex;  // cheap copy: lexer is a view + offsets
      probe.next();       // 'struct'
      probe.next();       // name
      if (probe.peek().is("{")) {
        StructDecl sd = parse_struct_decl(lex);
        if (sd.array_count != 0) {
          // `struct X {...}[N];` at top level declares variable X of X[N].
          vars.push_back(
              VarDecl{sd.name, table_->array_of(sd.type, sd.array_count)});
        }
        continue;
      }
    }
    const TypeId base = parse_type_spec(lex);
    vars.push_back(parse_declarator(lex, base));
    while (lex.accept(",")) {
      vars.push_back(parse_declarator(lex, base));
    }
    lex.expect(";");
  }
  return vars;
}

std::vector<VarDecl> parse_declarations(std::string_view src,
                                        TypeTable& table) {
  return DeclParser(table).parse_all(src);
}

}  // namespace tdt::layout
