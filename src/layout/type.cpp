#include "layout/type.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tdt::layout {

TypeTable::TypeTable() {
  char_ = add_primitive("char", 1);
  bool_ = add_primitive("bool", 1);
  short_ = add_primitive("short", 2);
  int_ = add_primitive("int", 4);
  long_ = add_primitive("long", 8);
  float_ = add_primitive("float", 4);
  double_ = add_primitive("double", 8);
}

TypeId TypeTable::add_primitive(std::string name, std::uint64_t size) {
  Node n;
  n.kind = TypeKind::Primitive;
  n.size = size;
  n.align = size;
  n.name = name;
  const auto id = static_cast<TypeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  primitive_index_.emplace(std::move(name), id);
  return id;
}

TypeId TypeTable::find_primitive(std::string_view name) const noexcept {
  if (auto it = primitive_index_.find(std::string(name));
      it != primitive_index_.end()) {
    return it->second;
  }
  return kInvalidType;
}

TypeId TypeTable::pointer_to(TypeId pointee) {
  internal_check(pointee < nodes_.size(), "pointer to unknown type");
  if (auto it = pointer_index_.find(pointee); it != pointer_index_.end()) {
    return it->second;
  }
  Node n;
  n.kind = TypeKind::Pointer;
  n.size = 8;
  n.align = 8;
  n.element = pointee;
  const auto id = static_cast<TypeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  pointer_index_.emplace(pointee, id);
  return id;
}

TypeId TypeTable::array_of(TypeId element, std::uint64_t count) {
  internal_check(element < nodes_.size(), "array of unknown type");
  if (count == 0) {
    throw_semantic_error("zero-length arrays are not supported");
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(element) << 32) ^ (count * 0x9e3779b97f4aULL);
  if (auto it = array_index_.find(key); it != array_index_.end()) {
    // Hash collision across (element, count) pairs is possible in theory;
    // verify before reusing.
    const Node& cand = nodes_[it->second];
    if (cand.element == element && cand.count == count) return it->second;
  }
  Node n;
  n.kind = TypeKind::Array;
  n.element = element;
  n.count = count;
  n.size = size_of(element) * count;
  n.align = align_of(element);
  const auto id = static_cast<TypeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  array_index_.emplace(key, id);
  return id;
}

TypeId TypeTable::forward_struct(std::string name) {
  if (struct_index_.contains(name)) {
    throw_semantic_error("struct '" + name + "' is already declared");
  }
  Node n;
  n.kind = TypeKind::Struct;
  n.name = name;
  n.complete = false;
  const auto id = static_cast<TypeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  struct_index_.emplace(std::move(name), id);
  return id;
}

void TypeTable::complete_struct(TypeId id, std::vector<PendingField> fields) {
  internal_check(id < nodes_.size(), "complete_struct on unknown id");
  if (nodes_[id].kind != TypeKind::Struct || nodes_[id].complete) {
    throw_semantic_error("complete_struct on a type that is not an "
                         "incomplete struct");
  }
  Node& n = nodes_[id];
  std::uint64_t offset = 0;
  std::uint64_t max_align = 1;
  for (PendingField& f : fields) {
    internal_check(f.type < nodes_.size(), "struct field with unknown type");
    if (f.type == id ||
        (kind(f.type) != TypeKind::Pointer && !is_complete(f.type))) {
      throw_semantic_error("field '" + f.name +
                           "' has incomplete type (only pointers to an "
                           "incomplete struct are allowed)");
    }
    for (const FieldInfo& existing : n.fields) {
      if (existing.name == f.name) {
        throw_semantic_error("duplicate field '" + f.name + "' in struct '" +
                             n.name + "'");
      }
    }
    const std::uint64_t a = align_of(f.type);
    max_align = std::max(max_align, a);
    offset = align_up(offset, a);
    n.fields.push_back(FieldInfo{std::move(f.name), f.type, offset});
    offset += size_of(f.type);
  }
  n.align = max_align;
  n.size = align_up(std::max<std::uint64_t>(offset, 1), max_align);
  n.complete = true;
}

bool TypeTable::is_complete(TypeId id) const { return node(id).complete; }

TypeId TypeTable::define_struct(std::string name,
                                std::vector<PendingField> fields) {
  const TypeId id = forward_struct(std::move(name));
  complete_struct(id, std::move(fields));
  return id;
}

TypeId TypeTable::find_struct(std::string_view name) const noexcept {
  if (auto it = struct_index_.find(std::string(name));
      it != struct_index_.end()) {
    return it->second;
  }
  return kInvalidType;
}

const TypeTable::Node& TypeTable::node(TypeId id) const {
  internal_check(id < nodes_.size(), "TypeId out of range");
  return nodes_[id];
}

TypeKind TypeTable::kind(TypeId id) const { return node(id).kind; }

std::uint64_t TypeTable::size_of(TypeId id) const { return node(id).size; }

std::uint64_t TypeTable::align_of(TypeId id) const { return node(id).align; }

TypeId TypeTable::element(TypeId id) const {
  const Node& n = node(id);
  internal_check(n.kind == TypeKind::Array || n.kind == TypeKind::Pointer,
                 "element() on non-array/pointer");
  return n.element;
}

std::uint64_t TypeTable::array_count(TypeId id) const {
  const Node& n = node(id);
  internal_check(n.kind == TypeKind::Array, "array_count() on non-array");
  return n.count;
}

std::span<const FieldInfo> TypeTable::fields(TypeId id) const {
  const Node& n = node(id);
  internal_check(n.kind == TypeKind::Struct, "fields() on non-struct");
  return n.fields;
}

const FieldInfo* TypeTable::find_field(TypeId id,
                                       std::string_view name) const {
  for (const FieldInfo& f : fields(id)) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string_view TypeTable::name(TypeId id) const { return node(id).name; }

std::string TypeTable::render(TypeId id) const {
  const Node& n = node(id);
  switch (n.kind) {
    case TypeKind::Primitive:
    case TypeKind::Struct:
      return n.name;
    case TypeKind::Pointer:
      return render(n.element) + "*";
    case TypeKind::Array:
      return render(n.element) + "[" + std::to_string(n.count) + "]";
  }
  return "?";
}

std::uint64_t TypeTable::padding_bytes(TypeId id) const {
  const Node& n = node(id);
  switch (n.kind) {
    case TypeKind::Primitive:
    case TypeKind::Pointer:
      return 0;
    case TypeKind::Array:
      return n.count * padding_bytes(n.element);
    case TypeKind::Struct: {
      std::uint64_t payload = 0;
      for (const FieldInfo& f : n.fields) {
        payload += size_of(f.type) - padding_bytes(f.type);
      }
      return n.size - payload;
    }
  }
  return 0;
}

}  // namespace tdt::layout
