// Type system and record-layout engine. Replaces the compiler/DWARF symbol
// information Gleipnir reads: given C-like type definitions it computes the
// System-V x86-64 sizes, alignments, and field offsets that a compiler
// would produce, and supports the reverse mapping from a byte offset back
// to a field path (needed to interpret raw trace addresses).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tdt::layout {

/// Index of a type inside a TypeTable. Stable for the table's lifetime.
using TypeId = std::uint32_t;

/// Sentinel for "no type".
inline constexpr TypeId kInvalidType = 0xFFFFFFFFu;

/// The four structural kinds of types we model.
enum class TypeKind : std::uint8_t { Primitive, Pointer, Array, Struct };

/// A named member of a struct with its computed byte offset.
struct FieldInfo {
  std::string name;
  TypeId type = kInvalidType;
  std::uint64_t offset = 0;
};

/// A field requested during struct definition (offset not yet computed).
struct PendingField {
  std::string name;
  TypeId type = kInvalidType;
};

/// Arena of interned types. Layout rules follow the LP64 System-V ABI:
/// char=1, short=2, int=4, long=8, float=4, double=8, pointers=8, each
/// aligned to its size; structs are padded so every field sits at a
/// multiple of its alignment and the total size is a multiple of the
/// largest member alignment.
class TypeTable {
 public:
  TypeTable();

  TypeTable(const TypeTable&) = delete;
  TypeTable& operator=(const TypeTable&) = delete;
  TypeTable(TypeTable&&) noexcept = default;
  TypeTable& operator=(TypeTable&&) noexcept = default;

  // --- primitives -------------------------------------------------------

  /// Finds a primitive by canonical name ("char", "short", "int", "long",
  /// "float", "double", "bool"); returns kInvalidType when unknown.
  [[nodiscard]] TypeId find_primitive(std::string_view name) const noexcept;

  [[nodiscard]] TypeId char_type() const noexcept { return char_; }
  [[nodiscard]] TypeId short_type() const noexcept { return short_; }
  [[nodiscard]] TypeId int_type() const noexcept { return int_; }
  [[nodiscard]] TypeId long_type() const noexcept { return long_; }
  [[nodiscard]] TypeId float_type() const noexcept { return float_; }
  [[nodiscard]] TypeId double_type() const noexcept { return double_; }
  [[nodiscard]] TypeId bool_type() const noexcept { return bool_; }

  // --- constructors (interned) ------------------------------------------

  /// Pointer to `pointee` (8 bytes, 8-aligned).
  TypeId pointer_to(TypeId pointee);

  /// Array of `count` elements of `element`. count must be > 0.
  TypeId array_of(TypeId element, std::uint64_t count);

  /// Defines a new struct named `name` with the given fields, computing
  /// offsets and padding. Throws Error{Semantic} when `name` is already
  /// defined or a field name repeats.
  TypeId define_struct(std::string name, std::vector<PendingField> fields);

  /// Declares a struct name without a body (size 0 until completed), so
  /// self-referential types like `struct Node { int v; Node* next; }` can
  /// be built: forward-declare, form the pointer, then complete.
  TypeId forward_struct(std::string name);

  /// Completes a forward-declared struct with its fields. Throws
  /// Error{Semantic} when `id` is not an incomplete struct.
  void complete_struct(TypeId id, std::vector<PendingField> fields);

  /// True when `id` is a struct whose body has been provided.
  [[nodiscard]] bool is_complete(TypeId id) const;

  /// Finds a previously defined struct; returns kInvalidType when unknown.
  [[nodiscard]] TypeId find_struct(std::string_view name) const noexcept;

  // --- queries ----------------------------------------------------------

  [[nodiscard]] TypeKind kind(TypeId id) const;
  [[nodiscard]] std::uint64_t size_of(TypeId id) const;
  [[nodiscard]] std::uint64_t align_of(TypeId id) const;

  /// Element type of an array or pointee of a pointer.
  [[nodiscard]] TypeId element(TypeId id) const;

  /// Number of elements of an array type.
  [[nodiscard]] std::uint64_t array_count(TypeId id) const;

  /// Fields of a struct type, in declaration order with computed offsets.
  [[nodiscard]] std::span<const FieldInfo> fields(TypeId id) const;

  /// Finds a struct field by name; nullptr when absent.
  [[nodiscard]] const FieldInfo* find_field(TypeId id,
                                            std::string_view name) const;

  /// Struct or primitive name; empty for pointers/arrays (use render()).
  [[nodiscard]] std::string_view name(TypeId id) const;

  /// Human-readable rendering: "int", "double*", "int[10]",
  /// "struct Pt{int x; int y;}" rendered as "Pt".
  [[nodiscard]] std::string render(TypeId id) const;

  /// Total number of types in the table.
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Bytes of padding inside a struct (total size minus sum of leaf sizes).
  [[nodiscard]] std::uint64_t padding_bytes(TypeId id) const;

 private:
  struct Node {
    TypeKind kind;
    std::uint64_t size = 0;
    std::uint64_t align = 1;
    std::string name;          // primitives and structs
    TypeId element = kInvalidType;  // arrays and pointers
    std::uint64_t count = 0;        // arrays
    std::vector<FieldInfo> fields;  // structs
    bool complete = true;           // false for forward-declared structs
  };

  const Node& node(TypeId id) const;
  TypeId add_primitive(std::string name, std::uint64_t size);

  std::vector<Node> nodes_;
  std::unordered_map<std::string, TypeId> primitive_index_;
  std::unordered_map<std::string, TypeId> struct_index_;
  std::unordered_map<std::uint64_t, TypeId> pointer_index_;  // key: pointee
  std::unordered_map<std::uint64_t, TypeId> array_index_;    // key: elem<<24|count hash
  TypeId char_ = kInvalidType, short_ = kInvalidType, int_ = kInvalidType,
         long_ = kInvalidType, float_ = kInvalidType, double_ = kInvalidType,
         bool_ = kInvalidType;
};

/// Rounds `value` up to the next multiple of `alignment` (a power of two
/// or any positive integer).
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t value,
                                               std::uint64_t alignment) noexcept {
  if (alignment == 0) return value;
  const std::uint64_t rem = value % alignment;
  return rem == 0 ? value : value + (alignment - rem);
}

}  // namespace tdt::layout
