#include "layout/path.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::layout {

Resolved resolve_path(const TypeTable& table, TypeId root,
                      std::span<const PathStep> path) {
  Resolved r{0, root};
  for (const PathStep& step : path) {
    switch (table.kind(r.type)) {
      case TypeKind::Struct: {
        if (!step.is_field()) {
          throw_semantic_error("index selector applied to struct '" +
                               std::string(table.name(r.type)) + "'");
        }
        const FieldInfo* f = table.find_field(r.type, step.field);
        if (f == nullptr) {
          throw_semantic_error("struct '" + std::string(table.name(r.type)) +
                               "' has no field '" + step.field + "'");
        }
        r.offset += f->offset;
        r.type = f->type;
        break;
      }
      case TypeKind::Array: {
        if (!step.is_index()) {
          throw_semantic_error("field selector '" + step.field +
                               "' applied to array type " +
                               table.render(r.type));
        }
        if (step.index >= table.array_count(r.type)) {
          throw_semantic_error("index " + std::to_string(step.index) +
                               " out of range for " + table.render(r.type));
        }
        const TypeId elem = table.element(r.type);
        r.offset += step.index * table.size_of(elem);
        r.type = elem;
        break;
      }
      case TypeKind::Primitive:
      case TypeKind::Pointer:
        throw_semantic_error("selector applied to scalar type " +
                             table.render(r.type));
    }
  }
  return r;
}

std::optional<Path> path_at_offset(const TypeTable& table, TypeId root,
                                   std::uint64_t offset,
                                   std::uint64_t* remainder) {
  Path path;
  TypeId type = root;
  for (;;) {
    if (offset >= table.size_of(type)) return std::nullopt;
    switch (table.kind(type)) {
      case TypeKind::Primitive:
      case TypeKind::Pointer:
        if (remainder != nullptr) *remainder = offset;
        return path;
      case TypeKind::Array: {
        const TypeId elem = table.element(type);
        const std::uint64_t esize = table.size_of(elem);
        const std::uint64_t idx = offset / esize;
        path.push_back(PathStep::make_index(idx));
        offset -= idx * esize;
        type = elem;
        break;
      }
      case TypeKind::Struct: {
        const FieldInfo* best = nullptr;
        for (const FieldInfo& f : table.fields(type)) {
          if (f.offset <= offset &&
              offset < f.offset + table.size_of(f.type)) {
            best = &f;
            break;
          }
        }
        if (best == nullptr) return std::nullopt;  // padding
        path.push_back(PathStep::make_field(best->name));
        offset -= best->offset;
        type = best->type;
        break;
      }
    }
  }
}

namespace {

void for_each_leaf_impl(
    const TypeTable& table, TypeId type, Path& prefix, std::uint64_t base,
    const std::function<void(const Path&, std::uint64_t, TypeId)>& fn) {
  switch (table.kind(type)) {
    case TypeKind::Primitive:
    case TypeKind::Pointer:
      fn(prefix, base, type);
      return;
    case TypeKind::Array: {
      const TypeId elem = table.element(type);
      const std::uint64_t esize = table.size_of(elem);
      for (std::uint64_t i = 0; i < table.array_count(type); ++i) {
        prefix.push_back(PathStep::make_index(i));
        for_each_leaf_impl(table, elem, prefix, base + i * esize, fn);
        prefix.pop_back();
      }
      return;
    }
    case TypeKind::Struct:
      for (const FieldInfo& f : table.fields(type)) {
        prefix.push_back(PathStep::make_field(f.name));
        for_each_leaf_impl(table, f.type, prefix, base + f.offset, fn);
        prefix.pop_back();
      }
      return;
  }
}

}  // namespace

void for_each_leaf(
    const TypeTable& table, TypeId root,
    const std::function<void(const Path&, std::uint64_t, TypeId)>& fn) {
  Path prefix;
  for_each_leaf_impl(table, root, prefix, 0, fn);
}

std::string format_path(std::span<const PathStep> path) {
  std::string out;
  for (const PathStep& step : path) {
    if (step.is_field()) {
      out += '.';
      out += step.field;
    } else {
      out += '[';
      out += std::to_string(step.index);
      out += ']';
    }
  }
  return out;
}

Path parse_path(std::string_view text) {
  Path path;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '.') {
      ++i;
      std::size_t start = i;
      if (i >= text.size() || !is_ident_start(text[i])) {
        throw_parse_error("expected field name after '.' in path '" +
                          std::string(text) + "'");
      }
      while (i < text.size() && is_ident_char(text[i])) ++i;
      path.push_back(
          PathStep::make_field(std::string(text.substr(start, i - start))));
    } else if (text[i] == '[') {
      ++i;
      std::size_t start = i;
      while (i < text.size() && text[i] != ']') ++i;
      if (i >= text.size()) {
        throw_parse_error("unterminated '[' in path '" + std::string(text) +
                          "'");
      }
      auto idx = parse_uint(text.substr(start, i - start));
      if (!idx) {
        throw_parse_error("bad array index in path '" + std::string(text) +
                          "'");
      }
      path.push_back(PathStep::make_index(*idx));
      ++i;  // skip ']'
    } else if (i == 0 && is_ident_start(text[i])) {
      // Tolerate a bare leading field name without the '.'.
      std::size_t start = i;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      path.push_back(
          PathStep::make_field(std::string(text.substr(start, i - start))));
    } else {
      throw_parse_error("unexpected character '" + std::string(1, text[i]) +
                        "' in path '" + std::string(text) + "'");
    }
  }
  return path;
}

std::vector<std::string> leaf_field_names(const TypeTable& table,
                                          TypeId root) {
  std::vector<std::string> names;
  for_each_leaf(table, root,
                [&](const Path& path, std::uint64_t, TypeId) {
                  // Last field step names the leaf; indices are ignored so
                  // all elements of an array report one name.
                  for (std::size_t i = path.size(); i-- > 0;) {
                    if (path[i].is_field()) {
                      if (names.empty() || names.back() != path[i].field) {
                        names.push_back(path[i].field);
                      }
                      return;
                    }
                  }
                });
  return names;
}

}  // namespace tdt::layout
