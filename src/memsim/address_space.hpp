// Model of the traced process's virtual address space. Gleipnir traces
// show three address regions (paper Listing 2): a stack around
// 0x7ff000000 growing downward (locals), a data segment around 0x601000
// (globals), and a heap. The synthetic tracer allocates variables here so
// that generated traces carry realistic, correctly aligned addresses —
// the only address property cache behaviour depends on.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace tdt::memsim {

/// Address-space region.
enum class Segment : std::uint8_t { Stack, Globals, Heap };

/// Configurable segment bases, defaulting to the ranges visible in the
/// paper's trace listings.
struct AddressSpaceConfig {
  std::uint64_t stack_base = 0x7ff000000ULL;   ///< top of stack (grows down)
  std::uint64_t global_base = 0x000601000ULL;  ///< data segment (grows up)
  std::uint64_t heap_base = 0x000a00000ULL;    ///< heap (grows up)
  std::uint64_t stack_limit = 0x7fe000000ULL;  ///< lowest legal stack address
};

/// Segmented allocator with stack-frame discipline and a first-fit
/// free-list heap.
class AddressSpace {
 public:
  explicit AddressSpace(AddressSpaceConfig config = {});

  // --- globals ----------------------------------------------------------

  /// Allocates `size` bytes in the data segment at `align` alignment.
  std::uint64_t alloc_global(std::uint64_t size, std::uint64_t align);

  // --- stack ------------------------------------------------------------

  /// Opens a new stack frame; returns its frame id (0-based, outermost
  /// first — matching the frame column of Gleipnir trace lines).
  std::uint16_t push_frame();

  /// Allocates `size` bytes in the current frame (stack grows down).
  /// Throws Error{Config} when the stack would overflow `stack_limit`.
  std::uint64_t alloc_stack(std::uint64_t size, std::uint64_t align);

  /// Closes the current frame, releasing its allocations.
  void pop_frame();

  /// Current frame id; 0 when only the outermost frame is open.
  [[nodiscard]] std::uint16_t current_frame() const noexcept;

  /// Number of open frames.
  [[nodiscard]] std::size_t frame_depth() const noexcept {
    return frames_.size();
  }

  // --- heap -------------------------------------------------------------

  /// Allocates `size` bytes on the simulated heap (16-byte aligned like
  /// glibc malloc). Returns the block address.
  std::uint64_t heap_alloc(std::uint64_t size);

  /// Frees a block previously returned by heap_alloc.
  /// Throws Error{Semantic} on a double free or an unknown pointer.
  void heap_free(std::uint64_t address);

  /// Bytes currently allocated on the heap.
  [[nodiscard]] std::uint64_t heap_live_bytes() const noexcept {
    return heap_live_;
  }

  // --- queries ----------------------------------------------------------

  /// Classifies an address by segment based on the configured bases.
  [[nodiscard]] Segment segment_of(std::uint64_t address) const noexcept;

  [[nodiscard]] const AddressSpaceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Frame {
    std::uint64_t top;  ///< next free address going down
  };

  AddressSpaceConfig config_;
  std::uint64_t global_cursor_;
  std::vector<Frame> frames_;

  // Heap: cursor bump plus a free list keyed by address, storing size.
  std::uint64_t heap_cursor_;
  std::uint64_t heap_live_ = 0;
  std::map<std::uint64_t, std::uint64_t> heap_blocks_;  ///< live: addr->size
  std::map<std::uint64_t, std::uint64_t> heap_free_;    ///< free: addr->size
};

}  // namespace tdt::memsim
