#include "memsim/address_space.hpp"

#include "layout/type.hpp"
#include "util/error.hpp"

namespace tdt::memsim {

using layout::align_up;

AddressSpace::AddressSpace(AddressSpaceConfig config)
    : config_(config),
      global_cursor_(config.global_base),
      heap_cursor_(config.heap_base) {
  frames_.push_back(Frame{config_.stack_base});
}

std::uint64_t AddressSpace::alloc_global(std::uint64_t size,
                                         std::uint64_t align) {
  internal_check(size > 0 && align > 0, "bad global allocation request");
  global_cursor_ = align_up(global_cursor_, align);
  const std::uint64_t addr = global_cursor_;
  global_cursor_ += size;
  return addr;
}

std::uint16_t AddressSpace::push_frame() {
  frames_.push_back(Frame{frames_.back().top});
  return current_frame();
}

std::uint64_t AddressSpace::alloc_stack(std::uint64_t size,
                                        std::uint64_t align) {
  internal_check(size > 0 && align > 0, "bad stack allocation request");
  Frame& frame = frames_.back();
  std::uint64_t addr = frame.top - size;
  addr -= addr % align;  // align downward
  if (addr < config_.stack_limit) {
    throw_config_error("simulated stack overflow (limit 0x" +
                       std::to_string(config_.stack_limit) + ")");
  }
  frame.top = addr;
  return addr;
}

void AddressSpace::pop_frame() {
  internal_check(frames_.size() > 1, "pop_frame on outermost frame");
  frames_.pop_back();
}

std::uint16_t AddressSpace::current_frame() const noexcept {
  return static_cast<std::uint16_t>(frames_.size() - 1);
}

std::uint64_t AddressSpace::heap_alloc(std::uint64_t size) {
  internal_check(size > 0, "heap_alloc of zero bytes");
  size = align_up(size, 16);
  // First fit over the free list.
  for (auto it = heap_free_.begin(); it != heap_free_.end(); ++it) {
    if (it->second >= size) {
      const std::uint64_t addr = it->first;
      const std::uint64_t remaining = it->second - size;
      heap_free_.erase(it);
      if (remaining != 0) {
        heap_free_.emplace(addr + size, remaining);
      }
      heap_blocks_.emplace(addr, size);
      heap_live_ += size;
      return addr;
    }
  }
  const std::uint64_t addr = heap_cursor_;
  heap_cursor_ += size;
  heap_blocks_.emplace(addr, size);
  heap_live_ += size;
  return addr;
}

void AddressSpace::heap_free(std::uint64_t address) {
  auto it = heap_blocks_.find(address);
  if (it == heap_blocks_.end()) {
    throw_semantic_error("heap_free of unknown or already-freed address");
  }
  const std::uint64_t size = it->second;
  heap_blocks_.erase(it);
  heap_live_ -= size;

  // Insert into the free list, coalescing with neighbours.
  auto [pos, inserted] = heap_free_.emplace(address, size);
  internal_check(inserted, "free list corruption");
  // Coalesce with successor.
  auto next = std::next(pos);
  if (next != heap_free_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    heap_free_.erase(next);
  }
  // Coalesce with predecessor.
  if (pos != heap_free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      heap_free_.erase(pos);
    }
  }
}

Segment AddressSpace::segment_of(std::uint64_t address) const noexcept {
  if (address >= config_.stack_limit) return Segment::Stack;
  if (address >= config_.heap_base) return Segment::Heap;
  return Segment::Globals;
}

}  // namespace tdt::memsim
