#include "memsim/symbol_table.hpp"

#include "util/error.hpp"

namespace tdt::memsim {

using layout::TypeKind;

trace::VarScope VarInfo::scope(const layout::TypeTable& table) const {
  const bool aggregate = table.kind(type) == TypeKind::Array ||
                         table.kind(type) == TypeKind::Struct;
  if (global) {
    return aggregate ? trace::VarScope::GlobalStructure
                     : trace::VarScope::GlobalVariable;
  }
  return aggregate ? trace::VarScope::LocalStructure
                   : trace::VarScope::LocalVariable;
}

SymbolTable::SymbolTable(const layout::TypeTable& types, AddressSpace& space)
    : types_(&types), space_(&space) {
  scopes_.resize(2);  // [0] globals, [1] outermost locals
}

const VarInfo& SymbolTable::declare_global(std::string name,
                                           layout::TypeId type) {
  const std::uint64_t addr =
      space_->alloc_global(types_->size_of(type), types_->align_of(type));
  VarInfo v{std::move(name), type, addr, /*global=*/true, 0};
  scopes_[0].push_back(std::move(v));
  return scopes_[0].back();
}

const VarInfo& SymbolTable::declare_local(std::string name,
                                          layout::TypeId type) {
  const std::uint64_t addr =
      space_->alloc_stack(types_->size_of(type), types_->align_of(type));
  VarInfo v{std::move(name), type, addr, /*global=*/false,
            space_->current_frame()};
  scopes_.back().push_back(std::move(v));
  return scopes_.back().back();
}

const VarInfo& SymbolTable::declare_at(std::string name, layout::TypeId type,
                                       std::uint64_t address, bool global) {
  VarInfo v{std::move(name), type, address, global,
            global ? std::uint16_t{0} : space_->current_frame()};
  auto& scope = global ? scopes_[0] : scopes_.back();
  scope.push_back(std::move(v));
  return scope.back();
}

void SymbolTable::push_scope() {
  space_->push_frame();
  scopes_.emplace_back();
}

void SymbolTable::pop_scope() {
  internal_check(scopes_.size() > 2, "pop_scope on outermost scope");
  scopes_.pop_back();
  space_->pop_frame();
}

const VarInfo* SymbolTable::lookup(std::string_view name) const {
  for (std::size_t s = scopes_.size(); s-- > 0;) {
    for (std::size_t i = scopes_[s].size(); i-- > 0;) {
      if (scopes_[s][i].name == name) return &scopes_[s][i];
    }
  }
  return nullptr;
}

std::optional<AddressResolution> SymbolTable::resolve_address(
    std::uint64_t address) const {
  for (std::size_t s = scopes_.size(); s-- > 0;) {
    for (std::size_t i = scopes_[s].size(); i-- > 0;) {
      const VarInfo& v = scopes_[s][i];
      const std::uint64_t size = types_->size_of(v.type);
      if (address >= v.base && address < v.base + size) {
        std::uint64_t remainder = 0;
        auto path = layout::path_at_offset(*types_, v.type, address - v.base,
                                           &remainder);
        if (!path) return std::nullopt;  // padding
        return AddressResolution{&v, std::move(*path), remainder};
      }
    }
  }
  return std::nullopt;
}

std::vector<const VarInfo*> SymbolTable::live_variables() const {
  std::vector<const VarInfo*> out;
  for (const auto& scope : scopes_) {
    for (const VarInfo& v : scope) out.push_back(&v);
  }
  return out;
}

}  // namespace tdt::memsim
