// Symbol table binding variable names to (type, base address, scope).
// Plays the role of the compiler-generated symbol table Gleipnir's debug
// parser reads (paper §III-A): given a raw address the table answers
// "which variable, and which element inside it".
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "layout/path.hpp"
#include "layout/type.hpp"
#include "memsim/address_space.hpp"
#include "trace/record.hpp"

namespace tdt::memsim {

/// A declared variable.
struct VarInfo {
  std::string name;
  layout::TypeId type = layout::kInvalidType;
  std::uint64_t base = 0;
  bool global = false;
  std::uint16_t frame = 0;  ///< frame id for locals

  /// Gleipnir scope code for an access to this variable: LV/LS for locals,
  /// GV/GS for globals, the S variants when the variable is an aggregate.
  [[nodiscard]] trace::VarScope scope(const layout::TypeTable& table) const;
};

/// Result of an address lookup: the variable plus the element path inside
/// it ("glStructArray" + "[0].myArray[1]").
struct AddressResolution {
  const VarInfo* var = nullptr;
  layout::Path path;
  std::uint64_t offset_in_leaf = 0;
};

/// Scoped symbol table backed by an AddressSpace for address assignment.
class SymbolTable {
 public:
  SymbolTable(const layout::TypeTable& types, AddressSpace& space);

  /// Declares a global, allocating it in the data segment.
  const VarInfo& declare_global(std::string name, layout::TypeId type);

  /// Declares a local in the current frame (stack allocation).
  const VarInfo& declare_local(std::string name, layout::TypeId type);

  /// Declares a variable at a caller-chosen address (used by the
  /// transformation engine when it places the `out` structure itself).
  const VarInfo& declare_at(std::string name, layout::TypeId type,
                            std::uint64_t address, bool global);

  /// Opens a scope (function call): pushes a stack frame.
  void push_scope();

  /// Closes the innermost scope, dropping its variables.
  void pop_scope();

  /// Innermost-first name lookup. nullptr when not found.
  [[nodiscard]] const VarInfo* lookup(std::string_view name) const;

  /// Maps an address to the variable containing it and the element path;
  /// nullopt when no live variable covers the address (or it lands in
  /// struct padding).
  [[nodiscard]] std::optional<AddressResolution> resolve_address(
      std::uint64_t address) const;

  /// All live variables, globals first, then locals outermost-first.
  [[nodiscard]] std::vector<const VarInfo*> live_variables() const;

  [[nodiscard]] const layout::TypeTable& types() const noexcept {
    return *types_;
  }
  [[nodiscard]] AddressSpace& space() noexcept { return *space_; }

 private:
  const layout::TypeTable* types_;
  AddressSpace* space_;
  // Deques give returned VarInfo references stability across later
  // declarations in the same scope.
  std::vector<std::deque<VarInfo>> scopes_;  // scopes_[0] = globals
};

}  // namespace tdt::memsim
