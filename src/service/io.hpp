// Tool I/O indirection: the one seam that lets the same tool body run
// standalone (stdout/stderr) or inside the tdtd daemon (captured into a
// reply). A ToolIO carries the two stdio streams a tool is allowed to
// write plus an ostream view of the error stream for components that
// speak iostreams (DiagEngine echo, Heartbeat).
//
// The capture backend (CaptureIO) funnels *all* error-stream writes —
// fprintf through `err` and ostream inserts through `errs` — into one
// open_memstream buffer, so interleaving order is preserved exactly as
// it would be on a real stderr.
#pragma once

#include <cstdio>
#include <ostream>
#include <streambuf>
#include <string>

namespace tdt::service {

/// The streams a tool body writes. Standalone runs point these at the
/// process stdout/stderr; daemon-served runs point them at capture
/// buffers. Tool bodies must write through these and never name stdout /
/// stderr / std::cerr directly — that is what keeps a --connect run
/// byte-identical to a standalone one.
struct ToolIO {
  std::FILE* out = nullptr;   ///< the tool's report stream
  std::FILE* err = nullptr;   ///< diagnostics stream
  std::ostream* errs = nullptr;  ///< ostream view of `err` (same bytes)
};

/// std::streambuf that forwards straight to a FILE* (unbuffered), so an
/// ostream and fprintf writes to the same FILE interleave correctly.
class FileStreambuf final : public std::streambuf {
 public:
  explicit FileStreambuf(std::FILE* file) : file_(file) {}

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    return std::fputc(ch, file_) == EOF ? traits_type::eof() : ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return static_cast<std::streamsize>(
        std::fwrite(s, 1, static_cast<std::size_t>(n), file_));
  }

 private:
  std::FILE* file_;
};

/// ToolIO over the real process streams (the local backend).
[[nodiscard]] ToolIO standard_io() noexcept;

/// ToolIO whose streams land in in-memory buffers (the daemon backend).
/// take_out()/take_err() flush and hand the captured bytes over; the
/// destructor releases everything.
class CaptureIO {
 public:
  CaptureIO();
  ~CaptureIO();

  CaptureIO(const CaptureIO&) = delete;
  CaptureIO& operator=(const CaptureIO&) = delete;

  [[nodiscard]] ToolIO& io() noexcept { return io_; }

  /// Captured stdout bytes so far (flushes first).
  [[nodiscard]] std::string out_bytes();
  /// Captured stderr bytes so far (flushes first).
  [[nodiscard]] std::string err_bytes();

 private:
  std::FILE* out_file_ = nullptr;
  std::FILE* err_file_ = nullptr;
  char* out_buf_ = nullptr;
  char* err_buf_ = nullptr;
  std::size_t out_len_ = 0;
  std::size_t err_len_ = 0;
  FileStreambuf err_streambuf_;
  std::ostream err_stream_;
  ToolIO io_;
};

}  // namespace tdt::service
