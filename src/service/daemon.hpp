// tdtd — the persistent sweep/autotune service. One Daemon owns:
//
//   * a unix-domain listener speaking tdt-rpc/1 (protocol.hpp), with one
//     connection thread per client and poll-based reads so shutdown
//     never waits on a parked accept(2)/read(2);
//   * a request scheduler: tool-backed ops are queued on a BoundedQueue
//     and executed by a fixed worker pool; try_push gives admission
//     control (a full queue answers "busy" instead of stalling the
//     client); quick built-ins (status/metrics/register-trace/shutdown)
//     run inline on the connection thread;
//   * a ResultMemo keyed by (op, canonical args, input-file digests) so
//     repeated identical requests — the interactive sweep-exploration
//     loop — are answered from memory, byte-identical to the cold run;
//   * an obs::Registry serving live service.* metrics over the
//     `metrics` op.
//
// The daemon knows nothing about specific tools: the tdtd executable
// registers one OpHandler per op, closing over the same tool bodies the
// standalone binaries run. That is the api_redesign contract — a
// --connect run and a local run execute identical code, differing only
// in where the bytes land.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/io.hpp"
#include "service/memo.hpp"
#include "service/netio.hpp"
#include "service/protocol.hpp"
#include "util/bounded_queue.hpp"
#include "util/obs.hpp"

namespace tdt::service {

struct DaemonConfig {
  std::string socket_path;
  unsigned workers = 2;           ///< tool-op executor threads
  std::size_t queue_capacity = 8; ///< pending tool ops before "busy"
  std::uint64_t memo_bytes = 64u << 20;  ///< 0 disables the result memo
  /// Default per-request governance, appended to a tool op's argument
  /// vector when the client did not pass the flag itself (empty = none).
  std::string request_max_memory;  ///< --max-memory value
  std::string request_deadline;    ///< --deadline value
};

/// One registered operation: the tool body plus the memo metadata the
/// daemon needs (which flags name input files to digest into the key).
struct OpHandler {
  std::string op;
  /// Flag names (without "--") whose values are input files; their
  /// content digests become part of the memo key, so editing a trace
  /// in place invalidates cached results for it.
  std::vector<std::string> input_flags;
  /// True when every positional argument names an input file (traceinfo,
  /// tracediff). Positionals are told apart from flag values using
  /// bool_flags below, mirroring FlagParser: `--flag value` consumes the
  /// value unless the flag is boolean or spelled `--flag=...`.
  bool positional_inputs = false;
  /// The op's boolean flags (no value consumed when spelled without
  /// '='). Must match the tool's FlagParser registration or a positional
  /// after a bare bool flag would be mistaken for its value and escape
  /// the memo key.
  std::vector<std::string> bool_flags;
  /// Runs the tool body against `io` with the given argument vector and
  /// returns its exit code. Must follow the standalone error contract
  /// (fatal Error -> message on io.err, exit 2) so replies stay
  /// byte-identical to local runs.
  std::function<int(const ToolIO& io, const std::vector<std::string>& args)>
      run;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Registers a tool-backed op. Call before start().
  void register_op(OpHandler handler);

  /// Binds the socket and spawns the worker pool + accept thread.
  /// Throws Error{Io} when the socket cannot be bound.
  void start();

  /// Blocks until shutdown (the `shutdown` op or request_shutdown())
  /// has fully drained: all threads joined, socket file removed.
  void wait();

  /// Initiates shutdown from any thread; idempotent.
  void request_shutdown() noexcept;

  [[nodiscard]] bool shutting_down() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] ResultMemo& memo() noexcept { return memo_; }
  [[nodiscard]] const DaemonConfig& config() const noexcept { return config_; }

  /// Serves one request exactly as a connection thread would (admission
  /// control, memo, governance), without a socket. Benchmarks and tests
  /// use this to measure the scheduler without transport noise.
  [[nodiscard]] Reply serve(const Request& request);

 private:
  struct Job {
    Request request;
    std::promise<Reply> promise;
  };

  void accept_loop();
  void connection_loop(Fd fd);
  void worker_loop();

  /// Inline built-ins; nullopt when `request.op` is tool-backed (the
  /// caller then goes through the queue).
  std::optional<Reply> serve_builtin(const Request& request);
  Reply serve_status(const Request& request);
  Reply serve_metrics(const Request& request);
  Reply serve_register_trace(const Request& request);

  /// Worker path: governance defaults, memo probe, handler run, memo
  /// insert.
  Reply execute(const Request& request);
  Reply run_handler(const OpHandler& handler, const Request& request,
                    const std::vector<std::string>& args);

  /// Content digest "crc32:<hex8>:<bytes>" for `path`, cached by
  /// (size, mtime). nullopt when the file cannot be read — the request
  /// still runs (and fails with the tool's own diagnostics), it just
  /// bypasses the memo.
  std::optional<std::string> digest_file(const std::string& path);

  void refresh_gauges();

  DaemonConfig config_;
  obs::Registry registry_;
  ResultMemo memo_;
  std::map<std::string, OpHandler, std::less<>> handlers_;

  Fd listener_;
  BoundedQueue<std::shared_ptr<Job>> queue_;
  std::atomic<bool> stop_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex connections_mu_;
  std::vector<std::thread> connections_;
  bool started_ = false;

  /// Fault-injection requests flip process-global state
  /// (fault::FaultInjector), so they run exclusively; everything else
  /// shares. Armed ambient TDT_FAULT_SPEC forces exclusive for all.
  std::shared_mutex fault_mu_;
  bool env_faults_ = false;

  struct DigestEntry {
    std::uint64_t size = 0;
    std::int64_t mtime_ns = 0;
    std::string digest;
  };
  std::mutex digest_mu_;
  std::map<std::string, DigestEntry> digest_cache_;
};

}  // namespace tdt::service
