// Minimal JSON value model + parser/serializer for the tdt-rpc/1 wire
// protocol (docs/SERVICE.md). Scope is deliberately narrow: one message
// per line, objects/arrays/strings/numbers/bools/null, no comments, no
// trailing commas. Strings are byte-transparent — every byte outside
// printable ASCII is escaped as \u00XX on encode and any \uXXXX below
// 0x100 decodes back to the raw byte — so captured tool stdout travels
// through a reply without an encoding ambiguity.
//
// This is the *wire* layer only; the typed Request/Reply structs and
// their field contracts live in service/protocol.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tdt::service {

/// One parsed JSON value. Object keys are kept name-ordered so encode()
/// output is deterministic for a given value.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue number(std::uint64_t v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }

  // Typed accessors; each throws Error{Parse} when the value holds a
  // different kind — decode code paths surface one uniform failure mode.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member or nullptr (also nullptr on non-objects).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  // Builders (Array / Object kinds only).
  void push(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Serializes on one line (no newline appended).
  [[nodiscard]] std::string encode() const;

  /// Parses exactly one JSON value spanning all of `text` (surrounding
  /// whitespace allowed). Throws Error{Parse} on anything malformed.
  static JsonValue parse(std::string_view text);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Appends `s` to `out` as a quoted JSON string with byte-transparent
/// escaping (see file comment).
void append_json_string(std::string& out, std::string_view s);

}  // namespace tdt::service
