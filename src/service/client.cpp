#include "service/client.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace tdt::service {

Session::Session(std::string socket_path, int timeout_ms)
    : socket_path_(std::move(socket_path)),
      timeout_ms_(timeout_ms),
      fd_(connect_unix(socket_path_)),
      reader_(kMaxMessageBytes) {}

Reply Session::call(std::string_view op, std::vector<std::string> args) {
  Request request;
  request.id = next_id_++;
  request.op = std::string(op);
  request.args = std::move(args);
  std::string line = request.encode();
  line.push_back('\n');
  if (!write_all(fd_, line)) {
    throw_io_error("daemon closed the connection while sending a request");
  }
  auto reply_line = reader_.read_line(fd_, timeout_ms_);
  if (!reply_line) {
    throw_io_error("daemon closed the connection before replying");
  }
  Reply reply = Reply::decode(*reply_line);
  if (reply.id != request.id) {
    throw Error(ErrorKind::Parse, "tdt-rpc: reply id does not match request");
  }
  return reply;
}

int Session::run_tool(std::string_view op, std::vector<std::string> args,
                      std::FILE* out, std::FILE* err) {
  const Reply reply = call(op, std::move(args));
  if (!reply.ok()) {
    std::fprintf(err, "%s: daemon error (%.*s): %s\n",
                 std::string(op).c_str(),
                 static_cast<int>(status_name(reply.status).size()),
                 status_name(reply.status).data(), reply.error.c_str());
    return 2;
  }
  if (!reply.out.empty()) {
    std::fwrite(reply.out.data(), 1, reply.out.size(), out);
  }
  if (!reply.err.empty()) {
    std::fwrite(reply.err.data(), 1, reply.err.size(), err);
  }
  return reply.exit_code;
}

}  // namespace tdt::service
