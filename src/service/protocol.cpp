#include "service/protocol.hpp"

#include "service/wire.hpp"
#include "util/error.hpp"

namespace tdt::service {

namespace {

[[noreturn]] void bad_message(const char* what) {
  throw Error(ErrorKind::Parse, std::string("tdt-rpc: ") + what);
}

JsonValue parse_message(std::string_view line) {
  if (line.size() > kMaxMessageBytes) bad_message("message too large");
  JsonValue root = JsonValue::parse(line);
  const JsonValue* rpc = root.find("rpc");
  if (rpc == nullptr || rpc->as_string() != kRpcVersion) {
    bad_message("missing or unsupported \"rpc\" version");
  }
  return root;
}

}  // namespace

std::string_view status_name(RpcStatus status) noexcept {
  switch (status) {
    case RpcStatus::Ok: return "ok";
    case RpcStatus::BadRequest: return "bad-request";
    case RpcStatus::UnknownOp: return "unknown-op";
    case RpcStatus::Busy: return "busy";
    case RpcStatus::ShuttingDown: return "shutting-down";
    case RpcStatus::Internal: return "internal";
  }
  return "internal";
}

std::optional<RpcStatus> parse_status(std::string_view text) noexcept {
  for (const RpcStatus s :
       {RpcStatus::Ok, RpcStatus::BadRequest, RpcStatus::UnknownOp,
        RpcStatus::Busy, RpcStatus::ShuttingDown, RpcStatus::Internal}) {
    if (text == status_name(s)) return s;
  }
  return std::nullopt;
}

std::string Request::encode() const {
  JsonValue root = JsonValue::object();
  root.set("rpc", JsonValue::string(std::string(kRpcVersion)));
  root.set("id", JsonValue::number(id));
  root.set("op", JsonValue::string(op));
  JsonValue arg_list = JsonValue::array();
  for (const std::string& a : args) arg_list.push(JsonValue::string(a));
  root.set("args", std::move(arg_list));
  return root.encode();
}

Request Request::decode(std::string_view line) {
  const JsonValue root = parse_message(line);
  Request request;
  const JsonValue* id = root.find("id");
  if (id == nullptr) bad_message("request missing \"id\"");
  request.id = id->as_uint();
  const JsonValue* op = root.find("op");
  if (op == nullptr) bad_message("request missing \"op\"");
  request.op = op->as_string();
  if (request.op.empty()) bad_message("empty \"op\"");
  if (const JsonValue* args = root.find("args")) {
    for (const JsonValue& a : args->as_array()) {
      request.args.push_back(a.as_string());
    }
  }
  return request;
}

std::string Reply::encode() const {
  JsonValue root = JsonValue::object();
  root.set("rpc", JsonValue::string(std::string(kRpcVersion)));
  root.set("id", JsonValue::number(id));
  root.set("status", JsonValue::string(std::string(status_name(status))));
  if (status == RpcStatus::Ok) {
    root.set("exit", JsonValue::number(static_cast<double>(exit_code)));
    root.set("stdout", JsonValue::string(out));
    root.set("stderr", JsonValue::string(err));
    if (memo_hit) root.set("memo", JsonValue::boolean(true));
  } else {
    root.set("error", JsonValue::string(error));
  }
  if (!data.empty()) {
    JsonValue extra = JsonValue::object();
    for (const auto& [key, value] : data) {
      extra.set(key, JsonValue::string(value));
    }
    root.set("data", std::move(extra));
  }
  return root.encode();
}

Reply Reply::decode(std::string_view line) {
  const JsonValue root = parse_message(line);
  Reply reply;
  const JsonValue* id = root.find("id");
  if (id == nullptr) bad_message("reply missing \"id\"");
  reply.id = id->as_uint();
  const JsonValue* status = root.find("status");
  if (status == nullptr) bad_message("reply missing \"status\"");
  const auto parsed = parse_status(status->as_string());
  if (!parsed) bad_message("unknown reply status");
  reply.status = *parsed;
  if (reply.status == RpcStatus::Ok) {
    const JsonValue* exit = root.find("exit");
    if (exit == nullptr) bad_message("ok reply missing \"exit\"");
    reply.exit_code = static_cast<int>(exit->as_number());
    if (const JsonValue* out = root.find("stdout")) reply.out = out->as_string();
    if (const JsonValue* err = root.find("stderr")) reply.err = err->as_string();
    if (const JsonValue* memo = root.find("memo")) {
      reply.memo_hit = memo->as_bool();
    }
  } else if (const JsonValue* error = root.find("error")) {
    reply.error = error->as_string();
  }
  if (const JsonValue* data = root.find("data")) {
    for (const auto& [key, value] : data->as_object()) {
      reply.data[key] = value.as_string();
    }
  }
  return reply;
}

Reply error_reply(const Request& request, RpcStatus status,
                  std::string message) {
  Reply reply;
  reply.id = request.id;
  reply.status = status;
  reply.error = std::move(message);
  return reply;
}

}  // namespace tdt::service
