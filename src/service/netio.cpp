#include "service/netio.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/error.hpp"

namespace tdt::service {

namespace {

[[noreturn]] void io_fail(const std::string& what) {
  throw_io_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw_io_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// poll() one fd for readability. Returns false on timeout.
bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    io_fail("poll");
  }
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd listen_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) io_fail("socket");
  ::unlink(path.c_str());  // a stale file from a dead daemon blocks bind
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    io_fail("bind " + path);
  }
  if (::listen(fd.get(), 64) != 0) io_fail("listen " + path);
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) io_fail("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    io_fail("connect " + path + " (is tdtd running?)");
  }
  return fd;
}

Fd accept_unix(const Fd& listener, int timeout_ms) {
  if (!wait_readable(listener.get(), timeout_ms)) return Fd();
  const int fd = ::accept(listener.get(), nullptr, nullptr);
  if (fd >= 0) return Fd(fd);
  // The connection may have vanished between poll and accept; treat the
  // transient family like a timeout and let the caller loop.
  if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
      errno == ECONNABORTED) {
    return Fd();
  }
  io_fail("accept");
}

bool write_all(const Fd& fd, std::string_view bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE
    // (returned as false), never as a process-killing SIGPIPE — the
    // daemon cannot assume its host ignores the signal.
    const ssize_t n = ::send(fd.get(), bytes.data() + done,
                             bytes.size() - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    io_fail("write");
  }
  return true;
}

std::optional<std::string> LineReader::read_line_poll(const Fd& fd,
                                                      int timeout_ms,
                                                      bool* timed_out) {
  *timed_out = false;
  while (true) {
    if (const std::size_t nl = buffer_.find('\n');
        nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (buffer_.size() > max_line_bytes_) {
      throw_io_error("rpc line exceeds " + std::to_string(max_line_bytes_) +
                     " bytes");
    }
    if (!wait_readable(fd.get(), timeout_ms)) {
      *timed_out = true;
      return std::nullopt;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd.get(), chunk, sizeof chunk);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      if (buffer_.empty()) return std::nullopt;  // clean EOF
      throw_io_error("connection closed mid-message");
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      if (buffer_.empty()) return std::nullopt;  // peer gone between lines
      throw_io_error("connection reset mid-message");
    }
    io_fail("read");
  }
}

std::optional<std::string> LineReader::read_line(const Fd& fd,
                                                 int total_timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  while (true) {
    int slice_ms = 200;
    if (total_timeout_ms > 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const auto left = total_timeout_ms - static_cast<int>(elapsed);
      if (left <= 0) {
        throw_io_error("timed out waiting for rpc reply");
      }
      slice_ms = left < slice_ms ? left : slice_ms;
    }
    bool timed_out = false;
    auto line = read_line_poll(fd, slice_ms, &timed_out);
    if (!timed_out) return line;
  }
}

}  // namespace tdt::service
