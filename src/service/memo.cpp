#include "service/memo.hpp"

namespace tdt::service {

namespace {

/// Fixed accounting overhead per stored entry (key, index node, list
/// node, Reply bookkeeping) on top of the captured output bytes.
constexpr std::uint64_t kEntryOverheadBytes = 256;

/// Flags present on every tool (CommonFlags) that tie a run to ambient
/// state or write files, independent of which op it is.
const std::vector<std::string> kCommonBlockers = {
    "fault-spec", "metrics-json", "trace-spans", "progress",
};

std::vector<std::string> with_common(std::initializer_list<const char*> own) {
  std::vector<std::string> flags = kCommonBlockers;
  for (const char* f : own) flags.emplace_back(f);
  return flags;
}

/// True when `arg` spells `--<flag>` or `--<flag>=...`.
bool names_flag(std::string_view arg, std::string_view flag) {
  if (arg.size() < flag.size() + 2 || arg.substr(0, 2) != "--") return false;
  if (arg.substr(2, flag.size()) != flag) return false;
  const std::string_view rest = arg.substr(2 + flag.size());
  return rest.empty() || rest.front() == '=';
}

void append_sized(std::string& out, std::string_view piece) {
  out += std::to_string(piece.size());
  out.push_back(':');
  out += piece;
  out.push_back('\n');
}

}  // namespace

const std::vector<std::string>& memo_blockers(std::string_view op) {
  // `--rules` on a sweep writes the transformed trace to its default
  // output path as a side effect, so it blocks memoization there; the
  // autotuner's --emit-best/--json write files likewise.
  static const std::vector<std::string> sweep = with_common(
      {"rules", "xform-out", "gnuplot", "affinity-report", "compress"});
  static const std::vector<std::string> autotune =
      with_common({"emit-best", "json"});
  static const std::vector<std::string> read_only = with_common({});
  static const std::vector<std::string> none;
  if (op == kOpSweep) return sweep;
  if (op == kOpAutotune) return autotune;
  if (op == kOpTraceInfo || op == kOpTraceDiff ||
      op == kOpTransformDigest) {
    return read_only;
  }
  return none;  // metrics/status/... are live state, never memoized
}

bool memo_eligible(std::string_view op, const std::vector<std::string>& args) {
  const bool candidate = op == kOpSweep || op == kOpAutotune ||
                         op == kOpTraceInfo || op == kOpTraceDiff ||
                         op == kOpTransformDigest;
  if (!candidate) return false;
  for (const std::string& arg : args) {
    for (const std::string& flag : memo_blockers(op)) {
      if (names_flag(arg, flag)) return false;
    }
  }
  return true;
}

ResultMemo::ResultMemo(std::uint64_t budget_bytes) : budget_(budget_bytes) {}

std::optional<Reply> ResultMemo::lookup(const std::string& key) {
  std::lock_guard lock(mu_);
  if (budget_.limit() == 0) {
    ++counters_.misses;
    return std::nullopt;
  }
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.hits;
  Reply reply = it->second->reply;
  reply.memo_hit = true;
  return reply;
}

void ResultMemo::insert(const std::string& key, const Reply& reply) {
  std::lock_guard lock(mu_);
  if (budget_.limit() == 0) return;
  if (const auto it = index_.find(key); it != index_.end()) {
    budget_.release(it->second->bytes);
    lru_.erase(it->second);
    index_.erase(it);
  }
  const std::uint64_t bytes = kEntryOverheadBytes + key.size() +
                              reply.out.size() + reply.err.size() +
                              reply.error.size();
  while (!budget_.try_charge(bytes)) {
    if (lru_.empty()) {
      ++counters_.rejected;  // larger than the whole budget
      return;
    }
    evict_lru_locked();
  }
  lru_.push_front(Entry{key, reply, bytes});
  lru_.front().reply.memo_hit = false;  // stored replies record the cold run
  index_[key] = lru_.begin();
  ++counters_.insertions;
}

void ResultMemo::evict_lru_locked() {
  const Entry& victim = lru_.back();
  budget_.release(victim.bytes);
  index_.erase(victim.key);
  lru_.pop_back();
  ++counters_.evictions;
}

ResultMemo::Counters ResultMemo::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

std::uint64_t ResultMemo::used_bytes() const {
  std::lock_guard lock(mu_);
  return budget_.used();
}

std::size_t ResultMemo::entries() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

std::string memo_key(std::string_view op, const std::vector<std::string>& args,
                     const std::vector<std::string>& input_digests) {
  std::string key;
  key.reserve(64);
  append_sized(key, op);
  key += "args\n";
  for (const std::string& a : args) append_sized(key, a);
  key += "inputs\n";
  for (const std::string& d : input_digests) append_sized(key, d);
  return key;
}

}  // namespace tdt::service
