#include "service/daemon.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace tdt::service {

namespace {

/// Poll slice for accept/read loops: long enough to be cheap, short
/// enough that shutdown is felt promptly.
constexpr int kPollMs = 200;

/// True when `arg` spells `--<flag>` or `--<flag>=...`.
bool names_flag(std::string_view arg, std::string_view flag) {
  if (arg.size() < flag.size() + 2 || arg.substr(0, 2) != "--") return false;
  if (arg.substr(2, flag.size()) != flag) return false;
  const std::string_view rest = arg.substr(2 + flag.size());
  return rest.empty() || rest.front() == '=';
}

bool has_flag(const std::vector<std::string>& args, std::string_view flag) {
  for (const std::string& a : args) {
    if (names_flag(a, flag)) return true;
  }
  return false;
}

/// Values of `--<flag> value` / `--<flag>=value` occurrences in `args`.
std::vector<std::string> flag_values(const std::vector<std::string>& args,
                                     std::string_view flag) {
  std::vector<std::string> values;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (!names_flag(args[i], flag)) continue;
    const std::size_t eq = args[i].find('=');
    if (eq != std::string::npos) {
      values.push_back(args[i].substr(eq + 1));
    } else if (i + 1 < args.size()) {
      values.push_back(args[i + 1]);
    }
  }
  return values;
}

/// The positional arguments of `args` under the handler's flag grammar:
/// `--flag value` consumes the value unless the flag is boolean or
/// carries '='. Mirrors FlagParser::parse so the daemon and the tool
/// agree on what is an input file.
std::vector<std::string> positional_args(const OpHandler& handler,
                                         const std::vector<std::string>& args) {
  std::vector<std::string> positionals;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--") {  // end of flags, exactly as FlagParser reads it
      for (++i; i < args.size(); ++i) positionals.push_back(args[i]);
      break;
    }
    if (arg.size() < 2 || arg.compare(0, 2, "--") != 0) {
      positionals.push_back(arg);
      continue;
    }
    if (arg.find('=') != std::string::npos) continue;
    bool is_bool = false;
    for (const std::string& flag : handler.bool_flags) {
      if (names_flag(arg, flag)) {
        is_bool = true;
        break;
      }
    }
    if (!is_bool) ++i;  // value-taking flag consumes the next argument
  }
  return positionals;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      registry_("tdtd"),
      memo_(config_.memo_bytes),
      queue_(config_.queue_capacity) {
  const char* env = std::getenv("TDT_FAULT_SPEC");
  env_faults_ = env != nullptr && env[0] != '\0';
  registry_.gauge("service.workers").set(config_.workers);
  registry_.gauge("service.queue_capacity")
      .set(static_cast<double>(queue_.capacity()));
  registry_.gauge("service.memo_budget_bytes")
      .set(static_cast<double>(config_.memo_bytes));
}

Daemon::~Daemon() {
  request_shutdown();
  if (started_) wait();
}

void Daemon::register_op(OpHandler handler) {
  internal_check(!started_, "register_op after Daemon::start");
  std::string op = handler.op;
  handlers_[std::move(op)] = std::move(handler);
}

void Daemon::start() {
  internal_check(!started_, "Daemon::start called twice");
  listener_ = listen_unix(config_.socket_path);
  started_ = true;
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Daemon::request_shutdown() noexcept {
  stop_.store(true, std::memory_order_release);
}

void Daemon::wait() {
  if (!started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads poll stop_ between reads, so they drain within a
  // poll slice once their in-flight request (if any) completes.
  {
    std::lock_guard lock(connections_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  // Only now stop the workers: every connection that queued a job has
  // already received its reply, so nothing waits on a dropped promise.
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  listener_.reset();
  ::unlink(config_.socket_path.c_str());
  started_ = false;
}

void Daemon::accept_loop() {
  while (!shutting_down()) {
    Fd conn = accept_unix(listener_, kPollMs);
    if (!conn.valid()) continue;  // poll timeout; re-check the stop flag
    std::lock_guard lock(connections_mu_);
    connections_.emplace_back(
        [this, fd = std::move(conn)]() mutable { connection_loop(std::move(fd)); });
  }
}

void Daemon::connection_loop(Fd fd) {
  LineReader reader(kMaxMessageBytes);
  while (true) {
    bool timed_out = false;
    std::optional<std::string> line;
    try {
      line = reader.read_line_poll(fd, kPollMs, &timed_out);
    } catch (const Error&) {
      // Oversized line or mid-message EOF: drop the connection; a
      // client failure must never take the daemon with it.
      registry_.counter("service.client_disconnects").add();
      return;
    }
    if (timed_out) {
      if (shutting_down()) return;
      continue;
    }
    if (!line) return;  // clean EOF

    Reply reply;
    try {
      reply = serve(Request::decode(*line));
    } catch (const Error& e) {
      reply = Reply{};
      reply.status = RpcStatus::BadRequest;
      reply.error = e.what();
    }

    std::string out = reply.encode();
    out.push_back('\n');
    bool sent = false;
    try {
      sent = write_all(fd, out);
    } catch (const Error&) {
      sent = false;
    }
    if (!sent) {
      // The client went away mid-reply (the disconnect bugfix this PR
      // pins with a test): count it, drop the connection, carry on.
      registry_.counter("service.client_disconnects").add();
      return;
    }
  }
}

Reply Daemon::serve(const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  registry_.counter("service.requests").add();
  Reply reply;
  if (auto builtin = serve_builtin(request)) {
    reply = std::move(*builtin);
  } else if (handlers_.find(request.op) == handlers_.end()) {
    reply = error_reply(request, RpcStatus::UnknownOp,
                        "unknown op '" + request.op + "'");
  } else if (shutting_down()) {
    reply = error_reply(request, RpcStatus::ShuttingDown,
                        "daemon is shutting down");
  } else {
    auto job = std::make_shared<Job>();
    job->request = request;
    std::future<Reply> future = job->promise.get_future();
    if (!queue_.try_push(job)) {
      registry_.counter("service.admission_rejections").add();
      reply = error_reply(request, RpcStatus::Busy,
                          "request queue is full (capacity " +
                              std::to_string(queue_.capacity()) + ")");
    } else {
      refresh_gauges();
      reply = future.get();
    }
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  registry_.histogram("service.request_latency_us")
      .record(static_cast<std::uint64_t>(micros));
  if (reply.ok()) registry_.counter("service.requests_ok").add();
  return reply;
}

void Daemon::worker_loop() {
  while (true) {
    auto job = queue_.pop();
    if (!job) return;  // closed and drained
    Reply reply;
    try {
      reply = execute((*job)->request);
    } catch (const Error& e) {
      reply = error_reply((*job)->request, RpcStatus::Internal, e.what());
    } catch (const std::exception& e) {
      reply = error_reply((*job)->request, RpcStatus::Internal, e.what());
    }
    (*job)->promise.set_value(std::move(reply));
    refresh_gauges();
  }
}

Reply Daemon::execute(const Request& request) {
  const auto handler_it = handlers_.find(request.op);
  internal_check(handler_it != handlers_.end(), "job for unregistered op");
  const OpHandler& handler = handler_it->second;

  // Per-request governance: the daemon's defaults apply unless the
  // client chose its own limits. Appended *before* the memo key is
  // built, so governed and ungoverned runs never share an entry.
  std::vector<std::string> args = request.args;
  if (!config_.request_max_memory.empty() && !has_flag(args, "max-memory")) {
    args.emplace_back("--max-memory");
    args.push_back(config_.request_max_memory);
  }
  if (!config_.request_deadline.empty() && !has_flag(args, "deadline")) {
    args.emplace_back("--deadline");
    args.push_back(config_.request_deadline);
  }

  // Memo probe: only side-effect-free requests, and only when every
  // input file is digestible (an unreadable input still runs — the tool
  // owns that diagnostic — it just cannot be cached).
  std::string key;
  if (memo_.budget_bytes() > 0 && memo_eligible(request.op, args)) {
    std::vector<std::string> inputs;
    for (const std::string& flag : handler.input_flags) {
      for (std::string& path : flag_values(args, flag)) {
        if (!path.empty()) inputs.push_back(std::move(path));
      }
    }
    if (handler.positional_inputs) {
      for (std::string& path : positional_args(handler, args)) {
        inputs.push_back(std::move(path));
      }
    }
    std::vector<std::string> digests;
    bool digestible = true;
    for (const std::string& path : inputs) {
      auto digest = digest_file(path);
      if (!digest) {
        digestible = false;
        break;
      }
      digests.push_back(path + "=" + *digest);
    }
    if (digestible) {
      key = memo_key(request.op, args, digests);
      if (auto cached = memo_.lookup(key)) {
        registry_.counter("service.memo_hits").add();
        cached->id = request.id;
        refresh_gauges();
        return *cached;
      }
      registry_.counter("service.memo_misses").add();
    }
  }

  Reply reply = run_handler(handler, request, args);
  if (!key.empty() && reply.ok()) {
    const auto before = memo_.counters();
    memo_.insert(key, reply);
    const auto after = memo_.counters();
    registry_.counter("service.memo_insertions")
        .add(after.insertions - before.insertions);
    registry_.counter("service.memo_evictions")
        .add(after.evictions - before.evictions);
  }
  refresh_gauges();
  return reply;
}

Reply Daemon::run_handler(const OpHandler& handler, const Request& request,
                          const std::vector<std::string>& args) {
  // Fault-spec requests flip process-global injector state, so they get
  // the write side of the lock; ordinary requests run concurrently on
  // the read side. An ambient TDT_FAULT_SPEC makes every tool run arm
  // the injector, so then everything serializes.
  const bool exclusive = env_faults_ || has_flag(args, "fault-spec");
  std::shared_lock<std::shared_mutex> shared;
  std::unique_lock<std::shared_mutex> unique;
  if (exclusive) {
    unique = std::unique_lock(fault_mu_);
  } else {
    shared = std::shared_lock(fault_mu_);
  }

  Reply reply;
  reply.id = request.id;
  reply.status = RpcStatus::Ok;
  {
    CaptureIO capture;
    reply.exit_code = handler.run(capture.io(), args);
    reply.out = capture.out_bytes();
    reply.err = capture.err_bytes();
  }
  if (exclusive) fault::FaultInjector::reset();
  return reply;
}

std::optional<Reply> Daemon::serve_builtin(const Request& request) {
  if (request.op == kOpStatus) return serve_status(request);
  if (request.op == kOpMetrics) return serve_metrics(request);
  if (request.op == kOpRegisterTrace) return serve_register_trace(request);
  if (request.op == kOpShutdown) {
    // The stop flag is raised before the reply travels back; the
    // connection loop still writes this reply, then notices the flag on
    // its next poll slice and winds down.
    request_shutdown();
    Reply reply;
    reply.id = request.id;
    reply.status = RpcStatus::Ok;
    reply.out = "tdtd: shutting down\n";
    return reply;
  }
  return std::nullopt;
}

Reply Daemon::serve_status(const Request& request) {
  Reply reply;
  reply.id = request.id;
  reply.status = RpcStatus::Ok;
  std::string ops;
  for (const auto& [op, handler] : handlers_) {
    if (!ops.empty()) ops.push_back(',');
    ops += op;
  }
  char line[256];
  std::snprintf(line, sizeof line,
                "tdtd: workers=%u queue=%zu/%zu memo_entries=%zu "
                "memo_bytes=%llu\n",
                config_.workers, queue_.size(), queue_.capacity(),
                memo_.entries(),
                static_cast<unsigned long long>(memo_.used_bytes()));
  reply.out = line;
  reply.data["ops"] = ops;
  reply.data["socket"] = config_.socket_path;
  reply.data["workers"] = std::to_string(config_.workers);
  reply.data["queue_capacity"] = std::to_string(queue_.capacity());
  reply.data["memo_entries"] = std::to_string(memo_.entries());
  reply.data["memo_bytes"] = std::to_string(memo_.used_bytes());
  return reply;
}

Reply Daemon::serve_metrics(const Request& request) {
  refresh_gauges();
  Reply reply;
  reply.id = request.id;
  reply.status = RpcStatus::Ok;
  reply.out = registry_.metrics_json();
  if (reply.out.empty() || reply.out.back() != '\n') reply.out.push_back('\n');
  return reply;
}

Reply Daemon::serve_register_trace(const Request& request) {
  if (request.args.empty()) {
    return error_reply(request, RpcStatus::BadRequest,
                       "register-trace needs at least one path");
  }
  Reply reply;
  reply.id = request.id;
  reply.status = RpcStatus::Ok;
  for (const std::string& path : request.args) {
    auto digest = digest_file(path);
    if (!digest) {
      return error_reply(request, RpcStatus::BadRequest,
                         "cannot read '" + path + "'");
    }
    reply.out += "tdtd: registered " + path + " " + *digest + "\n";
    reply.data[path] = *digest;
  }
  registry_.counter("service.traces_registered").add(request.args.size());
  return reply;
}

std::optional<std::string> Daemon::digest_file(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    return std::nullopt;
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  const std::int64_t mtime_ns =
      static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
      st.st_mtim.tv_nsec;
  {
    std::lock_guard lock(digest_mu_);
    const auto it = digest_cache_.find(path);
    if (it != digest_cache_.end() && it->second.size == size &&
        it->second.mtime_ns == mtime_ns) {
      registry_.counter("service.digest_cache_hits").add();
      return it->second.digest;
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  Crc32 crc;
  char buf[1u << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, file)) > 0) {
    crc.update(buf, n);
  }
  const bool bad = std::ferror(file) != 0;
  std::fclose(file);
  if (bad) return std::nullopt;
  char text[48];
  std::snprintf(text, sizeof text, "crc32:%08x:%llu", crc.value(),
                static_cast<unsigned long long>(size));
  std::string digest(text);
  {
    std::lock_guard lock(digest_mu_);
    digest_cache_[path] = DigestEntry{size, mtime_ns, digest};
  }
  return digest;
}

void Daemon::refresh_gauges() {
  registry_.gauge("service.queue_depth")
      .set(static_cast<double>(queue_.size()));
  registry_.gauge("service.memo_bytes")
      .set(static_cast<double>(memo_.used_bytes()));
  registry_.gauge("service.memo_entries")
      .set(static_cast<double>(memo_.entries()));
}

}  // namespace tdt::service
