// Client side of tdt-rpc/1: a Session owns one connection to a tdtd
// socket and turns Request structs into Reply structs. This is the whole
// machinery behind every tool's --connect flag — the tool builds its
// argument vector exactly as it would parse locally, ships it through
// Session::call, and relays the reply's stdout/stderr/exit verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/netio.hpp"
#include "service/protocol.hpp"

namespace tdt::service {

class Session {
 public:
  /// Connects to the daemon socket at `socket_path`; throws Error{Io}
  /// when no daemon is listening there. `timeout_ms` bounds each
  /// reply wait (0 = wait forever — sweeps legitimately run minutes).
  explicit Session(std::string socket_path, int timeout_ms = 0);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Sends `request` (the Session assigns the id) and waits for the
  /// matching reply. Throws Error{Io} on transport failure and
  /// Error{Parse} on a malformed reply; a non-Ok reply status is a
  /// *value*, not an exception — callers decide how to surface it.
  [[nodiscard]] Reply call(std::string_view op,
                           std::vector<std::string> args);

  /// Runs a tool op remotely and relays the reply: captured stdout to
  /// `out`, captured stderr to `err`, returns the remote exit code.
  /// Non-Ok statuses print the daemon's error to `err` and return 2
  /// (fatal), matching the tools' exit-code contract.
  [[nodiscard]] int run_tool(std::string_view op,
                             std::vector<std::string> args, std::FILE* out,
                             std::FILE* err);

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return socket_path_;
  }

 private:
  std::string socket_path_;
  int timeout_ms_;
  Fd fd_;
  LineReader reader_;
  std::uint64_t next_id_ = 1;
};

}  // namespace tdt::service
