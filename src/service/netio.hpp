// Unix-domain socket plumbing for tdt-rpc/1: listen/connect helpers and
// newline framing with poll()-based timeouts. Everything here is
// blocking-with-timeout rather than plain blocking so the daemon can
// notice its shutdown flag between polls instead of parking forever in
// accept(2)/read(2) — tdtd stops cleanly without signal gymnastics.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace tdt::service {

/// Owning fd wrapper (close on destruction, move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Binds + listens on a unix-domain stream socket at `path`, unlinking a
/// stale socket file first. Throws Error{Io} on failure (including a
/// path longer than sockaddr_un allows).
[[nodiscard]] Fd listen_unix(const std::string& path);

/// Connects to the daemon socket at `path`. Throws Error{Io} on failure
/// with a message that names the path (the common case is "daemon not
/// running").
[[nodiscard]] Fd connect_unix(const std::string& path);

/// accept(2) with a poll timeout. Returns an invalid Fd on timeout;
/// throws Error{Io} on a real accept failure (EINTR and the transient
/// errno family are treated as timeouts).
[[nodiscard]] Fd accept_unix(const Fd& listener, int timeout_ms);

/// Writes all of `bytes`. Returns false when the peer is gone (EPIPE /
/// ECONNRESET — a per-request event, never fatal to the caller); throws
/// Error{Io} on any other failure.
[[nodiscard]] bool write_all(const Fd& fd, std::string_view bytes);

/// Buffered newline-framed reader over one socket.
class LineReader {
 public:
  explicit LineReader(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Next '\n'-terminated line (terminator stripped). nullopt on clean
  /// EOF with no buffered partial line. Throws Error{Io} on read errors,
  /// on EOF mid-line, on a line exceeding the cap, and after
  /// `total_timeout_ms` with no complete line (0 = no timeout).
  [[nodiscard]] std::optional<std::string> read_line(const Fd& fd,
                                                     int total_timeout_ms);

  /// Like read_line, but a timeout returns nullopt-with-flag instead of
  /// throwing: sets `*timed_out` and keeps partial input buffered so the
  /// caller can poll a stop flag and come back. Used by daemon
  /// connection threads.
  [[nodiscard]] std::optional<std::string> read_line_poll(const Fd& fd,
                                                          int timeout_ms,
                                                          bool* timed_out);

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
};

}  // namespace tdt::service
