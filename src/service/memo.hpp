// Result memo for daemon-served requests: a byte-budgeted LRU cache of
// finished replies keyed by (op, canonical argument vector, digests of
// every input file the request reads). A repeated identical request is
// served from memory with byte-identical stdout/stderr and exit code —
// the daemon's whole point for interactive sweep exploration, where the
// second look at a design point should cost microseconds, not a re-run.
//
// Identity rules (docs/SERVICE.md):
//  * The key covers input *content*, not just paths: file digests are
//    crc32 over the bytes, so overwriting a trace in place invalidates
//    naturally.
//  * Only side-effect-free requests are memoizable. Ops that write files
//    (--xform-out, --gnuplot, --metrics-json, ...) must re-run every
//    time; the daemon consults memo_blockers() before inserting.
//  * Budget accounting charges the stored reply's stdout+stderr bytes
//    (plus a fixed per-entry overhead); inserting evicts LRU entries
//    until the new entry fits. An entry larger than the whole budget is
//    simply not stored. A zero budget disables the memo.
//
// Thread-safe; the scheduler's workers probe and insert concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "service/protocol.hpp"
#include "util/governor.hpp"

namespace tdt::service {

/// Flags whose presence makes a request non-memoizable for `op`
/// (they cause file-system side effects or depend on ambient state).
/// Returns an empty list for ops that are never memoized.
[[nodiscard]] const std::vector<std::string>& memo_blockers(
    std::string_view op);

/// True when `op` + `args` may be served from / inserted into the memo.
[[nodiscard]] bool memo_eligible(std::string_view op,
                                 const std::vector<std::string>& args);

class ResultMemo {
 public:
  /// Monotonic counters, snapshot via counters().
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0;  ///< entries larger than the whole budget
  };

  /// `budget_bytes` caps the retained reply bytes; 0 disables the memo
  /// (every lookup misses, every insert is dropped).
  explicit ResultMemo(std::uint64_t budget_bytes);

  ResultMemo(const ResultMemo&) = delete;
  ResultMemo& operator=(const ResultMemo&) = delete;

  /// Cached reply for `key`, refreshing its LRU position.
  [[nodiscard]] std::optional<Reply> lookup(const std::string& key);

  /// Stores `reply` under `key`, evicting LRU entries to fit. Replaces an
  /// existing entry for the same key.
  void insert(const std::string& key, const Reply& reply);

  [[nodiscard]] Counters counters() const;
  /// Bytes currently charged for retained entries.
  [[nodiscard]] std::uint64_t used_bytes() const;
  [[nodiscard]] std::uint64_t budget_bytes() const noexcept {
    return budget_.limit();
  }
  [[nodiscard]] std::size_t entries() const;

 private:
  struct Entry {
    std::string key;
    Reply reply;
    std::uint64_t bytes = 0;
  };

  void evict_lru_locked();

  mutable std::mutex mu_;
  Budget budget_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Counters counters_;
};

/// Builds the memo key for a request: op + each argument length-prefixed
/// + one "path=crc32:size" line per entry of `input_digests` (already
/// sorted by the caller or inherently ordered). Deterministic and
/// collision-resistant enough for a cache (a false hit additionally
/// requires equal op and argv, which pin the semantics).
[[nodiscard]] std::string memo_key(
    std::string_view op, const std::vector<std::string>& args,
    const std::vector<std::string>& input_digests);

}  // namespace tdt::service
