#include "service/io.hpp"

#include <cstdlib>
#include <iostream>

#include "util/error.hpp"

namespace tdt::service {

ToolIO standard_io() noexcept {
  ToolIO io;
  io.out = stdout;
  io.err = stderr;
  io.errs = &std::cerr;
  return io;
}

CaptureIO::CaptureIO()
    : out_file_(open_memstream(&out_buf_, &out_len_)),
      err_file_(open_memstream(&err_buf_, &err_len_)),
      err_streambuf_(err_file_),
      err_stream_(&err_streambuf_) {
  if (out_file_ == nullptr || err_file_ == nullptr) {
    throw_io_error("open_memstream failed for tool output capture");
  }
  io_.out = out_file_;
  io_.err = err_file_;
  io_.errs = &err_stream_;
}

CaptureIO::~CaptureIO() {
  if (out_file_ != nullptr) std::fclose(out_file_);
  if (err_file_ != nullptr) std::fclose(err_file_);
  std::free(out_buf_);
  std::free(err_buf_);
}

std::string CaptureIO::out_bytes() {
  std::fflush(out_file_);
  return std::string(out_buf_, out_len_);
}

std::string CaptureIO::err_bytes() {
  std::fflush(err_file_);
  return std::string(err_buf_, err_len_);
}

}  // namespace tdt::service
