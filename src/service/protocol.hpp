// tdt-rpc/1 — the message vocabulary spoken between tdtd and its
// clients (docs/SERVICE.md). One JSON object per newline-terminated
// line in each direction over a unix-domain stream socket.
//
// Request:
//   {"rpc":"tdt-rpc/1","id":N,"op":"<op>","args":[...]}
// Reply:
//   {"rpc":"tdt-rpc/1","id":N,"status":"ok","exit":E,
//    "stdout":"...","stderr":"...","memo":B,"data":{...}}
//   {"rpc":"tdt-rpc/1","id":N,"status":"busy","error":"..."}
//
// Ops: register-trace, sweep, autotune, trace-info, trace-diff,
// transform-digest, metrics, status, shutdown. The four tool-backed ops
// (sweep/autotune/trace-info/trace-diff) carry the client tool's full
// argument vector in `args`; the daemon runs the identical tool body and
// returns its captured stdout/stderr and exit code, which is what makes
// `dinerosim --connect ...` byte-identical to a standalone run.
//
// These structs and the status enum are part of the public facade
// (include/tdt/service.hpp): embedders writing their own clients build
// against exactly what the bundled tools use.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tdt::service {

/// Protocol revision tag carried in every message.
inline constexpr std::string_view kRpcVersion = "tdt-rpc/1";

/// Hard cap on one serialized message line (requests are tiny; replies
/// carry captured tool output). A peer exceeding it is a protocol error,
/// not a reason to grow buffers without bound.
inline constexpr std::size_t kMaxMessageBytes = 64u << 20;

/// Reply status / error classification. `Ok` replies carry the request's
/// result; every other value is a structured failure with the reason in
/// Reply::error.
enum class RpcStatus : std::uint8_t {
  Ok,           ///< request ran; exit/stdout/stderr are the result
  BadRequest,   ///< malformed message or invalid arguments
  UnknownOp,    ///< op name not registered on this daemon
  Busy,         ///< admission control rejected the request (queue full)
  ShuttingDown, ///< daemon is draining; no new work accepted
  Internal,     ///< daemon-side failure outside the tool contract
};

/// Canonical wire spelling of a status ("ok", "bad-request", ...).
[[nodiscard]] std::string_view status_name(RpcStatus status) noexcept;

/// Inverse of status_name(); nullopt for unknown spellings.
[[nodiscard]] std::optional<RpcStatus> parse_status(
    std::string_view text) noexcept;

/// One client request.
struct Request {
  std::uint64_t id = 0;           ///< echoed verbatim in the reply
  std::string op;                 ///< operation name (see file comment)
  std::vector<std::string> args;  ///< tool argument vector (tool ops)

  /// Serializes to one line (no trailing newline).
  [[nodiscard]] std::string encode() const;

  /// Parses a request line. Throws Error{Parse} on malformed input,
  /// including a missing/mismatched "rpc" version tag.
  static Request decode(std::string_view line);
};

/// One daemon reply.
struct Reply {
  std::uint64_t id = 0;
  RpcStatus status = RpcStatus::Ok;
  int exit_code = 0;       ///< the tool's exit code (status Ok)
  std::string out;         ///< captured tool stdout bytes (status Ok)
  std::string err;         ///< captured tool stderr bytes (status Ok)
  std::string error;       ///< human-readable reason (status != Ok)
  bool memo_hit = false;   ///< served from the result memo
  std::map<std::string, std::string> data;  ///< op-specific fields

  [[nodiscard]] bool ok() const noexcept { return status == RpcStatus::Ok; }

  /// Serializes to one line (no trailing newline).
  [[nodiscard]] std::string encode() const;

  /// Parses a reply line. Throws Error{Parse} on malformed input.
  static Reply decode(std::string_view line);
};

/// Builds the error reply for `request` (echoes its id).
[[nodiscard]] Reply error_reply(const Request& request, RpcStatus status,
                                std::string message);

// Operation names (shared by daemon dispatch, clients, and the tools'
// --connect routing).
inline constexpr std::string_view kOpRegisterTrace = "register-trace";
inline constexpr std::string_view kOpSweep = "sweep";
inline constexpr std::string_view kOpAutotune = "autotune";
inline constexpr std::string_view kOpTraceInfo = "trace-info";
inline constexpr std::string_view kOpTraceDiff = "trace-diff";
inline constexpr std::string_view kOpTransformDigest = "transform-digest";
inline constexpr std::string_view kOpMetrics = "metrics";
inline constexpr std::string_view kOpStatus = "status";
inline constexpr std::string_view kOpShutdown = "shutdown";

}  // namespace tdt::service
