#include "service/wire.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace tdt::service {

namespace {

[[noreturn]] void bad(const char* what) {
  throw Error(ErrorKind::Parse, std::string("json: ") + what);
}

}  // namespace

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::number(std::uint64_t u) {
  return number(static_cast<double>(u));
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) bad("expected a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) bad("expected a number");
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  const double d = as_number();
  if (!(d >= 0) || d != std::floor(d)) bad("expected a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) bad("expected a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) bad("expected an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::Object) bad("expected an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::push(JsonValue v) {
  internal_check(kind_ == Kind::Array, "json push on non-array");
  array_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  internal_check(kind_ == Kind::Object, "json set on non-object");
  object_[std::move(key)] = std::move(v);
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    const auto b = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (b < 0x20 || b >= 0x7F) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", b);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

void encode_value(std::string& out, const JsonValue& v);

void encode_number(std::string& out, double d) {
  // Integers (the common case: ids, exit codes, counters) encode without
  // a fractional part so the wire stays stable and compact.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void encode_value(std::string& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null: out += "null"; break;
    case JsonValue::Kind::Bool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::Number: encode_number(out, v.as_number()); break;
    case JsonValue::Kind::String: append_json_string(out, v.as_string()); break;
    case JsonValue::Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& e : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        encode_value(out, e);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, e] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        append_json_string(out, key);
        out.push_back(':');
        encode_value(out, e);
      }
      out.push_back('}');
      break;
    }
  }
}

/// Recursive-descent parser over a bounded view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) bad("trailing bytes after value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) bad("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) bad("unexpected character");
    ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    // Depth cap: a hostile client must not be able to overflow the
    // daemon's stack with "[[[[...".
    if (++depth_ > 64) bad("nesting too deep");
    JsonValue v;
    switch (peek()) {
      case '{': v = object(); break;
      case '[': v = array(); break;
      case '"': v = JsonValue::string(string()); break;
      case 't':
        if (!literal("true")) bad("bad literal");
        v = JsonValue::boolean(true);
        break;
      case 'f':
        if (!literal("false")) bad("bad literal");
        v = JsonValue::boolean(false);
        break;
      case 'n':
        if (!literal("null")) bad("bad literal");
        break;
      default: v = number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.set(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) bad("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) bad("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) bad("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else bad("bad \\u escape");
          }
          if (code < 0x100) {
            // Byte-transparent contract: low escapes are raw bytes.
            out.push_back(static_cast<char>(code));
          } else {
            // Encode as UTF-8 (the encoder never emits these, but a
            // foreign client may).
            if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
          }
          break;
        }
        default: bad("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) bad("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) bad("bad number");
    return JsonValue::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string JsonValue::encode() const {
  std::string out;
  encode_value(out, *this);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace tdt::service
