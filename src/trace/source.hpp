// Pluggable byte sources feeding the Gleipnir text reader.
//
// The reader consumes input as a sequence of chunks — contiguous byte
// runs whose lifetime lasts until the next chunk is requested — and a
// ByteSource decides where those chunks come from:
//
//   MemorySource      caller-owned text, one zero-copy chunk
//   MmapSource        a regular file mapped read-only; chunks are
//                     newline-aligned slices of the mapping, so line
//                     parsing is zero-copy end to end
//   StreamSource      blocking block reads from any std::istream (the
//                     reference source; also the mmap fallback)
//   OverlappedSource  double-buffered reads from a pipe/stdin/socket
//                     stream: a helper thread prefetches block N+1
//                     while the parser consumes block N
//
// Every source passes the fault::Site::ReaderRead injection point once
// per chunk request (MemorySource excepted — in-memory text has no I/O
// to fail), so the torn-read recovery contract (diagnostic T004,
// docs/robustness.md) is exercised identically on all ingest paths.
#pragma once

#include <cstddef>
#include <istream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include <condition_variable>
#include <mutex>

#include "trace/codec.hpp"

namespace tdt::trace {

/// Block size for streaming sources. Large enough that refills are
/// rare, small enough to stay cache-friendly.
inline constexpr std::size_t kIngestBlock = 256 * 1024;

/// Pull interface: next_chunk() returns the next run of input bytes,
/// valid until the following next_chunk() call; an empty view means end
/// of input. failed() distinguishes an I/O failure from clean EOF once
/// the source is exhausted.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Next byte run; empty at end of input. The returned view is
  /// invalidated by the next call.
  [[nodiscard]] virtual std::string_view next_chunk() = 0;

  /// True when input ended because a read failed (istream badbit, or an
  /// injected reader.read fault) rather than clean EOF.
  [[nodiscard]] virtual bool failed() const noexcept = 0;

  /// Backend name for diagnostics and metrics ("memory", "mmap",
  /// "stream", "overlapped").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Caller-owned text delivered as one zero-copy chunk. No fault
/// opportunities: in-memory text cannot tear.
class MemorySource final : public ByteSource {
 public:
  explicit MemorySource(std::string_view text) noexcept : text_(text) {}

  [[nodiscard]] std::string_view next_chunk() override {
    const std::string_view chunk = text_;
    text_ = {};
    return chunk;
  }
  [[nodiscard]] bool failed() const noexcept override { return false; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "memory";
  }

 private:
  std::string_view text_;
};

/// Blocking block reads from a std::istream. The reference streaming
/// source: one read per chunk, fault site checked before each read.
class StreamSource final : public ByteSource {
 public:
  /// Borrows `in`; the stream must outlive the source. `block` is a
  /// test knob (small blocks force lines to straddle chunks).
  explicit StreamSource(std::istream& in, std::size_t block = kIngestBlock);

  /// Opens `path` in binary mode. Throws Error{Io} when it cannot.
  static std::unique_ptr<StreamSource> open(const std::string& path);

  [[nodiscard]] std::string_view next_chunk() override;
  [[nodiscard]] bool failed() const noexcept override { return failed_; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "stream";
  }

 private:
  std::unique_ptr<std::istream> owned_;  // set by open()
  std::istream* in_;
  std::string buf_;
  bool failed_ = false;
  bool done_ = false;
};

/// A regular file mapped read-only. Chunks are slices of the mapping
/// cut at the last newline inside each slice (the final slice, or a
/// slice containing no newline at all, is delivered whole), so the
/// reader never has to copy a straddling line. Unavailable on
/// non-POSIX builds; open() then returns nullptr and callers fall back
/// to StreamSource.
class MmapSource final : public ByteSource {
 public:
  /// Maps `path` when it names a non-empty regular file; nullptr when
  /// mapping is impossible (missing file, pipe/device, empty file,
  /// platform without mmap) — never throws for fallback-able causes.
  /// `chunk` is a test knob bounding slice size.
  static std::unique_ptr<MmapSource> open(const std::string& path,
                                          std::size_t chunk = kDefaultChunk);

  ~MmapSource() override;
  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  [[nodiscard]] std::string_view next_chunk() override;
  [[nodiscard]] bool failed() const noexcept override { return failed_; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "mmap";
  }

  /// Default slice size (16 read blocks): big enough to amortize the
  /// per-chunk bookkeeping, small enough that the ReaderRead fault site
  /// sees several opportunities on multi-MiB traces.
  static constexpr std::size_t kDefaultChunk = 16 * kIngestBlock;

 private:
  MmapSource(const char* base, std::size_t size, std::size_t chunk) noexcept
      : base_(base), size_(size), chunk_(chunk) {}

  const char* base_;
  std::size_t size_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  bool done_ = false;
};

/// Double-buffered overlapped reads: a helper thread fills block N+1
/// while the consumer parses block N, hiding pipe/stdin latency behind
/// parse time. The prefetch thread is the only one touching the
/// istream, and it passes the ReaderRead fault site before every read,
/// in read order — fault schedules are as deterministic as the
/// synchronous source's.
class OverlappedSource final : public ByteSource {
 public:
  /// Borrows `in`; the stream must outlive the source.
  explicit OverlappedSource(std::istream& in,
                            std::size_t block = kIngestBlock);

  /// Opens `path` in binary mode. Throws Error{Io} when it cannot.
  static std::unique_ptr<OverlappedSource> open(const std::string& path);

  ~OverlappedSource() override;
  OverlappedSource(const OverlappedSource&) = delete;
  OverlappedSource& operator=(const OverlappedSource&) = delete;

  [[nodiscard]] std::string_view next_chunk() override;
  [[nodiscard]] bool failed() const noexcept override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "overlapped";
  }

 private:
  struct Slot {
    std::string data;
    std::size_t len = 0;
    bool ready = false;  // filled by the prefetcher, not yet consumed
  };

  void prefetch_main();

  std::unique_ptr<std::istream> owned_;  // set by open()
  std::istream* in_;
  Slot slots_[2];
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t produce_ = 0;  // slot the prefetcher fills next
  std::size_t consume_ = 0;  // slot next_chunk() delivers next
  bool eof_ = false;         // prefetcher finished (under mu_)
  bool failed_ = false;      // under mu_ until eof_, then stable
  bool stop_ = false;        // destructor tells the prefetcher to quit
  std::size_t delivered_ = 0;  // chunks handed out (consumer thread only)
  std::thread prefetcher_;
};

/// Transparent gzip inflation over any inner source. Construction is
/// driven by open_trace_byte_source(): it sniffs the first bytes of the
/// stream for the gzip magic and wraps compressed text (a `trace.out.gz`,
/// whether named so or not) so the text reader never knows. Handles
/// concatenated members (`cat a.gz b.gz`). A truncated or corrupt stream
/// surfaces through failed() — the same torn-read contract (T004) as
/// every other source.
class GzipSource final : public ByteSource {
 public:
  /// Takes ownership of `inner`. `head` holds bytes already pulled from
  /// the inner source by the sniffer; they are inflated first. Throws
  /// Error{Config} when zlib support is not built in.
  GzipSource(std::unique_ptr<ByteSource> inner, std::string head);
  ~GzipSource() override;
  GzipSource(const GzipSource&) = delete;
  GzipSource& operator=(const GzipSource&) = delete;

  [[nodiscard]] std::string_view next_chunk() override;
  [[nodiscard]] bool failed() const noexcept override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;  // "gzip+<inner>", e.g. "gzip+mmap"
  }

 private:
  bool refill();  // feeds the next compressed chunk to the inflater

  std::unique_ptr<ByteSource> inner_;
  std::unique_ptr<GzipInflater> inflater_;
  std::string head_;  // sniffed bytes, inflated before the inner source
  std::string name_;
  std::string out_;
  bool done_ = false;
  bool failed_ = false;
};

/// Read-only view of one whole file: mmap'd when possible, slurped into
/// a buffer otherwise. The TDTB container probe and the parallel frame
/// decoder need random access to frames; this is their backing.
class FileView {
 public:
  /// nullptr when the file cannot be opened or read. An empty file
  /// yields an empty view.
  [[nodiscard]] static std::unique_ptr<FileView> open(const std::string& path);

  ~FileView();
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;

  [[nodiscard]] std::string_view bytes() const noexcept {
    return {base_, size_};
  }

 private:
  FileView() = default;

  const char* base_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string buf_;  // fallback storage when mmap is impossible
};

/// How open_trace_byte_source picks a backend.
enum class IngestMode : std::uint8_t {
  Auto,        ///< mmap for regular files, overlapped for pipes/stdin
  Stream,      ///< force synchronous StreamSource
  Mmap,        ///< force MmapSource (throws Error{Io} when impossible)
  Overlapped,  ///< force OverlappedSource
};

/// Opens the best byte source for `path`: "-" reads stdin through an
/// OverlappedSource; regular files map via MmapSource (set TDT_NO_MMAP=1
/// to disable); pipes/devices and mmap failures fall back to streams.
/// Input starting with the gzip magic (0x1f 0x8b) is wrapped in a
/// GzipSource regardless of backend or file name, so `.gz` traces ingest
/// transparently. Throws Error{Io} when the path cannot be opened at
/// all, Error{Config} for gzip input without built-in zlib.
[[nodiscard]] std::unique_ptr<ByteSource> open_trace_byte_source(
    const std::string& path, IngestMode mode = IngestMode::Auto);

/// Backend selection without the gzip sniff (open_trace_byte_source is
/// this plus transparent decompression). Exposed for tests and callers
/// that must see raw bytes.
[[nodiscard]] std::unique_ptr<ByteSource> open_raw_byte_source(
    const std::string& path, IngestMode mode = IngestMode::Auto);

}  // namespace tdt::trace
