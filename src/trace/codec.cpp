#include "trace/codec.hpp"

#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TDT_HAVE_DLOPEN 1
#include <dlfcn.h>
#endif

#if defined(TDT_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace tdt::trace {
namespace {

/// TDT_NO_CODEC=1 hides zstd/lz4 even when their libraries are present,
/// so the codec-none degradation path is testable everywhere.
bool codecs_disabled_by_env() {
  static const bool disabled = [] {
    const char* v = std::getenv("TDT_NO_CODEC");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return disabled;
}

#if defined(TDT_HAVE_DLOPEN)
void* open_first(const char* const* names) {
  for (const char* const* n = names; *n != nullptr; ++n) {
    if (void* h = ::dlopen(*n, RTLD_NOW | RTLD_LOCAL)) return h;
  }
  return nullptr;
}
#endif

// The build compiles without zstd.h/lz4.h: the few entry points the frame
// codecs need are declared locally and resolved with dlsym at first use.
// Signatures follow the stable public APIs of libzstd/liblz4.

struct ZstdApi {
  std::size_t (*compress_bound)(std::size_t) = nullptr;
  unsigned (*is_error)(std::size_t) = nullptr;
  std::size_t (*compress)(void*, std::size_t, const void*, std::size_t,
                          int) = nullptr;
  std::size_t (*decompress)(void*, std::size_t, const void*,
                            std::size_t) = nullptr;
  bool ok = false;
};

const ZstdApi& zstd_api() {
  static const ZstdApi api = [] {
    ZstdApi a;
#if defined(TDT_HAVE_DLOPEN)
    static const char* const names[] = {"libzstd.so.1", "libzstd.so",
                                        "libzstd.1.dylib", nullptr};
    void* h = open_first(names);
    if (h == nullptr) return a;
    a.compress_bound = reinterpret_cast<std::size_t (*)(std::size_t)>(
        ::dlsym(h, "ZSTD_compressBound"));
    a.is_error = reinterpret_cast<unsigned (*)(std::size_t)>(
        ::dlsym(h, "ZSTD_isError"));
    a.compress =
        reinterpret_cast<std::size_t (*)(void*, std::size_t, const void*,
                                         std::size_t, int)>(
            ::dlsym(h, "ZSTD_compress"));
    a.decompress =
        reinterpret_cast<std::size_t (*)(void*, std::size_t, const void*,
                                         std::size_t)>(
            ::dlsym(h, "ZSTD_decompress"));
    a.ok = a.compress_bound != nullptr && a.is_error != nullptr &&
           a.compress != nullptr && a.decompress != nullptr;
#endif
    return a;
  }();
  return api;
}

struct Lz4Api {
  int (*compress_bound)(int) = nullptr;
  int (*compress_fast)(const char*, char*, int, int, int) = nullptr;
  int (*decompress_safe)(const char*, char*, int, int) = nullptr;
  bool ok = false;
};

const Lz4Api& lz4_api() {
  static const Lz4Api api = [] {
    Lz4Api a;
#if defined(TDT_HAVE_DLOPEN)
    static const char* const names[] = {"liblz4.so.1", "liblz4.so",
                                        "liblz4.1.dylib", nullptr};
    void* h = open_first(names);
    if (h == nullptr) return a;
    a.compress_bound =
        reinterpret_cast<int (*)(int)>(::dlsym(h, "LZ4_compressBound"));
    a.compress_fast = reinterpret_cast<int (*)(const char*, char*, int, int,
                                               int)>(
        ::dlsym(h, "LZ4_compress_fast"));
    a.decompress_safe = reinterpret_cast<int (*)(const char*, char*, int,
                                                 int)>(
        ::dlsym(h, "LZ4_decompress_safe"));
    a.ok = a.compress_bound != nullptr && a.compress_fast != nullptr &&
           a.decompress_safe != nullptr;
#endif
    return a;
  }();
  return api;
}

/// lz4's int-typed API caps one block at ~2 GiB; frames are far smaller
/// (the writer bounds them), but a hostile header must not overflow.
constexpr std::size_t kLz4MaxBlock = 0x7E000000;  // LZ4_MAX_INPUT_SIZE

}  // namespace

std::string_view codec_name(Codec codec) noexcept {
  switch (codec) {
    case Codec::None: return "none";
    case Codec::Zstd: return "zstd";
    case Codec::Lz4: return "lz4";
  }
  return "unknown";
}

std::optional<Codec> parse_codec(std::string_view text) noexcept {
  if (text == "none") return Codec::None;
  if (text == "zstd") return Codec::Zstd;
  if (text == "lz4") return Codec::Lz4;
  return std::nullopt;
}

std::optional<Codec> codec_from_id(std::uint8_t id) noexcept {
  if (id > static_cast<std::uint8_t>(Codec::Lz4)) return std::nullopt;
  return static_cast<Codec>(id);
}

bool codec_available(Codec codec) noexcept {
  switch (codec) {
    case Codec::None: return true;
    case Codec::Zstd: return !codecs_disabled_by_env() && zstd_api().ok;
    case Codec::Lz4: return !codecs_disabled_by_env() && lz4_api().ok;
  }
  return false;
}

CompressSpec parse_compress_spec(std::string_view text) {
  CompressSpec spec;
  std::string_view name = text;
  const std::size_t colon = text.find(':');
  if (colon != std::string_view::npos) {
    name = text.substr(0, colon);
    const std::string level_text(text.substr(colon + 1));
    errno = 0;
    char* end = nullptr;
    const long level = std::strtol(level_text.c_str(), &end, 10);
    if (end == level_text.c_str() || *end != '\0' || errno == ERANGE ||
        level < 0 || level > 22) {
      throw_config_error("--compress: bad level '" + level_text +
                         "' (expected 0-22)");
    }
    spec.level = static_cast<int>(level);
  }
  const std::optional<Codec> codec = parse_codec(name);
  if (!codec.has_value()) {
    throw_config_error("--compress: unknown codec '" + std::string(name) +
                       "' (expected zstd|lz4|none[:level])");
  }
  spec.codec = *codec;
  return spec;
}

std::size_t codec_compress_bound(Codec codec, std::size_t n) {
  switch (codec) {
    case Codec::None:
      return n;
    case Codec::Zstd:
      if (zstd_api().ok) return zstd_api().compress_bound(n);
      break;
    case Codec::Lz4:
      if (lz4_api().ok && n <= kLz4MaxBlock) {
        return static_cast<std::size_t>(
            lz4_api().compress_bound(static_cast<int>(n)));
      }
      break;
  }
  // Unavailable codecs still get a safe bound so callers can size
  // scratch before the (failing) compress call.
  return n + n / 2 + 64;
}

bool codec_compress(Codec codec, int level, std::string_view src,
                    std::string& dst) {
  switch (codec) {
    case Codec::None:
      dst.assign(src.data(), src.size());
      return true;
    case Codec::Zstd: {
      if (!codec_available(codec)) return false;
      const ZstdApi& api = zstd_api();
      dst.resize(api.compress_bound(src.size()));
      const std::size_t n =
          api.compress(dst.data(), dst.size(), src.data(), src.size(),
                       level == 0 ? 3 : level);
      if (api.is_error(n) != 0) return false;
      dst.resize(n);
      return true;
    }
    case Codec::Lz4: {
      if (!codec_available(codec) || src.size() > kLz4MaxBlock) return false;
      const Lz4Api& api = lz4_api();
      dst.resize(static_cast<std::size_t>(
          api.compress_bound(static_cast<int>(src.size()))));
      // --compress lz4:N maps the level knob onto lz4's acceleration
      // factor (bigger = faster/looser); the default is acceleration 1.
      const int n = api.compress_fast(src.data(), dst.data(),
                                      static_cast<int>(src.size()),
                                      static_cast<int>(dst.size()),
                                      level == 0 ? 1 : level);
      if (n <= 0) return false;
      dst.resize(static_cast<std::size_t>(n));
      return true;
    }
  }
  return false;
}

bool codec_decompress(Codec codec, std::string_view src,
                      std::size_t uncompressed_size, std::string& dst) {
  switch (codec) {
    case Codec::None:
      if (src.size() != uncompressed_size) return false;
      dst.assign(src.data(), src.size());
      return true;
    case Codec::Zstd: {
      if (!codec_available(codec)) return false;
      const ZstdApi& api = zstd_api();
      dst.resize(uncompressed_size);
      const std::size_t n =
          api.decompress(dst.data(), dst.size(), src.data(), src.size());
      return api.is_error(n) == 0 && n == uncompressed_size;
    }
    case Codec::Lz4: {
      if (!codec_available(codec) || uncompressed_size > kLz4MaxBlock ||
          src.size() > kLz4MaxBlock) {
        return false;
      }
      const Lz4Api& api = lz4_api();
      dst.resize(uncompressed_size);
      const int n = api.decompress_safe(src.data(), dst.data(),
                                        static_cast<int>(src.size()),
                                        static_cast<int>(dst.size()));
      return n >= 0 && static_cast<std::size_t>(n) == uncompressed_size;
    }
  }
  return false;
}

// --- gzip -------------------------------------------------------------------

bool gzip_available() noexcept {
#if defined(TDT_HAVE_ZLIB)
  return true;
#else
  return false;
#endif
}

bool looks_gzip(std::string_view head) noexcept {
  return head.size() >= 2 && static_cast<unsigned char>(head[0]) == 0x1f &&
         static_cast<unsigned char>(head[1]) == 0x8b;
}

#if defined(TDT_HAVE_ZLIB)

bool gzip_compress(std::string_view src, std::string& dst) {
  z_stream zs;
  std::memset(&zs, 0, sizeof(zs));
  // windowBits 15+16 selects a gzip wrapper around the deflate stream.
  if (deflateInit2(&zs, Z_DEFAULT_COMPRESSION, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    return false;
  }
  const uLong bound = deflateBound(&zs, static_cast<uLong>(src.size()));
  dst.resize(bound + 32);  // header slack for deflateBound underestimates
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(src.data()));
  zs.avail_in = static_cast<uInt>(src.size());
  zs.next_out = reinterpret_cast<Bytef*>(dst.data());
  zs.avail_out = static_cast<uInt>(dst.size());
  const int rc = deflate(&zs, Z_FINISH);
  const bool ok = rc == Z_STREAM_END;
  dst.resize(ok ? dst.size() - zs.avail_out : 0);
  deflateEnd(&zs);
  return ok;
}

struct GzipInflater::Impl {
  z_stream zs{};
  bool stream_open = false;   // inflateInit2 done, not yet at stream end
  bool saw_member = false;    // at least one member decoded to completion
};

GzipInflater::GzipInflater() : impl_(std::make_unique<Impl>()) {
  std::memset(&impl_->zs, 0, sizeof(impl_->zs));
  if (inflateInit2(&impl_->zs, 15 + 16) != Z_OK) {
    throw Error(ErrorKind::Config, "zlib: inflateInit2 failed");
  }
  impl_->stream_open = true;
}

GzipInflater::~GzipInflater() {
  if (impl_ != nullptr && impl_->stream_open) inflateEnd(&impl_->zs);
}

void GzipInflater::set_input(std::string_view in) noexcept {
  impl_->zs.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(in.data()));
  impl_->zs.avail_in = static_cast<uInt>(in.size());
}

GzipInflater::Status GzipInflater::inflate_chunk(char* out, std::size_t cap,
                                                 std::size_t* produced) {
  *produced = 0;
  z_stream& zs = impl_->zs;
  zs.next_out = reinterpret_cast<Bytef*>(out);
  zs.avail_out = static_cast<uInt>(cap);
  const int rc = inflate(&zs, Z_NO_FLUSH);
  *produced = cap - zs.avail_out;
  if (rc == Z_STREAM_END) {
    impl_->saw_member = true;
    if (zs.avail_in > 0) {
      // Concatenated members: reset and keep going on the same input.
      // Output (even with 0 bytes produced) tells the caller to call
      // again rather than refill — the pending input is still ours.
      if (inflateReset(&zs) != Z_OK) return Status::Error;
      return Status::Output;
    }
    return *produced > 0 ? Status::Output : Status::Done;
  }
  if (rc != Z_OK && rc != Z_BUF_ERROR) return Status::Error;
  if (*produced > 0) return Status::Output;
  if (zs.avail_in == 0) return Status::NeedInput;
  // Z_BUF_ERROR with input pending and no output: a zero-capacity call
  // or a stall; report NeedInput only when input is truly drained.
  return cap == 0 ? Status::Output : Status::Error;
}

#else  // !TDT_HAVE_ZLIB

bool gzip_compress(std::string_view, std::string&) { return false; }

struct GzipInflater::Impl {};

GzipInflater::GzipInflater() {
  throw Error(ErrorKind::Config,
              "gzip support is not built in (zlib was unavailable at "
              "configure time)");
}

GzipInflater::~GzipInflater() = default;

void GzipInflater::set_input(std::string_view) noexcept {}

GzipInflater::Status GzipInflater::inflate_chunk(char*, std::size_t,
                                                 std::size_t*) {
  return Status::Error;
}

#endif  // TDT_HAVE_ZLIB

}  // namespace tdt::trace
