// The trace record model: an in-memory representation of one Gleipnir
// trace line (paper Fig. 1):
//
//   [ S ] 7ff000108 [ malloc ] [ LS ] [ 0 ] [ 1 ] [ _zzq_args[5] ]
//    kind  address    function  scope  frame thread variable
//
// Function and variable names are interned in a TraceContext's StringPool
// so a record is cheap to copy and compare.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/small_vector.hpp"
#include "util/string_pool.hpp"

namespace tdt::trace {

/// Kind of memory event, matching Gleipnir's first trace column.
enum class AccessKind : std::uint8_t {
  Load,    ///< 'L' — data read
  Store,   ///< 'S' — data write
  Modify,  ///< 'M' — read-modify-write (e.g. i++)
  Instr,   ///< 'I' — instruction fetch (disabled in the paper's runs)
  Misc,    ///< 'X' — miscellaneous
};

/// Variable scope annotation, matching Gleipnir's LV/LS/GV/GS column.
enum class VarScope : std::uint8_t {
  Unknown,          ///< no symbol information on this line
  LocalVariable,    ///< LV — scalar local
  LocalStructure,   ///< LS — local aggregate (struct or array) element
  GlobalVariable,   ///< GV — scalar global
  GlobalStructure,  ///< GS — global aggregate element
};

/// True for LS/GS scopes (aggregate element accesses).
[[nodiscard]] constexpr bool is_structure_scope(VarScope s) noexcept {
  return s == VarScope::LocalStructure || s == VarScope::GlobalStructure;
}

/// True for GV/GS scopes. Global accesses omit frame/thread in the text
/// format ("there is no need to identify the frame", paper §III-A).
[[nodiscard]] constexpr bool is_global_scope(VarScope s) noexcept {
  return s == VarScope::GlobalVariable || s == VarScope::GlobalStructure;
}

/// Single-character code for an access kind ('L', 'S', 'M', 'I', 'X').
[[nodiscard]] char access_kind_code(AccessKind k) noexcept;

/// Parses an access-kind code; returns false when `c` is not one.
[[nodiscard]] bool parse_access_kind(char c, AccessKind& out) noexcept;

/// Two-character scope code ("LV", "LS", "GV", "GS"; "" for Unknown).
[[nodiscard]] std::string_view var_scope_code(VarScope s) noexcept;

/// Parses a scope code; returns false when `text` is not one.
[[nodiscard]] bool parse_var_scope(std::string_view text,
                                   VarScope& out) noexcept;

/// One selector step inside a variable reference: either `.field` or
/// `[index]`.
struct VarStep {
  Symbol field;             // valid when is_field
  std::uint64_t index = 0;  // valid when !is_field
  bool is_field = false;

  static VarStep make_field(Symbol f) { return VarStep{f, 0, true}; }
  static VarStep make_index(std::uint64_t i) { return VarStep{{}, i, false}; }

  friend bool operator==(const VarStep& a, const VarStep& b) noexcept {
    return a.is_field == b.is_field &&
           (a.is_field ? a.field == b.field : a.index == b.index);
  }
};

/// A structured variable reference: base name plus selector chain, e.g.
/// glStructArray[0].myArray[1] -> base=glStructArray,
/// steps=[ [0], .myArray, [1] ].
struct VarRef {
  Symbol base;
  SmallVector<VarStep, 3> steps;

  [[nodiscard]] bool empty() const noexcept { return base.empty(); }

  friend bool operator==(const VarRef& a, const VarRef& b) noexcept {
    return a.base == b.base && a.steps == b.steps;
  }
};

/// One trace line.
struct TraceRecord {
  AccessKind kind = AccessKind::Load;
  VarScope scope = VarScope::Unknown;
  std::uint16_t frame = 0;
  std::uint16_t thread = 1;
  std::uint32_t size = 0;
  std::uint64_t address = 0;
  Symbol function;
  VarRef var;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Owns the string pool shared by all records of one trace pipeline and
/// provides formatting helpers that need name lookup.
class TraceContext {
 public:
  TraceContext() = default;

  [[nodiscard]] StringPool& pool() noexcept { return pool_; }
  [[nodiscard]] const StringPool& pool() const noexcept { return pool_; }

  /// Interns a name.
  Symbol intern(std::string_view s) { return pool_.intern(s); }

  /// Name for a symbol.
  [[nodiscard]] std::string_view name(Symbol s) const { return pool_.view(s); }

  /// Renders a variable reference ("lSoA.mX[3]").
  [[nodiscard]] std::string format_var(const VarRef& var) const;

  /// Parses a variable reference text into interned form.
  [[nodiscard]] VarRef parse_var(std::string_view text);

  /// Non-throwing twin of parse_var for the reader's fast path: returns
  /// false instead of throwing on malformed input. Accepts exactly the
  /// same texts as parse_var and interns base/field names in the same
  /// order, so a failed attempt followed by parse_var on the same text
  /// leaves the pool in the identical state (interning is idempotent).
  [[nodiscard]] bool try_parse_var(std::string_view text, VarRef& out);

  /// Renders a full trace line exactly as Gleipnir prints it
  /// (no trailing newline).
  [[nodiscard]] std::string format_record(const TraceRecord& rec) const;

 private:
  StringPool pool_;
};

}  // namespace tdt::trace
