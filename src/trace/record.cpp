#include "trace/record.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {

char access_kind_code(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::Load: return 'L';
    case AccessKind::Store: return 'S';
    case AccessKind::Modify: return 'M';
    case AccessKind::Instr: return 'I';
    case AccessKind::Misc: return 'X';
  }
  return '?';
}

bool parse_access_kind(char c, AccessKind& out) noexcept {
  switch (c) {
    case 'L': out = AccessKind::Load; return true;
    case 'S': out = AccessKind::Store; return true;
    case 'M': out = AccessKind::Modify; return true;
    case 'I': out = AccessKind::Instr; return true;
    case 'X': out = AccessKind::Misc; return true;
  }
  return false;
}

std::string_view var_scope_code(VarScope s) noexcept {
  switch (s) {
    case VarScope::Unknown: return "";
    case VarScope::LocalVariable: return "LV";
    case VarScope::LocalStructure: return "LS";
    case VarScope::GlobalVariable: return "GV";
    case VarScope::GlobalStructure: return "GS";
  }
  return "";
}

bool parse_var_scope(std::string_view text, VarScope& out) noexcept {
  if (text == "LV") { out = VarScope::LocalVariable; return true; }
  if (text == "LS") { out = VarScope::LocalStructure; return true; }
  if (text == "GV") { out = VarScope::GlobalVariable; return true; }
  if (text == "GS") { out = VarScope::GlobalStructure; return true; }
  return false;
}

std::string TraceContext::format_var(const VarRef& var) const {
  std::string out(pool_.view(var.base));
  for (const VarStep& step : var.steps) {
    if (step.is_field) {
      out += '.';
      out += pool_.view(step.field);
    } else {
      out += '[';
      out += std::to_string(step.index);
      out += ']';
    }
  }
  return out;
}

VarRef TraceContext::parse_var(std::string_view text) {
  VarRef ref;
  std::size_t i = 0;
  if (i >= text.size() || !is_ident_start(text[i])) {
    throw_parse_error("variable reference must start with an identifier: '" +
                      std::string(text) + "'");
  }
  std::size_t start = i;
  while (i < text.size() && is_ident_char(text[i])) ++i;
  ref.base = pool_.intern(text.substr(start, i - start));
  while (i < text.size()) {
    if (text[i] == '.') {
      ++i;
      start = i;
      if (i >= text.size() || !is_ident_start(text[i])) {
        throw_parse_error("expected field after '.' in '" + std::string(text) +
                          "'");
      }
      while (i < text.size() && is_ident_char(text[i])) ++i;
      ref.steps.push_back(
          VarStep::make_field(pool_.intern(text.substr(start, i - start))));
    } else if (text[i] == '[') {
      ++i;
      start = i;
      while (i < text.size() && text[i] != ']') ++i;
      if (i >= text.size()) {
        throw_parse_error("unterminated '[' in '" + std::string(text) + "'");
      }
      auto idx = parse_uint(text.substr(start, i - start));
      if (!idx) {
        throw_parse_error("bad index in '" + std::string(text) + "'");
      }
      ref.steps.push_back(VarStep::make_index(*idx));
      ++i;
    } else {
      throw_parse_error("unexpected '" + std::string(1, text[i]) + "' in '" +
                        std::string(text) + "'");
    }
  }
  return ref;
}

bool TraceContext::try_parse_var(std::string_view text, VarRef& out) {
  VarRef ref;
  std::size_t i = 0;
  if (i >= text.size() || !is_ident_start(text[i])) return false;
  std::size_t start = i;
  while (i < text.size() && is_ident_char(text[i])) ++i;
  ref.base = pool_.intern(text.substr(start, i - start));
  while (i < text.size()) {
    if (text[i] == '.') {
      ++i;
      start = i;
      if (i >= text.size() || !is_ident_start(text[i])) return false;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      ref.steps.push_back(
          VarStep::make_field(pool_.intern(text.substr(start, i - start))));
    } else if (text[i] == '[') {
      ++i;
      start = i;
      while (i < text.size() && text[i] != ']') ++i;
      if (i >= text.size()) return false;
      const auto idx = parse_uint(text.substr(start, i - start));
      if (!idx) return false;
      ref.steps.push_back(VarStep::make_index(*idx));
      ++i;
    } else {
      return false;
    }
  }
  out = std::move(ref);
  return true;
}

std::string TraceContext::format_record(const TraceRecord& rec) const {
  // Layout (paper Listing 2):
  //   K ADDRESS SIZE FUNCTION [SCOPE [FRAME THREAD] VAR]
  // Globals omit frame/thread; lines without symbol info stop after the
  // function name.
  std::string out;
  out += access_kind_code(rec.kind);
  out += ' ';
  out += to_hex(rec.address, 9);
  out += ' ';
  out += std::to_string(rec.size);
  out += ' ';
  out += pool_.view(rec.function);
  if (rec.scope != VarScope::Unknown) {
    out += ' ';
    out += var_scope_code(rec.scope);
    if (!is_global_scope(rec.scope)) {
      out += ' ';
      out += std::to_string(rec.frame);
      out += ' ';
      out += std::to_string(rec.thread);
    }
    out += ' ';
    out += format_var(rec.var);
  }
  return out;
}

}  // namespace tdt::trace
