// One-pass parallel simulation pipeline. A ParallelFanOut is a TraceSink
// that broadcasts batches of TraceRecords to N downstream sinks, grouped
// onto worker threads fed through bounded ring-buffer queues
// (util/bounded_queue.hpp). A single streaming pass over a trace thus
// drives any number of cache configurations or analysis sinks at once:
//
//   reader (parse [+ transform]) --batch--> [queue] -> worker 0: sinks 0, W, ...
//                                --batch--> [queue] -> worker 1: sinks 1, W+1, ...
//
// Determinism: every sink receives the full record stream in trace
// order, so each sink's results are bit-identical to a sequential run,
// and the caller collects/merges statistics in sink order — never in
// worker completion order. jobs == 0 runs the same batched code path
// inline with no threads: that is the reference sequential mode the
// parallel output is compared against.
//
// Thread-safety contract: the reader thread is the only one that interns
// into the TraceContext; workers may resolve symbols they received
// through the queues (StringPool storage is append-only and stable; the
// queue mutex provides the happens-before edge).
//
// Supervision (--worker-timeout > 0): every worker publishes a
// heartbeat; a watchdog thread flags any worker that holds work but has
// not beaten for the timeout, aborts its queue (so the reader never
// deadlocks against a dead stage), and on_end() re-simulates the batches
// the worker missed sequentially into its sinks — every published batch
// is retained for exactly this replay, so recovered results are
// bit-identical to a clean run. Recovery is reported through
// PipelineCounters (recovered_workers > 0 → the tool exits 1); a worker
// that cannot be recovered (its thread is wedged beyond the grace
// period, or the replay buffer was spilled under --max-memory) stays an
// error and the run exits 2. With worker_timeout == 0 nothing is
// retained and behaviour is exactly the unsupervised original.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/sink.hpp"
#include "util/bounded_queue.hpp"
#include "util/governor.hpp"
#include "util/obs.hpp"

namespace tdt::trace {

/// A published batch of records, shared read-only by all workers.
using RecordBatch = std::vector<TraceRecord>;

/// Pipeline shape knobs.
struct ParallelOptions {
  /// Worker threads. 0 (or a single worker with nothing to overlap) runs
  /// the fan-out inline on the calling thread — the sequential reference
  /// mode. Capped at the number of sinks.
  std::size_t jobs = 0;
  /// Records per published batch.
  std::size_t batch_records = 4096;
  /// Per-worker queue capacity, in batches (bounds memory and applies
  /// backpressure to the reader).
  std::size_t queue_batches = 8;
  /// When non-null, on_end() folds the pipeline counters, queue gauges,
  /// per-worker spans, and the merged pipeline.batch_latency_us histogram
  /// into this registry. Null changes nothing (no hot-path cost either
  /// way: workers accumulate into private HistogramData shards).
  obs::Registry* registry = nullptr;
  /// Watchdog timeout in seconds; 0 disables supervision entirely (no
  /// watchdog thread, no batch retention — the original behaviour).
  double worker_timeout = 0;
  /// Optional budget charged for the supervision replay buffer. Replay
  /// retention is a degradable capability: on exhaustion it spills (stops
  /// retaining, releases its charge) instead of failing, at the price
  /// that a later worker failure can no longer be recovered.
  Budget* memory = nullptr;
};

/// Counters of one worker stage, snapshotted at on_end().
struct WorkerCounters {
  std::size_t sinks = 0;          ///< downstream sinks owned by this worker
  std::uint64_t records = 0;
  std::uint64_t batches = 0;
  std::uint64_t push_stalls = 0;  ///< reader blocked on this worker's queue
  std::uint64_t pop_stalls = 0;   ///< worker starved waiting for the reader
  std::uint64_t occupancy_sum = 0;   ///< queue depth summed per push
  std::uint64_t peak_occupancy = 0;  ///< deepest the queue ever got
  obs::HistogramData batch_latency_us;  ///< per-batch sink-drive wall time
};

/// Whole-pipeline observability, rendered next to the diag summary.
struct PipelineCounters {
  std::size_t jobs = 0;           ///< worker threads actually spawned
  std::size_t batch_records = 0;
  std::size_t queue_batches = 0;
  std::uint64_t records = 0;      ///< records the reader pushed
  std::uint64_t batches = 0;
  double seconds = 0;             ///< construction to on_end
  std::vector<WorkerCounters> workers;
  // Supervision outcome (all zero when worker_timeout == 0 or clean).
  double worker_timeout = 0;            ///< configured watchdog timeout (s)
  std::size_t stalled_workers = 0;      ///< workers the watchdog gave up on
  std::size_t recovered_workers = 0;    ///< failed workers replayed to parity
  std::size_t lost_workers = 0;         ///< failed workers beyond recovery
  std::uint64_t replayed_batches = 0;   ///< batches re-simulated sequentially
  bool replay_spilled = false;          ///< retention shed under --max-memory

  /// Reader-side throughput (records / seconds; 0 when unmeasurable).
  [[nodiscard]] double records_per_second() const noexcept;

  /// Multi-line human-readable rendering:
  ///   pipeline: 10000000 records in 2442 batches, 1.23 s (8.1 Mrec/s), 4 workers
  ///     worker 0 (2 sinks): 10000000 records, 37 backpressure stalls, ...
  [[nodiscard]] std::string summary() const;
};

/// Broadcast fan-out sink with optional worker threads.
class ParallelFanOut final : public TraceSink {
 public:
  /// `sinks` are not owned and must outlive the fan-out. With
  /// options.jobs > 0, each sink is driven from exactly one worker
  /// thread (sink i belongs to worker i % jobs); sinks never need
  /// internal synchronisation.
  explicit ParallelFanOut(std::vector<TraceSink*> sinks,
                          ParallelOptions options = {});

  /// Aborts the queues and joins workers if on_end() was never reached
  /// (error unwinding); never throws.
  ~ParallelFanOut() override;

  ParallelFanOut(const ParallelFanOut&) = delete;
  ParallelFanOut& operator=(const ParallelFanOut&) = delete;

  // TraceSink
  void on_record(const TraceRecord& rec) override;
  void push_batch(std::span<const TraceRecord> batch) override;
  /// Owned batches are published to the workers without the staging copy
  /// push_batch needs (the batch storage itself becomes the shared
  /// RecordBatch). This is the reader's bulk-ingest handoff.
  void push_batch_owned(std::vector<TraceRecord>&& batch) override;
  /// Flushes the pending batch, closes the queues, joins the workers,
  /// forwards on_end to every sink (in the worker that owns it), then
  /// rethrows the first worker exception, if any. Idempotent.
  void on_end() override;

  /// Valid after on_end().
  [[nodiscard]] const PipelineCounters& counters() const noexcept {
    return counters_;
  }

 private:
  using BatchPtr = std::shared_ptr<const RecordBatch>;

  struct Worker {
    BoundedQueue<BatchPtr> queue;
    std::vector<TraceSink*> sinks;
    std::thread thread;
    std::exception_ptr error;
    std::uint64_t records = 0;
    std::uint64_t batches = 0;
    obs::HistogramData batch_latency_us;  // thread-private, folded at join
    std::chrono::steady_clock::time_point first_batch{};
    std::chrono::steady_clock::time_point last_batch{};
    // Supervision state. The worker thread writes the atomics; the
    // watchdog and on_end() read them (and the watchdog writes failed /
    // failed_at). The plain flags below are only touched under sup_mu_
    // or after the thread is joined.
    std::atomic<std::uint64_t> heartbeat_us{0};  ///< last activity vs start_
    std::atomic<std::uint64_t> completed{0};     ///< batches fully delivered
    std::atomic<bool> done{false};               ///< thread body finished
    std::atomic<bool> failed{false};             ///< watchdog declared dead
    std::chrono::steady_clock::time_point failed_at{};
    bool abandoned = false;   ///< thread never exited; detached, not joined
    bool recovered = false;   ///< sinks were replayed to parity by on_end

    explicit Worker(std::size_t queue_capacity) : queue(queue_capacity) {}
  };

  [[nodiscard]] bool supervised() const noexcept {
    return options_.worker_timeout > 0 && !workers_.empty();
  }

  void flush_pending();
  void publish(BatchPtr batch);
  void worker_main(Worker& worker);
  void watchdog_main();
  /// Supervised shutdown: waits for workers to settle (abandoning wedged
  /// ones after a grace period), stops the watchdog, joins, and replays
  /// failed workers' missed batches into their sinks.
  void supervised_join();
  void drop_replay() noexcept;

  std::vector<TraceSink*> sinks_;
  ParallelOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  RecordBatch pending_;
  obs::HistogramData inline_latency_;  // jobs == 0 batch timings
  PipelineCounters counters_;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;

  // Supervision plumbing (idle unless worker_timeout > 0).
  std::thread watchdog_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  bool watchdog_stop_ = false;           // under sup_mu_
  std::vector<BatchPtr> replay_;         // reader/on_end thread only
  bool replay_spilled_ = false;
  std::uint64_t replay_charged_ = 0;
};

}  // namespace tdt::trace
