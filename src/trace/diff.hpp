// Trace diff: aligns an original trace with its transformed counterpart
// and classifies every line, reproducing the side-by-side comparisons of
// the paper's Figures 5, 8 and 9 ("A complete and transformed trace is
// compared with the original trace", §IV-A step 5).
//
// A transformed trace is the original with (a) some records rewritten in
// place (same event, new address / variable) and (b) extra records
// inserted for pointer indirection or injected index arithmetic. The
// aligner exploits that structure instead of running a general LCS.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace tdt::trace {

/// Classification of one aligned diff row.
enum class DiffKind : std::uint8_t {
  Same,      ///< identical record on both sides
  Modified,  ///< same event, rewritten address/variable (Fig 5 arrows)
  Inserted,  ///< present only in the transformed trace (Fig 8 green lines)
  Deleted,   ///< present only in the original trace
};

/// One aligned row. Indices refer to the input spans; kUnpaired marks the
/// missing side of an insertion/deletion.
struct DiffEntry {
  static constexpr std::uint32_t kUnpaired = 0xFFFFFFFFu;

  DiffKind kind = DiffKind::Same;
  std::uint32_t original = kUnpaired;
  std::uint32_t transformed = kUnpaired;
};

/// Summary counts over a diff.
struct DiffSummary {
  std::uint64_t same = 0;
  std::uint64_t modified = 0;
  std::uint64_t inserted = 0;
  std::uint64_t deleted = 0;

  [[nodiscard]] std::uint64_t rows() const noexcept {
    return same + modified + inserted + deleted;
  }
  friend bool operator==(const DiffSummary&, const DiffSummary&) = default;
};

/// Aligns `original` against `transformed`.
[[nodiscard]] std::vector<DiffEntry> diff_traces(
    std::span<const TraceRecord> original,
    std::span<const TraceRecord> transformed);

/// Tallies a diff.
[[nodiscard]] DiffSummary summarize(std::span<const DiffEntry> entries);

/// Renders a side-by-side view:
///   `  <original line> | <transformed line>`   (Same)
///   `~ <original line> | <transformed line>`   (Modified)
///   `+                 | <transformed line>`   (Inserted)
///   `- <original line> |`                      (Deleted)
[[nodiscard]] std::string render_side_by_side(
    const TraceContext& ctx, std::span<const TraceRecord> original,
    std::span<const TraceRecord> transformed,
    std::span<const DiffEntry> entries, std::size_t max_rows = ~std::size_t{0});

}  // namespace tdt::trace
