// Reader for the Gleipnir textual trace format (paper Listing 2):
//
//   START PID 13063
//   S 7ff0001b0 8 main LV 0 1 _zzq_result
//   L 7ff0001b0 8 main
//   S 000601040 4 main GV glScalar
//   ...
//   END PID 13063
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"
#include "util/diag.hpp"

namespace tdt::trace {

/// One parsed trace-file event: either a record or a START/END marker.
struct TraceEvent {
  enum class Kind : std::uint8_t { Record, Start, End };

  Kind kind = Kind::Record;
  TraceRecord record;    // when kind == Record
  std::uint64_t pid = 0; // when kind == Start / End
};

/// Streaming line-by-line parser; blank lines are skipped.
///
/// Ingestion is zero-copy on the steady state: input is consumed either
/// straight from a caller-provided string_view or through a block buffer
/// refilled with bulk istream::read (no per-line getline into a
/// std::string), lines are tokenized in place into a fixed-capacity
/// SmallVector of string_views, and well-formed records are decoded by a
/// non-throwing fast parser. Any line the fast parser rejects is re-parsed
/// by the original diagnostic-rich path, so error messages, recovery
/// behaviour (--on-error) and exit codes are byte-for-byte identical to
/// the slow path.
///
/// Without a DiagEngine (or with a Strict one) it throws Error{Parse}
/// with the offending line number on malformed input. With a Skip/Repair
/// engine it reports the diagnostic and resyncs to the next line; Repair
/// additionally salvages a record's address/size/function when only the
/// trailing symbol annotation is malformed (the record comes back with
/// Unknown scope, diagnostic T003).
class GleipnirReader {
 public:
  /// Ingestion observability: bytes consumed and which parse path decoded
  /// each record (obs integration; folded into the metrics registry by
  /// trace/stream.cpp).
  struct Counters {
    std::uint64_t bytes = 0;         ///< input bytes consumed (incl. newlines)
    std::uint64_t fast_records = 0;  ///< records decoded by the fast parser
    std::uint64_t slow_records = 0;  ///< records decoded by the slow path
  };

  GleipnirReader(TraceContext& ctx, std::istream& in,
                 DiagEngine* diags = nullptr);

  /// Zero-copy variant: parses `text` in place. `text` must outlive the
  /// reader; nothing is copied or buffered.
  GleipnirReader(TraceContext& ctx, std::string_view text,
                 DiagEngine* diags = nullptr);

  /// Returns the next event, or nullopt at end of input.
  std::optional<TraceEvent> next();

  /// 1-based number of the line most recently consumed.
  [[nodiscard]] std::uint32_t line_number() const noexcept { return line_; }

  /// Running ingestion counters (valid at any point during the read).
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  /// Disables the fast record parser so every line goes through the
  /// original allocating path. Benchmark / equivalence-test hook; the two
  /// paths must produce identical events, diagnostics and errors.
  void force_slow_parse(bool v) noexcept { force_slow_ = v; }

  /// Parses a single record line (no START/END handling). Exposed for
  /// tests and the diff tool. Always throws on malformed input.
  static TraceRecord parse_record_line(TraceContext& ctx,
                                       std::string_view line,
                                       std::uint32_t line_number = 0);

  /// Non-throwing fast twin of parse_record_line: returns false on any
  /// line it cannot decode (caller falls back to parse_record_line for
  /// the authoritative error). Accepts exactly the lines
  /// parse_record_line accepts and produces the identical record.
  static bool parse_record_fast(TraceContext& ctx, std::string_view line,
                                TraceRecord& out);

 private:
  /// Single-reader parse memo exploiting trace locality: consecutive
  /// lines almost always share their function name, and a scalar's
  /// variable text ("lI") repeats verbatim between the interesting
  /// accesses. A hit skips the hash lookup (function) or the whole
  /// selector-chain parse (variable). Parsing is a pure function of the
  /// line text once its strings are interned, and a memo entry is only
  /// written after a successful parse, so memoized and unmemoized runs
  /// produce identical records and identical pool states.
  struct ParseMemo {
    /// Whole-line memo: a loop scalar's access lines repeat byte for byte
    /// (same address, frame, thread, text), so the full record can be
    /// replayed from one string compare. Four ways cover the typical
    /// steady state: load + modify of the loop counter plus the two array
    /// accesses of the current iteration.
    struct LineEntry {
      std::string text;
      TraceRecord record;
    };
    LineEntry lines[4];
    std::uint32_t next_line = 0;

    std::string function;
    Symbol function_sym;
    struct VarEntry {
      std::string text;
      VarRef var;
    };
    VarEntry vars[2];  // two-way: a scalar alternating with an array walk
    std::uint32_t next_var = 0;
  };

  static bool parse_record_fast_impl(TraceContext& ctx, std::string_view line,
                                     TraceRecord& out, ParseMemo* memo);
  /// Best-effort salvage of the first four fields (kind, address, size,
  /// function); nullopt when even those are malformed.
  static std::optional<TraceRecord> salvage_record_line(TraceContext& ctx,
                                                        std::string_view line);

  /// Produces the next raw line (no trailing '\n') from the active
  /// source. The view is valid until the next call.
  bool next_line(std::string_view& out);

  TraceContext* ctx_;
  std::istream* in_ = nullptr;  // nullptr in string_view mode
  DiagEngine* diags_;
  std::uint32_t line_ = 0;
  bool force_slow_ = false;
  Counters counters_;
  ParseMemo memo_;

  // string_view mode: unconsumed remainder of the caller's text.
  std::string_view mem_;
  std::size_t mem_pos_ = 0;

  // istream mode: block buffer holding [pos_, len_) of undelivered bytes.
  std::string buf_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  bool eof_ = false;
  // A refill died (istream badbit, or fault site reader.read). Buffered
  // complete lines still drain — the prefix is salvaged — then next()
  // raises T004 once instead of passing the truncation off as EOF.
  bool io_failed_ = false;
  bool io_reported_ = false;
};

/// Reads every record of an in-memory trace text without copying it into
/// a stream. START/END markers are validated and dropped; the first
/// START's pid is stored in *pid when non-null. `diags` selects the
/// recovery policy (nullptr = strict).
std::vector<TraceRecord> read_trace_string(TraceContext& ctx,
                                           std::string_view text,
                                           std::uint64_t* pid = nullptr,
                                           DiagEngine* diags = nullptr);

/// Reads a trace file from disk. Throws Error{Io} when the file cannot be
/// opened.
std::vector<TraceRecord> read_trace_file(TraceContext& ctx,
                                         const std::string& path,
                                         std::uint64_t* pid = nullptr,
                                         DiagEngine* diags = nullptr);

}  // namespace tdt::trace
