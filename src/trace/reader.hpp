// Reader for the Gleipnir textual trace format (paper Listing 2):
//
//   START PID 13063
//   S 7ff0001b0 8 main LV 0 1 _zzq_result
//   L 7ff0001b0 8 main
//   S 000601040 4 main GV glScalar
//   ...
//   END PID 13063
#pragma once

#include <istream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"
#include "trace/source.hpp"
#include "util/diag.hpp"
#include "util/simd_scan.hpp"

namespace tdt::trace {

/// One parsed trace-file event: either a record or a START/END marker.
struct TraceEvent {
  enum class Kind : std::uint8_t { Record, Start, End };

  Kind kind = Kind::Record;
  TraceRecord record;    // when kind == Record
  std::uint64_t pid = 0; // when kind == Start / End
};

/// Streaming line-by-line parser; blank lines are skipped.
///
/// Ingestion is zero-copy on the steady state: input arrives in chunks
/// from a pluggable ByteSource (in-memory text, an mmap'd file, bulk
/// istream reads, or a double-buffered overlapped pipe reader — see
/// trace/source.hpp), lines are located with SIMD newline scans and only
/// copied when they straddle a chunk boundary, fields are tokenized in
/// place by the SIMD whitespace classifier (util/simd_scan.hpp), and
/// well-formed records are decoded by a non-throwing fast parser. Any
/// line the fast parser rejects is re-parsed by the original
/// diagnostic-rich path, so error messages, recovery behaviour
/// (--on-error) and exit codes are byte-for-byte identical to the slow
/// path.
///
/// Line terminators: '\n' ends a line; a '\r' immediately before the
/// '\n' belongs to the terminator (CRLF) and is stripped before the line
/// is parsed or counted as payload. counters().bytes counts terminator
/// bytes only when they were actually consumed, so it matches the file
/// size for terminated and unterminated corpora alike.
///
/// Without a DiagEngine (or with a Strict one) it throws Error{Parse}
/// with the offending line number on malformed input. With a Skip/Repair
/// engine it reports the diagnostic and resyncs to the next line; Repair
/// additionally salvages a record's address/size/function when only the
/// trailing symbol annotation is malformed (the record comes back with
/// Unknown scope, diagnostic T003).
class GleipnirReader {
 public:
  /// Ingestion observability: bytes consumed and which parse path decoded
  /// each record (obs integration; folded into the metrics registry by
  /// trace/stream.cpp).
  struct Counters {
    std::uint64_t bytes = 0;         ///< input bytes consumed (terminators
                                     ///< counted only when present)
    std::uint64_t fast_records = 0;  ///< records decoded by the fast parser
    std::uint64_t slow_records = 0;  ///< records decoded by the slow path
  };

  GleipnirReader(TraceContext& ctx, std::istream& in,
                 DiagEngine* diags = nullptr);

  /// Zero-copy variant: parses `text` in place. `text` must outlive the
  /// reader; nothing is copied or buffered.
  GleipnirReader(TraceContext& ctx, std::string_view text,
                 DiagEngine* diags = nullptr);

  /// Reads from an explicit byte source (see open_trace_byte_source).
  GleipnirReader(TraceContext& ctx, std::unique_ptr<ByteSource> source,
                 DiagEngine* diags = nullptr);

  /// Returns the next event, or nullopt at end of input.
  std::optional<TraceEvent> next();

  /// Appends up to `max` records to `out` and returns how many were
  /// produced; 0 means end of input. START/END markers are consumed and
  /// validated inline (the first START's pid lands in start_pid()), and
  /// diagnostics/recovery behave exactly as with next(). This is the
  /// bulk ingest entry point: records decode straight into the batch
  /// storage, with no per-record TraceEvent staging.
  std::size_t next_batch(std::vector<TraceRecord>& out, std::size_t max);

  /// True once a START marker was consumed (by next() or next_batch()).
  [[nodiscard]] bool saw_start() const noexcept { return saw_start_; }

  /// Pid of the first START marker; valid when saw_start().
  [[nodiscard]] std::uint64_t start_pid() const noexcept { return start_pid_; }

  /// 1-based number of the line most recently consumed.
  [[nodiscard]] std::uint32_t line_number() const noexcept { return line_; }

  /// Running ingestion counters (valid at any point during the read).
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  /// Disables the fast record parser so every line goes through the
  /// original allocating path. Benchmark / equivalence-test hook; the two
  /// paths must produce identical events, diagnostics and errors.
  void force_slow_parse(bool v) noexcept { force_slow_ = v; }

  /// Parses a single record line (no START/END handling). Exposed for
  /// tests and the diff tool. Always throws on malformed input.
  static TraceRecord parse_record_line(TraceContext& ctx,
                                       std::string_view line,
                                       std::uint32_t line_number = 0);

  /// Non-throwing fast twin of parse_record_line: returns false on any
  /// line it cannot decode (caller falls back to parse_record_line for
  /// the authoritative error). Accepts exactly the lines
  /// parse_record_line accepts and produces the identical record.
  static bool parse_record_fast(TraceContext& ctx, std::string_view line,
                                TraceRecord& out);

 private:
  /// Single-reader parse memo exploiting trace locality: consecutive
  /// lines almost always share their function name, and a scalar's
  /// variable text ("lI") repeats verbatim between the interesting
  /// accesses. A hit skips the hash lookup (function) or the whole
  /// selector-chain parse (variable). Parsing is a pure function of the
  /// line text once its strings are interned, and a memo entry is only
  /// written after a successful parse, so memoized and unmemoized runs
  /// produce identical records and identical pool states.
  struct ParseMemo {
    /// Whole-line memo: a loop scalar's access lines repeat byte for byte
    /// (same address, frame, thread, text), so the full record can be
    /// replayed from one string compare. Four ways cover the typical
    /// steady state: load + modify of the loop counter plus the two array
    /// accesses of the current iteration.
    struct LineEntry {
      std::string text;
      TraceRecord record;
    };
    LineEntry lines[4];
    std::uint32_t next_line = 0;
    std::uint32_t mru_line = 0;  ///< slot of the most recent hit, probed first

    std::string function;
    Symbol function_sym;
    struct VarEntry {
      std::string text;
      VarRef var;
    };
    VarEntry vars[2];  // two-way: a scalar alternating with an array walk
    std::uint32_t next_var = 0;

    /// Array-walk memo: consecutive accesses "mX[0] mX[1] mX[2] ..."
    /// share everything up to the final index, so on a prefix hit only
    /// the index digits are re-parsed and the interned base/field
    /// symbols are reused. `var`'s last step is always an index step.
    /// Two ways: parallel-array walks (SoA mX/mY) alternate prefixes.
    struct WalkEntry {
      std::string prefix;  ///< variable text through the final '['
      VarRef var;
    };
    WalkEntry walks[2];
    std::uint32_t next_walk = 0;
  };

  /// What one non-blank line turned into.
  enum class LineOutcome : std::uint8_t {
    Record,  ///< ev.record holds a decoded record
    Marker,  ///< ev holds a START/END event
    Skip,    ///< line was dropped (diagnostic reported); resync
  };

  /// Whole-line memo probe, hoisted out of parse_record_fast_impl so a
  /// hit (the steady state: a loop's scalar accesses repeat byte for
  /// byte) never pays the full parser's call overhead.
  [[nodiscard]] bool probe_line_memo(std::string_view line, TraceRecord& out);

  /// Full fast parse. Does NOT probe the line memo (callers do that
  /// first); uses `memo` for the function/variable/walk memos and to
  /// remember the parsed line.
  static bool parse_record_fast_impl(TraceContext& ctx, std::string_view line,
                                     TraceRecord& out, ParseMemo* memo,
                                     simd::TokenizeFieldsFn tokenize);
  /// Best-effort salvage of the first four fields (kind, address, size,
  /// function); nullopt when even those are malformed.
  static std::optional<TraceRecord> salvage_record_line(TraceContext& ctx,
                                                        std::string_view line);

  /// Produces the next raw line (terminator stripped) from the source.
  /// The view is valid until the next call. Counts consumed bytes.
  bool next_line(std::string_view& out);

  /// Everything off the fast path: markers, slow re-parse, diagnostics.
  LineOutcome consume_cold(std::string_view body, TraceEvent& ev);

  /// Raises T004 once when the source died mid-stream (throws when
  /// strict). No-op on clean EOF or when already reported.
  void report_io_failure();

  TraceContext* ctx_;
  DiagEngine* diags_;
  // Active-tier scanners, resolved once at construction so the per-line
  // calls skip the dispatch lookup.
  simd::FindNewlineFn find_nl_;
  simd::TokenizeFieldsFn tokenize_;
  std::uint32_t line_ = 0;
  bool force_slow_ = false;
  Counters counters_;
  ParseMemo memo_;

  std::unique_ptr<ByteSource> source_;
  // Unconsumed remainder of the current source chunk.
  std::string_view chunk_;
  std::size_t chunk_pos_ = 0;
  // Assembly buffer for lines straddling chunk boundaries. When the view
  // handed out by next_line aliases carry_, carry_active_ is set and the
  // buffer is reclaimed on the following call.
  std::string carry_;
  bool carry_active_ = false;
  bool eof_ = false;
  // The source died (istream badbit, or fault site reader.read).
  // Buffered complete lines still drain — the prefix is salvaged — then
  // next() raises T004 once instead of passing the truncation off as EOF.
  bool io_failed_ = false;
  bool io_reported_ = false;
  // A torn partial tail was suppressed (it is a fragment, not a final
  // line); mentioned in the T004 diagnostic.
  bool tail_discarded_ = false;
  bool saw_start_ = false;
  std::uint64_t start_pid_ = 0;
};

/// Reads every record of an in-memory trace text without copying it into
/// a stream. START/END markers are validated and dropped; the first
/// START's pid is stored in *pid when non-null. `diags` selects the
/// recovery policy (nullptr = strict).
std::vector<TraceRecord> read_trace_string(TraceContext& ctx,
                                           std::string_view text,
                                           std::uint64_t* pid = nullptr,
                                           DiagEngine* diags = nullptr);

/// Reads a trace file from disk (binary mode; mmap'd when possible, see
/// open_trace_byte_source). Throws Error{Io} when the file cannot be
/// opened.
std::vector<TraceRecord> read_trace_file(TraceContext& ctx,
                                         const std::string& path,
                                         std::uint64_t* pid = nullptr,
                                         DiagEngine* diags = nullptr);

}  // namespace tdt::trace
