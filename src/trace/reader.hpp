// Reader for the Gleipnir textual trace format (paper Listing 2):
//
//   START PID 13063
//   S 7ff0001b0 8 main LV 0 1 _zzq_result
//   L 7ff0001b0 8 main
//   S 000601040 4 main GV glScalar
//   ...
//   END PID 13063
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"
#include "util/diag.hpp"

namespace tdt::trace {

/// One parsed trace-file event: either a record or a START/END marker.
struct TraceEvent {
  enum class Kind : std::uint8_t { Record, Start, End };

  Kind kind = Kind::Record;
  TraceRecord record;    // when kind == Record
  std::uint64_t pid = 0; // when kind == Start / End
};

/// Streaming line-by-line parser; blank lines are skipped.
///
/// Without a DiagEngine (or with a Strict one) it throws Error{Parse}
/// with the offending line number on malformed input. With a Skip/Repair
/// engine it reports the diagnostic and resyncs to the next line; Repair
/// additionally salvages a record's address/size/function when only the
/// trailing symbol annotation is malformed (the record comes back with
/// Unknown scope, diagnostic T003).
class GleipnirReader {
 public:
  GleipnirReader(TraceContext& ctx, std::istream& in,
                 DiagEngine* diags = nullptr);

  /// Returns the next event, or nullopt at end of input.
  std::optional<TraceEvent> next();

  /// 1-based number of the line most recently consumed.
  [[nodiscard]] std::uint32_t line_number() const noexcept { return line_; }

  /// Parses a single record line (no START/END handling). Exposed for
  /// tests and the diff tool. Always throws on malformed input.
  static TraceRecord parse_record_line(TraceContext& ctx,
                                       std::string_view line,
                                       std::uint32_t line_number = 0);

 private:
  /// Best-effort salvage of the first four fields (kind, address, size,
  /// function); nullopt when even those are malformed.
  static std::optional<TraceRecord> salvage_record_line(TraceContext& ctx,
                                                        std::string_view line);

  TraceContext* ctx_;
  std::istream* in_;
  DiagEngine* diags_;
  std::uint32_t line_ = 0;
};

/// Reads every record of an in-memory trace text. START/END markers are
/// validated and dropped; the first START's pid is stored in *pid when
/// non-null. `diags` selects the recovery policy (nullptr = strict).
std::vector<TraceRecord> read_trace_string(TraceContext& ctx,
                                           std::string_view text,
                                           std::uint64_t* pid = nullptr,
                                           DiagEngine* diags = nullptr);

/// Reads a trace file from disk. Throws Error{Io} when the file cannot be
/// opened.
std::vector<TraceRecord> read_trace_file(TraceContext& ctx,
                                         const std::string& path,
                                         std::uint64_t* pid = nullptr,
                                         DiagEngine* diags = nullptr);

}  // namespace tdt::trace
