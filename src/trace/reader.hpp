// Reader for the Gleipnir textual trace format (paper Listing 2):
//
//   START PID 13063
//   S 7ff0001b0 8 main LV 0 1 _zzq_result
//   L 7ff0001b0 8 main
//   S 000601040 4 main GV glScalar
//   ...
//   END PID 13063
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"

namespace tdt::trace {

/// One parsed trace-file event: either a record or a START/END marker.
struct TraceEvent {
  enum class Kind : std::uint8_t { Record, Start, End };

  Kind kind = Kind::Record;
  TraceRecord record;    // when kind == Record
  std::uint64_t pid = 0; // when kind == Start / End
};

/// Streaming line-by-line parser. Throws Error{Parse} with the offending
/// line number on malformed input; blank lines are skipped.
class GleipnirReader {
 public:
  GleipnirReader(TraceContext& ctx, std::istream& in);

  /// Returns the next event, or nullopt at end of input.
  std::optional<TraceEvent> next();

  /// 1-based number of the line most recently consumed.
  [[nodiscard]] std::uint32_t line_number() const noexcept { return line_; }

  /// Parses a single record line (no START/END handling). Exposed for
  /// tests and the diff tool.
  static TraceRecord parse_record_line(TraceContext& ctx,
                                       std::string_view line,
                                       std::uint32_t line_number = 0);

 private:
  TraceContext* ctx_;
  std::istream* in_;
  std::uint32_t line_ = 0;
};

/// Reads every record of an in-memory trace text. START/END markers are
/// validated and dropped; the first START's pid is stored in *pid when
/// non-null.
std::vector<TraceRecord> read_trace_string(TraceContext& ctx,
                                           std::string_view text,
                                           std::uint64_t* pid = nullptr);

/// Reads a trace file from disk. Throws Error{Io} when the file cannot be
/// opened.
std::vector<TraceRecord> read_trace_file(TraceContext& ctx,
                                         const std::string& path,
                                         std::uint64_t* pid = nullptr);

}  // namespace tdt::trace
