#include "trace/diff.hpp"

#include <algorithm>

namespace tdt::trace {
namespace {

/// "Same event" — the record describes the same program action even if the
/// transformation moved it to a different address or renamed the variable.
bool corresponds(const TraceRecord& a, const TraceRecord& b) {
  return a.kind == b.kind && a.function == b.function &&
         a.thread == b.thread;
}

}  // namespace

std::vector<DiffEntry> diff_traces(std::span<const TraceRecord> original,
                                   std::span<const TraceRecord> transformed) {
  std::vector<DiffEntry> out;
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  const auto n = static_cast<std::uint32_t>(original.size());
  const auto m = static_cast<std::uint32_t>(transformed.size());

  // How far ahead to look for re-synchronisation. Transformations insert
  // at most a few records per source access (one pointer load per
  // indirection level, a handful of injected index loads), so a small
  // window is sufficient and keeps the diff O(n).
  constexpr std::uint32_t kWindow = 8;

  while (i < n || j < m) {
    if (i >= n) {
      out.push_back({DiffKind::Inserted, DiffEntry::kUnpaired, j++});
      continue;
    }
    if (j >= m) {
      out.push_back({DiffKind::Deleted, i++, DiffEntry::kUnpaired});
      continue;
    }
    if (original[i] == transformed[j]) {
      out.push_back({DiffKind::Same, i++, j++});
      continue;
    }
    // Does an exact copy of original[i] appear shortly ahead in the
    // transformed trace? Then the records in between were inserted.
    bool resynced = false;
    for (std::uint32_t k = 1; k <= kWindow && j + k < m; ++k) {
      if (original[i] == transformed[j + k]) {
        for (std::uint32_t t = 0; t < k; ++t) {
          out.push_back({DiffKind::Inserted, DiffEntry::kUnpaired, j++});
        }
        resynced = true;
        break;
      }
    }
    if (resynced) continue;
    // Does original[i] vanish while original[i+k] matches transformed[j]?
    for (std::uint32_t k = 1; k <= kWindow && i + k < n; ++k) {
      if (original[i + k] == transformed[j]) {
        for (std::uint32_t t = 0; t < k; ++t) {
          out.push_back({DiffKind::Deleted, i++, DiffEntry::kUnpaired});
        }
        resynced = true;
        break;
      }
    }
    if (resynced) continue;
    // Insertion runs longer than kWindow (a rule injecting many records
    // per access) used to degrade into spurious Modified pairs once the
    // short window was exhausted. Look further ahead for an exact copy of
    // original[i], but only accept a distant match when the records after
    // it line up too — a lone equal record inside a long run (e.g. a loop
    // repeating the same access) must not cause a false resync.
    constexpr std::uint32_t kMaxRun = 4096;
    constexpr std::uint32_t kConfirm = 2;
    for (std::uint32_t k = kWindow + 1; k <= kMaxRun && j + k < m; ++k) {
      if (original[i] != transformed[j + k]) continue;
      bool confirmed = true;
      for (std::uint32_t c = 1; c <= kConfirm; ++c) {
        if (i + c >= n || j + k + c >= m) break;  // end of trace confirms
        if (original[i + c] != transformed[j + k + c] &&
            !corresponds(original[i + c], transformed[j + k + c])) {
          confirmed = false;
          break;
        }
      }
      if (!confirmed) continue;
      for (std::uint32_t t = 0; t < k; ++t) {
        out.push_back({DiffKind::Inserted, DiffEntry::kUnpaired, j++});
      }
      resynced = true;
      break;
    }
    if (resynced) continue;
    if (corresponds(original[i], transformed[j])) {
      out.push_back({DiffKind::Modified, i++, j++});
      continue;
    }
    // No correspondence: prefer treating the transformed records as an
    // insertion run when the stream re-synchronises on a *corresponding*
    // (not necessarily equal) record within the window — consuming the
    // whole run at once; otherwise fall back to a modification so the
    // diff always terminates.
    bool inserted = false;
    for (std::uint32_t k = 1; k <= kWindow && j + k < m; ++k) {
      if (corresponds(original[i], transformed[j + k])) {
        for (std::uint32_t t = 0; t < k; ++t) {
          out.push_back({DiffKind::Inserted, DiffEntry::kUnpaired, j++});
        }
        inserted = true;
        break;
      }
    }
    if (inserted) continue;
    out.push_back({DiffKind::Modified, i++, j++});
  }
  return out;
}

DiffSummary summarize(std::span<const DiffEntry> entries) {
  DiffSummary s;
  for (const DiffEntry& e : entries) {
    switch (e.kind) {
      case DiffKind::Same: ++s.same; break;
      case DiffKind::Modified: ++s.modified; break;
      case DiffKind::Inserted: ++s.inserted; break;
      case DiffKind::Deleted: ++s.deleted; break;
    }
  }
  return s;
}

std::string render_side_by_side(const TraceContext& ctx,
                                std::span<const TraceRecord> original,
                                std::span<const TraceRecord> transformed,
                                std::span<const DiffEntry> entries,
                                std::size_t max_rows) {
  // First pass: width of the left column.
  std::size_t left_width = 0;
  std::vector<std::string> left(entries.size());
  std::vector<std::string> right(entries.size());
  std::size_t rows = std::min(entries.size(), max_rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const DiffEntry& e = entries[r];
    if (e.original != DiffEntry::kUnpaired) {
      left[r] = ctx.format_record(original[e.original]);
    }
    if (e.transformed != DiffEntry::kUnpaired) {
      right[r] = ctx.format_record(transformed[e.transformed]);
    }
    left_width = std::max(left_width, left[r].size());
  }
  std::string out;
  for (std::size_t r = 0; r < rows; ++r) {
    char tag = ' ';
    switch (entries[r].kind) {
      case DiffKind::Same: tag = ' '; break;
      case DiffKind::Modified: tag = '~'; break;
      case DiffKind::Inserted: tag = '+'; break;
      case DiffKind::Deleted: tag = '-'; break;
    }
    out += tag;
    out += ' ';
    out += left[r];
    out.append(left_width - left[r].size(), ' ');
    out += " | ";
    out += right[r];
    out += '\n';
  }
  if (rows < entries.size()) {
    out += "... (" + std::to_string(entries.size() - rows) + " more rows)\n";
  }
  return out;
}

}  // namespace tdt::trace
