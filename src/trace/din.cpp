#include "trace/din.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {
namespace {

std::vector<TraceRecord> read_din_stream(TraceContext& ctx, std::istream& in,
                                         std::uint32_t default_size) {
  std::vector<TraceRecord> records;
  std::string line;
  std::uint32_t line_no = 0;
  const Symbol unknown_fn = ctx.intern("?");
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;
    const auto fields = split_ws(body);
    if (fields.size() < 2 || fields.size() > 3) {
      throw_parse_error("din line needs 2 or 3 fields", {line_no, 1});
    }
    TraceRecord rec;
    if (fields[0] == "0") {
      rec.kind = AccessKind::Load;
    } else if (fields[0] == "1") {
      rec.kind = AccessKind::Store;
    } else if (fields[0] == "2") {
      rec.kind = AccessKind::Instr;
    } else {
      throw_parse_error("bad din label '" + std::string(fields[0]) + "'",
                        {line_no, 1});
    }
    const auto addr = parse_hex(fields[1]);
    if (!addr) {
      throw_parse_error("bad din address '" + std::string(fields[1]) + "'",
                        {line_no, 1});
    }
    rec.address = *addr;
    rec.size = default_size;
    if (fields.size() == 3) {
      const auto size = parse_hex(fields[2]);
      if (!size || *size == 0) {
        throw_parse_error("bad din size '" + std::string(fields[2]) + "'",
                          {line_no, 1});
      }
      rec.size = static_cast<std::uint32_t>(*size);
    }
    rec.function = unknown_fn;
    records.push_back(rec);
  }
  return records;
}

}  // namespace

std::vector<TraceRecord> read_din_string(TraceContext& ctx,
                                         std::string_view text,
                                         std::uint32_t default_size) {
  std::istringstream in{std::string(text)};
  return read_din_stream(ctx, in, default_size);
}

std::vector<TraceRecord> read_din_file(TraceContext& ctx,
                                       const std::string& path,
                                       std::uint32_t default_size) {
  std::ifstream in(path);
  if (!in) {
    throw_io_error("cannot open din trace '" + path + "'");
  }
  return read_din_stream(ctx, in, default_size);
}

std::string write_din_string(std::span<const TraceRecord> records) {
  std::string out;
  for (const TraceRecord& rec : records) {
    char label = '0';
    switch (rec.kind) {
      case AccessKind::Load: label = '0'; break;
      case AccessKind::Store:
      case AccessKind::Modify: label = '1'; break;
      case AccessKind::Instr: label = '2'; break;
      case AccessKind::Misc: continue;  // not representable
    }
    out += label;
    out += ' ';
    out += to_hex(rec.address);
    out += ' ';
    out += to_hex(rec.size);
    out += '\n';
  }
  return out;
}

void write_din_file(std::span<const TraceRecord> records,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw_io_error("cannot open '" + path + "' for writing");
  }
  out << write_din_string(records);
  if (!out) {
    throw_io_error("write to '" + path + "' failed");
  }
}

}  // namespace tdt::trace
