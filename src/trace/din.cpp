#include "trace/din.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {

DinReader::DinReader(TraceContext& ctx, std::istream& in,
                     std::uint32_t default_size, DiagEngine* diags)
    : ctx_(&ctx),
      in_(&in),
      default_size_(default_size),
      diags_(diags),
      unknown_fn_(ctx.intern("?")) {}

bool DinReader::next(TraceRecord& out) {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_;
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;
    const SourceLoc loc{line_, 1};
    const auto fields = split_ws(body);
    const bool recoverable = diags_ != nullptr && !diags_->strict();

    std::string problem;
    TraceRecord rec;
    if (fields.size() < 2 || fields.size() > 3) {
      problem = "din line needs 2 or 3 fields";
    } else if (fields[0] == "0") {
      rec.kind = AccessKind::Load;
    } else if (fields[0] == "1") {
      rec.kind = AccessKind::Store;
    } else if (fields[0] == "2") {
      rec.kind = AccessKind::Instr;
    } else {
      problem = "bad din label '" + std::string(fields[0]) + "'";
    }
    if (problem.empty()) {
      const auto addr = parse_hex(fields[1]);
      if (!addr) {
        problem = "bad din address '" + std::string(fields[1]) + "'";
      } else {
        rec.address = *addr;
      }
    }
    if (problem.empty()) {
      rec.size = default_size_;
      if (fields.size() == 3) {
        const auto size = parse_hex(fields[2]);
        if (!size || *size == 0) {
          if (recoverable && diags_->repair()) {
            // Label and address parsed: salvage with the default size.
            diags_->report(DiagSeverity::Error, DiagCode::DinRepairedLine,
                           "repaired din line (bad size '" +
                               std::string(fields[2]) +
                               "' replaced with default)",
                           loc);
          } else {
            problem = "bad din size '" + std::string(fields[2]) + "'";
          }
        } else {
          rec.size = static_cast<std::uint32_t>(*size);
        }
      }
    }
    if (!problem.empty()) {
      if (!recoverable) throw_parse_error(std::move(problem), loc);
      diags_->report(DiagSeverity::Error, DiagCode::DinBadLine, problem, loc);
      continue;  // resync at the next line
    }
    rec.function = unknown_fn_;
    out = rec;
    return true;
  }
  return false;
}

std::vector<TraceRecord> read_din_string(TraceContext& ctx,
                                         std::string_view text,
                                         std::uint32_t default_size,
                                         DiagEngine* diags) {
  std::istringstream in{std::string(text)};
  DinReader reader(ctx, in, default_size, diags);
  std::vector<TraceRecord> records;
  TraceRecord rec;
  while (reader.next(rec)) records.push_back(rec);
  return records;
}

std::vector<TraceRecord> read_din_file(TraceContext& ctx,
                                       const std::string& path,
                                       std::uint32_t default_size,
                                       DiagEngine* diags) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) {
    throw_io_error("cannot open din trace '" + path + "'");
  }
  DinReader reader(ctx, in, default_size, diags);
  std::vector<TraceRecord> records;
  TraceRecord rec;
  while (reader.next(rec)) records.push_back(rec);
  return records;
}

std::string write_din_string(std::span<const TraceRecord> records) {
  std::string out;
  for (const TraceRecord& rec : records) {
    char label = '0';
    switch (rec.kind) {
      case AccessKind::Load: label = '0'; break;
      case AccessKind::Store:
      case AccessKind::Modify: label = '1'; break;
      case AccessKind::Instr: label = '2'; break;
      case AccessKind::Misc: continue;  // not representable
    }
    out += label;
    out += ' ';
    out += to_hex(rec.address);
    out += ' ';
    out += to_hex(rec.size);
    out += '\n';
  }
  return out;
}

void write_din_file(std::span<const TraceRecord> records,
                    const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::binary);
  if (!out) {
    throw_io_error("cannot open '" + path + "' for writing");
  }
  out << write_din_string(records);
  if (!out) {
    throw_io_error("write to '" + path + "' failed");
  }
}

}  // namespace tdt::trace
