// Compact binary trace format ("TDTB"). The textual Gleipnir format is
// human-readable but ~40 bytes/record; long workloads (millions of
// records) read an order of magnitude faster from this varint-packed
// encoding. Strings are emitted once, on first use, as inline definitions.
//
// Version 2 appends a 12-byte footer after the end tag — the record
// count (8-byte little-endian) and a CRC-32 of every byte from the magic
// through the end tag (4-byte little-endian) — so truncation and bit
// corruption are detected instead of silently producing a wrong trace.
// Version 1 blobs (no footer) remain readable.
//
// Version 3 is the framed container (docs/FORMATS.md): records are
// grouped into independently-decodable frames — each frame carries its
// codec id, record count, compressed/uncompressed byte lengths, and a
// CRC-32 of the stored bytes — compressed per frame with zstd, lz4, or
// stored verbatim (codec none). Every frame redefines the strings it
// uses, so any frame decodes without the ones before it. After the end
// tag a frame index plus a fixed 28-byte footer (ending in the "TDTX"
// magic) make the container seekable: a reader jumps straight to any
// frame, and `--jobs N` decodes disjoint frames on worker threads while
// a publisher binds and delivers them in frame order — bit-identical to
// the sequential decode.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/codec.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"
#include "util/crc32.hpp"
#include "util/diag.hpp"

namespace tdt::trace {

/// Default TDTB format version written by BinaryTraceWriter: plain v2.
/// Writers opt into the framed container (v3) via BinaryWriterOptions —
/// the CLI spelling is `--compress zstd|lz4|none[:level]`.
inline constexpr std::uint8_t kTdtbVersion = 2;

/// The framed, seekable, optionally-compressed container version.
inline constexpr std::uint8_t kTdtbVersionFramed = 3;

/// Default records per v3 frame. Big enough that per-frame codec and
/// symbol-redefinition overhead amortizes, small enough that a multi-MB
/// trace yields plenty of frames for parallel decode.
inline constexpr std::uint32_t kDefaultFrameRecords = 64 * 1024;

/// Writer-side format selection.
struct BinaryWriterOptions {
  std::uint8_t version = kTdtbVersion;  ///< 1, 2, or 3
  Codec codec = Codec::None;            ///< v3 frame codec
  int level = 0;                        ///< 0 = codec default
  std::uint32_t frame_records = kDefaultFrameRecords;  ///< v3 frame target
};

/// One frame's index entry (v3).
struct TdtbFrameInfo {
  std::uint64_t offset = 0;   ///< file offset of the frame's tag byte
  std::uint64_t records = 0;  ///< records encoded in the frame
  std::uint64_t usize = 0;    ///< payload bytes before compression
  std::uint64_t csize = 0;    ///< stored (possibly compressed) payload bytes
  std::uint32_t crc = 0;      ///< CRC-32 of the stored payload bytes
  std::uint8_t codec = 0;     ///< Codec id for this frame
};

/// Container-level metadata delivered by probe_tdtb(). For v1/v2 blobs
/// only version/pid (and the v2 footer count) are known; for v3 with a
/// valid footer the full frame index is parsed and validated.
struct TdtbContainerInfo {
  std::uint8_t version = 0;
  std::uint64_t pid = 0;
  std::uint8_t default_codec = 0;    ///< v3 header codec byte
  bool has_index = false;            ///< v3 footer + index validated
  std::uint64_t total_records = 0;   ///< footer record count (v2/v3)
  std::uint64_t file_bytes = 0;
  std::vector<TdtbFrameInfo> frames; ///< populated only when has_index
};

/// Parses container metadata without decoding records. Returns nullopt
/// when `blob` is not a TDTB trace at all; a v3 blob whose index or
/// footer fails validation comes back with has_index == false (the
/// sequential reader will produce the precise diagnostic).
[[nodiscard]] std::optional<TdtbContainerInfo> probe_tdtb(
    std::string_view blob) noexcept;

/// File variant of probe_tdtb() (maps or reads the file). nullopt when
/// the file cannot be opened or is not TDTB.
[[nodiscard]] std::optional<TdtbContainerInfo> probe_tdtb_file(
    const std::string& path) noexcept;

/// Parses the v3 frame header whose tag byte sits at `blob[offset]`.
/// On success `*payload_offset` receives the file offset of the stored
/// payload bytes. nullopt on structural corruption.
[[nodiscard]] std::optional<TdtbFrameInfo> parse_frame_header(
    std::string_view blob, std::uint64_t offset,
    std::uint64_t* payload_offset) noexcept;

/// A frame decoded without touching the shared string pool (phase one of
/// the two-phase decode): record symbol fields carry *frame-local string
/// ids* (not interned symbols) and `defs` lists the frame's string
/// definitions in definition order, viewing into the payload buffer.
/// Worker threads produce DecodedFrames concurrently; a single publisher
/// thread calls bind_frame() in frame order, which makes interning
/// single-writer and keeps symbol ids identical to a sequential decode.
struct DecodedFrame {
  std::vector<TraceRecord> records;
  std::vector<std::pair<std::uint64_t, std::string_view>> defs;
  bool ok = true;            ///< false: `error_code`/`error` describe why,
                             ///< `records` holds the decoded prefix
  DiagCode error_code = DiagCode::BinTruncated;
  std::string error;

  // Decoder scratch (definition-seen map), reused across frames.
  std::vector<std::uint32_t> seen_defs;
  std::vector<std::uint64_t> seen_ids;
};

/// Phase one: decodes one uncompressed frame payload into `out`.
/// Thread-safe (no shared state); `payload` must outlive `out.defs`.
/// Every symbol a record references must be defined earlier in the same
/// frame (frames are independently decodable); a mid-frame redefinition
/// with different text is corruption.
void decode_frame_payload(std::string_view payload, DecodedFrame& out);

/// Phase two: interns `frame.defs` in definition order and rewrites the
/// frame-local ids in `frame.records` to interned symbols. `symbol_map`
/// is caller-owned scratch reused across frames. Call in frame order
/// from a single thread.
void bind_frame(TraceContext& ctx, DecodedFrame& frame,
                std::vector<Symbol>& symbol_map);

/// Streaming binary writer (v1, v2, or the v3 framed container).
class BinaryTraceWriter {
 public:
  /// `version` selects the on-disk format (1 = legacy footer-less, 2 =
  /// count+CRC footer); anything else throws Error{Config}.
  BinaryTraceWriter(const TraceContext& ctx, std::ostream& out,
                    std::uint64_t pid = 0, std::uint8_t version = kTdtbVersion);

  /// Full-options constructor; version 3 enables framing/compression.
  /// Throws Error{Config} for an unsupported version, a codec on a
  /// non-v3 version, or a codec unavailable in this process.
  BinaryTraceWriter(const TraceContext& ctx, std::ostream& out,
                    std::uint64_t pid, const BinaryWriterOptions& options);

  /// Appends one record.
  void write(const TraceRecord& rec);

  /// Writes the end marker and the version's trailer (v2: count+CRC
  /// footer; v3: frame index + container footer); further writes are
  /// invalid.
  void finish();

  /// Records written so far.
  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return record_count_;
  }

  /// Frames flushed so far (v3; 0 otherwise).
  [[nodiscard]] std::uint64_t frames_written() const noexcept {
    return index_.size();
  }

 private:
  void define_symbol_if_new(Symbol s);
  void put_bytes(const char* data, std::size_t len);
  void put_byte(char c) { put_bytes(&c, 1); }
  void put_varint(std::uint64_t v);
  void raw_bytes(const char* data, std::size_t len);  // v3: straight out
  void flush_frame();

  const TraceContext* ctx_;
  std::ostream* out_;
  std::uint8_t version_;
  Codec codec_ = Codec::None;
  int level_ = 0;
  std::uint32_t frame_target_ = kDefaultFrameRecords;
  std::vector<bool> defined_;
  std::vector<std::uint32_t> frame_defined_ids_;  // v3: reset per frame
  std::string frame_buf_;   // v3: current frame's uncompressed payload
  std::string comp_buf_;    // v3: compression scratch
  std::uint64_t frame_record_count_ = 0;
  std::uint64_t prev_addr_ = 0;  // v3: address delta base, reset per frame
  std::vector<TdtbFrameInfo> index_;
  std::uint64_t offset_ = 0;  // v3: bytes written to out_
  std::uint64_t record_count_ = 0;
  Crc32 crc_;
  bool finished_ = false;
};

/// Streaming binary reader for v1, v2, and v3 blobs (the version byte is
/// auto-detected; tools never need a format flag).
///
/// Without a DiagEngine (or with a Strict one) any corruption throws
/// Error{Parse}. With Skip, mid-stream corruption (truncation, bad
/// varint, undefined symbol, unknown tag, corrupt frame) is reported and
/// the trace ends early with every record decoded so far salvaged. With
/// Repair, a v3 frame that fails in isolation (CRC mismatch, unknown
/// codec, failed decompression, undecodable payload) is reported and
/// *dropped*, and reading resumes at the next frame — frame isolation is
/// exactly what the framed container buys; v1/v2 Repair behaves like
/// Skip. Footer/index mismatches are reported but do not discard decoded
/// records. A bad magic or unsupported version is always fatal.
class BinaryTraceReader {
 public:
  BinaryTraceReader(TraceContext& ctx, std::istream& in,
                    DiagEngine* diags = nullptr);

  /// Reads the next record; returns false at the end of the trace.
  bool next(TraceRecord& out);

  [[nodiscard]] std::uint64_t pid() const noexcept { return pid_; }

  /// Format version of the open blob (1, 2, or 3).
  [[nodiscard]] std::uint8_t version() const noexcept { return version_; }

  /// Header codec byte (v3); Codec::None otherwise.
  [[nodiscard]] Codec default_codec() const noexcept { return default_codec_; }

  /// Records decoded so far.
  [[nodiscard]] std::uint64_t records_read() const noexcept {
    return record_count_;
  }

  /// Input bytes consumed so far (obs integration).
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }

  /// v3 frames decoded so far (read.frames counter).
  [[nodiscard]] std::uint64_t frames_read() const noexcept {
    return frames_read_;
  }

  /// v3 stored (compressed) payload bytes consumed so far
  /// (read.compressed_bytes counter).
  [[nodiscard]] std::uint64_t compressed_bytes() const noexcept {
    return compressed_bytes_;
  }

 private:
  struct RecoverEnd;  // unwinds next() when a recoverable error was reported

  [[noreturn]] void fail(DiagCode code, std::string message);
  void frame_error(DiagCode code, std::string message);  // v3 frame-local
  int next_byte();  // -1 at eof; feeds the CRC
  bool read_exact(char* dst, std::size_t len);
  std::uint64_t get_varint();
  std::uint64_t get_varint_max(std::uint64_t max_value, DiagCode code,
                               const char* what);
  void check_footer();            // v2 count+CRC footer
  void check_container_footer();  // v3 index + footer
  Symbol map_symbol(std::uint64_t file_id);
  bool next_v12(TraceRecord& out);
  bool next_v3(TraceRecord& out);
  bool load_frame();  // v3: fills pending_; false = frame dropped (Repair)

  TraceContext* ctx_;
  std::istream* in_;
  DiagEngine* diags_;
  std::uint64_t pid_ = 0;
  std::uint8_t version_ = 1;
  Codec default_codec_ = Codec::None;
  std::uint64_t record_count_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t frames_read_ = 0;
  std::uint64_t compressed_bytes_ = 0;
  Crc32 crc_;
  bool done_ = false;
  std::vector<Symbol> symbol_map_;  // file id -> ctx symbol
  // v3 state: decoded records of the current frame, served in order.
  std::vector<TraceRecord> pending_;
  std::size_t pending_pos_ = 0;
  std::string stored_;   // current frame's stored bytes
  std::string payload_;  // decompression scratch
  DecodedFrame frame_;   // phase-one scratch
};

/// TraceSink adapter writing a TDTB trace as records stream through, so
/// a pipeline (reader -> transformer -> ...) can emit a binary trace
/// without materializing the record vector. finish() runs at on_end();
/// batch boundaries check stream health (ENOSPC surfaces as Error{Io}).
class BinaryTraceSink final : public TraceSink {
 public:
  BinaryTraceSink(const TraceContext& ctx, std::ostream& out,
                  std::uint64_t pid = 0, const BinaryWriterOptions& options =
                                             BinaryWriterOptions{})
      : writer_(ctx, out, pid, options), out_(&out) {}

  void on_record(const TraceRecord& rec) override { writer_.write(rec); }
  void push_batch(std::span<const TraceRecord> batch) override {
    for (const TraceRecord& rec : batch) writer_.write(rec);
    check_health();
  }
  void on_end() override {
    writer_.finish();
    out_->flush();
    check_health();
  }

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return writer_.records_written();
  }

 private:
  void check_health();

  BinaryTraceWriter writer_;
  std::ostream* out_;
};

/// Serializes a whole trace to a binary blob.
std::vector<char> write_binary_trace(const TraceContext& ctx,
                                     std::span<const TraceRecord> records,
                                     std::uint64_t pid = 0,
                                     std::uint8_t version = kTdtbVersion);

/// Options variant (framed container, compression).
std::vector<char> write_binary_trace(const TraceContext& ctx,
                                     std::span<const TraceRecord> records,
                                     std::uint64_t pid,
                                     const BinaryWriterOptions& options);

/// Parses a whole binary blob. `diags` selects the recovery policy
/// (nullptr = strict).
std::vector<TraceRecord> read_binary_trace(TraceContext& ctx,
                                           std::span<const char> blob,
                                           std::uint64_t* pid = nullptr,
                                           DiagEngine* diags = nullptr);

}  // namespace tdt::trace
