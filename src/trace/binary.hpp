// Compact binary trace format ("TDTB"). The textual Gleipnir format is
// human-readable but ~40 bytes/record; long workloads (millions of
// records) read an order of magnitude faster from this varint-packed
// encoding. Strings are emitted once, on first use, as inline definitions.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "trace/record.hpp"

namespace tdt::trace {

/// Streaming binary writer.
class BinaryTraceWriter {
 public:
  BinaryTraceWriter(const TraceContext& ctx, std::ostream& out,
                    std::uint64_t pid = 0);

  /// Appends one record.
  void write(const TraceRecord& rec);

  /// Writes the end marker; further writes are invalid.
  void finish();

 private:
  void define_symbol_if_new(Symbol s);
  void put_varint(std::uint64_t v);

  const TraceContext* ctx_;
  std::ostream* out_;
  std::vector<bool> defined_;
  bool finished_ = false;
};

/// Streaming binary reader.
class BinaryTraceReader {
 public:
  BinaryTraceReader(TraceContext& ctx, std::istream& in);

  /// Reads the next record; returns false at the end marker.
  bool next(TraceRecord& out);

  [[nodiscard]] std::uint64_t pid() const noexcept { return pid_; }

 private:
  std::uint64_t get_varint();
  Symbol map_symbol(std::uint64_t file_id) const;

  TraceContext* ctx_;
  std::istream* in_;
  std::uint64_t pid_ = 0;
  std::vector<Symbol> symbol_map_;  // file id -> ctx symbol
};

/// Serializes a whole trace to a binary blob.
std::vector<char> write_binary_trace(const TraceContext& ctx,
                                     std::span<const TraceRecord> records,
                                     std::uint64_t pid = 0);

/// Parses a whole binary blob.
std::vector<TraceRecord> read_binary_trace(TraceContext& ctx,
                                           std::span<const char> blob,
                                           std::uint64_t* pid = nullptr);

}  // namespace tdt::trace
