// Compact binary trace format ("TDTB"). The textual Gleipnir format is
// human-readable but ~40 bytes/record; long workloads (millions of
// records) read an order of magnitude faster from this varint-packed
// encoding. Strings are emitted once, on first use, as inline definitions.
//
// Version 2 appends a 12-byte footer after the end tag — the record
// count (8-byte little-endian) and a CRC-32 of every byte from the magic
// through the end tag (4-byte little-endian) — so truncation and bit
// corruption are detected instead of silently producing a wrong trace.
// Version 1 blobs (no footer) remain readable.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "trace/record.hpp"
#include "util/crc32.hpp"
#include "util/diag.hpp"

namespace tdt::trace {

/// Current TDTB format version written by BinaryTraceWriter.
inline constexpr std::uint8_t kTdtbVersion = 2;

/// Streaming binary writer.
class BinaryTraceWriter {
 public:
  /// `version` selects the on-disk format (1 = legacy footer-less, 2 =
  /// count+CRC footer); anything else throws Error{Config}.
  BinaryTraceWriter(const TraceContext& ctx, std::ostream& out,
                    std::uint64_t pid = 0, std::uint8_t version = kTdtbVersion);

  /// Appends one record.
  void write(const TraceRecord& rec);

  /// Writes the end marker (and, for v2, the count+CRC footer); further
  /// writes are invalid.
  void finish();

  /// Records written so far.
  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return record_count_;
  }

 private:
  void define_symbol_if_new(Symbol s);
  void put_bytes(const char* data, std::size_t len);
  void put_byte(char c) { put_bytes(&c, 1); }
  void put_varint(std::uint64_t v);

  const TraceContext* ctx_;
  std::ostream* out_;
  std::uint8_t version_;
  std::vector<bool> defined_;
  std::uint64_t record_count_ = 0;
  Crc32 crc_;
  bool finished_ = false;
};

/// Streaming binary reader for v1 and v2 blobs.
///
/// Without a DiagEngine (or with a Strict one) any corruption throws
/// Error{Parse}. With Skip/Repair, mid-stream corruption (truncation,
/// bad varint, undefined symbol, unknown tag) is reported and the trace
/// ends early with every record decoded so far salvaged; footer
/// mismatches (CRC, record count) are reported but do not discard the
/// decoded records. A bad magic or unsupported version is always fatal.
class BinaryTraceReader {
 public:
  BinaryTraceReader(TraceContext& ctx, std::istream& in,
                    DiagEngine* diags = nullptr);

  /// Reads the next record; returns false at the end of the trace.
  bool next(TraceRecord& out);

  [[nodiscard]] std::uint64_t pid() const noexcept { return pid_; }

  /// Format version of the open blob (1 or 2).
  [[nodiscard]] std::uint8_t version() const noexcept { return version_; }

  /// Records decoded so far.
  [[nodiscard]] std::uint64_t records_read() const noexcept {
    return record_count_;
  }

  /// Input bytes consumed so far (obs integration).
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }

 private:
  struct RecoverEnd;  // unwinds next() when a recoverable error was reported

  [[noreturn]] void fail(DiagCode code, std::string message);
  int next_byte();  // -1 at eof; feeds the CRC
  std::uint64_t get_varint();
  std::uint64_t get_varint_max(std::uint64_t max_value, DiagCode code,
                               const char* what);
  void check_footer();
  Symbol map_symbol(std::uint64_t file_id);

  TraceContext* ctx_;
  std::istream* in_;
  DiagEngine* diags_;
  std::uint64_t pid_ = 0;
  std::uint8_t version_ = 1;
  std::uint64_t record_count_ = 0;
  std::uint64_t bytes_read_ = 0;
  Crc32 crc_;
  bool done_ = false;
  std::vector<Symbol> symbol_map_;  // file id -> ctx symbol
};

/// Serializes a whole trace to a binary blob.
std::vector<char> write_binary_trace(const TraceContext& ctx,
                                     std::span<const TraceRecord> records,
                                     std::uint64_t pid = 0,
                                     std::uint8_t version = kTdtbVersion);

/// Parses a whole binary blob. `diags` selects the recovery policy
/// (nullptr = strict).
std::vector<TraceRecord> read_binary_trace(TraceContext& ctx,
                                           std::span<const char> blob,
                                           std::uint64_t* pid = nullptr,
                                           DiagEngine* diags = nullptr);

}  // namespace tdt::trace
