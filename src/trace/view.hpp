// Composable lazy trace-view DAG: one ingest, N consumers.
//
// A View is an immutable handle on a node of a dataflow graph over trace
// records. Chaining builders describe a pipeline without running it:
//
//   auto src  = View::source(ctx, "trace.out");       // any on-disk format
//   auto xfrm = src.transform(rules);                 // paper §IV rewrite
//   Graph g;
//   g.add_sink(src,  affinity);    // raw records -> profiler
//   g.add_sink(xfrm, writer);      // transformed -> trace file
//   g.add_sink(xfrm, sweep);       // transformed -> N cache configs
//   g.run({.registry = reg, .governor = gov});
//
// Nothing reads the trace until Graph::run() (or the drain()/collect()
// conveniences) evaluates the graph. Evaluation is a single batched pass:
// the source pulls record batches through the existing next_batch() path
// and every batch flows through the DAG once, shared (by pointer, no
// copy) between all consumers of a node — so one ingest feeds any number
// of transforms, filters and sinks, and a fault injected at the reader
// fires once per batch regardless of fan-out. Because nodes with a
// single upstream can never merge streams, the graph is a forest: each
// registered source is drained in registration order.
//
// Laziness also prunes work: a window([lo,hi)) node that has emitted its
// last record reports itself satisfied, and when every consumer of a
// source is satisfied the source stops reading early (sinks still get
// their on_end exactly once).
//
// .cache(bytes) attaches a byte-budgeted memo (util/governor.hpp Budget)
// to a node: the first evaluation records the node's output batches, and
// any later evaluation whose consumers sit at or below the cache node
// replays the memo instead of re-reading and re-transforming upstream.
// A memo is only ever served when it holds the node's complete output;
// on budget pressure (its own limit or a denial from the evaluation's
// shared --max-memory budget) the memo is dropped and evaluation
// degrades to recompute — never to wrong bytes. See docs/PIPELINE.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/binary.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"
#include "trace/source.hpp"
#include "util/diag.hpp"
#include "util/governor.hpp"
#include "util/obs.hpp"

namespace tdt::core {
class RuleSet;
struct TransformOptions;
struct TransformStats;
}  // namespace tdt::core

namespace tdt::trace {

/// How a source node opens its input (mirrors StreamOptions: the DAG
/// source and stream_trace_file read any path identically).
struct ViewSourceOptions {
  DiagEngine* diags = nullptr;        ///< error-recovery policy (null = strict)
  IngestMode ingest = IngestMode::Auto;
  /// Parallel TDTB v3 frame-decode workers (byte-identical at any count).
  int jobs = 1;
  bool clamp_jobs = true;
};

/// How a .save(path) node writes its stream. The format follows the
/// extension exactly like the tools' writers: *.tdtb emits a TDTB
/// container (honouring `binary`), anything else Gleipnir text.
struct ViewSaveOptions {
  std::uint64_t pid = 0;
  BinaryWriterOptions binary;
};

/// User-defined streaming stage for View::pipe(): consumes input batches
/// in trace order and appends output records. One instance is created
/// per evaluation (per Graph::run that reaches the node), so stateful
/// stages start fresh and repeated evaluations are deterministic.
class ViewStage {
 public:
  virtual ~ViewStage() = default;

  /// Transforms one input batch; append output records to `out` (which
  /// arrives empty). May emit zero or many records per input record.
  virtual void on_batch(std::span<const TraceRecord> in,
                        std::vector<TraceRecord>& out) = 0;

  /// End of stream: flush any tail records into `out`.
  virtual void on_end(std::vector<TraceRecord>& /*out*/) {}
};

/// Creates a fresh ViewStage for one evaluation. `ctx` is the trace
/// context of the node's source.
using ViewStageFactory =
    std::function<std::unique_ptr<ViewStage>(TraceContext& ctx)>;

namespace detail {
struct ViewNode;
}  // namespace detail

class Graph;

/// Per-run evaluation knobs (Graph::run / View::drain / View::collect).
struct EvalOptions {
  /// Folds per-node counters (view.<id>.pulls, view.<id>.cache_hits,
  /// view.<id>.cache_bytes) and the source read.* family after the run.
  obs::Registry* registry = nullptr;
  /// Deadline checked at batch granularity; memory budget charged by
  /// cache memos (spill-on-denial) exactly like the streaming layer.
  Governor* governor = nullptr;
};

/// What one node did during an evaluation (GraphResult::stages).
struct StageStats {
  std::string id;             ///< stable per-run id, e.g. "source0"
  std::uint64_t pulls = 0;    ///< batches the node emitted downstream
  std::uint64_t records = 0;  ///< records the node emitted
  std::uint64_t cache_hits = 0;   ///< batches served from the memo
  std::uint64_t cache_bytes = 0;  ///< bytes retained in the memo after the run
};

/// What one evaluation delivered (mirrors StreamResult).
struct GraphResult {
  std::uint64_t records = 0;  ///< records produced by all sources
  std::uint64_t pid = 0;      ///< pid of the first source that knew one
  bool deadline_hit = false;  ///< stopped early at a batch boundary
  std::vector<StageStats> stages;  ///< evaluation-order node counters

  /// Stats for node `id`; nullptr when the node was not evaluated.
  [[nodiscard]] const StageStats* stage(std::string_view id) const noexcept;
};

/// Immutable handle on one DAG node. Copying shares the node; chaining
/// builders append nodes. A node reached from two views is evaluated
/// once per run and its batches are shared by all consumers.
class View {
 public:
  View() = default;

  /// Trace-file source; the format is guessed from the extension like
  /// stream_trace_file ("-" streams stdin, .gz text inflates, TDTB v3
  /// containers with a valid index decode with options.jobs workers).
  /// `ctx` must outlive every evaluation.
  static View source(TraceContext& ctx, std::string path,
                     ViewSourceOptions options = {});

  /// In-memory Gleipnir text source (zero-copy fast-path parse; the text
  /// is owned by the node).
  static View source_text(TraceContext& ctx, std::string text,
                          ViewSourceOptions options = {});

  /// In-memory record source (records owned by the node).
  static View source_records(TraceContext& ctx,
                             std::vector<TraceRecord> records);

  [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }

  /// Rule-driven trace transformation (paper §IV; core::TraceTransformer
  /// under the hood, one fresh transformer per evaluation). When
  /// `stats_out` is non-null the transformer's stats are copied there at
  /// end of stream (left untouched when a cache memo short-circuits the
  /// node). `rules` must outlive every evaluation. Defined in
  /// src/core/view_transform.cpp (links with tdt_core).
  [[nodiscard]] View transform(const core::RuleSet& rules) const;
  [[nodiscard]] View transform(const core::RuleSet& rules,
                               const core::TransformOptions& options,
                               core::TransformStats* stats_out = nullptr) const;

  /// Keeps records satisfying `pred` (called in trace order).
  [[nodiscard]] View filter(
      std::function<bool(const TraceRecord&)> pred) const;

  /// Keeps the half-open record-index range [lo, hi) of the upstream
  /// stream. Once hi records have passed, the node is satisfied and the
  /// source may stop reading early.
  [[nodiscard]] View window(std::uint64_t lo, std::uint64_t hi) const;

  /// Passes the stream through unchanged while pushing every batch (and
  /// the on_end) into `sink` — the TeeSink shape as a node. `sink` must
  /// outlive every evaluation.
  [[nodiscard]] View tee(TraceSink& sink) const;

  /// Passes the stream through unchanged while writing it to `path`
  /// (Gleipnir text, or a TDTB container for *.tdtb). The file is opened
  /// when evaluation reaches the node and finalized at end of stream.
  [[nodiscard]] View save(std::string path, ViewSaveOptions options = {}) const;

  /// Attaches a byte-budgeted memo to this point of the graph (see file
  /// comment). bytes == 0 never retains anything (pure recompute).
  [[nodiscard]] View cache(std::uint64_t bytes) const;

  /// Generic streaming stage (the extension point transform() is built
  /// on). `label` names the node in metrics (view.<label><n>.*).
  [[nodiscard]] View pipe(ViewStageFactory factory,
                          std::string label = "pipe") const;

  /// One-consumer convenience: evaluates this view into `sink`.
  GraphResult drain(TraceSink& sink, const EvalOptions& options = {}) const;

  /// Evaluates this view and returns its records.
  [[nodiscard]] std::vector<TraceRecord> collect(
      const EvalOptions& options = {}) const;

 private:
  friend class Graph;
  explicit View(std::shared_ptr<detail::ViewNode> node)
      : node_(std::move(node)) {}

  [[nodiscard]] View derive(detail::ViewNode&& node) const;

  std::shared_ptr<detail::ViewNode> node_;
};

/// An evaluation: terminal sinks attached to views, drained in one pass.
/// The graph itself is cheap and single-use-per-run; the Views (and any
/// cache memos they hold) outlive it.
class Graph {
 public:
  Graph() = default;

  /// Registers `sink` as a consumer of `v`. Sinks attached to the same
  /// node receive each batch in registration order, before any
  /// downstream nodes; `sink` must outlive run().
  void add_sink(const View& v, TraceSink& sink);

  /// Evaluates every registered view in one pass per source (sources
  /// drain in registration order). Each sink receives its full record
  /// stream in trace order — bit-identical to evaluating its chain alone
  /// — and exactly one on_end. Exceptions from sinks or stages propagate
  /// (remaining sinks see neither further batches nor on_end, matching
  /// TeeSink). May be called again: later runs re-evaluate, reusing any
  /// complete cache memos.
  GraphResult run(const EvalOptions& options = {});

 private:
  std::vector<std::pair<std::shared_ptr<detail::ViewNode>, TraceSink*>>
      sinks_;
};

}  // namespace tdt::trace
