#include "trace/binary.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace tdt::trace {
namespace {

constexpr char kMagic[4] = {'T', 'D', 'T', 'B'};

// Entry tags.
constexpr std::uint8_t kTagRecord = 0;
constexpr std::uint8_t kTagString = 1;
constexpr std::uint8_t kTagEnd = 2;

// Sanity caps: a corrupt varint must not drive a huge allocation or an
// unbounded loop before the corruption is noticed.
constexpr std::uint64_t kMaxStringLen = 1u << 20;  // 1 MiB per name
constexpr std::uint64_t kMaxSymbolId = 1u << 24;
constexpr std::uint64_t kMaxVarSteps = 1u << 12;
constexpr int kMaxVarintBytes = 10;  // ceil(64 / 7)

constexpr std::size_t kFooterSize = 12;  // u64 count + u32 crc, both LE

void put_le(char* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint64_t get_le(const char* in, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(const TraceContext& ctx,
                                     std::ostream& out, std::uint64_t pid,
                                     std::uint8_t version)
    : ctx_(&ctx), out_(&out), version_(version) {
  if (version != 1 && version != 2) {
    throw_config_error("unsupported TDTB writer version " +
                       std::to_string(version));
  }
  put_bytes(kMagic, 4);
  put_byte(static_cast<char>(version_));
  put_varint(pid);
}

void BinaryTraceWriter::put_bytes(const char* data, std::size_t len) {
  out_->write(data, static_cast<std::streamsize>(len));
  crc_.update(data, len);
}

void BinaryTraceWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_byte(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  put_byte(static_cast<char>(v));
}

void BinaryTraceWriter::define_symbol_if_new(Symbol s) {
  if (s.id() < defined_.size() && defined_[s.id()]) return;
  if (s.id() >= defined_.size()) defined_.resize(s.id() + 1, false);
  defined_[s.id()] = true;
  const std::string_view text = ctx_->name(s);
  put_byte(static_cast<char>(kTagString));
  put_varint(s.id());
  put_varint(text.size());
  put_bytes(text.data(), text.size());
}

void BinaryTraceWriter::write(const TraceRecord& rec) {
  internal_check(!finished_, "write after finish");
  define_symbol_if_new(rec.function);
  if (!rec.var.empty()) {
    define_symbol_if_new(rec.var.base);
    for (const VarStep& step : rec.var.steps) {
      if (step.is_field) define_symbol_if_new(step.field);
    }
  }
  put_byte(static_cast<char>(kTagRecord));
  const std::uint8_t packed = static_cast<std::uint8_t>(
      (static_cast<unsigned>(rec.kind) & 0x7) |
      ((static_cast<unsigned>(rec.scope) & 0x7) << 3));
  put_byte(static_cast<char>(packed));
  put_varint(rec.address);
  put_varint(rec.size);
  put_varint(rec.function.id());
  put_varint(rec.frame);
  put_varint(rec.thread);
  ++record_count_;
  if (rec.scope == VarScope::Unknown) return;
  put_varint(rec.var.base.id());
  put_varint(rec.var.steps.size());
  for (const VarStep& step : rec.var.steps) {
    put_byte(static_cast<char>(step.is_field ? 1 : 0));
    put_varint(step.is_field ? step.field.id() : step.index);
  }
}

void BinaryTraceWriter::finish() {
  internal_check(!finished_, "double finish");
  put_byte(static_cast<char>(kTagEnd));
  if (version_ >= 2) {
    // Footer is not part of its own checksum: the CRC covers everything
    // from the magic through the end tag.
    char footer[kFooterSize];
    put_le(footer, record_count_, 8);
    put_le(footer + 8, crc_.value(), 4);
    out_->write(footer, kFooterSize);
  }
  finished_ = true;
}

/// Private unwind token: the diagnostic is already reported; next() turns
/// this into a clean end-of-trace. Derives from Error so it stays a
/// classified tdt error if it ever escapes (e.g. corruption inside the
/// header, where there is nothing to salvage).
struct BinaryTraceReader::RecoverEnd : Error {
  explicit RecoverEnd(std::string message)
      : Error(ErrorKind::Parse, std::move(message)) {}
};

BinaryTraceReader::BinaryTraceReader(TraceContext& ctx, std::istream& in,
                                     DiagEngine* diags)
    : ctx_(&ctx), in_(&in), diags_(diags) {
  char magic[4];
  in_->read(magic, 4);
  if (!*in_ || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    if (diags_ != nullptr) {
      diags_->report(DiagSeverity::Fatal, DiagCode::BinBadMagic,
                     "not a TDTB binary trace (bad magic)");
    }
    throw_parse_error("not a TDTB binary trace (bad magic)");
  }
  crc_.update(magic, 4);
  const int version = next_byte();
  if (version != 1 && version != 2) {
    if (diags_ != nullptr) {
      diags_->report(DiagSeverity::Fatal, DiagCode::BinBadVersion,
                     "unsupported TDTB version " + std::to_string(version));
    }
    throw_parse_error("unsupported TDTB version " + std::to_string(version));
  }
  version_ = static_cast<std::uint8_t>(version);
  pid_ = get_varint();
}

void BinaryTraceReader::fail(DiagCode code, std::string message) {
  if (diags_ == nullptr || diags_->strict()) {
    throw_parse_error(std::move(message));
  }
  diags_->report(DiagSeverity::Error, code, message);
  throw RecoverEnd(std::move(message));
}

int BinaryTraceReader::next_byte() {
  const int byte = in_->get();
  if (byte != std::istream::traits_type::eof()) {
    ++bytes_read_;
    crc_.update_byte(static_cast<std::uint8_t>(byte));
  }
  return byte;
}

std::uint64_t BinaryTraceReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (int n = 0; n < kMaxVarintBytes; ++n) {
    const int byte = next_byte();
    if (byte == std::istream::traits_type::eof()) {
      fail(DiagCode::BinTruncated, "truncated binary trace (eof inside varint)");
    }
    if (n == kMaxVarintBytes - 1 && (byte & 0x7F) > 1) {
      // The 10th byte may only contribute bit 63.
      fail(DiagCode::BinBadVarint, "varint overflows 64 bits in binary trace");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  fail(DiagCode::BinBadVarint, "overlong varint in binary trace (>10 bytes)");
}

std::uint64_t BinaryTraceReader::get_varint_max(std::uint64_t max_value,
                                                DiagCode code,
                                                const char* what) {
  const std::uint64_t v = get_varint();
  if (v > max_value) {
    fail(code, std::string(what) + " value " + std::to_string(v) +
                   " exceeds limit " + std::to_string(max_value) +
                   " in binary trace");
  }
  return v;
}

Symbol BinaryTraceReader::map_symbol(std::uint64_t file_id) {
  if (file_id >= symbol_map_.size() || symbol_map_[file_id].empty()) {
    fail(DiagCode::BinBadSymbol,
         "binary trace references undefined string id " +
             std::to_string(file_id));
  }
  return symbol_map_[file_id];
}

void BinaryTraceReader::check_footer() {
  if (version_ < 2) return;
  if (fault::FaultInjector::enabled() &&
      fault::should_fire(fault::Site::BinaryBadFooter)) [[unlikely]] {
    fail(DiagCode::BinBadFooter,
         "truncated binary trace (v2 footer missing or short)");
  }
  // The CRC covers everything through the end tag, which next_byte() has
  // already folded in; the footer itself is read outside the checksum.
  const std::uint32_t computed = crc_.value();
  char footer[kFooterSize];
  in_->read(footer, kFooterSize);
  if (in_->gcount() != static_cast<std::streamsize>(kFooterSize)) {
    fail(DiagCode::BinBadFooter,
         "truncated binary trace (v2 footer missing or short)");
  }
  const std::uint64_t count = get_le(footer, 8);
  const std::uint32_t stored = static_cast<std::uint32_t>(get_le(footer + 8, 4));
  if (count != record_count_) {
    fail(DiagCode::BinCountMismatch,
         "binary trace record count mismatch: footer says " +
             std::to_string(count) + ", decoded " +
             std::to_string(record_count_));
  }
  if (stored != computed) {
    fail(DiagCode::BinCrcMismatch,
         "binary trace checksum mismatch (bit corruption): footer crc32 " +
             std::to_string(stored) + ", computed " + std::to_string(computed));
  }
}

bool BinaryTraceReader::next(TraceRecord& out) {
  if (done_) return false;
  try {
    for (;;) {
      if (fault::FaultInjector::enabled()) [[unlikely]] {
        // Entry-boundary faults: a short read ends the stream mid-trace
        // (B003, prefix salvageable); a CRC flip folds a phantom byte
        // into the running checksum so the v2 footer check (B010) trips
        // exactly as it would after real bit corruption.
        if (fault::should_fire(fault::Site::BinaryShortRead)) {
          fail(DiagCode::BinTruncated,
               "truncated binary trace (missing end marker)");
        }
        if (fault::should_fire(fault::Site::BinaryCrcFlip)) {
          crc_.update_byte(0xA5);
        }
      }
      const int tag = next_byte();
      if (tag == std::istream::traits_type::eof()) {
        fail(DiagCode::BinTruncated,
             "truncated binary trace (missing end marker)");
      }
      if (tag == kTagEnd) {
        done_ = true;
        check_footer();
        return false;
      }
      if (tag == kTagString) {
        const std::uint64_t id =
            get_varint_max(kMaxSymbolId, DiagCode::BinFieldOverflow,
                           "string id");
        const std::uint64_t len = get_varint_max(
            kMaxStringLen, DiagCode::BinStringTooLong, "string length");
        std::string text(len, '\0');
        in_->read(text.data(), static_cast<std::streamsize>(len));
        if (in_->gcount() != static_cast<std::streamsize>(len)) {
          fail(DiagCode::BinTruncated, "truncated string in binary trace");
        }
        crc_.update(text.data(), len);
        if (id >= symbol_map_.size()) symbol_map_.resize(id + 1);
        symbol_map_[id] = ctx_->intern(text);
        continue;
      }
      if (tag != kTagRecord) {
        fail(DiagCode::BinBadTag, "unknown entry tag " + std::to_string(tag) +
                                      " in binary trace");
      }
      const int packed = next_byte();
      if (packed == std::istream::traits_type::eof()) {
        fail(DiagCode::BinTruncated, "truncated record in binary trace");
      }
      out = TraceRecord{};
      out.kind = static_cast<AccessKind>(packed & 0x7);
      out.scope = static_cast<VarScope>((packed >> 3) & 0x7);
      out.address = get_varint();
      out.size = static_cast<std::uint32_t>(get_varint_max(
          0xFFFFFFFFull, DiagCode::BinFieldOverflow, "access size"));
      out.function = map_symbol(get_varint_max(
          kMaxSymbolId, DiagCode::BinFieldOverflow, "function id"));
      out.frame = static_cast<std::uint16_t>(get_varint_max(
          0xFFFFull, DiagCode::BinFieldOverflow, "frame"));
      out.thread = static_cast<std::uint16_t>(get_varint_max(
          0xFFFFull, DiagCode::BinFieldOverflow, "thread"));
      if (out.scope != VarScope::Unknown) {
        out.var.base = map_symbol(get_varint_max(
            kMaxSymbolId, DiagCode::BinFieldOverflow, "variable id"));
        const std::uint64_t nsteps = get_varint_max(
            kMaxVarSteps, DiagCode::BinFieldOverflow, "step count");
        for (std::uint64_t i = 0; i < nsteps; ++i) {
          const int is_field = next_byte();
          if (is_field == std::istream::traits_type::eof()) {
            fail(DiagCode::BinTruncated, "truncated var steps in binary trace");
          }
          const std::uint64_t v =
              is_field != 0 ? get_varint_max(kMaxSymbolId,
                                             DiagCode::BinFieldOverflow,
                                             "field id")
                            : get_varint();
          out.var.steps.push_back(is_field != 0 ? VarStep::make_field(
                                                      map_symbol(v))
                                                : VarStep::make_index(v));
        }
      }
      ++record_count_;
      return true;
    }
  } catch (const RecoverEnd&) {
    // Diagnostic already reported; salvage the records decoded so far.
    done_ = true;
    return false;
  }
}

std::vector<char> write_binary_trace(const TraceContext& ctx,
                                     std::span<const TraceRecord> records,
                                     std::uint64_t pid, std::uint8_t version) {
  std::ostringstream out(std::ios::binary);
  BinaryTraceWriter w(ctx, out, pid, version);
  for (const TraceRecord& rec : records) w.write(rec);
  w.finish();
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

std::vector<TraceRecord> read_binary_trace(TraceContext& ctx,
                                           std::span<const char> blob,
                                           std::uint64_t* pid,
                                           DiagEngine* diags) {
  std::istringstream in(std::string(blob.data(), blob.size()),
                        std::ios::binary);
  BinaryTraceReader r(ctx, in, diags);
  if (pid != nullptr) *pid = r.pid();
  std::vector<TraceRecord> records;
  TraceRecord rec;
  while (r.next(rec)) records.push_back(rec);
  return records;
}

}  // namespace tdt::trace
