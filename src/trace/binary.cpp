#include "trace/binary.hpp"

#include <sstream>

#include "util/error.hpp"

namespace tdt::trace {
namespace {

constexpr char kMagic[4] = {'T', 'D', 'T', 'B'};
constexpr std::uint8_t kVersion = 1;

// Entry tags.
constexpr std::uint8_t kTagRecord = 0;
constexpr std::uint8_t kTagString = 1;
constexpr std::uint8_t kTagEnd = 2;

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(const TraceContext& ctx,
                                     std::ostream& out, std::uint64_t pid)
    : ctx_(&ctx), out_(&out) {
  out_->write(kMagic, 4);
  out_->put(static_cast<char>(kVersion));
  put_varint(pid);
}

void BinaryTraceWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_->put(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_->put(static_cast<char>(v));
}

void BinaryTraceWriter::define_symbol_if_new(Symbol s) {
  if (s.id() < defined_.size() && defined_[s.id()]) return;
  if (s.id() >= defined_.size()) defined_.resize(s.id() + 1, false);
  defined_[s.id()] = true;
  const std::string_view text = ctx_->name(s);
  out_->put(static_cast<char>(kTagString));
  put_varint(s.id());
  put_varint(text.size());
  out_->write(text.data(), static_cast<std::streamsize>(text.size()));
}

void BinaryTraceWriter::write(const TraceRecord& rec) {
  internal_check(!finished_, "write after finish");
  define_symbol_if_new(rec.function);
  if (!rec.var.empty()) {
    define_symbol_if_new(rec.var.base);
    for (const VarStep& step : rec.var.steps) {
      if (step.is_field) define_symbol_if_new(step.field);
    }
  }
  out_->put(static_cast<char>(kTagRecord));
  const std::uint8_t packed = static_cast<std::uint8_t>(
      (static_cast<unsigned>(rec.kind) & 0x7) |
      ((static_cast<unsigned>(rec.scope) & 0x7) << 3));
  out_->put(static_cast<char>(packed));
  put_varint(rec.address);
  put_varint(rec.size);
  put_varint(rec.function.id());
  put_varint(rec.frame);
  put_varint(rec.thread);
  if (rec.scope == VarScope::Unknown) return;
  put_varint(rec.var.base.id());
  put_varint(rec.var.steps.size());
  for (const VarStep& step : rec.var.steps) {
    out_->put(static_cast<char>(step.is_field ? 1 : 0));
    put_varint(step.is_field ? step.field.id() : step.index);
  }
}

void BinaryTraceWriter::finish() {
  internal_check(!finished_, "double finish");
  out_->put(static_cast<char>(kTagEnd));
  finished_ = true;
}

BinaryTraceReader::BinaryTraceReader(TraceContext& ctx, std::istream& in)
    : ctx_(&ctx), in_(&in) {
  char magic[4];
  in_->read(magic, 4);
  if (!*in_ || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    throw_parse_error("not a TDTB binary trace (bad magic)");
  }
  const int version = in_->get();
  if (version != kVersion) {
    throw_parse_error("unsupported TDTB version " + std::to_string(version));
  }
  pid_ = get_varint();
}

std::uint64_t BinaryTraceReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int byte = in_->get();
    if (byte == std::istream::traits_type::eof()) {
      throw_parse_error("truncated binary trace (eof inside varint)");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64) {
      throw_parse_error("overlong varint in binary trace");
    }
  }
}

Symbol BinaryTraceReader::map_symbol(std::uint64_t file_id) const {
  if (file_id >= symbol_map_.size()) {
    throw_parse_error("binary trace references undefined string id " +
                      std::to_string(file_id));
  }
  return symbol_map_[file_id];
}

bool BinaryTraceReader::next(TraceRecord& out) {
  for (;;) {
    const int tag = in_->get();
    if (tag == std::istream::traits_type::eof()) {
      throw_parse_error("truncated binary trace (missing end marker)");
    }
    if (tag == kTagEnd) return false;
    if (tag == kTagString) {
      const std::uint64_t id = get_varint();
      const std::uint64_t len = get_varint();
      std::string text(len, '\0');
      in_->read(text.data(), static_cast<std::streamsize>(len));
      if (!*in_) {
        throw_parse_error("truncated string in binary trace");
      }
      if (id >= symbol_map_.size()) symbol_map_.resize(id + 1);
      symbol_map_[id] = ctx_->intern(text);
      continue;
    }
    if (tag != kTagRecord) {
      throw_parse_error("unknown entry tag " + std::to_string(tag) +
                        " in binary trace");
    }
    const int packed = in_->get();
    if (packed == std::istream::traits_type::eof()) {
      throw_parse_error("truncated record in binary trace");
    }
    out = TraceRecord{};
    out.kind = static_cast<AccessKind>(packed & 0x7);
    out.scope = static_cast<VarScope>((packed >> 3) & 0x7);
    out.address = get_varint();
    out.size = static_cast<std::uint32_t>(get_varint());
    out.function = map_symbol(get_varint());
    out.frame = static_cast<std::uint16_t>(get_varint());
    out.thread = static_cast<std::uint16_t>(get_varint());
    if (out.scope != VarScope::Unknown) {
      out.var.base = map_symbol(get_varint());
      const std::uint64_t nsteps = get_varint();
      for (std::uint64_t i = 0; i < nsteps; ++i) {
        const int is_field = in_->get();
        if (is_field == std::istream::traits_type::eof()) {
          throw_parse_error("truncated var steps in binary trace");
        }
        const std::uint64_t v = get_varint();
        out.var.steps.push_back(is_field != 0
                                    ? VarStep::make_field(map_symbol(v))
                                    : VarStep::make_index(v));
      }
    }
    return true;
  }
}

std::vector<char> write_binary_trace(const TraceContext& ctx,
                                     std::span<const TraceRecord> records,
                                     std::uint64_t pid) {
  std::ostringstream out(std::ios::binary);
  BinaryTraceWriter w(ctx, out, pid);
  for (const TraceRecord& rec : records) w.write(rec);
  w.finish();
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

std::vector<TraceRecord> read_binary_trace(TraceContext& ctx,
                                           std::span<const char> blob,
                                           std::uint64_t* pid) {
  std::istringstream in(std::string(blob.data(), blob.size()),
                        std::ios::binary);
  BinaryTraceReader r(ctx, in);
  if (pid != nullptr) *pid = r.pid();
  std::vector<TraceRecord> records;
  TraceRecord rec;
  while (r.next(rec)) records.push_back(rec);
  return records;
}

}  // namespace tdt::trace
