#include "trace/binary.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "trace/source.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace tdt::trace {
namespace {

constexpr char kMagic[4] = {'T', 'D', 'T', 'B'};
constexpr char kIndexMagic[4] = {'T', 'D', 'T', 'X'};

// Entry tags.
constexpr std::uint8_t kTagRecord = 0;
constexpr std::uint8_t kTagString = 1;
constexpr std::uint8_t kTagEnd = 2;
constexpr std::uint8_t kTagFrame = 3;  // v3 shard

// Sanity caps: a corrupt varint must not drive a huge allocation or an
// unbounded loop before the corruption is noticed.
constexpr std::uint64_t kMaxStringLen = 1u << 20;  // 1 MiB per name
constexpr std::uint64_t kMaxSymbolId = 1u << 24;
constexpr std::uint64_t kMaxVarSteps = 1u << 12;
constexpr int kMaxVarintBytes = 10;  // ceil(64 / 7)
constexpr std::uint64_t kMaxFrameRecords = 1u << 27;
constexpr std::uint64_t kMaxFrameBytes = 1u << 30;

constexpr std::size_t kFooterSize = 12;  // v2: u64 count + u32 crc, both LE
// v3: u64 records + u64 frames + u32 index len + u32 index crc + "TDTX".
constexpr std::size_t kContainerFooterSize = 28;

void put_le(char* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint64_t get_le(const char* in, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

// Zigzag maps the two's-complement address delta to an unsigned value
// whose varint stays short for small steps in either direction. The
// subtraction/addition wrap mod 2^64, so every (prev, next) pair round
// trips regardless of magnitude.
constexpr std::uint64_t zigzag(std::uint64_t delta) noexcept {
  const auto s = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(s) << 1) ^
         static_cast<std::uint64_t>(s >> 63);
}

constexpr std::uint64_t unzigzag(std::uint64_t z) noexcept {
  return (z >> 1) ^ (~(z & 1) + 1);
}

// Bounded varint from memory. False on truncation or 64-bit overflow.
bool mem_varint(const char*& p, const char* end, std::uint64_t& v) noexcept {
  if (p != end) {
    // Single-byte values dominate delta-coded frames; settle them
    // without entering the shift loop.
    const std::uint8_t b0 = static_cast<std::uint8_t>(*p);
    if ((b0 & 0x80) == 0) {
      v = b0;
      ++p;
      return true;
    }
  }
  v = 0;
  int shift = 0;
  for (int n = 0; n < kMaxVarintBytes; ++n) {
    if (p == end) return false;
    const std::uint8_t b = static_cast<std::uint8_t>(*p++);
    if (n == kMaxVarintBytes - 1 && (b & 0x7F) > 1) return false;
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

}  // namespace

// --- writer -----------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(const TraceContext& ctx,
                                     std::ostream& out, std::uint64_t pid,
                                     std::uint8_t version)
    : BinaryTraceWriter(ctx, out, pid, BinaryWriterOptions{.version = version}) {
}

BinaryTraceWriter::BinaryTraceWriter(const TraceContext& ctx,
                                     std::ostream& out, std::uint64_t pid,
                                     const BinaryWriterOptions& options)
    : ctx_(&ctx),
      out_(&out),
      version_(options.version),
      codec_(options.codec),
      level_(options.level),
      frame_target_(options.frame_records == 0 ? kDefaultFrameRecords
                                               : options.frame_records) {
  if (version_ != 1 && version_ != 2 && version_ != kTdtbVersionFramed) {
    throw_config_error("unsupported TDTB writer version " +
                       std::to_string(version_));
  }
  if (codec_ != Codec::None && version_ != kTdtbVersionFramed) {
    throw_config_error(
        "compression requires the framed container (TDTB v3); "
        "writer version " +
        std::to_string(version_) + " cannot carry codec '" +
        std::string(codec_name(codec_)) + "'");
  }
  if (codec_ != Codec::None && !codec_available(codec_)) {
    throw_config_error("codec '" + std::string(codec_name(codec_)) +
                       "' is unavailable in this process (shared library "
                       "not found or TDT_NO_CODEC set); use --compress "
                       "none or install the codec library");
  }
  if (version_ >= kTdtbVersionFramed) {
    std::string head;
    head.append(kMagic, 4);
    head.push_back(static_cast<char>(version_));
    append_varint(head, pid);
    head.push_back(static_cast<char>(codec_));  // container default codec
    raw_bytes(head.data(), head.size());
  } else {
    put_bytes(kMagic, 4);
    put_byte(static_cast<char>(version_));
    put_varint(pid);
  }
}

void BinaryTraceWriter::put_bytes(const char* data, std::size_t len) {
  if (version_ >= kTdtbVersionFramed) {
    // v3 entries accumulate in the current frame's payload buffer; the
    // frame reaches the stream only through flush_frame().
    frame_buf_.append(data, len);
    return;
  }
  out_->write(data, static_cast<std::streamsize>(len));
  crc_.update(data, len);
}

void BinaryTraceWriter::raw_bytes(const char* data, std::size_t len) {
  out_->write(data, static_cast<std::streamsize>(len));
  offset_ += len;
}

void BinaryTraceWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_byte(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  put_byte(static_cast<char>(v));
}

void BinaryTraceWriter::define_symbol_if_new(Symbol s) {
  if (s.id() < defined_.size() && defined_[s.id()]) return;
  if (s.id() >= defined_.size()) defined_.resize(s.id() + 1, false);
  defined_[s.id()] = true;
  if (version_ >= kTdtbVersionFramed) frame_defined_ids_.push_back(s.id());
  const std::string_view text = ctx_->name(s);
  put_byte(static_cast<char>(kTagString));
  put_varint(s.id());
  put_varint(text.size());
  put_bytes(text.data(), text.size());
}

void BinaryTraceWriter::write(const TraceRecord& rec) {
  internal_check(!finished_, "write after finish");
  define_symbol_if_new(rec.function);
  if (!rec.var.empty()) {
    define_symbol_if_new(rec.var.base);
    for (const VarStep& step : rec.var.steps) {
      if (step.is_field) define_symbol_if_new(step.field);
    }
  }
  put_byte(static_cast<char>(kTagRecord));
  const std::uint8_t packed = static_cast<std::uint8_t>(
      (static_cast<unsigned>(rec.kind) & 0x7) |
      ((static_cast<unsigned>(rec.scope) & 0x7) << 3));
  put_byte(static_cast<char>(packed));
  if (version_ >= kTdtbVersionFramed) {
    // v3 frames store addresses as zigzag deltas from the previous
    // record in the same frame; strided access patterns collapse to
    // one-byte varints.
    put_varint(zigzag(rec.address - prev_addr_));
    prev_addr_ = rec.address;
  } else {
    put_varint(rec.address);
  }
  put_varint(rec.size);
  put_varint(rec.function.id());
  put_varint(rec.frame);
  put_varint(rec.thread);
  if (rec.scope != VarScope::Unknown) {
    put_varint(rec.var.base.id());
    put_varint(rec.var.steps.size());
    for (const VarStep& step : rec.var.steps) {
      put_byte(static_cast<char>(step.is_field ? 1 : 0));
      put_varint(step.is_field ? step.field.id() : step.index);
    }
  }
  ++record_count_;
  if (version_ >= kTdtbVersionFramed) {
    ++frame_record_count_;
    if (frame_record_count_ >= frame_target_) flush_frame();
  }
}

void BinaryTraceWriter::flush_frame() {
  if (frame_record_count_ == 0 && frame_buf_.empty()) return;
  const std::string_view payload(frame_buf_);
  std::string_view stored = payload;
  if (codec_ != Codec::None) {
    if (!codec_compress(codec_, level_, payload, comp_buf_)) {
      throw Error(ErrorKind::Io,
                  "TDTB frame compression failed (codec " +
                      std::string(codec_name(codec_)) + ")");
    }
    stored = comp_buf_;
  }
  TdtbFrameInfo info;
  info.offset = offset_;
  info.records = frame_record_count_;
  info.usize = payload.size();
  info.csize = stored.size();
  info.crc = crc32(stored.data(), stored.size());
  info.codec = static_cast<std::uint8_t>(codec_);

  std::string head;
  head.push_back(static_cast<char>(kTagFrame));
  head.push_back(static_cast<char>(info.codec));
  append_varint(head, info.records);
  append_varint(head, info.usize);
  append_varint(head, info.csize);
  char crcb[4];
  put_le(crcb, info.crc, 4);
  head.append(crcb, 4);
  raw_bytes(head.data(), head.size());
  raw_bytes(stored.data(), stored.size());
  index_.push_back(info);

  frame_buf_.clear();
  frame_record_count_ = 0;
  // The next frame must decode on its own: forget this frame's symbol
  // definitions so first use re-emits them.
  for (std::uint32_t id : frame_defined_ids_) defined_[id] = false;
  frame_defined_ids_.clear();
  prev_addr_ = 0;
}

void BinaryTraceWriter::finish() {
  internal_check(!finished_, "double finish");
  if (version_ >= kTdtbVersionFramed) {
    flush_frame();
    const char end_tag = static_cast<char>(kTagEnd);
    raw_bytes(&end_tag, 1);
    std::string index;
    for (const TdtbFrameInfo& f : index_) {
      append_varint(index, f.offset);
      append_varint(index, f.records);
      append_varint(index, f.usize);
      append_varint(index, f.csize);
      char crcb[4];
      put_le(crcb, f.crc, 4);
      index.append(crcb, 4);
      index.push_back(static_cast<char>(f.codec));
    }
    char footer[kContainerFooterSize];
    put_le(footer, record_count_, 8);
    put_le(footer + 8, index_.size(), 8);
    put_le(footer + 16, index.size(), 4);
    put_le(footer + 20, crc32(index.data(), index.size()), 4);
    std::memcpy(footer + 24, kIndexMagic, 4);
    raw_bytes(index.data(), index.size());
    raw_bytes(footer, kContainerFooterSize);
    finished_ = true;
    return;
  }
  put_byte(static_cast<char>(kTagEnd));
  if (version_ >= 2) {
    // Footer is not part of its own checksum: the CRC covers everything
    // from the magic through the end tag.
    char footer[kFooterSize];
    put_le(footer, record_count_, 8);
    put_le(footer + 8, crc_.value(), 4);
    out_->write(footer, kFooterSize);
  }
  finished_ = true;
}

// --- two-phase frame decode -------------------------------------------------

namespace {

struct PayloadCursor {
  const char* p;
  const char* end;

  bool byte(std::uint8_t& b) noexcept {
    if (p == end) return false;
    b = static_cast<std::uint8_t>(*p++);
    return true;
  }
};

}  // namespace

void decode_frame_payload(std::string_view payload, DecodedFrame& out) {
  out.records.clear();
  out.defs.clear();
  out.ok = true;
  out.error.clear();
  for (std::uint64_t id : out.seen_ids) out.seen_defs[id] = 0;
  out.seen_ids.clear();

  PayloadCursor cur{payload.data(), payload.data() + payload.size()};
  // Records are built in place at the back of out.records; when decoding
  // fails mid-record the partial entry must not be surfaced.
  bool mid_record = false;
  const auto fail = [&out, &mid_record](DiagCode code, std::string msg) {
    if (mid_record) out.records.pop_back();
    out.ok = false;
    out.error_code = code;
    out.error = std::move(msg);
  };
  const auto read_varint = [&](std::uint64_t& v, const char* what) {
    const char* before = cur.p;
    if (mem_varint(cur.p, cur.end, v)) return true;
    if (cur.p == cur.end && cur.p - before < kMaxVarintBytes) {
      fail(DiagCode::BinTruncated,
           std::string("truncated frame payload (eof inside ") + what + ")");
    } else {
      fail(DiagCode::BinBadVarint,
           std::string("bad varint in frame payload (") + what + ")");
    }
    return false;
  };
  const auto read_capped = [&](std::uint64_t& v, std::uint64_t max,
                               DiagCode code, const char* what) {
    if (!read_varint(v, what)) return false;
    if (v > max) {
      fail(code, std::string(what) + " value " + std::to_string(v) +
                     " exceeds limit " + std::to_string(max) +
                     " in frame payload");
      return false;
    }
    return true;
  };
  const auto defined = [&out](std::uint64_t id) {
    return id < out.seen_defs.size() && out.seen_defs[id] != 0;
  };

  std::uint64_t prev_addr = 0;  // zigzag-delta base for record addresses
  while (cur.p != cur.end) {
    std::uint8_t tag = 0;
    cur.byte(tag);
    if (tag == kTagString) {
      std::uint64_t id = 0;
      std::uint64_t len = 0;
      if (!read_capped(id, kMaxSymbolId, DiagCode::BinFieldOverflow,
                       "string id")) {
        return;
      }
      if (!read_capped(len, kMaxStringLen, DiagCode::BinStringTooLong,
                       "string length")) {
        return;
      }
      if (static_cast<std::uint64_t>(cur.end - cur.p) < len) {
        fail(DiagCode::BinTruncated, "truncated string in frame payload");
        return;
      }
      const std::string_view text(cur.p, static_cast<std::size_t>(len));
      cur.p += len;
      if (defined(id)) {
        // A duplicate definition with identical text is harmless; with
        // different text there is no single answer for the frame's
        // records, so treat it as corruption.
        if (out.defs[out.seen_defs[id] - 1].second != text) {
          fail(DiagCode::BinBadSymbol,
               "string id " + std::to_string(id) +
                   " redefined within a frame");
          return;
        }
        continue;
      }
      out.defs.emplace_back(id, text);
      if (id >= out.seen_defs.size()) out.seen_defs.resize(id + 1, 0);
      out.seen_defs[id] = static_cast<std::uint32_t>(out.defs.size());
      out.seen_ids.push_back(id);
      continue;
    }
    if (tag != kTagRecord) {
      fail(DiagCode::BinBadTag,
           "unknown entry tag " + std::to_string(tag) + " in frame payload");
      return;
    }
    std::uint8_t packed = 0;
    if (!cur.byte(packed)) {
      fail(DiagCode::BinTruncated, "truncated record in frame payload");
      return;
    }
    TraceRecord& rec = out.records.emplace_back();
    mid_record = true;
    rec.kind = static_cast<AccessKind>(packed & 0x7);
    rec.scope = static_cast<VarScope>((packed >> 3) & 0x7);
    std::uint64_t v = 0;
    if (!read_varint(v, "address")) return;
    prev_addr += unzigzag(v);
    rec.address = prev_addr;
    if (!read_capped(v, 0xFFFFFFFFull, DiagCode::BinFieldOverflow,
                     "access size")) {
      return;
    }
    rec.size = static_cast<std::uint32_t>(v);
    if (!read_capped(v, kMaxSymbolId, DiagCode::BinFieldOverflow,
                     "function id")) {
      return;
    }
    if (!defined(v)) {
      fail(DiagCode::BinBadSymbol,
           "frame references undefined string id " + std::to_string(v));
      return;
    }
    rec.function = Symbol(static_cast<std::uint32_t>(v));
    if (!read_capped(v, 0xFFFFull, DiagCode::BinFieldOverflow, "frame")) {
      return;
    }
    rec.frame = static_cast<std::uint16_t>(v);
    if (!read_capped(v, 0xFFFFull, DiagCode::BinFieldOverflow, "thread")) {
      return;
    }
    rec.thread = static_cast<std::uint16_t>(v);
    if (rec.scope != VarScope::Unknown) {
      if (!read_capped(v, kMaxSymbolId, DiagCode::BinFieldOverflow,
                       "variable id")) {
        return;
      }
      if (!defined(v)) {
        fail(DiagCode::BinBadSymbol,
             "frame references undefined string id " + std::to_string(v));
        return;
      }
      rec.var.base = Symbol(static_cast<std::uint32_t>(v));
      std::uint64_t nsteps = 0;
      if (!read_capped(nsteps, kMaxVarSteps, DiagCode::BinFieldOverflow,
                       "step count")) {
        return;
      }
      for (std::uint64_t i = 0; i < nsteps; ++i) {
        std::uint8_t is_field = 0;
        if (!cur.byte(is_field)) {
          fail(DiagCode::BinTruncated, "truncated var steps in frame payload");
          return;
        }
        if (is_field != 0) {
          if (!read_capped(v, kMaxSymbolId, DiagCode::BinFieldOverflow,
                           "field id")) {
            return;
          }
          if (!defined(v)) {
            fail(DiagCode::BinBadSymbol,
                 "frame references undefined string id " + std::to_string(v));
            return;
          }
          rec.var.steps.push_back(
              VarStep::make_field(Symbol(static_cast<std::uint32_t>(v))));
        } else {
          if (!read_varint(v, "step index")) return;
          rec.var.steps.push_back(VarStep::make_index(v));
        }
      }
    }
    mid_record = false;
  }
}

void bind_frame(TraceContext& ctx, DecodedFrame& frame,
                std::vector<Symbol>& symbol_map) {
  bool identity = true;
  for (const auto& [id, text] : frame.defs) {
    if (id >= symbol_map.size()) symbol_map.resize(id + 1);
    symbol_map[id] = ctx.intern(text);
    identity = identity && symbol_map[id].id() == id;
  }
  // Decode enforces that records only reference ids defined in this
  // frame, so when every definition interned to its wire id (the common
  // fresh-context decode) the rewrite pass would be a no-op — skip the
  // walk over every record.
  if (identity) return;
  for (TraceRecord& rec : frame.records) {
    rec.function = symbol_map[rec.function.id()];
    if (rec.scope == VarScope::Unknown) continue;
    rec.var.base = symbol_map[rec.var.base.id()];
    for (VarStep& step : rec.var.steps) {
      if (step.is_field) step.field = symbol_map[step.field.id()];
    }
  }
}

// --- reader -----------------------------------------------------------------

/// Private unwind token: the diagnostic is already reported; next() turns
/// this into a clean end-of-trace. Derives from Error so it stays a
/// classified tdt error if it ever escapes (e.g. corruption inside the
/// header, where there is nothing to salvage).
struct BinaryTraceReader::RecoverEnd : Error {
  explicit RecoverEnd(std::string message)
      : Error(ErrorKind::Parse, std::move(message)) {}
};

BinaryTraceReader::BinaryTraceReader(TraceContext& ctx, std::istream& in,
                                     DiagEngine* diags)
    : ctx_(&ctx), in_(&in), diags_(diags) {
  char magic[4];
  in_->read(magic, 4);
  if (!*in_ || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    if (diags_ != nullptr) {
      diags_->report(DiagSeverity::Fatal, DiagCode::BinBadMagic,
                     "not a TDTB binary trace (bad magic)");
    }
    throw_parse_error("not a TDTB binary trace (bad magic)");
  }
  crc_.update(magic, 4);
  bytes_read_ += 4;
  const int version = next_byte();
  if (version != 1 && version != 2 && version != kTdtbVersionFramed) {
    if (diags_ != nullptr) {
      diags_->report(DiagSeverity::Fatal, DiagCode::BinBadVersion,
                     "unsupported TDTB version " + std::to_string(version));
    }
    throw_parse_error("unsupported TDTB version " + std::to_string(version));
  }
  version_ = static_cast<std::uint8_t>(version);
  pid_ = get_varint();
  if (version_ >= kTdtbVersionFramed) {
    const int codec_byte = next_byte();
    if (codec_byte == std::istream::traits_type::eof()) {
      if (diags_ != nullptr) {
        diags_->report(DiagSeverity::Fatal, DiagCode::BinTruncated,
                       "truncated binary trace (missing codec byte)");
      }
      throw_parse_error("truncated binary trace (missing codec byte)");
    }
    // Frames carry their own codec id; the header byte is advisory, so an
    // unknown value here is not an error.
    default_codec_ =
        codec_from_id(static_cast<std::uint8_t>(codec_byte)).value_or(
            Codec::None);
  }
}

void BinaryTraceReader::fail(DiagCode code, std::string message) {
  if (diags_ == nullptr || diags_->strict()) {
    throw_parse_error(std::move(message));
  }
  diags_->report(DiagSeverity::Error, code, message);
  throw RecoverEnd(std::move(message));
}

void BinaryTraceReader::frame_error(DiagCode code, std::string message) {
  if (diags_ == nullptr || diags_->strict()) {
    throw_parse_error(std::move(message));
  }
  diags_->report(DiagSeverity::Error, code, message);
  // Repair exploits frame isolation: the caller resumes at the next
  // frame. Skip ends the trace with every earlier frame salvaged.
  if (!diags_->repair()) throw RecoverEnd(std::move(message));
}

int BinaryTraceReader::next_byte() {
  const int byte = in_->get();
  if (byte != std::istream::traits_type::eof()) {
    ++bytes_read_;
    crc_.update_byte(static_cast<std::uint8_t>(byte));
  }
  return byte;
}

bool BinaryTraceReader::read_exact(char* dst, std::size_t len) {
  in_->read(dst, static_cast<std::streamsize>(len));
  const std::streamsize got = in_->gcount();
  if (got > 0) bytes_read_ += static_cast<std::uint64_t>(got);
  return got == static_cast<std::streamsize>(len);
}

std::uint64_t BinaryTraceReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (int n = 0; n < kMaxVarintBytes; ++n) {
    const int byte = next_byte();
    if (byte == std::istream::traits_type::eof()) {
      fail(DiagCode::BinTruncated, "truncated binary trace (eof inside varint)");
    }
    if (n == kMaxVarintBytes - 1 && (byte & 0x7F) > 1) {
      // The 10th byte may only contribute bit 63.
      fail(DiagCode::BinBadVarint, "varint overflows 64 bits in binary trace");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  fail(DiagCode::BinBadVarint, "overlong varint in binary trace (>10 bytes)");
}

std::uint64_t BinaryTraceReader::get_varint_max(std::uint64_t max_value,
                                                DiagCode code,
                                                const char* what) {
  const std::uint64_t v = get_varint();
  if (v > max_value) {
    fail(code, std::string(what) + " value " + std::to_string(v) +
                   " exceeds limit " + std::to_string(max_value) +
                   " in binary trace");
  }
  return v;
}

Symbol BinaryTraceReader::map_symbol(std::uint64_t file_id) {
  if (file_id >= symbol_map_.size() || symbol_map_[file_id].empty()) {
    fail(DiagCode::BinBadSymbol,
         "binary trace references undefined string id " +
             std::to_string(file_id));
  }
  return symbol_map_[file_id];
}

void BinaryTraceReader::check_footer() {
  if (version_ < 2) return;
  if (fault::FaultInjector::enabled() &&
      fault::should_fire(fault::Site::BinaryBadFooter)) [[unlikely]] {
    fail(DiagCode::BinBadFooter,
         "truncated binary trace (v2 footer missing or short)");
  }
  // The CRC covers everything through the end tag, which next_byte() has
  // already folded in; the footer itself is read outside the checksum.
  const std::uint32_t computed = crc_.value();
  char footer[kFooterSize];
  in_->read(footer, kFooterSize);
  if (in_->gcount() != static_cast<std::streamsize>(kFooterSize)) {
    fail(DiagCode::BinBadFooter,
         "truncated binary trace (v2 footer missing or short)");
  }
  const std::uint64_t count = get_le(footer, 8);
  const std::uint32_t stored = static_cast<std::uint32_t>(get_le(footer + 8, 4));
  if (count != record_count_) {
    fail(DiagCode::BinCountMismatch,
         "binary trace record count mismatch: footer says " +
             std::to_string(count) + ", decoded " +
             std::to_string(record_count_));
  }
  if (stored != computed) {
    fail(DiagCode::BinCrcMismatch,
         "binary trace checksum mismatch (bit corruption): footer crc32 " +
             std::to_string(stored) + ", computed " + std::to_string(computed));
  }
}

void BinaryTraceReader::check_container_footer() {
  if (fault::FaultInjector::enabled() &&
      fault::should_fire(fault::Site::BinaryBadFooter)) [[unlikely]] {
    fail(DiagCode::BinBadIndex,
         "truncated binary trace (container footer missing or short)");
  }
  // Everything after the end tag is index + footer; stream it in.
  std::string tail;
  char buf[4096];
  for (;;) {
    in_->read(buf, sizeof buf);
    const std::streamsize got = in_->gcount();
    if (got <= 0) break;
    bytes_read_ += static_cast<std::uint64_t>(got);
    tail.append(buf, static_cast<std::size_t>(got));
    if (!*in_) break;
  }
  if (tail.size() < kContainerFooterSize) {
    fail(DiagCode::BinBadIndex,
         "truncated binary trace (container footer missing or short)");
  }
  const char* f = tail.data() + tail.size() - kContainerFooterSize;
  if (std::string_view(f + 24, 4) != std::string_view(kIndexMagic, 4)) {
    fail(DiagCode::BinBadIndex,
         "container footer magic mismatch (expected TDTX)");
  }
  const std::uint64_t total = get_le(f, 8);
  const std::uint64_t frames = get_le(f + 8, 8);
  const std::uint64_t index_len = get_le(f + 16, 4);
  const std::uint32_t index_crc =
      static_cast<std::uint32_t>(get_le(f + 20, 4));
  if (index_len != tail.size() - kContainerFooterSize) {
    fail(DiagCode::BinBadIndex,
         "frame index length mismatch: footer says " +
             std::to_string(index_len) + " bytes, found " +
             std::to_string(tail.size() - kContainerFooterSize));
  }
  if (crc32(tail.data(), static_cast<std::size_t>(index_len)) != index_crc) {
    fail(DiagCode::BinBadIndex,
         "frame index checksum mismatch (bit corruption)");
  }
  if (frames != frames_read_) {
    fail(DiagCode::BinCountMismatch,
         "binary trace frame count mismatch: footer says " +
             std::to_string(frames) + ", decoded " +
             std::to_string(frames_read_));
  }
  if (total != record_count_) {
    fail(DiagCode::BinCountMismatch,
         "binary trace record count mismatch: footer says " +
             std::to_string(total) + ", decoded " +
             std::to_string(record_count_));
  }
}

bool BinaryTraceReader::next(TraceRecord& out) {
  if (version_ >= kTdtbVersionFramed) return next_v3(out);
  if (done_) return false;
  return next_v12(out);
}

bool BinaryTraceReader::next_v12(TraceRecord& out) {
  try {
    for (;;) {
      if (fault::FaultInjector::enabled()) [[unlikely]] {
        // Entry-boundary faults: a short read ends the stream mid-trace
        // (B003, prefix salvageable); a CRC flip folds a phantom byte
        // into the running checksum so the v2 footer check (B010) trips
        // exactly as it would after real bit corruption.
        if (fault::should_fire(fault::Site::BinaryShortRead)) {
          fail(DiagCode::BinTruncated,
               "truncated binary trace (missing end marker)");
        }
        if (fault::should_fire(fault::Site::BinaryCrcFlip)) {
          crc_.update_byte(0xA5);
        }
      }
      const int tag = next_byte();
      if (tag == std::istream::traits_type::eof()) {
        fail(DiagCode::BinTruncated,
             "truncated binary trace (missing end marker)");
      }
      if (tag == kTagEnd) {
        done_ = true;
        check_footer();
        return false;
      }
      if (tag == kTagString) {
        const std::uint64_t id =
            get_varint_max(kMaxSymbolId, DiagCode::BinFieldOverflow,
                           "string id");
        const std::uint64_t len = get_varint_max(
            kMaxStringLen, DiagCode::BinStringTooLong, "string length");
        std::string text(len, '\0');
        in_->read(text.data(), static_cast<std::streamsize>(len));
        if (in_->gcount() != static_cast<std::streamsize>(len)) {
          fail(DiagCode::BinTruncated, "truncated string in binary trace");
        }
        bytes_read_ += len;
        crc_.update(text.data(), len);
        if (id >= symbol_map_.size()) symbol_map_.resize(id + 1);
        symbol_map_[id] = ctx_->intern(text);
        continue;
      }
      if (tag != kTagRecord) {
        fail(DiagCode::BinBadTag, "unknown entry tag " + std::to_string(tag) +
                                      " in binary trace");
      }
      const int packed = next_byte();
      if (packed == std::istream::traits_type::eof()) {
        fail(DiagCode::BinTruncated, "truncated record in binary trace");
      }
      out = TraceRecord{};
      out.kind = static_cast<AccessKind>(packed & 0x7);
      out.scope = static_cast<VarScope>((packed >> 3) & 0x7);
      out.address = get_varint();
      out.size = static_cast<std::uint32_t>(get_varint_max(
          0xFFFFFFFFull, DiagCode::BinFieldOverflow, "access size"));
      out.function = map_symbol(get_varint_max(
          kMaxSymbolId, DiagCode::BinFieldOverflow, "function id"));
      out.frame = static_cast<std::uint16_t>(get_varint_max(
          0xFFFFull, DiagCode::BinFieldOverflow, "frame"));
      out.thread = static_cast<std::uint16_t>(get_varint_max(
          0xFFFFull, DiagCode::BinFieldOverflow, "thread"));
      if (out.scope != VarScope::Unknown) {
        out.var.base = map_symbol(get_varint_max(
            kMaxSymbolId, DiagCode::BinFieldOverflow, "variable id"));
        const std::uint64_t nsteps = get_varint_max(
            kMaxVarSteps, DiagCode::BinFieldOverflow, "step count");
        for (std::uint64_t i = 0; i < nsteps; ++i) {
          const int is_field = next_byte();
          if (is_field == std::istream::traits_type::eof()) {
            fail(DiagCode::BinTruncated, "truncated var steps in binary trace");
          }
          const std::uint64_t v =
              is_field != 0 ? get_varint_max(kMaxSymbolId,
                                             DiagCode::BinFieldOverflow,
                                             "field id")
                            : get_varint();
          out.var.steps.push_back(is_field != 0 ? VarStep::make_field(
                                                      map_symbol(v))
                                                : VarStep::make_index(v));
        }
      }
      ++record_count_;
      return true;
    }
  } catch (const RecoverEnd&) {
    // Diagnostic already reported; salvage the records decoded so far.
    done_ = true;
    return false;
  }
}

bool BinaryTraceReader::next_v3(TraceRecord& out) {
  for (;;) {
    if (pending_pos_ < pending_.size()) {
      out = std::move(pending_[pending_pos_++]);
      ++record_count_;
      return true;
    }
    if (done_) return false;
    try {
      const int tag = next_byte();
      if (tag == std::istream::traits_type::eof()) {
        fail(DiagCode::BinTruncated,
             "truncated binary trace (missing end marker)");
      }
      if (tag == kTagEnd) {
        done_ = true;
        check_container_footer();
        return false;
      }
      if (tag != kTagFrame) {
        fail(DiagCode::BinBadTag, "unknown entry tag " + std::to_string(tag) +
                                      " in binary trace");
      }
      if (!load_frame()) continue;  // frame dropped under Repair
    } catch (const RecoverEnd&) {
      // Diagnostic already reported; the loop serves whatever load_frame
      // salvaged into pending_, then ends the trace.
      done_ = true;
    }
  }
}

bool BinaryTraceReader::load_frame() {
  pending_.clear();
  pending_pos_ = 0;
  // Sample the frame-decode fault here, once per frame in frame order —
  // the parallel decoder pre-samples the same sequence on its publisher
  // thread, so injected schedules match at any job count.
  const bool injected = fault::FaultInjector::enabled() &&
                        fault::should_fire(fault::Site::FrameDecode);
  const std::uint64_t frame_no = frames_read_;
  const int codec_byte = next_byte();
  if (codec_byte == std::istream::traits_type::eof()) {
    fail(DiagCode::BinTruncated, "truncated frame header in binary trace");
  }
  const std::uint64_t records = get_varint_max(
      kMaxFrameRecords, DiagCode::BinFieldOverflow, "frame record count");
  const std::uint64_t usize = get_varint_max(
      kMaxFrameBytes, DiagCode::BinFieldOverflow, "frame payload size");
  const std::uint64_t csize = get_varint_max(
      kMaxFrameBytes, DiagCode::BinFieldOverflow, "frame stored size");
  char crcb[4];
  if (!read_exact(crcb, 4)) {
    fail(DiagCode::BinTruncated, "truncated frame header in binary trace");
  }
  const std::uint32_t want_crc = static_cast<std::uint32_t>(get_le(crcb, 4));
  // Pull the stored bytes in steps so a corrupt length cannot drive a
  // giant allocation before truncation is noticed.
  stored_.clear();
  std::uint64_t remaining = csize;
  while (remaining > 0) {
    const std::size_t step =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, 4u << 20));
    const std::size_t base = stored_.size();
    stored_.resize(base + step);
    if (!read_exact(stored_.data() + base, step)) {
      fail(DiagCode::BinTruncated, "truncated frame payload in binary trace");
    }
    remaining -= step;
  }
  ++frames_read_;
  compressed_bytes_ += csize;
  // Header parsed and payload in memory: everything below fails in
  // isolation, so frame_error() lets Repair resume at the next frame.
  if (injected) [[unlikely]] {
    frame_error(DiagCode::BinFrameCorrupt,
                "injected frame-decode fault: frame " +
                    std::to_string(frame_no) + " dropped");
    return false;
  }
  if (crc32(stored_.data(), stored_.size()) != want_crc) {
    frame_error(DiagCode::BinFrameCorrupt,
                "frame " + std::to_string(frame_no) +
                    " checksum mismatch (bit corruption)");
    return false;
  }
  const std::optional<Codec> codec =
      codec_from_id(static_cast<std::uint8_t>(codec_byte));
  if (!codec) {
    frame_error(DiagCode::BinBadCodec,
                "frame " + std::to_string(frame_no) + " names unknown codec id " +
                    std::to_string(codec_byte));
    return false;
  }
  std::string_view payload;
  if (*codec == Codec::None) {
    if (stored_.size() != usize) {
      frame_error(DiagCode::BinFrameCorrupt,
                  "frame " + std::to_string(frame_no) +
                      " stored size disagrees with payload size");
      return false;
    }
    payload = stored_;
  } else {
    if (!codec_available(*codec)) {
      frame_error(DiagCode::BinBadCodec,
                  "codec '" + std::string(codec_name(*codec)) +
                      "' unavailable in this process (shared library not "
                      "found or TDT_NO_CODEC set); cannot decode frame " +
                      std::to_string(frame_no));
      return false;
    }
    if (!codec_decompress(*codec, stored_, static_cast<std::size_t>(usize),
                          payload_)) {
      frame_error(DiagCode::BinFrameCorrupt,
                  "frame " + std::to_string(frame_no) +
                      " decompression failed (codec " +
                      std::string(codec_name(*codec)) + ")");
      return false;
    }
    payload = payload_;
  }
  decode_frame_payload(payload, frame_);
  if (!frame_.ok) {
    if (diags_ == nullptr || diags_->strict()) {
      throw_parse_error(std::move(frame_.error));
    }
    diags_->report(DiagSeverity::Error, frame_.error_code, frame_.error);
    if (diags_->repair()) return false;  // drop the frame, resume
    // Skip: salvage the decoded prefix of the bad frame, then end.
    bind_frame(*ctx_, frame_, symbol_map_);
    pending_ = std::move(frame_.records);
    pending_pos_ = 0;
    done_ = true;
    return true;
  }
  if (frame_.records.size() != records) {
    frame_error(DiagCode::BinCountMismatch,
                "frame " + std::to_string(frame_no) +
                    " record count mismatch: header says " +
                    std::to_string(records) + ", decoded " +
                    std::to_string(frame_.records.size()));
    return false;
  }
  bind_frame(*ctx_, frame_, symbol_map_);
  pending_ = std::move(frame_.records);
  pending_pos_ = 0;
  return true;
}

// --- container probe --------------------------------------------------------

std::optional<TdtbFrameInfo> parse_frame_header(
    std::string_view blob, std::uint64_t offset,
    std::uint64_t* payload_offset) noexcept {
  if (offset >= blob.size()) return std::nullopt;
  const char* p = blob.data() + offset;
  const char* end = blob.data() + blob.size();
  if (static_cast<std::uint8_t>(*p++) != kTagFrame) return std::nullopt;
  if (p == end) return std::nullopt;
  TdtbFrameInfo info;
  info.offset = offset;
  info.codec = static_cast<std::uint8_t>(*p++);
  if (!mem_varint(p, end, info.records) || info.records > kMaxFrameRecords) {
    return std::nullopt;
  }
  if (!mem_varint(p, end, info.usize) || info.usize > kMaxFrameBytes) {
    return std::nullopt;
  }
  if (!mem_varint(p, end, info.csize) || info.csize > kMaxFrameBytes) {
    return std::nullopt;
  }
  if (end - p < 4) return std::nullopt;
  info.crc = static_cast<std::uint32_t>(get_le(p, 4));
  p += 4;
  if (static_cast<std::uint64_t>(end - p) < info.csize) return std::nullopt;
  if (payload_offset != nullptr) {
    *payload_offset = static_cast<std::uint64_t>(p - blob.data());
  }
  return info;
}

std::optional<TdtbContainerInfo> probe_tdtb(std::string_view blob) noexcept {
  if (blob.size() < 5 ||
      std::string_view(blob.data(), 4) != std::string_view(kMagic, 4)) {
    return std::nullopt;
  }
  TdtbContainerInfo info;
  info.version = static_cast<std::uint8_t>(blob[4]);
  info.file_bytes = blob.size();
  if (info.version < 1 || info.version > kTdtbVersionFramed) {
    return std::nullopt;
  }
  const char* p = blob.data() + 5;
  const char* end = blob.data() + blob.size();
  if (!mem_varint(p, end, info.pid)) return std::nullopt;
  if (info.version < kTdtbVersionFramed) {
    // v2 carries its record count in the 12-byte footer.
    const std::size_t header = static_cast<std::size_t>(p - blob.data());
    if (info.version == 2 && blob.size() >= header + 1 + kFooterSize) {
      info.total_records = get_le(blob.data() + blob.size() - kFooterSize, 8);
    }
    return info;
  }
  if (p == end) return std::nullopt;
  info.default_codec = static_cast<std::uint8_t>(*p++);
  // From here every validation failure returns `info` with has_index
  // still false: callers fall back to the sequential reader, which
  // produces the precise diagnostic under the chosen error policy.
  const std::uint64_t body_start = static_cast<std::uint64_t>(p - blob.data());
  if (blob.size() < body_start + 1 + kContainerFooterSize) return info;
  const char* f = blob.data() + blob.size() - kContainerFooterSize;
  if (std::string_view(f + 24, 4) != std::string_view(kIndexMagic, 4)) {
    return info;
  }
  const std::uint64_t total = get_le(f, 8);
  const std::uint64_t frames = get_le(f + 8, 8);
  const std::uint64_t index_len = get_le(f + 16, 4);
  const std::uint32_t index_crc =
      static_cast<std::uint32_t>(get_le(f + 20, 4));
  if (index_len > blob.size() - kContainerFooterSize) return info;
  const std::uint64_t index_start =
      blob.size() - kContainerFooterSize - index_len;
  if (index_start < body_start + 1) return info;  // room for the end tag
  if (crc32(blob.data() + index_start,
            static_cast<std::size_t>(index_len)) != index_crc) {
    return info;
  }
  const char* ip = blob.data() + index_start;
  const char* iend = ip + index_len;
  std::uint64_t prev_end = body_start;
  std::uint64_t record_sum = 0;
  while (ip != iend) {
    TdtbFrameInfo fi;
    if (!mem_varint(ip, iend, fi.offset) ||
        !mem_varint(ip, iend, fi.records) ||
        !mem_varint(ip, iend, fi.usize) || !mem_varint(ip, iend, fi.csize) ||
        iend - ip < 5) {
      info.frames.clear();
      return info;
    }
    fi.crc = static_cast<std::uint32_t>(get_le(ip, 4));
    ip += 4;
    fi.codec = static_cast<std::uint8_t>(*ip++);
    // Cross-check the index entry against the frame header it points at
    // and require frames to tile the body left to right.
    std::uint64_t payload_off = 0;
    const std::optional<TdtbFrameInfo> parsed =
        parse_frame_header(blob, fi.offset, &payload_off);
    if (fi.offset < prev_end || !parsed || parsed->records != fi.records ||
        parsed->usize != fi.usize || parsed->csize != fi.csize ||
        parsed->crc != fi.crc || parsed->codec != fi.codec ||
        payload_off + fi.csize >= index_start) {
      info.frames.clear();
      return info;
    }
    prev_end = payload_off + fi.csize;
    record_sum += fi.records;
    info.frames.push_back(fi);
  }
  if (info.frames.size() != frames || record_sum != total) {
    info.frames.clear();
    return info;
  }
  info.total_records = total;
  info.has_index = true;
  return info;
}

std::optional<TdtbContainerInfo> probe_tdtb_file(
    const std::string& path) noexcept {
  try {
    const std::unique_ptr<FileView> view = FileView::open(path);
    if (view == nullptr) return std::nullopt;
    return probe_tdtb(view->bytes());
  } catch (...) {
    return std::nullopt;
  }
}

// --- sink + whole-trace helpers ---------------------------------------------

void BinaryTraceSink::check_health() {
  if (fault::FaultInjector::enabled() &&
      fault::should_fire(fault::Site::WriterFlush)) [[unlikely]] {
    out_->setstate(std::ios::failbit);
  }
  if (!*out_) {
    throw Error(ErrorKind::Io,
                "binary trace write failed (disk full or closed stream?)");
  }
}

std::vector<char> write_binary_trace(const TraceContext& ctx,
                                     std::span<const TraceRecord> records,
                                     std::uint64_t pid, std::uint8_t version) {
  return write_binary_trace(ctx, records, pid,
                            BinaryWriterOptions{.version = version});
}

std::vector<char> write_binary_trace(const TraceContext& ctx,
                                     std::span<const TraceRecord> records,
                                     std::uint64_t pid,
                                     const BinaryWriterOptions& options) {
  std::ostringstream out(std::ios::binary);
  BinaryTraceWriter w(ctx, out, pid, options);
  for (const TraceRecord& rec : records) w.write(rec);
  w.finish();
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

std::vector<TraceRecord> read_binary_trace(TraceContext& ctx,
                                           std::span<const char> blob,
                                           std::uint64_t* pid,
                                           DiagEngine* diags) {
  std::istringstream in(std::string(blob.data(), blob.size()),
                        std::ios::binary);
  BinaryTraceReader r(ctx, in, diags);
  if (pid != nullptr) *pid = r.pid();
  std::vector<TraceRecord> records;
  TraceRecord rec;
  while (r.next(rec)) records.push_back(rec);
  return records;
}

}  // namespace tdt::trace
