// Writer emitting the Gleipnir textual trace format; the transformed
// trace (`transformed_trace.out` in the paper) is produced through this.
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace tdt::trace {

/// Streaming trace writer.
class GleipnirWriter {
 public:
  GleipnirWriter(const TraceContext& ctx, std::ostream& out);

  /// Emits `START PID <pid>`.
  void start(std::uint64_t pid);

  /// Emits one record line.
  void write(const TraceRecord& rec);

  /// Emits `END PID <pid>`.
  void end(std::uint64_t pid);

  /// Flushes and throws Error{Io} when the underlying stream has failed
  /// (ENOSPC, closed pipe, ...) or when fault site writer.flush fires.
  /// ostream writes fail silently by default; call this at flush points
  /// so a full disk surfaces as a diagnostic, not a truncated trace.
  void check_health();

  /// Number of record lines written so far.
  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return count_;
  }

 private:
  const TraceContext* ctx_;
  std::ostream* out_;
  std::uint64_t count_ = 0;
};

/// TraceSink adapter around GleipnirWriter so a streaming pipeline
/// (reader -> transformer -> ...) can emit a trace file without ever
/// materializing the whole record vector. START is written up front,
/// END on on_end().
class WriterSink final : public TraceSink {
 public:
  WriterSink(const TraceContext& ctx, std::ostream& out, std::uint64_t pid = 0)
      : writer_(ctx, out), pid_(pid) {
    writer_.start(pid_);
  }

  void on_record(const TraceRecord& rec) override { writer_.write(rec); }
  void push_batch(std::span<const TraceRecord> batch) override {
    for (const TraceRecord& rec : batch) writer_.write(rec);
    writer_.check_health();  // batch-granular ENOSPC / fault detection
  }
  void on_end() override {
    writer_.end(pid_);
    writer_.check_health();
  }

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return writer_.records_written();
  }

 private:
  GleipnirWriter writer_;
  std::uint64_t pid_;
};

/// Renders a whole trace (with START/END markers) to a string.
std::string write_trace_string(const TraceContext& ctx,
                               std::span<const TraceRecord> records,
                               std::uint64_t pid = 0);

/// Writes a whole trace to a file. Throws Error{Io} on failure.
void write_trace_file(const TraceContext& ctx,
                      std::span<const TraceRecord> records,
                      const std::string& path, std::uint64_t pid = 0);

}  // namespace tdt::trace
