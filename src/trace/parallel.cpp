#include "trace/parallel.hpp"

#include <algorithm>
#include <cstdio>

namespace tdt::trace {

double PipelineCounters::records_per_second() const noexcept {
  return seconds > 0 ? static_cast<double>(records) / seconds : 0.0;
}

std::string PipelineCounters::summary() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "pipeline: %llu records in %llu batches, %.3f s (%.2f Mrec/s),"
                " %zu worker%s (batch %zu, queue depth %zu)\n",
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(batches), seconds,
                records_per_second() / 1e6, jobs, jobs == 1 ? "" : "s",
                batch_records, queue_batches);
  std::string out = line;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerCounters& w = workers[i];
    const double avg_occupancy =
        w.batches > 0 ? static_cast<double>(w.occupancy_sum) /
                            static_cast<double>(w.batches)
                      : 0.0;
    std::snprintf(line, sizeof(line),
                  "  worker %zu (%zu sink%s): %llu records, "
                  "%llu backpressure stalls, %llu idle waits, "
                  "queue avg %.1f peak %llu\n",
                  i, w.sinks, w.sinks == 1 ? "" : "s",
                  static_cast<unsigned long long>(w.records),
                  static_cast<unsigned long long>(w.push_stalls),
                  static_cast<unsigned long long>(w.pop_stalls), avg_occupancy,
                  static_cast<unsigned long long>(w.peak_occupancy));
    out += line;
  }
  return out;
}

ParallelFanOut::ParallelFanOut(std::vector<TraceSink*> sinks,
                               ParallelOptions options)
    : sinks_(std::move(sinks)),
      options_(options),
      start_(std::chrono::steady_clock::now()) {
  if (options_.batch_records == 0) options_.batch_records = 1;
  if (options_.queue_batches == 0) options_.queue_batches = 1;
  pending_.reserve(options_.batch_records);

  const std::size_t jobs = std::min(options_.jobs, sinks_.size());
  counters_.jobs = jobs;
  counters_.batch_records = options_.batch_records;
  counters_.queue_batches = options_.queue_batches;
  if (jobs == 0) return;
  workers_.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers_.push_back(std::make_unique<Worker>(options_.queue_batches));
  }
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    workers_[i % jobs]->sinks.push_back(sinks_[i]);
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, &w = *worker] { worker_main(w); });
  }
}

ParallelFanOut::~ParallelFanOut() {
  if (finished_) return;
  for (auto& worker : workers_) worker->queue.abort();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point begin,
                         std::chrono::steady_clock::time_point end) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
          .count());
}

}  // namespace

void ParallelFanOut::worker_main(Worker& worker) {
  const bool timed = options_.registry != nullptr;
  try {
    while (auto batch = worker.queue.pop()) {
      const RecordBatch& records = **batch;
      if (timed) {
        const auto begin = std::chrono::steady_clock::now();
        if (worker.batches == 0) worker.first_batch = begin;
        for (TraceSink* sink : worker.sinks) sink->push_batch(records);
        worker.last_batch = std::chrono::steady_clock::now();
        worker.batch_latency_us.record(elapsed_us(begin, worker.last_batch));
      } else {
        for (TraceSink* sink : worker.sinks) sink->push_batch(records);
      }
      worker.records += records.size();
      ++worker.batches;
    }
    if (worker.error == nullptr) {
      for (TraceSink* sink : worker.sinks) sink->on_end();
    }
  } catch (...) {
    worker.error = std::current_exception();
    // Unblock the reader: its pushes to this queue now return false.
    worker.queue.abort();
  }
}

void ParallelFanOut::publish(BatchPtr batch) {
  for (auto& worker : workers_) worker->queue.push(batch);
}

void ParallelFanOut::flush_pending() {
  if (pending_.empty()) return;
  counters_.records += pending_.size();
  ++counters_.batches;
  if (workers_.empty()) {
    if (options_.registry != nullptr) {
      const auto begin = std::chrono::steady_clock::now();
      for (TraceSink* sink : sinks_) sink->push_batch(pending_);
      inline_latency_.record(
          elapsed_us(begin, std::chrono::steady_clock::now()));
    } else {
      for (TraceSink* sink : sinks_) sink->push_batch(pending_);
    }
    pending_.clear();
    return;
  }
  RecordBatch next;
  next.reserve(options_.batch_records);
  next.swap(pending_);
  publish(std::make_shared<const RecordBatch>(std::move(next)));
}

void ParallelFanOut::on_record(const TraceRecord& rec) {
  pending_.push_back(rec);
  if (pending_.size() >= options_.batch_records) flush_pending();
}

void ParallelFanOut::push_batch(std::span<const TraceRecord> batch) {
  // Fast path: an already-full batch with nothing pending is forwarded
  // (inline) or published (parallel) without restaging record-by-record.
  if (pending_.empty() && batch.size() >= options_.batch_records) {
    counters_.records += batch.size();
    ++counters_.batches;
    if (workers_.empty()) {
      if (options_.registry != nullptr) {
        const auto begin = std::chrono::steady_clock::now();
        for (TraceSink* sink : sinks_) sink->push_batch(batch);
        inline_latency_.record(
            elapsed_us(begin, std::chrono::steady_clock::now()));
      } else {
        for (TraceSink* sink : sinks_) sink->push_batch(batch);
      }
    } else {
      publish(std::make_shared<const RecordBatch>(batch.begin(), batch.end()));
    }
    return;
  }
  for (const TraceRecord& rec : batch) on_record(rec);
}

void ParallelFanOut::on_end() {
  if (finished_) return;
  finished_ = true;
  flush_pending();
  if (workers_.empty()) {
    for (TraceSink* sink : sinks_) sink->on_end();
  } else {
    for (auto& worker : workers_) worker->queue.close();
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }
  counters_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  counters_.workers.clear();
  counters_.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    const auto q = worker->queue.counters();
    WorkerCounters wc;
    wc.sinks = worker->sinks.size();
    wc.records = worker->records;
    wc.batches = worker->batches;
    wc.push_stalls = q.push_stalls;
    wc.pop_stalls = q.pop_stalls;
    wc.occupancy_sum = q.occupancy_sum;
    wc.peak_occupancy = q.peak_occupancy;
    wc.batch_latency_us = worker->batch_latency_us;
    counters_.workers.push_back(wc);
  }
  if (obs::Registry* reg = options_.registry) {
    reg->counter("pipeline.records").add(counters_.records);
    reg->counter("pipeline.batches").add(counters_.batches);
    reg->gauge("pipeline.jobs").set(static_cast<double>(counters_.jobs));
    reg->gauge("pipeline.records_per_second")
        .set(counters_.records_per_second());
    obs::Histogram& latency = reg->histogram("pipeline.batch_latency_us");
    if (!inline_latency_.empty()) latency.merge(inline_latency_);
    std::uint64_t push_stalls = 0;
    std::uint64_t pop_stalls = 0;
    std::uint64_t occupancy_sum = 0;
    std::uint64_t occupancy_peak = 0;
    for (std::size_t i = 0; i < counters_.workers.size(); ++i) {
      const WorkerCounters& wc = counters_.workers[i];
      if (!wc.batch_latency_us.empty()) latency.merge(wc.batch_latency_us);
      push_stalls += wc.push_stalls;
      pop_stalls += wc.pop_stalls;
      occupancy_sum += wc.occupancy_sum;
      occupancy_peak = std::max(occupancy_peak, wc.peak_occupancy);
      const Worker& worker = *workers_[i];
      if (worker.batches > 0) {
        reg->add_span("worker " + std::to_string(i), worker.first_batch,
                      worker.last_batch, static_cast<std::uint32_t>(i + 1));
      }
    }
    reg->counter("pipeline.backpressure_stalls").add(push_stalls);
    reg->counter("pipeline.idle_waits").add(pop_stalls);
    const std::uint64_t pushes = counters_.batches * counters_.workers.size();
    reg->gauge("pipeline.queue_avg_occupancy")
        .set(pushes > 0 ? static_cast<double>(occupancy_sum) /
                              static_cast<double>(pushes)
                        : 0.0);
    reg->gauge("pipeline.queue_peak_occupancy")
        .set(static_cast<double>(occupancy_peak));
  }
  for (const auto& worker : workers_) {
    if (worker->error) std::rethrow_exception(worker->error);
  }
}

}  // namespace tdt::trace
