#include "trace/parallel.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace tdt::trace {

double PipelineCounters::records_per_second() const noexcept {
  return seconds > 0 ? static_cast<double>(records) / seconds : 0.0;
}

std::string PipelineCounters::summary() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "pipeline: %llu records in %llu batches, %.3f s (%.2f Mrec/s),"
                " %zu worker%s (batch %zu, queue depth %zu)\n",
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(batches), seconds,
                records_per_second() / 1e6, jobs, jobs == 1 ? "" : "s",
                batch_records, queue_batches);
  std::string out = line;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerCounters& w = workers[i];
    const double avg_occupancy =
        w.batches > 0 ? static_cast<double>(w.occupancy_sum) /
                            static_cast<double>(w.batches)
                      : 0.0;
    std::snprintf(line, sizeof(line),
                  "  worker %zu (%zu sink%s): %llu records, "
                  "%llu backpressure stalls, %llu idle waits, "
                  "queue avg %.1f peak %llu\n",
                  i, w.sinks, w.sinks == 1 ? "" : "s",
                  static_cast<unsigned long long>(w.records),
                  static_cast<unsigned long long>(w.push_stalls),
                  static_cast<unsigned long long>(w.pop_stalls), avg_occupancy,
                  static_cast<unsigned long long>(w.peak_occupancy));
    out += line;
  }
  if (stalled_workers != 0 || recovered_workers != 0 || lost_workers != 0 ||
      replay_spilled) {
    std::snprintf(line, sizeof(line),
                  "  supervision: %zu stalled, %zu recovered, %zu lost, "
                  "%llu batches replayed%s\n",
                  stalled_workers, recovered_workers, lost_workers,
                  static_cast<unsigned long long>(replayed_batches),
                  replay_spilled ? " (replay buffer spilled)" : "");
    out += line;
  }
  return out;
}

ParallelFanOut::ParallelFanOut(std::vector<TraceSink*> sinks,
                               ParallelOptions options)
    : sinks_(std::move(sinks)),
      options_(options),
      start_(std::chrono::steady_clock::now()) {
  if (options_.batch_records == 0) options_.batch_records = 1;
  if (options_.queue_batches == 0) options_.queue_batches = 1;
  pending_.reserve(options_.batch_records);

  const std::size_t jobs = std::min(options_.jobs, sinks_.size());
  counters_.jobs = jobs;
  counters_.batch_records = options_.batch_records;
  counters_.queue_batches = options_.queue_batches;
  counters_.worker_timeout = options_.worker_timeout;
  if (jobs == 0) return;
  workers_.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers_.push_back(std::make_unique<Worker>(options_.queue_batches));
  }
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    workers_[i % jobs]->sinks.push_back(sinks_[i]);
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, &w = *worker] { worker_main(w); });
  }
  if (supervised()) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

ParallelFanOut::~ParallelFanOut() {
  if (!finished_) {
    // Error unwinding: tear the pipeline down without draining.
    if (supervised()) fault::FaultInjector::release_stalls();
    for (auto& worker : workers_) worker->queue.abort();
  }
  if (watchdog_.joinable()) {
    {
      std::lock_guard lock(sup_mu_);
      watchdog_stop_ = true;
    }
    sup_cv_.notify_all();
    watchdog_.join();
  }
  for (auto& worker : workers_) {
    if (worker->abandoned) {
      // The wedged thread may still touch its Worker (heartbeat, queue);
      // leak the struct deliberately rather than free it under a live
      // thread. Only reachable after a real (non-injected) wedge, and
      // the process is about to exit 2 anyway.
      static_cast<void>(worker.release());
      continue;
    }
    if (worker->thread.joinable()) worker->thread.join();
  }
  drop_replay();
}

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point begin,
                         std::chrono::steady_clock::time_point end) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
          .count());
}

/// All sink deliveries funnel through here so the sink.push-batch fault
/// site covers the inline, worker, and fast-forward paths alike.
void deliver_batch(TraceSink* sink, std::span<const TraceRecord> records) {
  if (fault::FaultInjector::enabled() &&
      fault::should_fire(fault::Site::SinkPushBatch)) [[unlikely]] {
    throw_io_error("sink rejected batch (injected fault)");
  }
  sink->push_batch(records);
}

}  // namespace

void ParallelFanOut::worker_main(Worker& worker) {
  const bool timed = options_.registry != nullptr;
  const bool sup = supervised();
  const auto beat = [&] {
    if (sup) {
      worker.heartbeat_us.store(
          elapsed_us(start_, std::chrono::steady_clock::now()),
          std::memory_order_release);
    }
  };
  beat();
  bool premature = false;
  try {
    while (auto batch = worker.queue.pop()) {
      beat();
      if (sup && worker.failed.load(std::memory_order_acquire)) {
        break;  // the watchdog already reassigned this shard
      }
      if (fault::FaultInjector::enabled()) [[unlikely]] {
        // Worker-body faults fire at batch boundaries, so `completed` is
        // exact and recovery replays precisely the undelivered suffix.
        if (fault::should_fire(fault::Site::WorkerThrow)) {
          throw Error(ErrorKind::Internal,
                      "worker thread failure (injected fault)");
        }
        if (fault::should_fire(fault::Site::WorkerExit)) {
          premature = true;
          break;
        }
        if (fault::maybe_stall() &&
            worker.failed.load(std::memory_order_acquire)) {
          break;  // stalled past the watchdog; batch now owed to replay
        }
      }
      const RecordBatch& records = **batch;
      if (timed) {
        const auto begin = std::chrono::steady_clock::now();
        if (worker.batches == 0) worker.first_batch = begin;
        for (TraceSink* sink : worker.sinks) deliver_batch(sink, records);
        worker.last_batch = std::chrono::steady_clock::now();
        worker.batch_latency_us.record(elapsed_us(begin, worker.last_batch));
      } else {
        for (TraceSink* sink : worker.sinks) deliver_batch(sink, records);
      }
      worker.records += records.size();
      ++worker.batches;
      worker.completed.store(worker.batches, std::memory_order_release);
      beat();
    }
    if (premature) {
      worker.error = std::make_exception_ptr(Error(
          ErrorKind::Internal, "worker exited prematurely (injected fault)"));
      worker.queue.abort();
    } else if (!worker.failed.load(std::memory_order_acquire)) {
      for (TraceSink* sink : worker.sinks) sink->on_end();
    }
    // A failed (watchdog-flagged) worker must not finish its sinks:
    // supervised_join() replays the missed batches and ends them.
  } catch (...) {
    worker.error = std::current_exception();
    // Unblock the reader: its pushes to this queue now return false.
    worker.queue.abort();
  }
  worker.done.store(true, std::memory_order_release);
  if (sup) {
    { std::lock_guard lock(sup_mu_); }  // pair with the waiters' predicates
    sup_cv_.notify_all();
  }
}

void ParallelFanOut::watchdog_main() {
  const std::uint64_t timeout_us =
      static_cast<std::uint64_t>(options_.worker_timeout * 1e6);
  // Poll at a quarter of the timeout, clamped to [1, 100] ms: detection
  // within ~1.25x the configured timeout, negligible idle cost.
  const auto poll = std::chrono::milliseconds(std::clamp<std::int64_t>(
      static_cast<std::int64_t>(options_.worker_timeout * 250), 1, 100));
  std::vector<obs::Gauge*> gauges;
  if (options_.registry != nullptr) {
    gauges.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      gauges.push_back(&options_.registry->gauge(
          "pipeline.worker" + std::to_string(i) + ".heartbeat_us"));
    }
  }
  std::unique_lock lock(sup_mu_);
  while (!watchdog_stop_) {
    sup_cv_.wait_for(lock, poll);
    if (watchdog_stop_) break;
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t now_us = elapsed_us(start_, now);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      const std::uint64_t hb = w.heartbeat_us.load(std::memory_order_acquire);
      if (!gauges.empty()) gauges[i]->set(static_cast<double>(hb));
      if (w.done.load(std::memory_order_acquire) ||
          w.failed.load(std::memory_order_acquire)) {
        continue;
      }
      // Only a worker that holds work can be stalled; one blocked on an
      // empty queue is merely starved (the reader is the slow side).
      const bool in_flight =
          w.queue.counters().pops >
          w.completed.load(std::memory_order_acquire);
      if (!in_flight && w.queue.size() == 0) continue;
      if (now_us <= hb || now_us - hb < timeout_us) continue;
      w.failed.store(true, std::memory_order_release);
      w.failed_at = now;
      // Abort (not close): the reader must never block pushing to a dead
      // shard, and whatever is queued will come from the replay buffer.
      w.queue.abort();
      fault::FaultInjector::release_stalls();
    }
  }
}

void ParallelFanOut::supervised_join() {
  // Give a flagged worker this long to notice and exit before declaring
  // its thread wedged beyond recovery.
  const auto grace =
      std::chrono::duration<double>(std::max(options_.worker_timeout, 0.5));
  {
    std::unique_lock lock(sup_mu_);
    for (;;) {
      bool settled = true;
      const auto now = std::chrono::steady_clock::now();
      for (auto& wp : workers_) {
        Worker& w = *wp;
        if (w.done.load(std::memory_order_acquire) || w.abandoned) continue;
        if (w.failed.load(std::memory_order_acquire) &&
            now - w.failed_at > grace) {
          w.abandoned = true;
          continue;
        }
        settled = false;
      }
      if (settled) break;
      sup_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
    watchdog_stop_ = true;
  }
  sup_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  for (auto& wp : workers_) {
    Worker& w = *wp;
    if (w.abandoned) {
      w.thread.detach();
      continue;
    }
    if (w.thread.joinable()) w.thread.join();
  }
  // Recovery: re-simulate each failed worker's missed suffix sequentially
  // into its own sinks. Threads are joined, so worker state is safe, and
  // batches are replayed in publish order — the recovered sinks see the
  // exact record stream a clean run would have, hence bit-identity.
  for (auto& wp : workers_) {
    Worker& w = *wp;
    if (w.failed.load(std::memory_order_relaxed)) ++counters_.stalled_workers;
    const bool needs_recovery =
        w.failed.load(std::memory_order_relaxed) || w.error != nullptr;
    if (!needs_recovery) continue;
    if (w.abandoned || replay_spilled_) {
      ++counters_.lost_workers;
      if (w.error == nullptr) {
        w.error = std::make_exception_ptr(Error(
            ErrorKind::Internal,
            w.abandoned
                ? "worker thread wedged past the grace period; results lost"
                : "worker failed after the replay buffer was spilled "
                  "(--max-memory); results lost"));
      }
      continue;
    }
    const std::uint64_t done_batches =
        w.completed.load(std::memory_order_relaxed);
    // Replay bypasses the sink.push-batch fault site deliberately: the
    // recovery path is the fallback of last resort, not a fault target.
    for (std::size_t b = done_batches; b < replay_.size(); ++b) {
      const RecordBatch& records = *replay_[b];
      for (TraceSink* sink : w.sinks) sink->push_batch(records);
      w.records += records.size();
      ++w.batches;
      ++counters_.replayed_batches;
    }
    for (TraceSink* sink : w.sinks) sink->on_end();
    w.recovered = true;
    w.error = nullptr;
    ++counters_.recovered_workers;
  }
  counters_.replay_spilled = replay_spilled_;
  drop_replay();
}

void ParallelFanOut::drop_replay() noexcept {
  if (options_.memory != nullptr && replay_charged_ != 0) {
    options_.memory->release(replay_charged_);
  }
  replay_charged_ = 0;
  replay_.clear();
  replay_.shrink_to_fit();
}

void ParallelFanOut::publish(BatchPtr batch) {
  if (supervised() && !replay_spilled_) {
    const std::uint64_t bytes =
        batch->size() * sizeof(TraceRecord) + sizeof(RecordBatch);
    if (options_.memory == nullptr || options_.memory->try_charge(bytes)) {
      replay_.push_back(batch);
      replay_charged_ += bytes;
    } else {
      // Spill: shed the retention capability (recovery becomes
      // unavailable for later failures) instead of failing the run.
      drop_replay();
      replay_spilled_ = true;
    }
  }
  for (auto& worker : workers_) worker->queue.push(batch);
}

void ParallelFanOut::flush_pending() {
  if (pending_.empty()) return;
  counters_.records += pending_.size();
  ++counters_.batches;
  if (workers_.empty()) {
    if (options_.registry != nullptr) {
      const auto begin = std::chrono::steady_clock::now();
      for (TraceSink* sink : sinks_) deliver_batch(sink, pending_);
      inline_latency_.record(
          elapsed_us(begin, std::chrono::steady_clock::now()));
    } else {
      for (TraceSink* sink : sinks_) deliver_batch(sink, pending_);
    }
    pending_.clear();
    return;
  }
  RecordBatch next;
  next.reserve(options_.batch_records);
  next.swap(pending_);
  publish(std::make_shared<const RecordBatch>(std::move(next)));
}

void ParallelFanOut::on_record(const TraceRecord& rec) {
  pending_.push_back(rec);
  if (pending_.size() >= options_.batch_records) flush_pending();
}

void ParallelFanOut::push_batch(std::span<const TraceRecord> batch) {
  // Fast path: an already-full batch with nothing pending is forwarded
  // (inline) or published (parallel) without restaging record-by-record.
  if (pending_.empty() && batch.size() >= options_.batch_records) {
    counters_.records += batch.size();
    ++counters_.batches;
    if (workers_.empty()) {
      if (options_.registry != nullptr) {
        const auto begin = std::chrono::steady_clock::now();
        for (TraceSink* sink : sinks_) deliver_batch(sink, batch);
        inline_latency_.record(
            elapsed_us(begin, std::chrono::steady_clock::now()));
      } else {
        for (TraceSink* sink : sinks_) deliver_batch(sink, batch);
      }
    } else {
      publish(std::make_shared<const RecordBatch>(batch.begin(), batch.end()));
    }
    return;
  }
  for (const TraceRecord& rec : batch) on_record(rec);
}

void ParallelFanOut::push_batch_owned(std::vector<TraceRecord>&& batch) {
  // Same staging policy as push_batch, but a full owned batch becomes
  // the published RecordBatch directly — no copy into a fresh vector.
  if (pending_.empty() && batch.size() >= options_.batch_records &&
      !workers_.empty()) {
    counters_.records += batch.size();
    ++counters_.batches;
    publish(std::make_shared<const RecordBatch>(std::move(batch)));
    return;
  }
  push_batch(batch);
}

void ParallelFanOut::on_end() {
  if (finished_) return;
  finished_ = true;
  flush_pending();
  if (workers_.empty()) {
    for (TraceSink* sink : sinks_) sink->on_end();
  } else {
    for (auto& worker : workers_) worker->queue.close();
    if (supervised()) {
      supervised_join();
    } else {
      for (auto& worker : workers_) {
        if (worker->thread.joinable()) worker->thread.join();
      }
    }
  }
  counters_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  counters_.workers.clear();
  counters_.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    const auto q = worker->queue.counters();
    WorkerCounters wc;
    wc.sinks = worker->sinks.size();
    if (worker->abandoned) {
      // The wedged thread still owns the non-atomic stats; report only
      // what the atomics say.
      wc.batches = worker->completed.load(std::memory_order_relaxed);
    } else {
      wc.records = worker->records;
      wc.batches = worker->batches;
      wc.batch_latency_us = worker->batch_latency_us;
    }
    wc.push_stalls = q.push_stalls;
    wc.pop_stalls = q.pop_stalls;
    wc.occupancy_sum = q.occupancy_sum;
    wc.peak_occupancy = q.peak_occupancy;
    counters_.workers.push_back(wc);
  }
  if (obs::Registry* reg = options_.registry) {
    reg->counter("pipeline.records").add(counters_.records);
    reg->counter("pipeline.batches").add(counters_.batches);
    reg->gauge("pipeline.jobs").set(static_cast<double>(counters_.jobs));
    reg->gauge("pipeline.records_per_second")
        .set(counters_.records_per_second());
    obs::Histogram& latency = reg->histogram("pipeline.batch_latency_us");
    if (!inline_latency_.empty()) latency.merge(inline_latency_);
    std::uint64_t push_stalls = 0;
    std::uint64_t pop_stalls = 0;
    std::uint64_t occupancy_sum = 0;
    std::uint64_t occupancy_peak = 0;
    for (std::size_t i = 0; i < counters_.workers.size(); ++i) {
      const WorkerCounters& wc = counters_.workers[i];
      if (!wc.batch_latency_us.empty()) latency.merge(wc.batch_latency_us);
      push_stalls += wc.push_stalls;
      pop_stalls += wc.pop_stalls;
      occupancy_sum += wc.occupancy_sum;
      occupancy_peak = std::max(occupancy_peak, wc.peak_occupancy);
      const Worker& worker = *workers_[i];
      if (!worker.abandoned && worker.batches > 0) {
        reg->add_span("worker " + std::to_string(i), worker.first_batch,
                      worker.last_batch, static_cast<std::uint32_t>(i + 1));
      }
    }
    reg->counter("pipeline.backpressure_stalls").add(push_stalls);
    reg->counter("pipeline.idle_waits").add(pop_stalls);
    const std::uint64_t pushes = counters_.batches * counters_.workers.size();
    reg->gauge("pipeline.queue_avg_occupancy")
        .set(pushes > 0 ? static_cast<double>(occupancy_sum) /
                              static_cast<double>(pushes)
                        : 0.0);
    reg->gauge("pipeline.queue_peak_occupancy")
        .set(static_cast<double>(occupancy_peak));
    if (supervised()) {
      reg->counter("pipeline.stalled_workers").add(counters_.stalled_workers);
      reg->counter("pipeline.recovered_workers")
          .add(counters_.recovered_workers);
      reg->counter("pipeline.lost_workers").add(counters_.lost_workers);
      reg->counter("pipeline.replayed_batches")
          .add(counters_.replayed_batches);
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        reg->gauge("pipeline.worker" + std::to_string(i) + ".heartbeat_us")
            .set(static_cast<double>(
                workers_[i]->heartbeat_us.load(std::memory_order_relaxed)));
      }
    }
  }
  for (const auto& worker : workers_) {
    if (worker->error) std::rethrow_exception(worker->error);
  }
}

}  // namespace tdt::trace
