#include "trace/stream.hpp"

#include <fstream>

#include "trace/binary.hpp"
#include "trace/din.hpp"
#include "trace/reader.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {

TraceFormat guess_trace_format(const std::string& path) noexcept {
  if (ends_with(path, ".tdtb")) return TraceFormat::Tdtb;
  if (ends_with(path, ".din")) return TraceFormat::Din;
  return TraceFormat::Gleipnir;
}

StreamResult stream_trace(TraceContext& ctx, std::istream& in,
                          TraceFormat format, TraceSink& sink,
                          DiagEngine* diags) {
  StreamResult result;
  // Records are delivered through push_batch in fixed-size batches: one
  // virtual call per kStreamBatch records instead of one per record, and
  // batch-aware sinks (simulator, parallel fan-out) skip the per-record
  // dispatch entirely.
  constexpr std::size_t kStreamBatch = 4096;
  std::vector<TraceRecord> batch;
  batch.reserve(kStreamBatch);
  const auto emit = [&](const TraceRecord& rec) {
    ++result.records;
    batch.push_back(rec);
    if (batch.size() >= kStreamBatch) {
      sink.push_batch(batch);
      batch.clear();
    }
  };
  switch (format) {
    case TraceFormat::Gleipnir: {
      GleipnirReader reader(ctx, in, diags);
      bool saw_start = false;
      while (auto ev = reader.next()) {
        switch (ev->kind) {
          case TraceEvent::Kind::Start:
            if (!saw_start) result.pid = ev->pid;
            saw_start = true;
            break;
          case TraceEvent::Kind::End:
            break;
          case TraceEvent::Kind::Record:
            emit(ev->record);
            break;
        }
      }
      break;
    }
    case TraceFormat::Din: {
      DinReader reader(ctx, in, /*default_size=*/4, diags);
      TraceRecord rec;
      while (reader.next(rec)) emit(rec);
      break;
    }
    case TraceFormat::Tdtb: {
      BinaryTraceReader reader(ctx, in, diags);
      result.pid = reader.pid();
      TraceRecord rec;
      while (reader.next(rec)) emit(rec);
      break;
    }
  }
  if (!batch.empty()) sink.push_batch(batch);
  sink.on_end();
  return result;
}

StreamResult stream_trace_file(TraceContext& ctx, const std::string& path,
                               TraceSink& sink, DiagEngine* diags) {
  const TraceFormat format = guess_trace_format(path);
  std::ifstream in(path, format == TraceFormat::Tdtb
                             ? std::ios::binary | std::ios::in
                             : std::ios::in);
  if (!in) {
    throw_io_error("cannot open trace file '" + path + "'");
  }
  return stream_trace(ctx, in, format, sink, diags);
}

}  // namespace tdt::trace
