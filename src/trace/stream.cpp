#include "trace/stream.hpp"

#include <fstream>

#include "trace/binary.hpp"
#include "trace/din.hpp"
#include "trace/reader.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {

TraceFormat guess_trace_format(const std::string& path) noexcept {
  if (ends_with(path, ".tdtb")) return TraceFormat::Tdtb;
  if (ends_with(path, ".din")) return TraceFormat::Din;
  return TraceFormat::Gleipnir;
}

namespace {

/// Records per batch handed to the sink by the streaming layer.
constexpr std::size_t kStreamBatch = 4096;

/// Batching shim shared by every streaming entry point: records are
/// delivered through push_batch in fixed-size batches — one virtual call
/// per kStreamBatch records instead of one per record — and batch-aware
/// sinks (simulator, parallel fan-out) skip the per-record dispatch
/// entirely.
class BatchEmitter {
 public:
  explicit BatchEmitter(TraceSink& sink, Governor* governor = nullptr)
      : sink_(&sink), governor_(governor) {
    batch_.reserve(kStreamBatch);
  }

  /// Stages one record; returns false when the governor's deadline
  /// expired at the batch boundary just flushed — the caller must stop
  /// reading and call finish() (partial-result contract).
  [[nodiscard]] bool emit(TraceRecord&& rec) {
    ++records_;
    batch_.push_back(std::move(rec));
    if (batch_.size() >= kStreamBatch) {
      sink_->push_batch(batch_);
      batch_.clear();
      if (governor_ != nullptr && governor_->expired()) return false;
    }
    return true;
  }

  std::uint64_t finish() {
    if (!batch_.empty()) sink_->push_batch(batch_);
    sink_->on_end();
    return records_;
  }

 private:
  TraceSink* sink_;
  Governor* governor_;
  std::vector<TraceRecord> batch_;
  std::uint64_t records_ = 0;
};

/// Folds the reader-side ingestion counters into the metrics registry
/// (the documented read.* counter family). A null registry is a no-op so
/// uninstrumented runs stay byte-identical.
void fold_read_counters(obs::Registry* registry, std::uint64_t records,
                        std::uint64_t bytes, std::uint64_t fast_parses,
                        std::uint64_t slow_parses) {
  if (registry == nullptr) return;
  registry->counter("read.records").add(records);
  registry->counter("read.bytes").add(bytes);
  registry->counter("read.fast_parses").add(fast_parses);
  registry->counter("read.slow_parses").add(slow_parses);
}

/// Drains a Gleipnir reader (any byte-source backend) into a sink using
/// the bulk next_batch entry point: records decode straight into the
/// batch vector and ownership of the full batch passes to the sink
/// (push_batch_owned), so batch-republishing sinks never copy. The
/// governor deadline is checked at batch boundaries, exactly as the
/// per-record emitter did.
StreamResult drain_gleipnir(GleipnirReader& reader, TraceSink& sink,
                            obs::Registry* registry, Governor* governor) {
  StreamResult result;
  std::vector<TraceRecord> batch;
  batch.reserve(kStreamBatch);
  for (;;) {
    const std::size_t got = reader.next_batch(batch, kStreamBatch);
    if (got == 0) break;
    result.records += got;
    sink.push_batch_owned(std::move(batch));
    batch.clear();  // moved-from: reset to a known-empty state
    batch.reserve(kStreamBatch);
    if (governor != nullptr && governor->expired()) break;
  }
  sink.on_end();
  if (reader.saw_start()) result.pid = reader.start_pid();
  result.deadline_hit = governor != nullptr && governor->deadline_hit();
  fold_read_counters(registry, result.records, reader.counters().bytes,
                     reader.counters().fast_records,
                     reader.counters().slow_records);
  return result;
}

}  // namespace

StreamResult stream_trace(TraceContext& ctx, std::istream& in,
                          TraceFormat format, TraceSink& sink,
                          DiagEngine* diags, obs::Registry* registry,
                          Governor* governor) {
  switch (format) {
    case TraceFormat::Gleipnir: {
      GleipnirReader reader(ctx, in, diags);
      return drain_gleipnir(reader, sink, registry, governor);
    }
    case TraceFormat::Din: {
      StreamResult result;
      BatchEmitter emitter(sink, governor);
      DinReader reader(ctx, in, /*default_size=*/4, diags);
      TraceRecord rec;
      // Copy, not move: `rec` is the reader's reusable output slot.
      while (reader.next(rec)) {
        if (!emitter.emit(TraceRecord(rec))) break;
      }
      result.records = emitter.finish();
      result.deadline_hit = governor != nullptr && governor->deadline_hit();
      if (registry != nullptr) {
        registry->counter("read.records").add(result.records);
      }
      return result;
    }
    case TraceFormat::Tdtb: {
      StreamResult result;
      BatchEmitter emitter(sink, governor);
      BinaryTraceReader reader(ctx, in, diags);
      result.pid = reader.pid();
      TraceRecord rec;
      while (reader.next(rec)) {
        if (!emitter.emit(TraceRecord(rec))) break;
      }
      result.records = emitter.finish();
      result.deadline_hit = governor != nullptr && governor->deadline_hit();
      fold_read_counters(registry, result.records, reader.bytes_read(), 0, 0);
      return result;
    }
  }
  StreamResult result;
  sink.on_end();
  return result;
}

StreamResult stream_trace_text(TraceContext& ctx, std::string_view text,
                               TraceSink& sink, DiagEngine* diags,
                               obs::Registry* registry, Governor* governor) {
  GleipnirReader reader(ctx, text, diags);
  return drain_gleipnir(reader, sink, registry, governor);
}

StreamResult stream_trace_file(TraceContext& ctx, const std::string& path,
                               TraceSink& sink, DiagEngine* diags,
                               obs::Registry* registry, Governor* governor,
                               IngestMode ingest) {
  const TraceFormat format = guess_trace_format(path);
  if (format == TraceFormat::Gleipnir) {
    GleipnirReader reader(ctx, open_trace_byte_source(path, ingest), diags);
    return drain_gleipnir(reader, sink, registry, governor);
  }
  // Binary everywhere: din is a text format, but opening it in text mode
  // would let a CRLF-translating runtime silently rewrite byte offsets.
  std::ifstream in(path, std::ios::binary | std::ios::in);
  if (!in) {
    throw_io_error("cannot open trace file '" + path + "'");
  }
  return stream_trace(ctx, in, format, sink, diags, registry, governor);
}

}  // namespace tdt::trace
