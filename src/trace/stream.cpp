#include "trace/stream.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>

#include "trace/binary.hpp"
#include "trace/din.hpp"
#include "trace/reader.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {

TraceFormat guess_trace_format(const std::string& path) noexcept {
  if (ends_with(path, ".tdtb")) return TraceFormat::Tdtb;
  if (ends_with(path, ".din")) return TraceFormat::Din;
  return TraceFormat::Gleipnir;
}

namespace {

/// Records per batch handed to the sink by the streaming layer.
constexpr std::size_t kStreamBatch = 4096;

/// Batching shim shared by every streaming entry point: records are
/// delivered through push_batch in fixed-size batches — one virtual call
/// per kStreamBatch records instead of one per record — and batch-aware
/// sinks (simulator, parallel fan-out) skip the per-record dispatch
/// entirely.
class BatchEmitter {
 public:
  explicit BatchEmitter(TraceSink& sink, Governor* governor = nullptr)
      : sink_(&sink), governor_(governor) {
    batch_.reserve(kStreamBatch);
  }

  /// Stages one record; returns false when the governor's deadline
  /// expired at the batch boundary just flushed — the caller must stop
  /// reading and call finish() (partial-result contract).
  [[nodiscard]] bool emit(TraceRecord&& rec) {
    ++records_;
    batch_.push_back(std::move(rec));
    if (batch_.size() >= kStreamBatch) {
      sink_->push_batch(batch_);
      batch_.clear();
      if (governor_ != nullptr && governor_->expired()) return false;
    }
    return true;
  }

  std::uint64_t finish() {
    if (!batch_.empty()) sink_->push_batch(batch_);
    sink_->on_end();
    return records_;
  }

 private:
  TraceSink* sink_;
  Governor* governor_;
  std::vector<TraceRecord> batch_;
  std::uint64_t records_ = 0;
};

/// Folds the reader-side ingestion counters into the metrics registry
/// (the documented read.* counter family). A null registry is a no-op so
/// uninstrumented runs stay byte-identical.
void fold_read_counters(obs::Registry* registry, std::uint64_t records,
                        std::uint64_t bytes, std::uint64_t fast_parses,
                        std::uint64_t slow_parses) {
  if (registry == nullptr) return;
  registry->counter("read.records").add(records);
  registry->counter("read.bytes").add(bytes);
  registry->counter("read.fast_parses").add(fast_parses);
  registry->counter("read.slow_parses").add(slow_parses);
}

/// Drains a Gleipnir reader (any byte-source backend) into a sink using
/// the bulk next_batch entry point: records decode straight into the
/// batch vector and ownership of the full batch passes to the sink
/// (push_batch_owned), so batch-republishing sinks never copy. The
/// governor deadline is checked at batch boundaries, exactly as the
/// per-record emitter did.
StreamResult drain_gleipnir(GleipnirReader& reader, TraceSink& sink,
                            obs::Registry* registry, Governor* governor) {
  StreamResult result;
  std::vector<TraceRecord> batch;
  batch.reserve(kStreamBatch);
  for (;;) {
    const std::size_t got = reader.next_batch(batch, kStreamBatch);
    if (got == 0) break;
    result.records += got;
    sink.push_batch_owned(std::move(batch));
    batch.clear();  // moved-from: reset to a known-empty state
    batch.reserve(kStreamBatch);
    if (governor != nullptr && governor->expired()) break;
  }
  sink.on_end();
  if (reader.saw_start()) result.pid = reader.start_pid();
  result.deadline_hit = governor != nullptr && governor->deadline_hit();
  fold_read_counters(registry, result.records, reader.counters().bytes,
                     reader.counters().fast_records,
                     reader.counters().slow_records);
  return result;
}

// --- TDTB v3 parallel (seekable) decode -------------------------------------

/// Reusable decode scratch: the frame's records/defs plus the
/// decompression buffer its defs view into. Buffers cycle worker ->
/// publisher -> free list, so steady-state decoding performs no
/// per-frame allocation — a large fresh vector per frame would serialize
/// every worker on the allocator's mmap/page-zero path and erase the
/// parallel speedup.
struct FrameBuf {
  DecodedFrame frame;
  std::string payload;  // decompressed bytes frame.defs views into
};

/// One frame's decode state in the parallel pipeline. Workers fill a
/// slot; the publisher consumes it. `done` is guarded by the pool mutex.
struct FrameSlot {
  FrameBuf* buf = nullptr;
  bool bad = false;
  DiagCode code = DiagCode::BinFrameCorrupt;
  std::string error;
  bool done = false;
};

/// Phase-one decode of one indexed frame (worker context; touches only
/// the slot). Mirrors BinaryTraceReader::load_frame's frame-local error
/// ladder — same codes, same messages — so diagnostics are identical to
/// the sequential reader's at any job count.
void decode_indexed_frame(std::string_view blob, const TdtbFrameInfo& fi,
                          bool injected, std::uint64_t frame_no,
                          FrameSlot& slot) {
  DecodedFrame& frame = slot.buf->frame;
  std::string& payload_buf = slot.buf->payload;
  frame.records.clear();
  frame.defs.clear();
  auto bad = [&slot](DiagCode code, std::string msg) {
    slot.bad = true;
    slot.code = code;
    slot.error = std::move(msg);
  };
  if (injected) [[unlikely]] {
    bad(DiagCode::BinFrameCorrupt, "injected frame-decode fault: frame " +
                                       std::to_string(frame_no) + " dropped");
    return;
  }
  std::uint64_t payload_off = 0;
  const std::optional<TdtbFrameInfo> parsed =
      parse_frame_header(blob, fi.offset, &payload_off);
  if (!parsed || parsed->csize != fi.csize || parsed->usize != fi.usize ||
      parsed->codec != fi.codec) {
    // probe_tdtb validated every entry; a disagreement now means the
    // file changed underneath the mapping.
    bad(DiagCode::BinFrameCorrupt,
        "frame " + std::to_string(frame_no) +
            " header disagrees with the container index");
    return;
  }
  const std::string_view stored =
      blob.substr(static_cast<std::size_t>(payload_off),
                  static_cast<std::size_t>(fi.csize));
  if (crc32(stored.data(), stored.size()) != fi.crc) {
    bad(DiagCode::BinFrameCorrupt, "frame " + std::to_string(frame_no) +
                                       " checksum mismatch (bit corruption)");
    return;
  }
  const std::optional<Codec> codec = codec_from_id(fi.codec);
  if (!codec) {
    bad(DiagCode::BinBadCodec, "frame " + std::to_string(frame_no) +
                                   " names unknown codec id " +
                                   std::to_string(fi.codec));
    return;
  }
  std::string_view payload;
  if (*codec == Codec::None) {
    if (stored.size() != fi.usize) {
      bad(DiagCode::BinFrameCorrupt,
          "frame " + std::to_string(frame_no) +
              " stored size disagrees with payload size");
      return;
    }
    payload = stored;
  } else {
    if (!codec_available(*codec)) {
      bad(DiagCode::BinBadCodec,
          "codec '" + std::string(codec_name(*codec)) +
              "' unavailable in this process (shared library not found or "
              "TDT_NO_CODEC set); cannot decode frame " +
              std::to_string(frame_no));
      return;
    }
    if (!codec_decompress(*codec, stored, static_cast<std::size_t>(fi.usize),
                          payload_buf)) {
      bad(DiagCode::BinFrameCorrupt,
          "frame " + std::to_string(frame_no) + " decompression failed (codec " +
              std::string(codec_name(*codec)) + ")");
      return;
    }
    payload = payload_buf;
  }
  decode_frame_payload(payload, frame);
  if (!frame.ok) {
    // Keep the decoded prefix: Skip salvages it, Repair/Strict discard.
    slot.bad = true;
    slot.code = frame.error_code;
    slot.error = frame.error;
    return;
  }
  if (frame.records.size() != fi.records) {
    const std::size_t decoded = frame.records.size();
    frame.records.clear();
    bad(DiagCode::BinCountMismatch,
        "frame " + std::to_string(frame_no) +
            " record count mismatch: header says " + std::to_string(fi.records) +
            ", decoded " + std::to_string(decoded));
  }
}

/// Parallel decode of a v3 container whose frame index validated.
/// Workers claim frames in order and run the thread-safe phase-one
/// decode; the calling thread binds (interns) and publishes frames
/// strictly in frame order, so the string pool stays single-writer,
/// symbol ids match a sequential decode, and the sink sees the exact
/// byte-identical record stream at any job count. A claim window
/// (2x workers) bounds decoded-but-unpublished memory. Error-policy
/// semantics match the sequential reader: Strict throws, Repair drops
/// the corrupt frame and resumes at the next one, Skip salvages the
/// decoded prefix and ends the trace.
StreamResult stream_tdtb_indexed(TraceContext& ctx, std::string_view blob,
                                 const TdtbContainerInfo& info,
                                 TraceSink& sink,
                                 const StreamOptions& options) {
  DiagEngine* diags = options.diags;
  Governor* governor = options.governor;
  const std::size_t nframes = info.frames.size();
  StreamResult result;
  result.pid = info.pid;

  // Pre-sample the frame-decode fault site here, once per frame in
  // frame order — the same draw sequence the sequential reader makes —
  // so injected schedules are identical at any job count.
  std::vector<char> injected(nframes, 0);
  if (fault::FaultInjector::enabled()) {
    for (std::size_t i = 0; i < nframes; ++i) {
      injected[i] = fault::should_fire(fault::Site::FrameDecode) ? 1 : 0;
    }
  }

  std::vector<Symbol> symbol_map;
  std::uint64_t frames_done = 0;
  std::uint64_t stored_bytes = 0;

  // Delivers one decoded frame to the sink under the sequential
  // reader's error-policy semantics. Returns true when the stream must
  // end (Skip salvage). Shared by the inline and threaded paths so
  // their diagnostics and output are identical by construction.
  const auto publish_slot = [&](FrameSlot& slot) -> bool {
    DecodedFrame& frame = slot.buf->frame;
    if (slot.bad) {
      if (diags == nullptr || diags->strict()) {
        throw_parse_error(std::move(slot.error));
      }
      diags->report(DiagSeverity::Error, slot.code, slot.error);
      if (!diags->repair()) {
        // Skip: salvage the decoded prefix of the bad frame, then end.
        bind_frame(ctx, frame, symbol_map);
        result.records += frame.records.size();
        if (!frame.records.empty()) sink.push_batch(frame.records);
        return true;
      }
      // Repair: frame isolation — drop it, resume at the next frame.
      return false;
    }
    bind_frame(ctx, frame, symbol_map);
    result.records += frame.records.size();
    if (!frame.records.empty()) sink.push_batch(frame.records);
    return false;
  };

  const auto finish = [&]() {
    sink.on_end();
    result.deadline_hit = governor != nullptr && governor->deadline_hit();
    // read.bytes: a complete pass consumed the whole container; an
    // early stop counts through the end of the last frame processed
    // (the start of the first untouched frame).
    const std::uint64_t bytes =
        frames_done == nframes
            ? blob.size()
            : info.frames[static_cast<std::size_t>(frames_done)].offset;
    fold_read_counters(options.registry, result.records, bytes, 0, 0);
    if (options.registry != nullptr) {
      options.registry->counter("read.frames").add(frames_done);
      options.registry->counter("read.compressed_bytes").add(stored_bytes);
    }
  };

  const std::size_t requested =
      std::min(static_cast<std::size_t>(std::clamp(options.jobs, 1, 256)),
               std::max<std::size_t>(nframes, 1));
  // More decode workers than cores is pure scheduling overhead; clamp
  // unless a test explicitly wants the threaded machinery exercised.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t nworkers =
      options.clamp_jobs ? std::min(requested, hw) : requested;

  if (nworkers <= 1) {
    // One effective worker: decode inline on this thread. No slots, no
    // condition variables — the frame loop is the pipeline.
    FrameBuf solo;
    for (std::size_t i = 0; i < nframes; ++i) {
      FrameSlot slot;
      slot.buf = &solo;
      solo.frame.records.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(info.frames[i].records, 64 * 1024)));
      decode_indexed_frame(blob, info.frames[i], injected[i] != 0,
                           static_cast<std::uint64_t>(i), slot);
      ++frames_done;
      stored_bytes += info.frames[i].csize;
      if (publish_slot(slot)) break;
      if (governor != nullptr && governor->expired()) break;
    }
    finish();
    return result;
  }

  std::vector<FrameSlot> slots(nframes);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t next_claim = 0;  // next frame a worker decodes (under mu)
  std::size_t published = 0;   // frames delivered to the sink (under mu)
  bool cancel = false;         // publisher tells workers to quit (under mu)
  const std::size_t window = nworkers * 2;
  // Decode-buffer pool (under mu). The claim window bounds frames in
  // flight, so at most window + 1 buffers ever exist; after warm-up the
  // pipeline recycles them and steady-state decode allocates nothing.
  std::vector<std::unique_ptr<FrameBuf>> buf_storage;
  std::vector<FrameBuf*> free_bufs;

  auto worker_main = [&]() {
    for (;;) {
      std::size_t idx = 0;
      FrameBuf* buf = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          return cancel || next_claim >= nframes ||
                 next_claim < published + window;
        });
        if (cancel || next_claim >= nframes) return;
        idx = next_claim++;
        if (!free_bufs.empty()) {
          buf = free_bufs.back();
          free_bufs.pop_back();
        }
      }
      if (buf == nullptr) {
        auto fresh = std::make_unique<FrameBuf>();
        buf = fresh.get();
        std::lock_guard<std::mutex> lock(mu);
        buf_storage.push_back(std::move(fresh));
      }
      FrameSlot& slot = slots[idx];
      slot.buf = buf;
      // Warm the record vector once per buffer; a hostile index cannot
      // drive a giant allocation (the cap), and recycled buffers keep
      // whatever capacity real frames needed.
      buf->frame.records.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(info.frames[idx].records, 64 * 1024)));
      try {
        decode_indexed_frame(blob, info.frames[idx], injected[idx] != 0,
                             static_cast<std::uint64_t>(idx), slot);
      } catch (const std::exception& e) {
        slot.bad = true;
        slot.code = DiagCode::BinFrameCorrupt;
        slot.error = e.what();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        slot.done = true;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(nworkers);
  for (std::size_t i = 0; i < nworkers; ++i) pool.emplace_back(worker_main);
  auto shutdown = [&]() {
    {
      std::lock_guard<std::mutex> lock(mu);
      cancel = true;
    }
    cv.notify_all();
    for (std::thread& t : pool) t.join();
  };

  try {
    for (std::size_t i = 0; i < nframes; ++i) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return slots[i].done; });
      }
      FrameSlot& slot = slots[i];
      ++frames_done;
      stored_bytes += info.frames[i].csize;
      const bool stop = publish_slot(slot);
      {
        // Recycle the decode buffer and open the claim window.
        std::lock_guard<std::mutex> lock(mu);
        free_bufs.push_back(slot.buf);
        published = i + 1;
      }
      slot.buf = nullptr;
      cv.notify_all();
      if (stop) break;
      if (governor != nullptr && governor->expired()) break;
    }
  } catch (...) {
    shutdown();
    throw;
  }
  shutdown();
  finish();
  return result;
}

}  // namespace

StreamResult stream_trace(TraceContext& ctx, std::istream& in,
                          TraceFormat format, TraceSink& sink,
                          DiagEngine* diags, obs::Registry* registry,
                          Governor* governor) {
  switch (format) {
    case TraceFormat::Gleipnir: {
      GleipnirReader reader(ctx, in, diags);
      return drain_gleipnir(reader, sink, registry, governor);
    }
    case TraceFormat::Din: {
      StreamResult result;
      BatchEmitter emitter(sink, governor);
      DinReader reader(ctx, in, /*default_size=*/4, diags);
      TraceRecord rec;
      // Copy, not move: `rec` is the reader's reusable output slot.
      while (reader.next(rec)) {
        if (!emitter.emit(TraceRecord(rec))) break;
      }
      result.records = emitter.finish();
      result.deadline_hit = governor != nullptr && governor->deadline_hit();
      if (registry != nullptr) {
        registry->counter("read.records").add(result.records);
      }
      return result;
    }
    case TraceFormat::Tdtb: {
      StreamResult result;
      BatchEmitter emitter(sink, governor);
      BinaryTraceReader reader(ctx, in, diags);
      result.pid = reader.pid();
      TraceRecord rec;
      while (reader.next(rec)) {
        if (!emitter.emit(TraceRecord(rec))) break;
      }
      result.records = emitter.finish();
      result.deadline_hit = governor != nullptr && governor->deadline_hit();
      fold_read_counters(registry, result.records, reader.bytes_read(), 0, 0);
      if (registry != nullptr && reader.version() >= kTdtbVersionFramed) {
        registry->counter("read.frames").add(reader.frames_read());
        registry->counter("read.compressed_bytes")
            .add(reader.compressed_bytes());
      }
      return result;
    }
  }
  StreamResult result;
  sink.on_end();
  return result;
}

StreamResult stream_trace_text(TraceContext& ctx, std::string_view text,
                               TraceSink& sink, DiagEngine* diags,
                               obs::Registry* registry, Governor* governor) {
  GleipnirReader reader(ctx, text, diags);
  return drain_gleipnir(reader, sink, registry, governor);
}

StreamResult stream_trace_file(TraceContext& ctx, const std::string& path,
                               TraceSink& sink, const StreamOptions& options) {
  const TraceFormat format = guess_trace_format(path);
  if (format == TraceFormat::Gleipnir) {
    GleipnirReader reader(ctx, open_trace_byte_source(path, options.ingest),
                          options.diags);
    return drain_gleipnir(reader, sink, options.registry, options.governor);
  }
  if (format == TraceFormat::Tdtb && path != "-") {
    // Probe and decode read the same mapped bytes (no reopen window). A
    // v3 container with a validated index takes the seekable parallel
    // path; everything else — v1/v2 blobs, a v3 whose index fails
    // validation — falls through to the sequential reader, which
    // produces the precise diagnostic under the chosen error policy.
    if (const std::unique_ptr<FileView> view = FileView::open(path)) {
      const std::optional<TdtbContainerInfo> info = probe_tdtb(view->bytes());
      if (info && info->has_index) {
        return stream_tdtb_indexed(ctx, view->bytes(), *info, sink, options);
      }
    }
  }
  // Binary everywhere: din is a text format, but opening it in text mode
  // would let a CRLF-translating runtime silently rewrite byte offsets.
  std::ifstream in(path, std::ios::binary | std::ios::in);
  if (!in) {
    throw_io_error("cannot open trace file '" + path + "'");
  }
  return stream_trace(ctx, in, format, sink, options.diags, options.registry,
                      options.governor);
}

StreamResult stream_trace_file(TraceContext& ctx, const std::string& path,
                               TraceSink& sink, DiagEngine* diags,
                               obs::Registry* registry, Governor* governor,
                               IngestMode ingest) {
  StreamOptions options;
  options.diags = diags;
  options.registry = registry;
  options.governor = governor;
  options.ingest = ingest;
  return stream_trace_file(ctx, path, sink, options);
}

}  // namespace tdt::trace
