// Compression codecs for the TDTB v3 framed container and gzip'd text
// ingest. Frames compress independently, so the codec interface is
// whole-buffer: compress one frame payload, decompress one stored frame
// into its known uncompressed size.
//
// zstd and lz4 are optional: the implementation binds them at runtime
// (dlopen of the installed shared library) so the build never needs their
// headers and degrades gracefully — codec_available() reports what this
// process can actually use, and Codec::None always works. Setting
// TDT_NO_CODEC=1 forces zstd/lz4 unavailable (tests exercise the
// degraded path with it).
//
// gzip (RFC 1952, via zlib when the build found it) is a separate,
// text-side facility: externally captured traces arrive as `trace.out.gz`
// and the byte-source layer inflates them transparently; the GzipInflater
// here is its streaming engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace tdt::trace {

/// Frame payload codec ids as stored in the TDTB v3 frame header.
/// Wire-stable: never renumber.
enum class Codec : std::uint8_t {
  None = 0,  ///< payload stored verbatim
  Zstd = 1,  ///< zstd single-shot frame
  Lz4 = 2,   ///< lz4 block format (raw, no lz4-frame wrapper)
};

/// Canonical spelling ("none", "zstd", "lz4").
[[nodiscard]] std::string_view codec_name(Codec codec) noexcept;

/// Inverse of codec_name(); nullopt for unknown spellings.
[[nodiscard]] std::optional<Codec> parse_codec(std::string_view text) noexcept;

/// Codec for a raw frame-header byte; nullopt for ids this build does not
/// know (future codecs decode as "unknown", not as garbage).
[[nodiscard]] std::optional<Codec> codec_from_id(std::uint8_t id) noexcept;

/// True when this process can compress/decompress with `codec`. None is
/// always available; zstd/lz4 require their shared library at runtime.
[[nodiscard]] bool codec_available(Codec codec) noexcept;

/// A parsed --compress value.
struct CompressSpec {
  Codec codec = Codec::None;
  int level = 0;  ///< 0 = codec default (zstd level 3, lz4 fast-1)
};

/// Parses the --compress grammar `zstd|lz4|none[:level]`. Throws
/// Error{Config} on unknown codecs or a malformed level. Availability is
/// NOT checked here — writers do that so the error can name a remedy.
[[nodiscard]] CompressSpec parse_compress_spec(std::string_view text);

/// Worst-case compressed size for `n` input bytes under `codec`.
[[nodiscard]] std::size_t codec_compress_bound(Codec codec, std::size_t n);

/// Compresses `src` into `dst` (replaced, sized to the output). Returns
/// false when the codec is unavailable or the library reports an error.
/// Codec::None copies.
bool codec_compress(Codec codec, int level, std::string_view src,
                    std::string& dst);

/// Decompresses `src` into `dst` (replaced, exactly `uncompressed_size`
/// bytes on success). Returns false on corrupt input, a size mismatch, or
/// an unavailable codec. Codec::None requires src.size() ==
/// uncompressed_size and copies.
bool codec_decompress(Codec codec, std::string_view src,
                      std::size_t uncompressed_size, std::string& dst);

// --- gzip (text-trace ingest/export) ---------------------------------------

/// True when the build carries zlib.
[[nodiscard]] bool gzip_available() noexcept;

/// True when `head` starts with the gzip magic (0x1f 0x8b).
[[nodiscard]] bool looks_gzip(std::string_view head) noexcept;

/// Compresses `src` into a complete gzip member in `dst` (replaced).
/// Returns false when zlib is unavailable or reports an error.
bool gzip_compress(std::string_view src, std::string& dst);

/// Streaming gzip inflater: feed compressed chunks, pull inflated chunks.
/// Handles concatenated gzip members (as `cat a.gz b.gz` produces).
class GzipInflater {
 public:
  /// Throws Error{Config} when zlib is unavailable.
  GzipInflater();
  ~GzipInflater();
  GzipInflater(const GzipInflater&) = delete;
  GzipInflater& operator=(const GzipInflater&) = delete;

  enum class Status : std::uint8_t {
    NeedInput,  ///< consumed all input; feed more (or EOF if none is left)
    Output,     ///< produced bytes; call inflate_chunk again
    Done,       ///< stream ended cleanly at an input boundary
    Error,      ///< corrupt stream
  };

  /// Replaces the pending input view. The bytes must stay alive until the
  /// inflater asks for more input (NeedInput).
  void set_input(std::string_view in) noexcept;

  /// Inflates into out[0..cap); `*produced` gets the byte count.
  Status inflate_chunk(char* out, std::size_t cap, std::size_t* produced);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tdt::trace
