// TraceSink: push-style consumer interface connecting pipeline stages.
// The tracer produces records into a sink; the transformation engine is a
// sink that filters/rewrites into another sink; the cache simulator and
// the writers are terminal sinks. This mirrors the paper's Figure 2 cycle
// (tracer -> trace file -> analyzer) while also allowing fully in-memory
// pipelines.
#pragma once

#include <span>
#include <vector>

#include "trace/record.hpp"
#include "util/governor.hpp"

namespace tdt::trace {

/// Abstract consumer of trace records.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Receives one record.
  virtual void on_record(const TraceRecord& rec) = 0;

  /// Receives a whole batch. Semantically identical to calling on_record
  /// once per record; hot terminal sinks (cache simulator, transformer)
  /// override it to amortize the per-record virtual dispatch, and the
  /// streaming layer delivers batches by default.
  virtual void push_batch(std::span<const TraceRecord> batch) {
    for (const TraceRecord& rec : batch) on_record(rec);
  }

  /// Receives a whole batch by value. Semantically identical to
  /// push_batch over the same records; sinks that re-publish batches
  /// (the parallel fan-out) override it to steal the storage instead of
  /// copying. The vector is left in a valid but unspecified state.
  virtual void push_batch_owned(std::vector<TraceRecord>&& batch) {
    push_batch(batch);
  }

  /// Signals end of trace (flush opportunity). Default: no-op.
  virtual void on_end() {}
};

/// Sink that accumulates records into a vector.
///
/// With a Budget attached (--max-memory), every accepted record charges
/// sizeof(TraceRecord) against it; the sink *must* hold the whole trace,
/// so exhaustion fails hard (Error{Resource} → exit 2) rather than
/// degrading. Charges are held for the sink's lifetime and released in
/// the destructor. Record-side heap payloads (variable selector chains)
/// are not accounted — the accounting is a deterministic per-record
/// approximation, which keeps a given trace + limit reproducible.
class VectorSink final : public TraceSink {
 public:
  VectorSink() = default;
  explicit VectorSink(Budget* budget) : budget_(budget) {}
  ~VectorSink() override {
    if (budget_ != nullptr) budget_->release(charged_);
  }

  void on_record(const TraceRecord& rec) override {
    charge(1);
    records_.push_back(rec);
  }
  void push_batch(std::span<const TraceRecord> batch) override {
    charge(batch.size());
    records_.insert(records_.end(), batch.begin(), batch.end());
  }

  [[nodiscard]] std::vector<TraceRecord>& records() noexcept {
    return records_;
  }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }

  /// Moves the accumulated records out, leaving the sink empty.
  [[nodiscard]] std::vector<TraceRecord> take() noexcept {
    return std::move(records_);
  }

 private:
  void charge(std::size_t n) {
    if (budget_ == nullptr) return;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(n) * sizeof(TraceRecord);
    budget_->charge(bytes, "in-memory trace buffer");
    charged_ += bytes;
  }

  std::vector<TraceRecord> records_;
  Budget* budget_ = nullptr;
  std::uint64_t charged_ = 0;
};

/// Sink that forwards every record to several downstream sinks (e.g. a
/// cache simulator and a file writer at once).
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  void on_record(const TraceRecord& rec) override {
    for (TraceSink* s : sinks_) s->on_record(rec);
  }
  void push_batch(std::span<const TraceRecord> batch) override {
    for (TraceSink* s : sinks_) s->push_batch(batch);
  }
  void on_end() override {
    for (TraceSink* s : sinks_) s->on_end();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Sink that counts records and otherwise discards them.
class NullSink final : public TraceSink {
 public:
  void on_record(const TraceRecord&) override { ++count_; }
  void push_batch(std::span<const TraceRecord> batch) override {
    count_ += batch.size();
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace tdt::trace
