#include "trace/source.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/simd_scan.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TDT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tdt::trace {
namespace {

/// One ReaderRead fault opportunity per chunk request, shared by every
/// I/O-backed source (docs/robustness.md, site `reader.read`).
[[nodiscard]] bool read_fault_fires() noexcept {
  return fault::FaultInjector::enabled() &&
         fault::should_fire(fault::Site::ReaderRead);
}

[[nodiscard]] std::unique_ptr<std::istream> open_binary(
    const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path,
                                            std::ios::in | std::ios::binary);
  if (!*in) {
    throw_io_error("cannot open trace file '" + path + "'");
  }
  return in;
}

}  // namespace

// --- StreamSource ----------------------------------------------------------

StreamSource::StreamSource(std::istream& in, std::size_t block) : in_(&in) {
  buf_.resize(block == 0 ? kIngestBlock : block);
}

std::unique_ptr<StreamSource> StreamSource::open(const std::string& path) {
  auto owned = open_binary(path);
  auto source = std::make_unique<StreamSource>(*owned);
  source->owned_ = std::move(owned);
  return source;
}

std::string_view StreamSource::next_chunk() {
  if (done_) return {};
  if (read_fault_fires()) [[unlikely]] {
    done_ = true;
    failed_ = true;
    return {};
  }
  in_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  const std::size_t got = static_cast<std::size_t>(in_->gcount());
  if (got == 0) {
    done_ = true;
    // badbit = the underlying read actually failed (I/O error), as
    // opposed to a clean end of stream; surface it instead of treating
    // a torn read as EOF.
    failed_ = in_->bad();
    return {};
  }
  return {buf_.data(), got};
}

// --- MmapSource ------------------------------------------------------------

std::unique_ptr<MmapSource> MmapSource::open(const std::string& path,
                                             std::size_t chunk) {
#if TDT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) return nullptr;
#if defined(POSIX_MADV_SEQUENTIAL)
  ::posix_madvise(base, size, POSIX_MADV_SEQUENTIAL);
#endif
  return std::unique_ptr<MmapSource>(new MmapSource(
      static_cast<const char*>(base), size, chunk == 0 ? kDefaultChunk : chunk));
#else
  (void)path;
  (void)chunk;
  return nullptr;
#endif
}

MmapSource::~MmapSource() {
#if TDT_HAVE_MMAP
  if (base_ != nullptr) {
    ::munmap(const_cast<char*>(base_), size_);
  }
#endif
}

std::string_view MmapSource::next_chunk() {
  if (done_) return {};
  // One ReaderRead opportunity per call, including the final EOF-
  // signaling one — the same schedule as a stream source, whose EOF
  // probe read is also an opportunity. Fault specs hit both backends at
  // the same opportunity indices.
  if (read_fault_fires()) [[unlikely]] {
    done_ = true;
    failed_ = true;
    return {};
  }
  if (pos_ >= size_) {
    done_ = true;
    return {};
  }
  const std::size_t remaining = size_ - pos_;
  std::size_t take = remaining < chunk_ ? remaining : chunk_;
  if (take < remaining) {
    // Cut at the last newline inside the slice so lines never straddle
    // chunks (the memory stays contiguous, but the reader treats chunk
    // ends as potential line breaks and would copy the straddler).
    const std::size_t nl = std::string_view(base_ + pos_, take).rfind('\n');
    if (nl != std::string_view::npos) {
      take = nl + 1;
    }
  }
  const std::string_view chunk(base_ + pos_, take);
  pos_ += take;
  return chunk;
}

// --- OverlappedSource ------------------------------------------------------

OverlappedSource::OverlappedSource(std::istream& in, std::size_t block)
    : in_(&in) {
  const std::size_t cap = block == 0 ? kIngestBlock : block;
  for (Slot& slot : slots_) slot.data.resize(cap);
  prefetcher_ = std::thread([this] { prefetch_main(); });
}

std::unique_ptr<OverlappedSource> OverlappedSource::open(
    const std::string& path) {
  auto owned = open_binary(path);
  // The prefetch thread starts inside the constructor, so the stream
  // must be owned before construction, not adopted after.
  auto source = std::make_unique<OverlappedSource>(*owned);
  source->owned_ = std::move(owned);
  return source;
}

OverlappedSource::~OverlappedSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (prefetcher_.joinable()) prefetcher_.join();
}

void OverlappedSource::prefetch_main() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    Slot& slot = slots_[produce_];
    cv_.wait(lock, [&] { return stop_ || !slot.ready; });
    if (stop_) return;
    lock.unlock();

    // Fill outside the lock: the slot is invisible to the consumer
    // until ready flips, and the prefetcher is the only producer.
    bool fire = read_fault_fires();
    std::size_t got = 0;
    if (!fire) {
      in_->read(slot.data.data(),
                static_cast<std::streamsize>(slot.data.size()));
      got = static_cast<std::size_t>(in_->gcount());
    }

    lock.lock();
    if (fire || got == 0) {
      eof_ = true;
      failed_ = fire || in_->bad();
      lock.unlock();
      cv_.notify_all();
      return;
    }
    slot.len = got;
    slot.ready = true;
    produce_ = (produce_ + 1) % 2;
    lock.unlock();
    cv_.notify_all();
  }
}

std::string_view OverlappedSource::next_chunk() {
  std::unique_lock<std::mutex> lock(mu_);
  if (delivered_ > 0) {
    // Release the slot delivered by the previous call.
    Slot& prev = slots_[(consume_ + 1) % 2];
    prev.ready = false;
    cv_.notify_all();
  }
  Slot& slot = slots_[consume_];
  cv_.wait(lock, [&] { return slot.ready || eof_; });
  if (!slot.ready) return {};  // eof (possibly failed) and nothing buffered
  consume_ = (consume_ + 1) % 2;
  ++delivered_;
  return {slot.data.data(), slot.len};
}

bool OverlappedSource::failed() const noexcept {
  std::lock_guard<std::mutex> lock(
      const_cast<OverlappedSource*>(this)->mu_);
  return failed_;
}

// --- Backend selection -----------------------------------------------------

std::unique_ptr<ByteSource> open_trace_byte_source(const std::string& path,
                                                   IngestMode mode) {
  if (path == "-") {
    if (mode == IngestMode::Mmap) {
      throw_io_error("cannot mmap standard input");
    }
    if (mode == IngestMode::Stream) {
      return std::make_unique<StreamSource>(std::cin);
    }
    return std::make_unique<OverlappedSource>(std::cin);
  }
  switch (mode) {
    case IngestMode::Stream:
      return StreamSource::open(path);
    case IngestMode::Overlapped:
      return OverlappedSource::open(path);
    case IngestMode::Mmap: {
      auto mapped = MmapSource::open(path);
      if (mapped == nullptr) {
        throw_io_error("cannot mmap trace file '" + path + "'");
      }
      return mapped;
    }
    case IngestMode::Auto:
      break;
  }
  const char* no_mmap = std::getenv("TDT_NO_MMAP");
  const bool allow_mmap =
      no_mmap == nullptr || no_mmap[0] == '\0' ||
      (no_mmap[0] == '0' && no_mmap[1] == '\0');
  if (allow_mmap) {
    if (auto mapped = MmapSource::open(path)) return mapped;
  }
#if TDT_HAVE_MMAP
  // A named pipe blocks and benefits from overlap; MmapSource::open
  // already rejected it, so only the stat matters here.
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 && S_ISFIFO(st.st_mode)) {
    return OverlappedSource::open(path);
  }
#endif
  return StreamSource::open(path);
}

}  // namespace tdt::trace
