#include "trace/source.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/simd_scan.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TDT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tdt::trace {
namespace {

/// One ReaderRead fault opportunity per chunk request, shared by every
/// I/O-backed source (docs/robustness.md, site `reader.read`).
[[nodiscard]] bool read_fault_fires() noexcept {
  return fault::FaultInjector::enabled() &&
         fault::should_fire(fault::Site::ReaderRead);
}

[[nodiscard]] std::unique_ptr<std::istream> open_binary(
    const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path,
                                            std::ios::in | std::ios::binary);
  if (!*in) {
    throw_io_error("cannot open trace file '" + path + "'");
  }
  return in;
}

}  // namespace

// --- StreamSource ----------------------------------------------------------

StreamSource::StreamSource(std::istream& in, std::size_t block) : in_(&in) {
  buf_.resize(block == 0 ? kIngestBlock : block);
}

std::unique_ptr<StreamSource> StreamSource::open(const std::string& path) {
  auto owned = open_binary(path);
  auto source = std::make_unique<StreamSource>(*owned);
  source->owned_ = std::move(owned);
  return source;
}

std::string_view StreamSource::next_chunk() {
  if (done_) return {};
  if (read_fault_fires()) [[unlikely]] {
    done_ = true;
    failed_ = true;
    return {};
  }
  in_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  const std::size_t got = static_cast<std::size_t>(in_->gcount());
  if (got == 0) {
    done_ = true;
    // badbit = the underlying read actually failed (I/O error), as
    // opposed to a clean end of stream; surface it instead of treating
    // a torn read as EOF.
    failed_ = in_->bad();
    return {};
  }
  return {buf_.data(), got};
}

// --- MmapSource ------------------------------------------------------------

std::unique_ptr<MmapSource> MmapSource::open(const std::string& path,
                                             std::size_t chunk) {
#if TDT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) return nullptr;
#if defined(POSIX_MADV_SEQUENTIAL)
  ::posix_madvise(base, size, POSIX_MADV_SEQUENTIAL);
#endif
  return std::unique_ptr<MmapSource>(new MmapSource(
      static_cast<const char*>(base), size, chunk == 0 ? kDefaultChunk : chunk));
#else
  (void)path;
  (void)chunk;
  return nullptr;
#endif
}

MmapSource::~MmapSource() {
#if TDT_HAVE_MMAP
  if (base_ != nullptr) {
    ::munmap(const_cast<char*>(base_), size_);
  }
#endif
}

std::string_view MmapSource::next_chunk() {
  if (done_) return {};
  // One ReaderRead opportunity per call, including the final EOF-
  // signaling one — the same schedule as a stream source, whose EOF
  // probe read is also an opportunity. Fault specs hit both backends at
  // the same opportunity indices.
  if (read_fault_fires()) [[unlikely]] {
    done_ = true;
    failed_ = true;
    return {};
  }
  if (pos_ >= size_) {
    done_ = true;
    return {};
  }
  const std::size_t remaining = size_ - pos_;
  std::size_t take = remaining < chunk_ ? remaining : chunk_;
  if (take < remaining) {
    // Cut at the last newline inside the slice so lines never straddle
    // chunks (the memory stays contiguous, but the reader treats chunk
    // ends as potential line breaks and would copy the straddler).
    const std::size_t nl = std::string_view(base_ + pos_, take).rfind('\n');
    if (nl != std::string_view::npos) {
      take = nl + 1;
    }
  }
  const std::string_view chunk(base_ + pos_, take);
  pos_ += take;
  return chunk;
}

// --- OverlappedSource ------------------------------------------------------

OverlappedSource::OverlappedSource(std::istream& in, std::size_t block)
    : in_(&in) {
  const std::size_t cap = block == 0 ? kIngestBlock : block;
  for (Slot& slot : slots_) slot.data.resize(cap);
  prefetcher_ = std::thread([this] { prefetch_main(); });
}

std::unique_ptr<OverlappedSource> OverlappedSource::open(
    const std::string& path) {
  auto owned = open_binary(path);
  // The prefetch thread starts inside the constructor, so the stream
  // must be owned before construction, not adopted after.
  auto source = std::make_unique<OverlappedSource>(*owned);
  source->owned_ = std::move(owned);
  return source;
}

OverlappedSource::~OverlappedSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (prefetcher_.joinable()) prefetcher_.join();
}

void OverlappedSource::prefetch_main() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    Slot& slot = slots_[produce_];
    cv_.wait(lock, [&] { return stop_ || !slot.ready; });
    if (stop_) return;
    lock.unlock();

    // Fill outside the lock: the slot is invisible to the consumer
    // until ready flips, and the prefetcher is the only producer.
    bool fire = read_fault_fires();
    std::size_t got = 0;
    if (!fire) {
      in_->read(slot.data.data(),
                static_cast<std::streamsize>(slot.data.size()));
      got = static_cast<std::size_t>(in_->gcount());
    }

    lock.lock();
    if (fire || got == 0) {
      eof_ = true;
      failed_ = fire || in_->bad();
      lock.unlock();
      cv_.notify_all();
      return;
    }
    slot.len = got;
    slot.ready = true;
    produce_ = (produce_ + 1) % 2;
    lock.unlock();
    cv_.notify_all();
  }
}

std::string_view OverlappedSource::next_chunk() {
  std::unique_lock<std::mutex> lock(mu_);
  if (delivered_ > 0) {
    // Release the slot delivered by the previous call.
    Slot& prev = slots_[(consume_ + 1) % 2];
    prev.ready = false;
    cv_.notify_all();
  }
  Slot& slot = slots_[consume_];
  cv_.wait(lock, [&] { return slot.ready || eof_; });
  if (!slot.ready) return {};  // eof (possibly failed) and nothing buffered
  consume_ = (consume_ + 1) % 2;
  ++delivered_;
  return {slot.data.data(), slot.len};
}

bool OverlappedSource::failed() const noexcept {
  std::lock_guard<std::mutex> lock(
      const_cast<OverlappedSource*>(this)->mu_);
  return failed_;
}

// --- GzipSource ------------------------------------------------------------

GzipSource::GzipSource(std::unique_ptr<ByteSource> inner, std::string head)
    : inner_(std::move(inner)) {
  inflater_ = std::make_unique<GzipInflater>();  // throws without zlib
  head_ = std::move(head);
  name_ = "gzip+" + std::string(inner_->name());
  out_.resize(kIngestBlock);
  if (!head_.empty()) inflater_->set_input(head_);
}

GzipSource::~GzipSource() = default;

bool GzipSource::refill() {
  const std::string_view chunk = inner_->next_chunk();
  if (chunk.empty()) {
    if (inner_->failed()) failed_ = true;
    return false;
  }
  inflater_->set_input(chunk);
  return true;
}

std::string_view GzipSource::next_chunk() {
  if (done_) return {};
  for (;;) {
    std::size_t produced = 0;
    switch (inflater_->inflate_chunk(out_.data(), out_.size(), &produced)) {
      case GzipInflater::Status::Output:
        if (produced > 0) return {out_.data(), produced};
        continue;  // member boundary bookkeeping; inflate again
      case GzipInflater::Status::Done:
        // A member ended exactly at an input boundary. More compressed
        // bytes may still follow (`cat a.gz b.gz` split across chunks);
        // the inflater's concatenated-member reset handles them once fed.
        if (!refill()) {
          done_ = true;
          return {};
        }
        continue;
      case GzipInflater::Status::NeedInput:
        if (!refill()) {
          // EOF in the middle of a member: the stream is torn.
          done_ = true;
          failed_ = true;
          return {};
        }
        continue;
      case GzipInflater::Status::Error:
        done_ = true;
        failed_ = true;
        return {};
    }
  }
}

bool GzipSource::failed() const noexcept {
  return failed_ || inner_->failed();
}

// --- FileView --------------------------------------------------------------

std::unique_ptr<FileView> FileView::open(const std::string& path) {
  std::unique_ptr<FileView> view(new FileView());
#if TDT_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    const bool regular = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
    if (regular && st.st_size == 0) {
      ::close(fd);
      return view;  // empty view
    }
    if (regular) {
      const auto size = static_cast<std::size_t>(st.st_size);
      void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (base != MAP_FAILED) {
#if defined(POSIX_MADV_WILLNEED)
        ::posix_madvise(base, size, POSIX_MADV_WILLNEED);
#endif
        view->base_ = static_cast<const char*>(base);
        view->size_ = size;
        view->mapped_ = true;
        return view;
      }
    } else {
      ::close(fd);
    }
  }
#endif
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return nullptr;
  std::string buf;
  char block[64 * 1024];
  for (;;) {
    in.read(block, sizeof block);
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    buf.append(block, static_cast<std::size_t>(got));
    if (!in) break;
  }
  if (in.bad()) return nullptr;
  view->buf_ = std::move(buf);
  view->base_ = view->buf_.data();
  view->size_ = view->buf_.size();
  return view;
}

FileView::~FileView() {
#if TDT_HAVE_MMAP
  if (mapped_ && base_ != nullptr) {
    ::munmap(const_cast<char*>(base_), size_);
  }
#endif
}

// --- Backend selection -----------------------------------------------------

namespace {

/// Hands the sniffed first chunk back, then delegates — non-gzip input
/// reaches the reader byte-identical to the unsniffed stream, on the
/// same backend (name() delegates so metrics report the real one).
class ReplaySource final : public ByteSource {
 public:
  ReplaySource(std::unique_ptr<ByteSource> inner, std::string head)
      : inner_(std::move(inner)), head_(std::move(head)) {}

  [[nodiscard]] std::string_view next_chunk() override {
    if (!replayed_) {
      replayed_ = true;
      return head_;
    }
    return inner_->next_chunk();
  }
  [[nodiscard]] bool failed() const noexcept override {
    return inner_->failed();
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return inner_->name();
  }

 private:
  std::unique_ptr<ByteSource> inner_;
  std::string head_;
  bool replayed_ = false;
};

/// Sniffs the stream's first chunk for the gzip magic. The pull consumes
/// fault opportunity 0 exactly as the reader's first chunk request
/// would, and the bytes are replayed either way, so fault schedules and
/// delivered bytes are unchanged for non-gzip input.
std::unique_ptr<ByteSource> wrap_gzip_if_needed(
    std::unique_ptr<ByteSource> inner) {
  const std::string_view first = inner->next_chunk();
  if (!looks_gzip(first)) {
    return std::make_unique<ReplaySource>(std::move(inner),
                                          std::string(first));
  }
  if (!gzip_available()) {
    throw Error(ErrorKind::Config,
                "input is gzip-compressed but zlib support is not built in");
  }
  return std::make_unique<GzipSource>(std::move(inner), std::string(first));
}

}  // namespace

std::unique_ptr<ByteSource> open_trace_byte_source(const std::string& path,
                                                   IngestMode mode) {
  return wrap_gzip_if_needed(open_raw_byte_source(path, mode));
}

std::unique_ptr<ByteSource> open_raw_byte_source(const std::string& path,
                                                 IngestMode mode) {
  if (path == "-") {
    if (mode == IngestMode::Mmap) {
      throw_io_error("cannot mmap standard input");
    }
    if (mode == IngestMode::Stream) {
      return std::make_unique<StreamSource>(std::cin);
    }
    return std::make_unique<OverlappedSource>(std::cin);
  }
  switch (mode) {
    case IngestMode::Stream:
      return StreamSource::open(path);
    case IngestMode::Overlapped:
      return OverlappedSource::open(path);
    case IngestMode::Mmap: {
      auto mapped = MmapSource::open(path);
      if (mapped == nullptr) {
        throw_io_error("cannot mmap trace file '" + path + "'");
      }
      return mapped;
    }
    case IngestMode::Auto:
      break;
  }
  const char* no_mmap = std::getenv("TDT_NO_MMAP");
  const bool allow_mmap =
      no_mmap == nullptr || no_mmap[0] == '\0' ||
      (no_mmap[0] == '0' && no_mmap[1] == '\0');
  if (allow_mmap) {
    if (auto mapped = MmapSource::open(path)) return mapped;
  }
#if TDT_HAVE_MMAP
  // A named pipe blocks and benefits from overlap; MmapSource::open
  // already rejected it, so only the stat matters here.
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 && S_ISFIFO(st.st_mode)) {
    return OverlappedSource::open(path);
  }
#endif
  return StreamSource::open(path);
}

}  // namespace tdt::trace
