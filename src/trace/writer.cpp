#include "trace/writer.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace tdt::trace {

GleipnirWriter::GleipnirWriter(const TraceContext& ctx, std::ostream& out)
    : ctx_(&ctx), out_(&out) {}

void GleipnirWriter::start(std::uint64_t pid) {
  *out_ << "START PID " << pid << '\n';
}

void GleipnirWriter::write(const TraceRecord& rec) {
  *out_ << ctx_->format_record(rec) << '\n';
  ++count_;
}

void GleipnirWriter::end(std::uint64_t pid) {
  *out_ << "END PID " << pid << '\n';
}

void GleipnirWriter::check_health() {
  if (fault::FaultInjector::enabled() &&
      fault::should_fire(fault::Site::WriterFlush)) [[unlikely]] {
    out_->setstate(std::ios::badbit);  // exactly what a failed flush leaves
  }
  out_->flush();
  if (!*out_) {
    throw_io_error("trace write failed after " + std::to_string(count_) +
                   " records (stream error; disk full or pipe closed?)");
  }
}

std::string write_trace_string(const TraceContext& ctx,
                               std::span<const TraceRecord> records,
                               std::uint64_t pid) {
  std::ostringstream out;
  GleipnirWriter w(ctx, out);
  w.start(pid);
  for (const TraceRecord& rec : records) w.write(rec);
  w.end(pid);
  return out.str();
}

void write_trace_file(const TraceContext& ctx,
                      std::span<const TraceRecord> records,
                      const std::string& path, std::uint64_t pid) {
  std::ofstream out(path, std::ios::out | std::ios::binary);
  if (!out) {
    throw_io_error("cannot open '" + path + "' for writing");
  }
  GleipnirWriter w(ctx, out);
  w.start(pid);
  for (const TraceRecord& rec : records) w.write(rec);
  w.end(pid);
  if (!out) {
    throw_io_error("write to '" + path + "' failed");
  }
}

}  // namespace tdt::trace
