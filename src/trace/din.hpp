// Classic DineroIV "din" trace format for interoperability with the
// original tool's ecosystem:
//
//   <label> <hex address> [hex size]
//
// where label 0 = data read, 1 = data write, 2 = instruction fetch.
// din traces carry no symbol metadata, so records import with Unknown
// scope (they simulate fine but cannot be transformed — the paper's rule
// matching needs Gleipnir's variable annotations).
#pragma once

#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"
#include "util/diag.hpp"

namespace tdt::trace {

/// Streaming din parser. Without a DiagEngine (or with a Strict one) it
/// throws Error{Parse} on a malformed line. With Skip it drops the line
/// and resyncs; Repair additionally salvages a line whose size field is
/// the only malformed part by substituting the default size (D002).
class DinReader {
 public:
  DinReader(TraceContext& ctx, std::istream& in,
            std::uint32_t default_size = 4, DiagEngine* diags = nullptr);

  /// Reads the next record; returns false at end of input.
  bool next(TraceRecord& out);

  /// 1-based number of the line most recently consumed.
  [[nodiscard]] std::uint32_t line_number() const noexcept { return line_; }

 private:
  TraceContext* ctx_;
  std::istream* in_;
  std::uint32_t default_size_;
  DiagEngine* diags_;
  Symbol unknown_fn_;
  std::uint32_t line_ = 0;
};

/// Parses a din-format text into records. Missing sizes default to
/// `default_size` bytes. Modify records cannot be represented in din.
std::vector<TraceRecord> read_din_string(TraceContext& ctx,
                                         std::string_view text,
                                         std::uint32_t default_size = 4,
                                         DiagEngine* diags = nullptr);

/// Reads a din file from disk. Throws Error{Io} when unreadable.
std::vector<TraceRecord> read_din_file(TraceContext& ctx,
                                       const std::string& path,
                                       std::uint32_t default_size = 4,
                                       DiagEngine* diags = nullptr);

/// Renders records as din text: Load -> 0, Store and Modify -> 1 (din has
/// no read-modify-write label), Instr -> 2, Misc -> dropped.
std::string write_din_string(std::span<const TraceRecord> records);

/// Writes a din file. Throws Error{Io} on failure.
void write_din_file(std::span<const TraceRecord> records,
                    const std::string& path);

}  // namespace tdt::trace
