#include "trace/reader.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/error.hpp"
#include "util/simd_scan.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {
namespace {

/// A record line has at most 8 fields (kind, address, size, function,
/// scope, frame, thread, variable); anything longer is malformed and goes
/// through the slow path for its diagnostic.
constexpr std::size_t kMaxRecordFields = 8;

/// Lines longer than this are not worth memoizing (the compare would cost
/// as much as the parse, and real record lines are far shorter).
constexpr std::size_t kMaxMemoLine = 128;

/// Records decoded per next_batch call when draining whole traces.
constexpr std::size_t kDrainBatch = 4096;

/// Fast twins of parse_hex/parse_uint for the hot path: short inputs
/// (which cannot overflow) decode in a tight inline loop, anything
/// longer defers to the reference parsers — so the set of accepted
/// strings and the produced values are identical by construction.
constexpr std::array<std::uint8_t, 256> kHexVal = [] {
  std::array<std::uint8_t, 256> t{};
  for (auto& v : t) v = 0xFF;
  for (int i = 0; i < 10; ++i) t[static_cast<std::size_t>('0') + i] = i;
  for (int i = 0; i < 6; ++i) {
    t[static_cast<std::size_t>('a') + i] = 10 + i;
    t[static_cast<std::size_t>('A') + i] = 10 + i;
  }
  return t;
}();

bool parse_hex_fast(std::string_view s, std::uint64_t& out) noexcept {
  if (s.empty()) return false;
  if (s.size() > 16) {  // only >16 digits can overflow; let from_chars rule
    const auto v = parse_hex(s);
    if (!v) return false;
    out = *v;
    return true;
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    const std::uint8_t d = kHexVal[static_cast<unsigned char>(c)];
    if (d == 0xFF) return false;
    v = v << 4 | d;
  }
  out = v;
  return true;
}

bool parse_uint_fast(std::string_view s, std::uint64_t& out) noexcept {
  if (s.empty()) return false;
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return parse_hex_fast(s.substr(2), out);
  }
  if (s.size() > 19) {  // 19 decimal digits always fit in a uint64
    const auto v = parse_uint(s);
    if (!v) return false;
    out = *v;
    return true;
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    const unsigned d = static_cast<unsigned char>(c) - '0';
    if (d > 9) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

/// Drains a reader into a vector, recording the first START pid.
std::vector<TraceRecord> drain(GleipnirReader& reader, std::uint64_t* pid,
                               std::size_t reserve_hint = 0) {
  std::vector<TraceRecord> records;
  // next_batch resizes to size() + kDrainBatch before decoding, so the
  // hint must cover that headroom or the final batch reallocates (and
  // copies) the nearly complete vector.
  records.reserve(reserve_hint == 0 ? 0 : reserve_hint + kDrainBatch);
  while (reader.next_batch(records, kDrainBatch) != 0) {
  }
  if (pid != nullptr && reader.saw_start()) *pid = reader.start_pid();
  return records;
}

}  // namespace

GleipnirReader::GleipnirReader(TraceContext& ctx, std::istream& in,
                               DiagEngine* diags)
    : GleipnirReader(ctx, std::make_unique<StreamSource>(in), diags) {}

GleipnirReader::GleipnirReader(TraceContext& ctx, std::string_view text,
                               DiagEngine* diags)
    : GleipnirReader(ctx, std::make_unique<MemorySource>(text), diags) {}

GleipnirReader::GleipnirReader(TraceContext& ctx,
                               std::unique_ptr<ByteSource> source,
                               DiagEngine* diags)
    : ctx_(&ctx),
      diags_(diags),
      find_nl_(simd::find_newline_fn()),
      tokenize_(simd::tokenize_fields_fn()),
      source_(std::move(source)) {}

bool GleipnirReader::next_line(std::string_view& out) {
  if (carry_active_) {
    // The view handed out by the previous call aliased carry_; the
    // caller is done with it now.
    carry_.clear();
    carry_active_ = false;
  }
  for (;;) {
    if (chunk_pos_ < chunk_.size()) {
      const std::size_t nl =
          chunk_pos_ + find_nl_(chunk_.data() + chunk_pos_,
                                chunk_.size() - chunk_pos_);
      if (nl < chunk_.size()) {
        std::string_view line;
        if (carry_.empty()) {
          line = chunk_.substr(chunk_pos_, nl - chunk_pos_);
        } else {
          carry_.append(chunk_.data() + chunk_pos_, nl - chunk_pos_);
          line = carry_;
          carry_active_ = true;
        }
        chunk_pos_ = nl + 1;
        std::size_t term = 1;
        if (!line.empty() && line.back() == '\r') {
          // CRLF: the '\r' belongs to the terminator, not the last field.
          line.remove_suffix(1);
          term = 2;
        }
        counters_.bytes += line.size() + term;
        out = line;
        return true;
      }
      // No newline in the remainder: stash it and refill.
      carry_.append(chunk_.data() + chunk_pos_, chunk_.size() - chunk_pos_);
      chunk_pos_ = chunk_.size();
    }
    if (eof_) {
      if (!carry_.empty()) {
        if (io_failed_) {
          // A torn read: the buffered bytes are a fragment of a line of
          // unknown length, not a final line. Never let it parse.
          tail_discarded_ = true;
          carry_.clear();
          return false;
        }
        // Final line without a trailing newline. A lone trailing '\r'
        // is data here: no '\n' was consumed, so there is no terminator
        // to strip (and none is counted).
        counters_.bytes += carry_.size();
        out = std::string_view(carry_);
        carry_active_ = true;
        return true;
      }
      return false;
    }
    chunk_ = source_->next_chunk();
    chunk_pos_ = 0;
    if (chunk_.empty()) {
      eof_ = true;
      io_failed_ = source_->failed();
    }
  }
}

TraceRecord GleipnirReader::parse_record_line(TraceContext& ctx,
                                              std::string_view line,
                                              std::uint32_t line_number) {
  const SourceLoc loc{line_number, 1};
  const std::vector<std::string_view> f = split_ws(line);
  if (f.size() < 4) {
    throw_parse_error("trace line needs at least 4 fields, got " +
                          std::to_string(f.size()),
                      loc);
  }
  TraceRecord rec;
  if (f[0].size() != 1 || !parse_access_kind(f[0][0], rec.kind)) {
    throw_parse_error("bad access kind '" + std::string(f[0]) + "'", loc);
  }
  auto addr = parse_hex(f[1]);
  if (!addr) {
    throw_parse_error("bad address '" + std::string(f[1]) + "'", loc);
  }
  rec.address = *addr;
  auto size = parse_uint(f[2]);
  if (!size || *size == 0 || *size > 0xFFFFFFFFull) {
    throw_parse_error("bad access size '" + std::string(f[2]) + "'", loc);
  }
  rec.size = static_cast<std::uint32_t>(*size);
  rec.function = ctx.intern(f[3]);

  if (f.size() == 4) {
    return rec;  // no symbol info
  }
  if (!parse_var_scope(f[4], rec.scope)) {
    throw_parse_error("bad scope '" + std::string(f[4]) + "'", loc);
  }
  std::size_t i = 5;
  if (!is_global_scope(rec.scope)) {
    if (f.size() < 8) {
      throw_parse_error("local-scope line needs frame, thread and variable",
                        loc);
    }
    auto frame = parse_uint(f[5]);
    auto thread = parse_uint(f[6]);
    if (!frame || !thread || *frame > 0xFFFF || *thread > 0xFFFF) {
      throw_parse_error("bad frame/thread on trace line", loc);
    }
    rec.frame = static_cast<std::uint16_t>(*frame);
    rec.thread = static_cast<std::uint16_t>(*thread);
    i = 7;
  }
  if (i >= f.size()) {
    throw_parse_error("missing variable reference", loc);
  }
  if (i + 1 != f.size()) {
    throw_parse_error("trailing fields after variable reference", loc);
  }
  rec.var = ctx.parse_var(f[i]);
  return rec;
}

bool GleipnirReader::probe_line_memo(std::string_view line, TraceRecord& out) {
  // Probe the most recently hit slot first: a loop's scalar lines
  // alternate between one or two entries, so the hit is almost always
  // the first or second compare.
  for (std::uint32_t k = 0; k < 4; ++k) {
    const std::uint32_t slot = (memo_.mru_line + k) & 3;
    const ParseMemo::LineEntry& entry = memo_.lines[slot];
    if (line == entry.text && !entry.text.empty()) {
      memo_.mru_line = slot;
      out = entry.record;
      return true;
    }
  }
  return false;
}

bool GleipnirReader::parse_record_fast(TraceContext& ctx,
                                       std::string_view line,
                                       TraceRecord& out) {
  return parse_record_fast_impl(ctx, line, out, nullptr,
                                simd::tokenize_fields_fn());
}

bool GleipnirReader::parse_record_fast_impl(TraceContext& ctx,
                                            std::string_view line,
                                            TraceRecord& out,
                                            ParseMemo* memo,
                                            simd::TokenizeFieldsFn tokenize) {
  // Mirrors parse_record_line check for check (and in the same order, so
  // string-pool interning is identical whichever path runs): a line is
  // accepted here exactly when the slow path accepts it, and produces the
  // same record. Anything unusual returns false and is re-parsed slowly.
  const auto remember = [&](const TraceRecord& done) {
    if (memo == nullptr || line.size() > kMaxMemoLine) return;
    ParseMemo::LineEntry& slot = memo->lines[memo->next_line];
    slot.text.assign(line);
    slot.record = done;
    memo->mru_line = memo->next_line;
    memo->next_line = (memo->next_line + 1) % 4;
  };
  simd::FieldSpan spans[kMaxRecordFields];
  const int nfields = tokenize(line.data(), line.size(), spans,
                               kMaxRecordFields);
  if (nfields < 4) return false;  // -1 = too many fields; both go slow
  const std::size_t nf = static_cast<std::size_t>(nfields);
  const auto f = [&](std::size_t i) noexcept {
    return line.substr(spans[i].begin, spans[i].end - spans[i].begin);
  };
  TraceRecord rec;
  if (spans[0].end - spans[0].begin != 1 ||
      !parse_access_kind(line[spans[0].begin], rec.kind)) {
    return false;
  }
  if (!parse_hex_fast(f(1), rec.address)) return false;
  std::uint64_t size = 0;
  if (!parse_uint_fast(f(2), size) || size == 0 || size > 0xFFFFFFFFull) {
    return false;
  }
  rec.size = static_cast<std::uint32_t>(size);
  if (memo != nullptr && f(3) == memo->function) {
    rec.function = memo->function_sym;
  } else {
    rec.function = ctx.intern(f(3));
    if (memo != nullptr) {
      memo->function.assign(f(3));
      memo->function_sym = rec.function;
    }
  }

  if (nf == 4) {
    remember(rec);
    out = std::move(rec);
    return true;
  }
  if (!parse_var_scope(f(4), rec.scope)) return false;
  std::size_t i = 5;
  if (!is_global_scope(rec.scope)) {
    if (nf < 8) return false;
    std::uint64_t frame = 0;
    std::uint64_t thread = 0;
    if (!parse_uint_fast(f(5), frame) || !parse_uint_fast(f(6), thread) ||
        frame > 0xFFFF || thread > 0xFFFF) {
      return false;
    }
    rec.frame = static_cast<std::uint16_t>(frame);
    rec.thread = static_cast<std::uint16_t>(thread);
    i = 7;
  }
  if (i + 1 != nf) return false;
  const std::string_view vt = f(i);
  if (memo != nullptr) {
    for (const ParseMemo::VarEntry& entry : memo->vars) {
      if (vt == entry.text && !entry.text.empty()) {
        rec.var = entry.var;
        remember(rec);
        out = std::move(rec);
        return true;
      }
    }
    // Array-walk hit: same text through the final '[', only the index
    // digits differ. parse_uint is exactly the index parse
    // try_parse_var would run, and the prefix parses independently of
    // what follows its last '[', so the reused steps plus the fresh
    // index are the record a full parse would produce. The line itself
    // will not repeat (the index just changed), so it is not worth a
    // line-memo slot — leaving the hot scalar lines in place.
    if (!vt.empty() && vt.back() == ']') {
      const std::size_t br = vt.rfind('[');
      if (br != std::string_view::npos) {
        const std::string_view prefix = vt.substr(0, br + 1);
        for (const ParseMemo::WalkEntry& entry : memo->walks) {
          if (prefix == entry.prefix && !entry.prefix.empty()) {
            std::uint64_t idx = 0;
            if (parse_uint_fast(vt.substr(br + 1, vt.size() - br - 2), idx)) {
              rec.var = entry.var;
              rec.var.steps.back() = VarStep::make_index(idx);
              out = std::move(rec);
              return true;
            }
            break;  // prefix matched but the digits are unusual: full parse
          }
        }
      }
    }
  }
  if (!ctx.try_parse_var(vt, rec.var)) return false;
  if (memo != nullptr) {
    ParseMemo::VarEntry& slot = memo->vars[memo->next_var];
    slot.text.assign(vt);
    slot.var = rec.var;
    memo->next_var ^= 1;
    if (!vt.empty() && vt.back() == ']') {
      const std::size_t br = vt.rfind('[');
      if (br != std::string_view::npos) {
        ParseMemo::WalkEntry& walk = memo->walks[memo->next_walk];
        walk.prefix.assign(vt.substr(0, br + 1));
        walk.var = rec.var;
        memo->next_walk ^= 1;
      }
    }
  }
  remember(rec);
  out = std::move(rec);
  return true;
}

std::optional<TraceRecord> GleipnirReader::salvage_record_line(
    TraceContext& ctx, std::string_view line) {
  const std::vector<std::string_view> f = split_ws(line);
  if (f.size() < 4) return std::nullopt;
  TraceRecord rec;
  if (f[0].size() != 1 || !parse_access_kind(f[0][0], rec.kind)) {
    return std::nullopt;
  }
  const auto addr = parse_hex(f[1]);
  if (!addr) return std::nullopt;
  rec.address = *addr;
  const auto size = parse_uint(f[2]);
  if (!size || *size == 0 || *size > 0xFFFFFFFFull) return std::nullopt;
  rec.size = static_cast<std::uint32_t>(*size);
  if (!is_identifier(f[3])) return std::nullopt;
  rec.function = ctx.intern(f[3]);
  // Everything after the function is the (malformed) symbol annotation;
  // drop it and keep the raw access.
  return rec;
}

GleipnirReader::LineOutcome GleipnirReader::consume_cold(std::string_view body,
                                                         TraceEvent& ev) {
  if (starts_with(body, "START") || starts_with(body, "END")) {
    const bool is_start = starts_with(body, "START");
    const std::vector<std::string_view> f = split_ws(body);
    const auto pid = f.size() == 3 && f[1] == "PID"
                         ? parse_uint(f[2])
                         : std::optional<std::uint64_t>{};
    if (!pid) {
      if (diags_ == nullptr || diags_->strict()) {
        throw_parse_error("malformed marker line '" + std::string(body) + "'",
                          {line_, 1});
      }
      // No useful repair for a marker: drop it and resync.
      diags_->report(DiagSeverity::Error, DiagCode::TraceBadMarker,
                     "malformed marker line '" + std::string(body) + "'",
                     {line_, 1});
      return LineOutcome::Skip;
    }
    ev.kind = is_start ? TraceEvent::Kind::Start : TraceEvent::Kind::End;
    ev.pid = *pid;
    if (is_start && !saw_start_) {
      saw_start_ = true;
      start_pid_ = *pid;
    }
    return LineOutcome::Marker;
  }
  ev.kind = TraceEvent::Kind::Record;
  if (diags_ == nullptr || diags_->strict()) {
    ev.record = parse_record_line(*ctx_, body, line_);
    ++counters_.slow_records;
    return LineOutcome::Record;
  }
  try {
    ev.record = parse_record_line(*ctx_, body, line_);
    ++counters_.slow_records;
    return LineOutcome::Record;
  } catch (const Error& e) {
    if (diags_->repair()) {
      if (auto salvaged = salvage_record_line(*ctx_, body)) {
        diags_->report(DiagSeverity::Error, DiagCode::TraceRepairedLine,
                       "repaired trace line (symbol annotation dropped): " +
                           e.message(),
                       {line_, 1});
        ev.record = std::move(*salvaged);
        ++counters_.slow_records;
        return LineOutcome::Record;
      }
    }
    diags_->report(DiagSeverity::Error, DiagCode::TraceBadLine, e.message(),
                   {line_, 1});
    return LineOutcome::Skip;  // resync at the next line
  }
}

void GleipnirReader::report_io_failure() {
  if (!io_failed_ || io_reported_) return;
  io_reported_ = true;
  const SourceLoc loc{line_ + 1, 1};
  std::string msg = "trace read failed (stream error); " +
                    std::to_string(line_) + " lines salvaged";
  if (tail_discarded_) {
    msg += "; partial final line discarded";
  }
  if (diags_ == nullptr || diags_->strict()) {
    throw Error(ErrorKind::Io, std::move(msg), loc);
  }
  diags_->report(DiagSeverity::Error, DiagCode::TraceIoError, std::move(msg),
                 loc);
}

std::optional<TraceEvent> GleipnirReader::next() {
  std::string_view raw;
  while (next_line(raw)) {
    ++line_;
    std::string_view body = raw;
    if (!body.empty() && (is_ascii_space(body.front()) ||
                          is_ascii_space(body.back()))) {
      body = trim(body);
    }
    if (body.empty()) continue;
    TraceEvent ev;
    // Markers never parse as records (their first field is not a single
    // access-kind character), so trying the fast path first is safe.
    if (!force_slow_ &&
        (probe_line_memo(body, ev.record) ||
         parse_record_fast_impl(*ctx_, body, ev.record, &memo_, tokenize_))) {
      ++counters_.fast_records;
      return ev;
    }
    switch (consume_cold(body, ev)) {
      case LineOutcome::Skip:
        continue;
      case LineOutcome::Marker:
      case LineOutcome::Record:
        return ev;
    }
  }
  report_io_failure();
  return std::nullopt;
}

std::size_t GleipnirReader::next_batch(std::vector<TraceRecord>& out,
                                       std::size_t max) {
  const std::size_t base = out.size();
  out.resize(base + max);
  std::size_t produced = 0;
  std::string_view raw;
  while (produced < max && next_line(raw)) {
    ++line_;
    std::string_view body = raw;
    if (!body.empty() && (is_ascii_space(body.front()) ||
                          is_ascii_space(body.back()))) {
      body = trim(body);
    }
    if (body.empty()) continue;
    TraceRecord& slot = out[base + produced];
    if (!force_slow_ &&
        (probe_line_memo(body, slot) ||
         parse_record_fast_impl(*ctx_, body, slot, &memo_, tokenize_)))
        [[likely]] {
      ++counters_.fast_records;
      ++produced;
      continue;
    }
    TraceEvent ev;
    if (consume_cold(body, ev) == LineOutcome::Record) {
      slot = std::move(ev.record);
      ++produced;
    }
  }
  out.resize(base + produced);
  if (produced == 0) report_io_failure();
  return produced;
}

std::vector<TraceRecord> read_trace_string(TraceContext& ctx,
                                           std::string_view text,
                                           std::uint64_t* pid,
                                           DiagEngine* diags) {
  GleipnirReader reader(ctx, text, diags);
  // Line count bounds the record count; reserving up front keeps the
  // drain from re-moving the vector log(n) times.
  return drain(reader, pid,
               static_cast<std::size_t>(
                   std::count(text.begin(), text.end(), '\n')) +
                   1);
}

std::vector<TraceRecord> read_trace_file(TraceContext& ctx,
                                         const std::string& path,
                                         std::uint64_t* pid,
                                         DiagEngine* diags) {
  GleipnirReader reader(ctx, open_trace_byte_source(path), diags);
  return drain(reader, pid);
}

}  // namespace tdt::trace
