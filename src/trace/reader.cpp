#include "trace/reader.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {
namespace {

/// Drains a reader into a vector, recording the first START pid.
std::vector<TraceRecord> drain(GleipnirReader& reader, std::uint64_t* pid) {
  std::vector<TraceRecord> records;
  bool saw_start = false;
  while (auto ev = reader.next()) {
    switch (ev->kind) {
      case TraceEvent::Kind::Start:
        if (!saw_start && pid != nullptr) *pid = ev->pid;
        saw_start = true;
        break;
      case TraceEvent::Kind::End:
        break;
      case TraceEvent::Kind::Record:
        records.push_back(std::move(ev->record));
        break;
    }
  }
  return records;
}

}  // namespace

GleipnirReader::GleipnirReader(TraceContext& ctx, std::istream& in,
                               DiagEngine* diags)
    : ctx_(&ctx), in_(&in), diags_(diags) {}

TraceRecord GleipnirReader::parse_record_line(TraceContext& ctx,
                                              std::string_view line,
                                              std::uint32_t line_number) {
  const SourceLoc loc{line_number, 1};
  const std::vector<std::string_view> f = split_ws(line);
  if (f.size() < 4) {
    throw_parse_error("trace line needs at least 4 fields, got " +
                          std::to_string(f.size()),
                      loc);
  }
  TraceRecord rec;
  if (f[0].size() != 1 || !parse_access_kind(f[0][0], rec.kind)) {
    throw_parse_error("bad access kind '" + std::string(f[0]) + "'", loc);
  }
  auto addr = parse_hex(f[1]);
  if (!addr) {
    throw_parse_error("bad address '" + std::string(f[1]) + "'", loc);
  }
  rec.address = *addr;
  auto size = parse_uint(f[2]);
  if (!size || *size == 0 || *size > 0xFFFFFFFFull) {
    throw_parse_error("bad access size '" + std::string(f[2]) + "'", loc);
  }
  rec.size = static_cast<std::uint32_t>(*size);
  rec.function = ctx.intern(f[3]);

  if (f.size() == 4) {
    return rec;  // no symbol info
  }
  if (!parse_var_scope(f[4], rec.scope)) {
    throw_parse_error("bad scope '" + std::string(f[4]) + "'", loc);
  }
  std::size_t i = 5;
  if (!is_global_scope(rec.scope)) {
    if (f.size() < 8) {
      throw_parse_error("local-scope line needs frame, thread and variable",
                        loc);
    }
    auto frame = parse_uint(f[5]);
    auto thread = parse_uint(f[6]);
    if (!frame || !thread || *frame > 0xFFFF || *thread > 0xFFFF) {
      throw_parse_error("bad frame/thread on trace line", loc);
    }
    rec.frame = static_cast<std::uint16_t>(*frame);
    rec.thread = static_cast<std::uint16_t>(*thread);
    i = 7;
  }
  if (i >= f.size()) {
    throw_parse_error("missing variable reference", loc);
  }
  if (i + 1 != f.size()) {
    throw_parse_error("trailing fields after variable reference", loc);
  }
  rec.var = ctx.parse_var(f[i]);
  return rec;
}

std::optional<TraceRecord> GleipnirReader::salvage_record_line(
    TraceContext& ctx, std::string_view line) {
  const std::vector<std::string_view> f = split_ws(line);
  if (f.size() < 4) return std::nullopt;
  TraceRecord rec;
  if (f[0].size() != 1 || !parse_access_kind(f[0][0], rec.kind)) {
    return std::nullopt;
  }
  const auto addr = parse_hex(f[1]);
  if (!addr) return std::nullopt;
  rec.address = *addr;
  const auto size = parse_uint(f[2]);
  if (!size || *size == 0 || *size > 0xFFFFFFFFull) return std::nullopt;
  rec.size = static_cast<std::uint32_t>(*size);
  if (!is_identifier(f[3])) return std::nullopt;
  rec.function = ctx.intern(f[3]);
  // Everything after the function is the (malformed) symbol annotation;
  // drop it and keep the raw access.
  return rec;
}

std::optional<TraceEvent> GleipnirReader::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_;
    std::string_view body = trim(line);
    if (body.empty()) continue;
    if (starts_with(body, "START") || starts_with(body, "END")) {
      const bool is_start = starts_with(body, "START");
      const std::vector<std::string_view> f = split_ws(body);
      const auto pid = f.size() == 3 && f[1] == "PID"
                           ? parse_uint(f[2])
                           : std::optional<std::uint64_t>{};
      if (!pid) {
        if (diags_ == nullptr || diags_->strict()) {
          throw_parse_error("malformed marker line '" + std::string(body) +
                                "'",
                            {line_, 1});
        }
        // No useful repair for a marker: drop it and resync.
        diags_->report(DiagSeverity::Error, DiagCode::TraceBadMarker,
                       "malformed marker line '" + std::string(body) + "'",
                       {line_, 1});
        continue;
      }
      TraceEvent ev;
      ev.kind = is_start ? TraceEvent::Kind::Start : TraceEvent::Kind::End;
      ev.pid = *pid;
      return ev;
    }
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Record;
    if (diags_ == nullptr || diags_->strict()) {
      ev.record = parse_record_line(*ctx_, body, line_);
      return ev;
    }
    try {
      ev.record = parse_record_line(*ctx_, body, line_);
      return ev;
    } catch (const Error& e) {
      if (diags_->repair()) {
        if (auto salvaged = salvage_record_line(*ctx_, body)) {
          diags_->report(DiagSeverity::Error, DiagCode::TraceRepairedLine,
                         "repaired trace line (symbol annotation dropped): " +
                             e.message(),
                         {line_, 1});
          ev.record = std::move(*salvaged);
          return ev;
        }
      }
      diags_->report(DiagSeverity::Error, DiagCode::TraceBadLine, e.message(),
                     {line_, 1});
      continue;  // resync at the next line
    }
  }
  return std::nullopt;
}

std::vector<TraceRecord> read_trace_string(TraceContext& ctx,
                                           std::string_view text,
                                           std::uint64_t* pid,
                                           DiagEngine* diags) {
  std::istringstream in{std::string(text)};
  GleipnirReader reader(ctx, in, diags);
  return drain(reader, pid);
}

std::vector<TraceRecord> read_trace_file(TraceContext& ctx,
                                         const std::string& path,
                                         std::uint64_t* pid,
                                         DiagEngine* diags) {
  std::ifstream in(path);
  if (!in) {
    throw_io_error("cannot open trace file '" + path + "'");
  }
  GleipnirReader reader(ctx, in, diags);
  return drain(reader, pid);
}

}  // namespace tdt::trace
