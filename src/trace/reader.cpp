#include "trace/reader.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/small_vector.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {
namespace {

/// Block size for bulk istream reads. Large enough that refills are rare,
/// small enough to stay cache-friendly.
constexpr std::size_t kReadBlock = 256 * 1024;

/// A record line has at most 8 fields (kind, address, size, function,
/// scope, frame, thread, variable); anything longer is malformed and goes
/// through the slow path for its diagnostic.
constexpr std::size_t kMaxRecordFields = 8;

/// Lines longer than this are not worth memoizing (the compare would cost
/// as much as the parse, and real record lines are far shorter).
constexpr std::size_t kMaxMemoLine = 128;

/// Drains a reader into a vector, recording the first START pid.
std::vector<TraceRecord> drain(GleipnirReader& reader, std::uint64_t* pid,
                               std::size_t reserve_hint = 0) {
  std::vector<TraceRecord> records;
  records.reserve(reserve_hint);
  bool saw_start = false;
  while (auto ev = reader.next()) {
    switch (ev->kind) {
      case TraceEvent::Kind::Start:
        if (!saw_start && pid != nullptr) *pid = ev->pid;
        saw_start = true;
        break;
      case TraceEvent::Kind::End:
        break;
      case TraceEvent::Kind::Record:
        records.push_back(std::move(ev->record));
        break;
    }
  }
  return records;
}

}  // namespace

GleipnirReader::GleipnirReader(TraceContext& ctx, std::istream& in,
                               DiagEngine* diags)
    : ctx_(&ctx), in_(&in), diags_(diags) {
  buf_.resize(kReadBlock);
}

GleipnirReader::GleipnirReader(TraceContext& ctx, std::string_view text,
                               DiagEngine* diags)
    : ctx_(&ctx), diags_(diags), mem_(text) {}

bool GleipnirReader::next_line(std::string_view& out) {
  if (in_ == nullptr) {
    if (mem_pos_ >= mem_.size()) return false;
    const std::size_t nl = mem_.find('\n', mem_pos_);
    if (nl == std::string_view::npos) {
      out = mem_.substr(mem_pos_);
      mem_pos_ = mem_.size();
    } else {
      out = mem_.substr(mem_pos_, nl - mem_pos_);
      mem_pos_ = nl + 1;
    }
    return true;
  }
  for (;;) {
    const char* base = buf_.data();
    if (pos_ < len_) {
      const void* nl = std::memchr(base + pos_, '\n', len_ - pos_);
      if (nl != nullptr) {
        const std::size_t end =
            static_cast<std::size_t>(static_cast<const char*>(nl) - base);
        out = std::string_view(base + pos_, end - pos_);
        pos_ = end + 1;
        return true;
      }
    }
    if (eof_) {
      if (pos_ < len_) {  // final line without trailing newline
        out = std::string_view(base + pos_, len_ - pos_);
        pos_ = len_;
        return true;
      }
      return false;
    }
    // No newline buffered: slide the partial line to the front and refill.
    if (pos_ > 0) {
      std::memmove(buf_.data(), buf_.data() + pos_, len_ - pos_);
      len_ -= pos_;
      pos_ = 0;
    }
    if (len_ == buf_.size()) {
      buf_.resize(buf_.size() * 2);  // pathological line longer than a block
    }
    if (fault::FaultInjector::enabled() &&
        fault::should_fire(fault::Site::ReaderRead)) [[unlikely]] {
      eof_ = true;
      io_failed_ = true;
      continue;  // deliver buffered complete lines, then fail
    }
    in_->read(buf_.data() + len_,
              static_cast<std::streamsize>(buf_.size() - len_));
    const std::size_t got = static_cast<std::size_t>(in_->gcount());
    len_ += got;
    if (got == 0) {
      eof_ = true;
      // badbit = the underlying read actually failed (I/O error), as
      // opposed to a clean end of stream; surface it instead of treating
      // a torn read as EOF.
      if (in_->bad()) io_failed_ = true;
    }
  }
}

TraceRecord GleipnirReader::parse_record_line(TraceContext& ctx,
                                              std::string_view line,
                                              std::uint32_t line_number) {
  const SourceLoc loc{line_number, 1};
  const std::vector<std::string_view> f = split_ws(line);
  if (f.size() < 4) {
    throw_parse_error("trace line needs at least 4 fields, got " +
                          std::to_string(f.size()),
                      loc);
  }
  TraceRecord rec;
  if (f[0].size() != 1 || !parse_access_kind(f[0][0], rec.kind)) {
    throw_parse_error("bad access kind '" + std::string(f[0]) + "'", loc);
  }
  auto addr = parse_hex(f[1]);
  if (!addr) {
    throw_parse_error("bad address '" + std::string(f[1]) + "'", loc);
  }
  rec.address = *addr;
  auto size = parse_uint(f[2]);
  if (!size || *size == 0 || *size > 0xFFFFFFFFull) {
    throw_parse_error("bad access size '" + std::string(f[2]) + "'", loc);
  }
  rec.size = static_cast<std::uint32_t>(*size);
  rec.function = ctx.intern(f[3]);

  if (f.size() == 4) {
    return rec;  // no symbol info
  }
  if (!parse_var_scope(f[4], rec.scope)) {
    throw_parse_error("bad scope '" + std::string(f[4]) + "'", loc);
  }
  std::size_t i = 5;
  if (!is_global_scope(rec.scope)) {
    if (f.size() < 8) {
      throw_parse_error("local-scope line needs frame, thread and variable",
                        loc);
    }
    auto frame = parse_uint(f[5]);
    auto thread = parse_uint(f[6]);
    if (!frame || !thread || *frame > 0xFFFF || *thread > 0xFFFF) {
      throw_parse_error("bad frame/thread on trace line", loc);
    }
    rec.frame = static_cast<std::uint16_t>(*frame);
    rec.thread = static_cast<std::uint16_t>(*thread);
    i = 7;
  }
  if (i >= f.size()) {
    throw_parse_error("missing variable reference", loc);
  }
  if (i + 1 != f.size()) {
    throw_parse_error("trailing fields after variable reference", loc);
  }
  rec.var = ctx.parse_var(f[i]);
  return rec;
}

bool GleipnirReader::parse_record_fast(TraceContext& ctx,
                                       std::string_view line,
                                       TraceRecord& out) {
  return parse_record_fast_impl(ctx, line, out, nullptr);
}

bool GleipnirReader::parse_record_fast_impl(TraceContext& ctx,
                                            std::string_view line,
                                            TraceRecord& out,
                                            ParseMemo* memo) {
  // Mirrors parse_record_line check for check (and in the same order, so
  // string-pool interning is identical whichever path runs): a line is
  // accepted here exactly when the slow path accepts it, and produces the
  // same record. Anything unusual returns false and is re-parsed slowly.
  if (memo != nullptr) {
    for (const ParseMemo::LineEntry& entry : memo->lines) {
      if (line == entry.text && !entry.text.empty()) {
        out = entry.record;
        return true;
      }
    }
  }
  const auto remember = [&](const TraceRecord& done) {
    if (memo == nullptr || line.size() > kMaxMemoLine) return;
    ParseMemo::LineEntry& slot = memo->lines[memo->next_line];
    slot.text.assign(line);
    slot.record = done;
    memo->next_line = (memo->next_line + 1) % 4;
  };
  SmallVector<std::string_view, kMaxRecordFields> f;
  if (!split_ws_into(line, f, kMaxRecordFields)) return false;
  if (f.size() < 4) return false;
  TraceRecord rec;
  if (f[0].size() != 1 || !parse_access_kind(f[0][0], rec.kind)) return false;
  const auto addr = parse_hex(f[1]);
  if (!addr) return false;
  rec.address = *addr;
  const auto size = parse_uint(f[2]);
  if (!size || *size == 0 || *size > 0xFFFFFFFFull) return false;
  rec.size = static_cast<std::uint32_t>(*size);
  if (memo != nullptr && f[3] == memo->function) {
    rec.function = memo->function_sym;
  } else {
    rec.function = ctx.intern(f[3]);
    if (memo != nullptr) {
      memo->function.assign(f[3]);
      memo->function_sym = rec.function;
    }
  }

  if (f.size() == 4) {
    remember(rec);
    out = std::move(rec);
    return true;
  }
  if (!parse_var_scope(f[4], rec.scope)) return false;
  std::size_t i = 5;
  if (!is_global_scope(rec.scope)) {
    if (f.size() < 8) return false;
    const auto frame = parse_uint(f[5]);
    const auto thread = parse_uint(f[6]);
    if (!frame || !thread || *frame > 0xFFFF || *thread > 0xFFFF) return false;
    rec.frame = static_cast<std::uint16_t>(*frame);
    rec.thread = static_cast<std::uint16_t>(*thread);
    i = 7;
  }
  if (i + 1 != f.size()) return false;
  if (memo != nullptr) {
    for (const ParseMemo::VarEntry& entry : memo->vars) {
      if (f[i] == entry.text && !entry.text.empty()) {
        rec.var = entry.var;
        remember(rec);
        out = std::move(rec);
        return true;
      }
    }
  }
  if (!ctx.try_parse_var(f[i], rec.var)) return false;
  if (memo != nullptr) {
    ParseMemo::VarEntry& slot = memo->vars[memo->next_var];
    slot.text.assign(f[i]);
    slot.var = rec.var;
    memo->next_var ^= 1;
  }
  remember(rec);
  out = std::move(rec);
  return true;
}

std::optional<TraceRecord> GleipnirReader::salvage_record_line(
    TraceContext& ctx, std::string_view line) {
  const std::vector<std::string_view> f = split_ws(line);
  if (f.size() < 4) return std::nullopt;
  TraceRecord rec;
  if (f[0].size() != 1 || !parse_access_kind(f[0][0], rec.kind)) {
    return std::nullopt;
  }
  const auto addr = parse_hex(f[1]);
  if (!addr) return std::nullopt;
  rec.address = *addr;
  const auto size = parse_uint(f[2]);
  if (!size || *size == 0 || *size > 0xFFFFFFFFull) return std::nullopt;
  rec.size = static_cast<std::uint32_t>(*size);
  if (!is_identifier(f[3])) return std::nullopt;
  rec.function = ctx.intern(f[3]);
  // Everything after the function is the (malformed) symbol annotation;
  // drop it and keep the raw access.
  return rec;
}

std::optional<TraceEvent> GleipnirReader::next() {
  std::string_view raw;
  while (next_line(raw)) {
    ++line_;
    counters_.bytes += raw.size() + 1;  // +1 for the line terminator
    std::string_view body = trim(raw);
    if (body.empty()) continue;
    if (starts_with(body, "START") || starts_with(body, "END")) {
      const bool is_start = starts_with(body, "START");
      const std::vector<std::string_view> f = split_ws(body);
      const auto pid = f.size() == 3 && f[1] == "PID"
                           ? parse_uint(f[2])
                           : std::optional<std::uint64_t>{};
      if (!pid) {
        if (diags_ == nullptr || diags_->strict()) {
          throw_parse_error("malformed marker line '" + std::string(body) +
                                "'",
                            {line_, 1});
        }
        // No useful repair for a marker: drop it and resync.
        diags_->report(DiagSeverity::Error, DiagCode::TraceBadMarker,
                       "malformed marker line '" + std::string(body) + "'",
                       {line_, 1});
        continue;
      }
      TraceEvent ev;
      ev.kind = is_start ? TraceEvent::Kind::Start : TraceEvent::Kind::End;
      ev.pid = *pid;
      return ev;
    }
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Record;
    if (!force_slow_ && parse_record_fast_impl(*ctx_, body, ev.record, &memo_)) {
      ++counters_.fast_records;
      return ev;
    }
    if (diags_ == nullptr || diags_->strict()) {
      ev.record = parse_record_line(*ctx_, body, line_);
      ++counters_.slow_records;
      return ev;
    }
    try {
      ev.record = parse_record_line(*ctx_, body, line_);
      ++counters_.slow_records;
      return ev;
    } catch (const Error& e) {
      if (diags_->repair()) {
        if (auto salvaged = salvage_record_line(*ctx_, body)) {
          diags_->report(DiagSeverity::Error, DiagCode::TraceRepairedLine,
                         "repaired trace line (symbol annotation dropped): " +
                             e.message(),
                         {line_, 1});
          ev.record = std::move(*salvaged);
          ++counters_.slow_records;
          return ev;
        }
      }
      diags_->report(DiagSeverity::Error, DiagCode::TraceBadLine, e.message(),
                     {line_, 1});
      continue;  // resync at the next line
    }
  }
  if (io_failed_ && !io_reported_) {
    io_reported_ = true;
    const SourceLoc loc{line_ + 1, 1};
    std::string msg = "trace read failed (stream error); " +
                      std::to_string(line_) + " lines salvaged";
    if (diags_ == nullptr || diags_->strict()) {
      throw Error(ErrorKind::Io, std::move(msg), loc);
    }
    diags_->report(DiagSeverity::Error, DiagCode::TraceIoError, std::move(msg),
                   loc);
  }
  return std::nullopt;
}

std::vector<TraceRecord> read_trace_string(TraceContext& ctx,
                                           std::string_view text,
                                           std::uint64_t* pid,
                                           DiagEngine* diags) {
  GleipnirReader reader(ctx, text, diags);
  // Line count bounds the record count; reserving up front keeps the
  // drain from re-moving the vector log(n) times.
  return drain(reader, pid,
               static_cast<std::size_t>(
                   std::count(text.begin(), text.end(), '\n')) +
                   1);
}

std::vector<TraceRecord> read_trace_file(TraceContext& ctx,
                                         const std::string& path,
                                         std::uint64_t* pid,
                                         DiagEngine* diags) {
  std::ifstream in(path);
  if (!in) {
    throw_io_error("cannot open trace file '" + path + "'");
  }
  GleipnirReader reader(ctx, in, diags);
  return drain(reader, pid);
}

}  // namespace tdt::trace
