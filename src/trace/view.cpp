#include "trace/view.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "trace/din.hpp"
#include "trace/reader.hpp"
#include "trace/stream.hpp"
#include "trace/writer.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::trace {

namespace detail {

/// A batch flowing through the graph. Mutable only while unique; once a
/// batch is shared between consumers (or retained by a memo) it is
/// read-only and handed out as a const span.
using BatchPtr = std::shared_ptr<std::vector<TraceRecord>>;

/// Persistent .cache(bytes) state. Lives on the node, so it survives
/// across Graph runs for as long as any View references the node.
struct CacheMemo {
  std::vector<BatchPtr> batches;
  bool complete = false;        ///< holds the node's full output stream
  std::uint64_t bytes = 0;      ///< payload bytes retained (and charged)
  Budget budget;                ///< own limit (= the node's cache_bytes)
  Budget* charged_to = nullptr; ///< evaluation budget also charged, if any
  std::uint64_t hits_total = 0; ///< lifetime batches served from the memo

  /// Drops everything and returns all charges.
  void drop() noexcept {
    batches.clear();
    complete = false;
    budget.release(bytes);
    if (charged_to != nullptr) charged_to->release(bytes);
    charged_to = nullptr;
    bytes = 0;
  }
};

struct ViewNode {
  enum class Kind : std::uint8_t {
    SourceFile,
    SourceText,
    SourceRecords,
    Filter,
    Window,
    Tee,
    Save,
    Cache,
    Pipe,
  };

  Kind kind = Kind::SourceFile;
  std::shared_ptr<ViewNode> upstream;
  TraceContext* ctx = nullptr;

  // Source parameters.
  std::string path_or_text;  // SourceFile path / SourceText payload
  ViewSourceOptions source_options;
  std::shared_ptr<const std::vector<TraceRecord>> records;  // SourceRecords

  // Operator parameters.
  std::function<bool(const TraceRecord&)> predicate;  // Filter
  std::uint64_t lo = 0;                               // Window
  std::uint64_t hi = 0;
  TraceSink* side_sink = nullptr;  // Tee
  std::string save_path;           // Save
  ViewSaveOptions save_options;
  std::uint64_t cache_limit = 0;  // Cache
  ViewStageFactory factory;       // Pipe
  std::string label = "pipe";     // Pipe metric id

  std::unique_ptr<CacheMemo> memo;  // Cache only
};

}  // namespace detail

namespace {

using detail::BatchPtr;
using detail::ViewNode;

/// Records per batch pulled from a source; matches the streaming layer's
/// batch size so sinks see the same push_batch boundaries either way.
constexpr std::size_t kViewBatch = 4096;

[[nodiscard]] std::uint64_t batch_bytes(std::size_t records) noexcept {
  return static_cast<std::uint64_t>(records) * sizeof(TraceRecord);
}

/// Same read.* counter family the streaming layer folds; a null registry
/// is a no-op so uninstrumented runs stay byte-identical.
void fold_read_counters(obs::Registry* registry, std::uint64_t records,
                        std::uint64_t bytes, std::uint64_t fast_parses,
                        std::uint64_t slow_parses) {
  if (registry == nullptr) return;
  registry->counter("read.records").add(records);
  registry->counter("read.bytes").add(bytes);
  registry->counter("read.fast_parses").add(fast_parses);
  registry->counter("read.slow_parses").add(slow_parses);
}

// --- source cursors ---------------------------------------------------------

/// Pull-side of a source node: appends up to `max` records per call,
/// 0 = end of input. finish() folds the reader-side counters once the
/// stream is done (EOF or deadline stop).
class SourceCursor {
 public:
  virtual ~SourceCursor() = default;
  virtual std::size_t next_batch(std::vector<TraceRecord>& out,
                                 std::size_t max) = 0;
  virtual void finish(obs::Registry* registry) = 0;

  [[nodiscard]] bool have_pid() const noexcept { return have_pid_; }
  [[nodiscard]] std::uint64_t pid() const noexcept { return pid_; }

 protected:
  bool have_pid_ = false;
  std::uint64_t pid_ = 0;
};

/// Gleipnir text (file, stdin, .gz, or in-memory) through the reader's
/// bulk next_batch fast path.
class GleipnirCursor final : public SourceCursor {
 public:
  GleipnirCursor(TraceContext& ctx, std::unique_ptr<ByteSource> source,
                 DiagEngine* diags)
      : reader_(ctx, std::move(source), diags) {}
  GleipnirCursor(TraceContext& ctx, std::string_view text, DiagEngine* diags)
      : reader_(ctx, text, diags) {}

  std::size_t next_batch(std::vector<TraceRecord>& out,
                         std::size_t max) override {
    const std::size_t got = reader_.next_batch(out, max);
    records_ += got;
    return got;
  }

  void finish(obs::Registry* registry) override {
    if (reader_.saw_start()) {
      have_pid_ = true;
      pid_ = reader_.start_pid();
    }
    fold_read_counters(registry, records_, reader_.counters().bytes,
                       reader_.counters().fast_records,
                       reader_.counters().slow_records);
  }

 private:
  GleipnirReader reader_;
  std::uint64_t records_ = 0;
};

/// Sequential din / TDTB decode over an owned stream.
class RecordLoopCursor final : public SourceCursor {
 public:
  RecordLoopCursor(TraceContext& ctx, std::ifstream in, TraceFormat format,
                   DiagEngine* diags)
      : in_(std::move(in)) {
    if (format == TraceFormat::Din) {
      din_.emplace(ctx, in_, /*default_size=*/4, diags);
    } else {
      binary_.emplace(ctx, in_, diags);
      have_pid_ = true;
      pid_ = binary_->pid();
    }
  }

  std::size_t next_batch(std::vector<TraceRecord>& out,
                         std::size_t max) override {
    std::size_t got = 0;
    TraceRecord rec;
    while (got < max && (din_ ? din_->next(rec) : binary_->next(rec))) {
      // Copy, not move: `rec` is the reader's reusable output slot.
      out.push_back(rec);
      ++got;
    }
    records_ += got;
    return got;
  }

  void finish(obs::Registry* registry) override {
    if (registry == nullptr) return;
    registry->counter("read.records").add(records_);
    if (binary_) {
      registry->counter("read.bytes").add(binary_->bytes_read());
      if (binary_->version() >= kTdtbVersionFramed) {
        registry->counter("read.frames").add(binary_->frames_read());
        registry->counter("read.compressed_bytes")
            .add(binary_->compressed_bytes());
      }
    }
  }

 private:
  std::ifstream in_;
  std::optional<DinReader> din_;
  std::optional<BinaryTraceReader> binary_;
  std::uint64_t records_ = 0;
};

/// Inverts the push-only seekable TDTB v3 parallel decode into a pull
/// cursor: a producer thread runs stream_trace_file into a small bounded
/// hand-off queue. Batch boundaries (one per frame) and every counter,
/// diagnostic and fault draw are the streaming layer's own, so the DAG
/// source is behaviourally identical to the tools' previous direct call.
class IndexedBridgeCursor final : public SourceCursor {
 public:
  IndexedBridgeCursor(TraceContext& ctx, std::string path,
                      const StreamOptions& options) {
    producer_ = std::thread([this, &ctx, path = std::move(path), options] {
      struct QueueSink final : TraceSink {
        IndexedBridgeCursor* bridge;
        void on_record(const TraceRecord& rec) override {
          pending.push_back(rec);
          if (pending.size() >= kViewBatch) flush();
        }
        void push_batch(std::span<const TraceRecord> batch) override {
          flush();
          bridge->push({batch.begin(), batch.end()});
        }
        void on_end() override { flush(); }
        void flush() {
          if (pending.empty()) return;
          bridge->push(std::move(pending));
          pending = {};
        }
        std::vector<TraceRecord> pending;
      };
      try {
        QueueSink sink;
        sink.bridge = this;
        const StreamResult r = stream_trace_file(ctx, path, sink, options);
        std::lock_guard<std::mutex> lock(mu_);
        result_ = r;
      } catch (const Cancelled&) {
        // Consumer went away mid-stream; nothing to report.
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        done_ = true;
      }
      cv_.notify_all();
    });
  }

  ~IndexedBridgeCursor() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    cv_.notify_all();
    producer_.join();
  }

  std::size_t next_batch(std::vector<TraceRecord>& out,
                         std::size_t) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty() || done_; });
    if (queue_.empty()) {
      if (error_ != nullptr) std::rethrow_exception(error_);
      have_pid_ = true;
      pid_ = result_.pid;
      deadline_hit_ = result_.deadline_hit;
      return 0;
    }
    if (out.empty()) {
      out = std::move(queue_.front());
    } else {
      out.insert(out.end(), queue_.front().begin(), queue_.front().end());
    }
    queue_.pop_front();
    lock.unlock();
    cv_.notify_all();
    return out.size();
  }

  void finish(obs::Registry*) override {
    // The streaming layer folded read.* in the producer thread.
  }

  [[nodiscard]] bool deadline_hit() const noexcept { return deadline_hit_; }

 private:
  struct Cancelled {};

  void push(std::vector<TraceRecord>&& batch) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return queue_.size() < kQueueBatches || cancelled_; });
    if (cancelled_) throw Cancelled{};
    queue_.push_back(std::move(batch));
    lock.unlock();
    cv_.notify_all();
  }

  static constexpr std::size_t kQueueBatches = 4;

  std::thread producer_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<TraceRecord>> queue_;
  bool done_ = false;
  bool cancelled_ = false;
  bool deadline_hit_ = false;
  std::exception_ptr error_;
  StreamResult result_;
};

/// In-memory records, sliced into kViewBatch batches.
class RecordsCursor final : public SourceCursor {
 public:
  explicit RecordsCursor(std::shared_ptr<const std::vector<TraceRecord>> recs)
      : records_(std::move(recs)) {}

  std::size_t next_batch(std::vector<TraceRecord>& out,
                         std::size_t max) override {
    const std::size_t n = std::min(max, records_->size() - pos_);
    out.insert(out.end(), records_->begin() + static_cast<std::ptrdiff_t>(pos_),
               records_->begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return n;
  }

  void finish(obs::Registry*) override {}

 private:
  std::shared_ptr<const std::vector<TraceRecord>> records_;
  std::size_t pos_ = 0;
};

/// Opens the pull cursor for a source node, dispatching exactly like
/// stream_trace_file so diagnostics and counters match the push path.
/// `eval` supplies the per-run registry/governor the bridge's inner
/// streaming pass needs (the cursor folds read.* itself otherwise).
std::unique_ptr<SourceCursor> open_cursor(ViewNode& node,
                                          const EvalOptions& eval) {
  switch (node.kind) {
    case ViewNode::Kind::SourceText:
      return std::make_unique<GleipnirCursor>(*node.ctx, node.path_or_text,
                                              node.source_options.diags);
    case ViewNode::Kind::SourceRecords:
      return std::make_unique<RecordsCursor>(node.records);
    case ViewNode::Kind::SourceFile:
      break;
    default:
      throw_config_error("view node is not a source");
  }
  const std::string& path = node.path_or_text;
  const ViewSourceOptions& so = node.source_options;
  const TraceFormat format = guess_trace_format(path);
  if (format == TraceFormat::Gleipnir) {
    return std::make_unique<GleipnirCursor>(
        *node.ctx, open_trace_byte_source(path, so.ingest), so.diags);
  }
  if (format == TraceFormat::Tdtb && path != "-") {
    if (const std::unique_ptr<FileView> view = FileView::open(path)) {
      const std::optional<TdtbContainerInfo> info = probe_tdtb(view->bytes());
      if (info && info->has_index) {
        StreamOptions options;
        options.diags = so.diags;
        options.registry = eval.registry;
        options.governor = eval.governor;
        options.ingest = so.ingest;
        options.jobs = so.jobs;
        options.clamp_jobs = so.clamp_jobs;
        return std::make_unique<IndexedBridgeCursor>(*node.ctx, path, options);
      }
    }
  }
  std::ifstream in(path, std::ios::binary | std::ios::in);
  if (!in) {
    throw_io_error("cannot open trace file '" + path + "'");
  }
  return std::make_unique<RecordLoopCursor>(*node.ctx, std::move(in), format,
                                            so.diags);
}

[[nodiscard]] std::string_view kind_label(const ViewNode& node) noexcept {
  switch (node.kind) {
    case ViewNode::Kind::SourceFile:
    case ViewNode::Kind::SourceText:
    case ViewNode::Kind::SourceRecords:
      return "source";
    case ViewNode::Kind::Filter:
      return "filter";
    case ViewNode::Kind::Window:
      return "window";
    case ViewNode::Kind::Tee:
      return "tee";
    case ViewNode::Kind::Save:
      return "save";
    case ViewNode::Kind::Cache:
      return "cache";
    case ViewNode::Kind::Pipe:
      return node.label;
  }
  return "node";
}

// --- evaluation -------------------------------------------------------------

/// Per-run state of one DAG node.
struct Stage {
  ViewNode* node = nullptr;
  Stage* parent = nullptr;
  std::vector<Stage*> children;    // discovery order
  std::vector<TraceSink*> sinks;   // registration order
  StageStats stats;

  std::unique_ptr<SourceCursor> cursor;  // roots
  std::unique_ptr<ViewStage> stage;      // Pipe
  std::ofstream save_out;                // Save
  std::optional<WriterSink> save_text;
  std::optional<BinaryTraceSink> save_binary;
  std::uint64_t seen = 0;  // Window input records
  bool memo_serving = false;
  bool memo_filling = false;
  bool ended = false;
};

class Evaluator {
 public:
  explicit Evaluator(const EvalOptions& options) : options_(options) {}

  Stage* ensure_stage(const std::shared_ptr<ViewNode>& node) {
    if (const auto it = by_node_.find(node.get()); it != by_node_.end()) {
      return it->second;
    }
    auto stage = std::make_unique<Stage>();
    Stage* s = stage.get();
    s->node = node.get();
    const bool memo_root = node->kind == ViewNode::Kind::Cache &&
                           node->memo != nullptr && node->memo->complete;
    s->memo_serving = memo_root;
    if (!memo_root && node->upstream != nullptr) {
      s->parent = ensure_stage(node->upstream);
      s->parent->children.push_back(s);
    }
    s->stats.id = std::string(kind_label(*node)) + std::to_string(next_id_++);
    by_node_.emplace(node.get(), s);
    stages_.push_back(std::move(stage));
    if (s->parent == nullptr) roots_.push_back(s);
    return s;
  }

  GraphResult run() {
    for (const auto& s : stages_) prepare(*s);
    for (Stage* root : roots_) {
      if (root->memo_serving) {
        run_memo_root(*root);
      } else {
        run_source_root(*root);
      }
      end_stage(*root);
    }
    finalize_metrics();
    return std::move(result_);
  }

 private:
  [[nodiscard]] Governor* governor() const noexcept {
    return options_.governor;
  }

  void prepare(Stage& s) {
    ViewNode& n = *s.node;
    switch (n.kind) {
      case ViewNode::Kind::Pipe:
        s.stage = n.factory(*n.ctx);
        break;
      case ViewNode::Kind::Save: {
        const bool binary = ends_with(n.save_path, ".tdtb");
        s.save_out.open(n.save_path, binary ? std::ios::binary | std::ios::out
                                            : std::ios::out);
        if (!s.save_out) {
          throw_io_error("cannot open '" + n.save_path + "' for writing");
        }
        if (binary) {
          s.save_binary.emplace(*n.ctx, s.save_out, n.save_options.pid,
                                n.save_options.binary);
        } else {
          s.save_text.emplace(*n.ctx, s.save_out, n.save_options.pid);
        }
        break;
      }
      case ViewNode::Kind::Cache: {
        if (s.memo_serving) break;
        if (n.memo != nullptr && !n.memo->complete) n.memo->drop();
        if (n.cache_limit == 0) break;  // never retains: pure recompute
        if (n.memo == nullptr) n.memo = std::make_unique<detail::CacheMemo>();
        n.memo->budget.set_limit(n.cache_limit);
        s.memo_filling = true;
        break;
      }
      default:
        break;
    }
  }

  void run_source_root(Stage& root) {
    root.cursor = open_cursor(*root.node, options_);
    for (;;) {
      std::vector<TraceRecord> batch;
      batch.reserve(kViewBatch);
      if (root.cursor->next_batch(batch, kViewBatch) == 0) break;
      result_.records += batch.size();
      emit_output(root, std::make_shared<std::vector<TraceRecord>>(
                            std::move(batch)));
      if (governor() != nullptr && governor()->expired()) {
        aborted_ = true;
        break;
      }
      if (root.sinks.empty() && !root.children.empty() && satisfied(root)) {
        break;  // every consumer has all it will ever take (lazy cut-off)
      }
    }
    root.cursor->finish(options_.registry);
    if (root.cursor->have_pid() && !have_pid_) {
      have_pid_ = true;
      result_.pid = root.cursor->pid();
    }
  }

  void run_memo_root(Stage& root) {
    detail::CacheMemo& memo = *root.node->memo;
    for (const BatchPtr& batch : memo.batches) {
      ++memo.hits_total;
      ++root.stats.cache_hits;
      emit_output(root, batch);
      if (governor() != nullptr && governor()->expired()) {
        aborted_ = true;
        break;
      }
      if (root.sinks.empty() && !root.children.empty() && satisfied(root)) {
        break;
      }
    }
  }

  /// True when nothing below `s` can consume another record: a window
  /// that has emitted its whole range, or a node whose consumers are all
  /// satisfied. Nodes with direct sinks (or with side effects spanning
  /// the full stream — filter, tee, save, pipe, cache) are never
  /// satisfied themselves.
  [[nodiscard]] static bool satisfied(const Stage& s) {
    if (s.node->kind == ViewNode::Kind::Window && s.seen >= s.node->hi) {
      return true;
    }
    if (s.node->kind != ViewNode::Kind::SourceFile &&
        s.node->kind != ViewNode::Kind::SourceText &&
        s.node->kind != ViewNode::Kind::SourceRecords &&
        s.node->kind != ViewNode::Kind::Cache) {
      return false;
    }
    if (!s.sinks.empty() || s.children.empty()) return false;
    return std::all_of(s.children.begin(), s.children.end(),
                       [](const Stage* c) { return satisfied_down(*c); });
  }

  [[nodiscard]] static bool satisfied_down(const Stage& s) {
    if (s.node->kind == ViewNode::Kind::Window && s.seen >= s.node->hi) {
      return true;
    }
    if (!s.sinks.empty()) return false;
    // Tee/save/cache side effects and filter/pipe outputs only matter to
    // someone below; with no consumers left unsatisfied the subtree is
    // done — except stages whose side effect itself spans the stream.
    if (s.node->kind == ViewNode::Kind::Tee ||
        s.node->kind == ViewNode::Kind::Save ||
        s.node->kind == ViewNode::Kind::Pipe || s.memo_filling) {
      return false;
    }
    if (s.children.empty()) return false;
    return std::all_of(s.children.begin(), s.children.end(),
                       [](const Stage* c) { return satisfied_down(*c); });
  }

  /// Feeds one input batch into `s`, applying its operator and passing
  /// any output to its sinks and children.
  void accept(Stage& s, const BatchPtr& in) {
    ViewNode& n = *s.node;
    switch (n.kind) {
      case ViewNode::Kind::Filter: {
        auto out = std::make_shared<std::vector<TraceRecord>>();
        out->reserve(in->size());
        for (const TraceRecord& rec : *in) {
          if (n.predicate(rec)) out->push_back(rec);
        }
        emit_output(s, std::move(out));
        return;
      }
      case ViewNode::Kind::Window: {
        const std::uint64_t first = s.seen;
        s.seen += in->size();
        const std::uint64_t take_lo = std::max(first, n.lo);
        const std::uint64_t take_hi = std::min(s.seen, n.hi);
        if (take_lo >= take_hi) return;
        if (take_lo == first && take_hi == s.seen) {
          emit_output(s, in);  // whole batch inside the window: zero copy
          return;
        }
        const auto b =
            in->begin() + static_cast<std::ptrdiff_t>(take_lo - first);
        const auto e =
            in->begin() + static_cast<std::ptrdiff_t>(take_hi - first);
        emit_output(s, std::make_shared<std::vector<TraceRecord>>(b, e));
        return;
      }
      case ViewNode::Kind::Tee:
        n.side_sink->push_batch(*in);
        emit_output(s, in);
        return;
      case ViewNode::Kind::Save:
        if (s.save_binary) {
          s.save_binary->push_batch(*in);
        } else {
          s.save_text->push_batch(*in);
        }
        emit_output(s, in);
        return;
      case ViewNode::Kind::Cache:
        if (s.memo_filling) retain(s, in);
        emit_output(s, in);
        return;
      case ViewNode::Kind::Pipe: {
        auto out = std::make_shared<std::vector<TraceRecord>>();
        s.stage->on_batch(*in, *out);
        emit_output(s, std::move(out));
        return;
      }
      default:
        emit_output(s, in);
        return;
    }
  }

  /// Hands one output batch of `s` to its sinks (registration order)
  /// then its child nodes (discovery order). Empty batches are dropped —
  /// sinks only ever see non-empty push_batch calls, like the streaming
  /// layer.
  void emit_output(Stage& s, BatchPtr out) {
    if (out == nullptr || out->empty()) return;
    ++s.stats.pulls;
    s.stats.records += out->size();
    for (std::size_t i = 0; i < s.sinks.size(); ++i) {
      // A sole consumer of a uniquely owned batch may steal the storage.
      if (i + 1 == s.sinks.size() && s.children.empty() &&
          out.use_count() == 1) {
        s.sinks[i]->push_batch_owned(std::move(*out));
        return;
      }
      s.sinks[i]->push_batch(*out);
    }
    for (Stage* child : s.children) accept(*child, out);
  }

  /// Appends a batch to the node's memo, spilling (drop everything,
  /// return all charges, stop retaining) on either budget's denial.
  void retain(Stage& s, const BatchPtr& in) {
    detail::CacheMemo& memo = *s.node->memo;
    const std::uint64_t bytes = batch_bytes(in->size());
    if (!memo.budget.try_charge(bytes)) {
      spill(s);
      return;
    }
    Budget* shared =
        governor() != nullptr ? &governor()->memory : memo.charged_to;
    if (shared != nullptr && !shared->try_charge(bytes)) {
      memo.budget.release(bytes);
      spill(s);
      return;
    }
    memo.charged_to = shared;
    memo.bytes += bytes;
    memo.batches.push_back(in);
  }

  void spill(Stage& s) {
    s.node->memo->drop();
    s.memo_filling = false;
  }

  /// End-of-stream wave: flush the operator, finish the sinks (exactly
  /// one on_end each), then recurse. Mirrors TeeSink::on_end ordering.
  void end_stage(Stage& s) {
    if (s.ended) return;
    s.ended = true;
    switch (s.node->kind) {
      case ViewNode::Kind::Pipe: {
        auto tail = std::make_shared<std::vector<TraceRecord>>();
        s.stage->on_end(*tail);
        emit_output(s, std::move(tail));
        break;
      }
      case ViewNode::Kind::Tee:
        s.node->side_sink->on_end();
        break;
      case ViewNode::Kind::Save:
        if (s.save_binary) {
          s.save_binary->on_end();
        } else {
          s.save_text->on_end();
        }
        break;
      case ViewNode::Kind::Cache:
        if (s.memo_filling && !aborted_) s.node->memo->complete = true;
        break;
      default:
        break;
    }
    for (TraceSink* sink : s.sinks) sink->on_end();
    for (Stage* child : s.children) end_stage(*child);
  }

  void finalize_metrics() {
    result_.deadline_hit =
        governor() != nullptr && governor()->deadline_hit();
    for (const auto& s : stages_) {
      if (s->node->kind == ViewNode::Kind::Cache && s->node->memo != nullptr) {
        s->stats.cache_bytes = s->node->memo->bytes;
      }
      if (options_.registry != nullptr) {
        obs::Registry& reg = *options_.registry;
        reg.counter("view." + s->stats.id + ".pulls").add(s->stats.pulls);
        if (s->node->kind == ViewNode::Kind::Cache) {
          reg.counter("view." + s->stats.id + ".cache_hits")
              .add(s->stats.cache_hits);
          reg.gauge("view." + s->stats.id + ".cache_bytes")
              .set(static_cast<double>(s->stats.cache_bytes));
        }
      }
      result_.stages.push_back(s->stats);
    }
  }

  EvalOptions options_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::unordered_map<ViewNode*, Stage*> by_node_;
  std::vector<Stage*> roots_;
  std::size_t next_id_ = 0;
  GraphResult result_;
  bool have_pid_ = false;
  bool aborted_ = false;
};

}  // namespace

// --- View builders ----------------------------------------------------------

const StageStats* GraphResult::stage(std::string_view id) const noexcept {
  for (const StageStats& s : stages) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

View View::source(TraceContext& ctx, std::string path,
                  ViewSourceOptions options) {
  auto node = std::make_shared<ViewNode>();
  node->kind = ViewNode::Kind::SourceFile;
  node->ctx = &ctx;
  node->path_or_text = std::move(path);
  node->source_options = options;
  return View(std::move(node));
}

View View::source_text(TraceContext& ctx, std::string text,
                       ViewSourceOptions options) {
  auto node = std::make_shared<ViewNode>();
  node->kind = ViewNode::Kind::SourceText;
  node->ctx = &ctx;
  node->path_or_text = std::move(text);
  node->source_options = options;
  return View(std::move(node));
}

View View::source_records(TraceContext& ctx,
                          std::vector<TraceRecord> records) {
  auto node = std::make_shared<ViewNode>();
  node->kind = ViewNode::Kind::SourceRecords;
  node->ctx = &ctx;
  node->records =
      std::make_shared<const std::vector<TraceRecord>>(std::move(records));
  return View(std::move(node));
}

View View::derive(detail::ViewNode&& node) const {
  if (node_ == nullptr) throw_config_error("view has no source");
  auto n = std::make_shared<ViewNode>(std::move(node));
  n->upstream = node_;
  n->ctx = node_->ctx;
  return View(std::move(n));
}

View View::filter(std::function<bool(const TraceRecord&)> pred) const {
  ViewNode n;
  n.kind = ViewNode::Kind::Filter;
  n.predicate = std::move(pred);
  return derive(std::move(n));
}

View View::window(std::uint64_t lo, std::uint64_t hi) const {
  ViewNode n;
  n.kind = ViewNode::Kind::Window;
  n.lo = lo;
  n.hi = std::max(lo, hi);
  return derive(std::move(n));
}

View View::tee(TraceSink& sink) const {
  ViewNode n;
  n.kind = ViewNode::Kind::Tee;
  n.side_sink = &sink;
  return derive(std::move(n));
}

View View::save(std::string path, ViewSaveOptions options) const {
  ViewNode n;
  n.kind = ViewNode::Kind::Save;
  n.save_path = std::move(path);
  n.save_options = options;
  return derive(std::move(n));
}

View View::cache(std::uint64_t bytes) const {
  ViewNode n;
  n.kind = ViewNode::Kind::Cache;
  n.cache_limit = bytes;
  return derive(std::move(n));
}

View View::pipe(ViewStageFactory factory, std::string label) const {
  ViewNode n;
  n.kind = ViewNode::Kind::Pipe;
  n.factory = std::move(factory);
  n.label = std::move(label);
  return derive(std::move(n));
}

GraphResult View::drain(TraceSink& sink, const EvalOptions& options) const {
  Graph g;
  g.add_sink(*this, sink);
  return g.run(options);
}

std::vector<TraceRecord> View::collect(const EvalOptions& options) const {
  VectorSink sink;
  drain(sink, options);
  return sink.take();
}

// --- Graph ------------------------------------------------------------------

void Graph::add_sink(const View& v, TraceSink& sink) {
  if (v.node_ == nullptr) throw_config_error("view has no source");
  sinks_.emplace_back(v.node_, &sink);
}

GraphResult Graph::run(const EvalOptions& options) {
  Evaluator eval(options);
  for (const auto& [node, sink] : sinks_) {
    eval.ensure_stage(node)->sinks.push_back(sink);
  }
  return eval.run();
}

}  // namespace tdt::trace
