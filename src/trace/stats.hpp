// Aggregate statistics over a trace: access-kind mix, per-function and
// per-variable counts, address footprint. This is the "rudimentary
// analysis" of the paper's §I, and feeds the `traceinfo` tool.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/record.hpp"

namespace tdt::trace {

/// Counts for one function or variable.
struct AccessCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t modifies = 0;
  std::uint64_t other = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return loads + stores + modifies + other;
  }

  void add(AccessKind kind) noexcept {
    switch (kind) {
      case AccessKind::Load: ++loads; break;
      case AccessKind::Store: ++stores; break;
      case AccessKind::Modify: ++modifies; break;
      default: ++other; break;
    }
  }

  friend bool operator==(const AccessCounts&, const AccessCounts&) = default;
};

/// Whole-trace statistics.
///
/// The address footprint is tracked at block granularity: one set entry
/// per touched `block_size`-aligned block, not one per touched byte, so
/// memory stays proportional to the trace's working set in cache lines
/// even for multi-gigabyte traces.
class TraceStats {
 public:
  static constexpr std::uint64_t kDefaultBlockSize = 64;

  /// `block_size` selects the footprint granularity (0 is treated as 1,
  /// i.e. per-byte tracking).
  explicit TraceStats(std::uint64_t block_size = kDefaultBlockSize);

  /// Accumulates one record.
  void add(const TraceRecord& rec);

  /// Accumulates a whole trace.
  void add_all(std::span<const TraceRecord> records);

  [[nodiscard]] const AccessCounts& totals() const noexcept { return totals_; }

  /// Per-function counts keyed by interned function symbol.
  [[nodiscard]] const std::unordered_map<Symbol, AccessCounts>& by_function()
      const noexcept {
    return by_function_;
  }

  /// Per-variable counts keyed by the variable's *base* symbol (all
  /// elements of an aggregate accumulate under one name).
  [[nodiscard]] const std::unordered_map<Symbol, AccessCounts>& by_variable()
      const noexcept {
    return by_variable_;
  }

  /// Footprint granularity chosen at construction.
  [[nodiscard]] std::uint64_t block_size() const noexcept {
    return block_size_;
  }

  /// Number of distinct aligned blocks of block_size() bytes touched
  /// (the trace's cache footprint at that block size).
  [[nodiscard]] std::uint64_t footprint_blocks() const noexcept {
    return blocks_.size();
  }

  [[nodiscard]] std::uint64_t min_address() const noexcept { return min_addr_; }
  [[nodiscard]] std::uint64_t max_address() const noexcept { return max_addr_; }
  [[nodiscard]] std::uint64_t records() const noexcept {
    return totals_.total();
  }

  /// Renders a human-readable report (used by `traceinfo`).
  [[nodiscard]] std::string report(const TraceContext& ctx,
                                   std::size_t top_n = 16) const;

 private:
  AccessCounts totals_;
  std::unordered_map<Symbol, AccessCounts> by_function_;
  std::unordered_map<Symbol, AccessCounts> by_variable_;
  std::uint64_t block_size_;
  std::unordered_set<std::uint64_t> blocks_;  // address / block_size_
  std::uint64_t min_addr_ = ~0ULL;
  std::uint64_t max_addr_ = 0;
};

}  // namespace tdt::trace
