#include "trace/stats.hpp"

#include <algorithm>

#include "util/table.hpp"

namespace tdt::trace {

void TraceStats::add(const TraceRecord& rec) {
  totals_.add(rec.kind);
  by_function_[rec.function].add(rec.kind);
  if (!rec.var.empty()) {
    by_variable_[rec.var.base].add(rec.kind);
  }
  for (std::uint32_t b = 0; b < rec.size; ++b) {
    addresses_.insert(rec.address + b);
  }
  min_addr_ = std::min(min_addr_, rec.address);
  max_addr_ = std::max(max_addr_, rec.address + rec.size - 1);
}

void TraceStats::add_all(std::span<const TraceRecord> records) {
  for (const TraceRecord& rec : records) add(rec);
}

std::uint64_t TraceStats::footprint_blocks(std::uint64_t block_size) const {
  std::unordered_set<std::uint64_t> blocks;
  for (std::uint64_t a : addresses_) {
    blocks.insert(a / block_size);
  }
  return blocks.size();
}

std::string TraceStats::report(const TraceContext& ctx,
                               std::size_t top_n) const {
  std::string out;
  out += "records: " + std::to_string(records()) + "\n";
  out += "  loads: " + std::to_string(totals_.loads) +
         "  stores: " + std::to_string(totals_.stores) +
         "  modifies: " + std::to_string(totals_.modifies) +
         "  other: " + std::to_string(totals_.other) + "\n";
  out += "distinct bytes touched: " + std::to_string(distinct_addresses()) +
         "\n";
  if (!addresses_.empty()) {
    out += "address range: 0x" + std::to_string(min_addr_) + " .. 0x" +
           std::to_string(max_addr_) + "\n";
  }

  auto emit_top = [&](const char* title,
                      const std::unordered_map<Symbol, AccessCounts>& map) {
    std::vector<std::pair<Symbol, AccessCounts>> rows(map.begin(), map.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.total() != b.second.total()) {
        return a.second.total() > b.second.total();
      }
      return a.first.id() < b.first.id();
    });
    if (rows.size() > top_n) rows.resize(top_n);
    TextTable t({title, "loads", "stores", "modifies", "total"});
    for (const auto& [sym, counts] : rows) {
      t.add(std::string(ctx.name(sym)), counts.loads, counts.stores,
            counts.modifies, counts.total());
    }
    out += t.render();
  };

  emit_top("function", by_function_);
  emit_top("variable", by_variable_);
  return out;
}

}  // namespace tdt::trace
