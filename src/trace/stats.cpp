#include "trace/stats.hpp"

#include <algorithm>

#include "util/string_util.hpp"
#include "util/table.hpp"

namespace tdt::trace {

TraceStats::TraceStats(std::uint64_t block_size)
    : block_size_(block_size == 0 ? 1 : block_size) {}

void TraceStats::add(const TraceRecord& rec) {
  totals_.add(rec.kind);
  by_function_[rec.function].add(rec.kind);
  if (!rec.var.empty()) {
    by_variable_[rec.var.base].add(rec.kind);
  }
  if (rec.size == 0) return;
  const std::uint64_t last = rec.address + rec.size - 1;
  for (std::uint64_t b = rec.address / block_size_; b <= last / block_size_;
       ++b) {
    blocks_.insert(b);
  }
  min_addr_ = std::min(min_addr_, rec.address);
  max_addr_ = std::max(max_addr_, last);
}

void TraceStats::add_all(std::span<const TraceRecord> records) {
  for (const TraceRecord& rec : records) add(rec);
}

std::string TraceStats::report(const TraceContext& ctx,
                               std::size_t top_n) const {
  std::string out;
  out += "records: " + std::to_string(records()) + "\n";
  out += "  loads: " + std::to_string(totals_.loads) +
         "  stores: " + std::to_string(totals_.stores) +
         "  modifies: " + std::to_string(totals_.modifies) +
         "  other: " + std::to_string(totals_.other) + "\n";
  out += "footprint at " + std::to_string(block_size_) +
         "-byte blocks: " + std::to_string(footprint_blocks()) + " blocks (" +
         format_bytes(footprint_blocks() * block_size_) + ")\n";
  if (!blocks_.empty()) {
    out += "address range: 0x" + to_hex(min_addr_) + " .. 0x" +
           to_hex(max_addr_) + "\n";
  }

  auto emit_top = [&](const char* title,
                      const std::unordered_map<Symbol, AccessCounts>& map) {
    std::vector<std::pair<Symbol, AccessCounts>> rows(map.begin(), map.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.total() != b.second.total()) {
        return a.second.total() > b.second.total();
      }
      return a.first.id() < b.first.id();
    });
    if (rows.size() > top_n) rows.resize(top_n);
    TextTable t({title, "loads", "stores", "modifies", "total"});
    for (const auto& [sym, counts] : rows) {
      t.add(std::string(ctx.name(sym)), counts.loads, counts.stores,
            counts.modifies, counts.total());
    }
    out += t.render();
  };

  emit_top("function", by_function_);
  emit_top("variable", by_variable_);
  return out;
}

}  // namespace tdt::trace
