// Format-dispatching streaming trace input. One call wires any trace
// file — Gleipnir text, classic din, or TDTB binary — into a TraceSink
// pipeline record-by-record, so recovery and simulation work on traces
// larger than memory (no whole-file slurp, no whole-trace vector).
#pragma once

#include <istream>
#include <string>

#include "trace/sink.hpp"
#include "trace/source.hpp"
#include "util/diag.hpp"
#include "util/governor.hpp"
#include "util/obs.hpp"

namespace tdt::trace {

/// On-disk trace encodings understood by the pipeline.
enum class TraceFormat : std::uint8_t { Gleipnir, Din, Tdtb };

/// Picks the format from the file name: ".tdtb" -> Tdtb, ".din" -> Din,
/// anything else -> Gleipnir text.
[[nodiscard]] TraceFormat guess_trace_format(const std::string& path) noexcept;

/// What a streaming pass delivered.
struct StreamResult {
  std::uint64_t records = 0;  ///< records pushed into the sink
  std::uint64_t pid = 0;      ///< PID from START marker / binary header
  /// The --deadline expired mid-stream: reading stopped at a batch
  /// boundary, sinks were finished normally, `records` counts the prefix
  /// actually delivered. The tool must report partial results and exit
  /// with at least 1 (docs/robustness.md exit-code contract).
  bool deadline_hit = false;
};

/// Streams every record of `in` into `sink` (batched push_batch calls in
/// trace order, then one on_end). `diags` selects the error-recovery
/// policy (nullptr = strict fail-fast). When `registry` is non-null the
/// reader-side ingestion counters (read.records, read.bytes,
/// read.fast_parses, read.slow_parses) are folded into it after the pass;
/// a null registry changes nothing. When `governor` is non-null its
/// deadline is checked at batch granularity; expiry ends the stream
/// early with deadline_hit set (sinks still get a clean on_end).
StreamResult stream_trace(TraceContext& ctx, std::istream& in,
                          TraceFormat format, TraceSink& sink,
                          DiagEngine* diags = nullptr,
                          obs::Registry* registry = nullptr,
                          Governor* governor = nullptr);

/// Streams an in-memory Gleipnir text trace into `sink` without copying
/// it into a stream: lines are tokenized in place (the reader's zero-copy
/// fast path). `text` must stay alive for the duration of the call.
StreamResult stream_trace_text(TraceContext& ctx, std::string_view text,
                               TraceSink& sink, DiagEngine* diags = nullptr,
                               obs::Registry* registry = nullptr,
                               Governor* governor = nullptr);

/// Knobs for stream_trace_file beyond the positional basics.
struct StreamOptions {
  DiagEngine* diags = nullptr;
  obs::Registry* registry = nullptr;
  Governor* governor = nullptr;
  IngestMode ingest = IngestMode::Auto;
  /// Worker threads decoding TDTB v3 frames concurrently when the
  /// container carries a valid frame index (--jobs N). Frames publish
  /// to the sink in frame order through one thread, so any job count
  /// produces output byte-identical to the sequential decode; <= 1 runs
  /// the same seekable path with a single worker. Ignored for text, din,
  /// v1/v2 blobs, and v3 files whose index fails validation (those fall
  /// back to the sequential reader and its diagnostics). The effective
  /// worker count is clamped to the hardware concurrency (see
  /// clamp_jobs); one effective worker decodes inline with no threads
  /// at all.
  int jobs = 1;
  /// Clamp the decode workers to std::thread::hardware_concurrency().
  /// Oversubscribing a small machine only adds scheduling overhead;
  /// tests disable the clamp to exercise the threaded machinery on any
  /// host. Output is byte-identical either way.
  bool clamp_jobs = true;
};

/// Opens `path`, guesses the format from its extension, and streams it
/// into `sink`. Files open in binary mode for every format. Gleipnir
/// text reads through the byte-source layer (trace/source.hpp):
/// `options.ingest` picks the backend, "-" streams stdin through the
/// overlapped reader, and gzip'd text inflates transparently. A TDTB v3
/// container with a valid frame index decodes via the seekable parallel
/// path (`options.jobs`). Throws Error{Io} when the file cannot be
/// opened.
StreamResult stream_trace_file(TraceContext& ctx, const std::string& path,
                               TraceSink& sink, const StreamOptions& options);

/// Positional-argument convenience overload (jobs = 1).
StreamResult stream_trace_file(TraceContext& ctx, const std::string& path,
                               TraceSink& sink, DiagEngine* diags = nullptr,
                               obs::Registry* registry = nullptr,
                               Governor* governor = nullptr,
                               IngestMode ingest = IngestMode::Auto);

/// Pass-through sink feeding a --progress heartbeat: forwards every
/// record/batch downstream unchanged and ticks the heartbeat per batch,
/// calling finish() at on_end. Neither pointer is owned.
class ProgressSink final : public TraceSink {
 public:
  ProgressSink(TraceSink& downstream, obs::Heartbeat& heartbeat)
      : downstream_(&downstream), heartbeat_(&heartbeat) {}

  void on_record(const TraceRecord& rec) override {
    heartbeat_->tick(1);
    downstream_->on_record(rec);
  }
  void push_batch(std::span<const TraceRecord> batch) override {
    heartbeat_->tick(batch.size());
    downstream_->push_batch(batch);
  }
  void push_batch_owned(std::vector<TraceRecord>&& batch) override {
    heartbeat_->tick(batch.size());
    downstream_->push_batch_owned(std::move(batch));
  }
  void on_end() override {
    heartbeat_->finish();
    downstream_->on_end();
  }

 private:
  TraceSink* downstream_;
  obs::Heartbeat* heartbeat_;
};

}  // namespace tdt::trace
