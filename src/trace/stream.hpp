// Format-dispatching streaming trace input. One call wires any trace
// file — Gleipnir text, classic din, or TDTB binary — into a TraceSink
// pipeline record-by-record, so recovery and simulation work on traces
// larger than memory (no whole-file slurp, no whole-trace vector).
#pragma once

#include <istream>
#include <string>

#include "trace/sink.hpp"
#include "util/diag.hpp"

namespace tdt::trace {

/// On-disk trace encodings understood by the pipeline.
enum class TraceFormat : std::uint8_t { Gleipnir, Din, Tdtb };

/// Picks the format from the file name: ".tdtb" -> Tdtb, ".din" -> Din,
/// anything else -> Gleipnir text.
[[nodiscard]] TraceFormat guess_trace_format(const std::string& path) noexcept;

/// What a streaming pass delivered.
struct StreamResult {
  std::uint64_t records = 0;  ///< records pushed into the sink
  std::uint64_t pid = 0;      ///< PID from START marker / binary header
};

/// Streams every record of `in` into `sink` (batched push_batch calls in
/// trace order, then one on_end). `diags` selects the error-recovery
/// policy (nullptr = strict fail-fast).
StreamResult stream_trace(TraceContext& ctx, std::istream& in,
                          TraceFormat format, TraceSink& sink,
                          DiagEngine* diags = nullptr);

/// Streams an in-memory Gleipnir text trace into `sink` without copying
/// it into a stream: lines are tokenized in place (the reader's zero-copy
/// fast path). `text` must stay alive for the duration of the call.
StreamResult stream_trace_text(TraceContext& ctx, std::string_view text,
                               TraceSink& sink, DiagEngine* diags = nullptr);

/// Opens `path`, guesses the format from its extension, and streams it
/// into `sink`. Throws Error{Io} when the file cannot be opened.
StreamResult stream_trace_file(TraceContext& ctx, const std::string& path,
                               TraceSink& sink, DiagEngine* diags = nullptr);

}  // namespace tdt::trace
