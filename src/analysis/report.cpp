#include "analysis/report.hpp"

#include <cmath>
#include <fstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace tdt::analysis {

std::string set_table(const SetActivityCollector& collector,
                      const std::vector<std::string>& variables,
                      bool skip_empty_sets) {
  std::vector<std::string> header{"set"};
  for (const std::string& v : variables) {
    header.push_back(v + ":hits");
    header.push_back(v + ":misses");
  }
  TextTable t(std::move(header));
  for (std::uint64_t s = 0; s < collector.num_sets(); ++s) {
    std::vector<std::string> row{std::to_string(s)};
    bool any = false;
    for (const std::string& v : variables) {
      const SetCell& cell = collector.series(v)[s];
      any = any || cell.hits != 0 || cell.misses != 0;
      row.push_back(std::to_string(cell.hits));
      row.push_back(std::to_string(cell.misses));
    }
    if (any || !skip_empty_sets) t.add_row(std::move(row));
  }
  return t.render();
}

std::string set_csv(const SetActivityCollector& collector,
                    const std::vector<std::string>& variables) {
  std::string out = "set";
  for (const std::string& v : variables) {
    out += "," + v + "_hits," + v + "_misses";
  }
  out += '\n';
  for (std::uint64_t s = 0; s < collector.num_sets(); ++s) {
    out += std::to_string(s);
    for (const std::string& v : variables) {
      const SetCell& cell = collector.series(v)[s];
      out += ',' + std::to_string(cell.hits) + ',' +
             std::to_string(cell.misses);
    }
    out += '\n';
  }
  return out;
}

void write_gnuplot(const SetActivityCollector& collector,
                   const std::vector<std::string>& variables,
                   const std::string& prefix, const std::string& title) {
  {
    std::ofstream dat(prefix + ".dat");
    if (!dat) throw_io_error("cannot write '" + prefix + ".dat'");
    dat << "# " << title << '\n' << set_csv(collector, variables);
  }
  std::ofstream gp(prefix + ".gp");
  if (!gp) throw_io_error("cannot write '" + prefix + ".gp'");
  gp << "set title '" << title << "'\n"
     << "set datafile separator ','\n"
     << "set xlabel 'Cache Sets'\n"
     << "set logscale y\n"
     << "set key outside\n"
     << "set multiplot layout 2,1\n"
     << "set ylabel 'Hits'\n"
     << "plot ";
  for (std::size_t i = 0; i < variables.size(); ++i) {
    if (i != 0) gp << ", ";
    gp << "'" << prefix << ".dat' using 1:" << (2 + 2 * i)
       << " with linespoints title '" << variables[i] << "'";
  }
  gp << "\nset ylabel 'Misses'\nplot ";
  for (std::size_t i = 0; i < variables.size(); ++i) {
    if (i != 0) gp << ", ";
    gp << "'" << prefix << ".dat' using 1:" << (3 + 2 * i)
       << " with linespoints title '" << variables[i] << "'";
  }
  gp << "\nunset multiplot\n";
  if (!gp) throw_io_error("write to '" + prefix + ".gp' failed");
}

namespace {

std::string bar(std::uint64_t value, std::uint64_t max_value,
                std::size_t width) {
  if (value == 0 || max_value == 0) return "";
  // Log scale like the paper's figures: 1 access still shows one tick.
  const double scale =
      std::log2(static_cast<double>(max_value) + 1.0);
  const double frac =
      scale == 0 ? 1.0 : std::log2(static_cast<double>(value) + 1.0) / scale;
  const std::size_t n =
      std::max<std::size_t>(1, static_cast<std::size_t>(frac * static_cast<double>(width)));
  return std::string(n, '#');
}

}  // namespace

std::string ascii_chart(const SetActivityCollector& collector,
                        const std::string& variable, std::size_t max_width) {
  const std::vector<SetCell>& cells = collector.series(variable);
  std::uint64_t max_hits = 0, max_misses = 0;
  for (const SetCell& c : cells) {
    max_hits = std::max(max_hits, c.hits);
    max_misses = std::max(max_misses, c.misses);
  }
  std::string out = variable + " — hits per set (log scale, max " +
                    std::to_string(max_hits) + ")\n";
  for (std::uint64_t s = 0; s < cells.size(); ++s) {
    if (cells[s].hits == 0 && cells[s].misses == 0) continue;
    out += "  set " + std::to_string(s) + "\t" +
           std::to_string(cells[s].hits) + "\t" +
           bar(cells[s].hits, max_hits, max_width) + '\n';
  }
  out += variable + " — misses per set (log scale, max " +
         std::to_string(max_misses) + ")\n";
  for (std::uint64_t s = 0; s < cells.size(); ++s) {
    if (cells[s].hits == 0 && cells[s].misses == 0) continue;
    out += "  set " + std::to_string(s) + "\t" +
           std::to_string(cells[s].misses) + "\t" +
           bar(cells[s].misses, max_misses, max_width) + '\n';
  }
  return out;
}

}  // namespace tdt::analysis
