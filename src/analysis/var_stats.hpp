// Function- and variable-granularity cache statistics plus the conflict
// report: "a user is able to observe conflicts between program structures
// and analyze if any transformation should be considered" (paper §I).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/sim.hpp"
#include "trace/record.hpp"

namespace tdt::analysis {

/// Hit/miss/eviction counters for one function or variable.
struct HitMiss {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::uint64_t conflict = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return hits + misses;
  }
  [[nodiscard]] double miss_ratio() const noexcept {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses());
  }
};

/// Per-variable and per-function accounting observer.
class VarStatsCollector final : public cache::AccessObserver {
 public:
  explicit VarStatsCollector(const trace::TraceContext& ctx);

  void on_access(const trace::TraceRecord& rec,
                 const cache::AccessOutcome& outcome) override;

  [[nodiscard]] const std::map<std::string, HitMiss>& by_variable()
      const noexcept {
    return by_variable_;
  }
  [[nodiscard]] const std::map<std::string, HitMiss>& by_function()
      const noexcept {
    return by_function_;
  }

  /// Renders the per-variable / per-function table.
  [[nodiscard]] std::string report() const;

 private:
  const trace::TraceContext* ctx_;
  std::map<std::string, HitMiss> by_variable_;
  std::map<std::string, HitMiss> by_function_;
};

/// Conflict tracker: for each set, which variables evicted whose blocks.
/// A large off-diagonal count between two variables is the signal that a
/// transformation (padding, set pinning) should be considered.
class ConflictCollector final : public cache::AccessObserver {
 public:
  explicit ConflictCollector(const trace::TraceContext& ctx);

  void on_access(const trace::TraceRecord& rec,
                 const cache::AccessOutcome& outcome) override;

  /// (evictor variable, evicted variable) -> count. The evicted variable
  /// is attributed by remembering which variable last filled each block.
  [[nodiscard]] const std::map<std::pair<std::string, std::string>,
                               std::uint64_t>&
  pairs() const noexcept {
    return pairs_;
  }

  /// Renders the top-N conflict pairs.
  [[nodiscard]] std::string report(std::size_t top_n = 10) const;

 private:
  const trace::TraceContext* ctx_;
  std::map<std::uint64_t, std::string> block_owner_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> pairs_;
};

}  // namespace tdt::analysis
