#include "analysis/var_stats.hpp"

#include <algorithm>

#include "util/table.hpp"

namespace tdt::analysis {
namespace {

std::string var_name(const trace::TraceContext& ctx,
                     const trace::TraceRecord& rec) {
  return rec.var.empty() ? std::string("<anon>")
                         : std::string(ctx.name(rec.var.base));
}

void tally(HitMiss& hm, const cache::AccessOutcome& outcome) {
  if (outcome.hit) {
    ++hm.hits;
    return;
  }
  ++hm.misses;
  switch (outcome.miss_class) {
    case cache::MissClass::Compulsory: ++hm.compulsory; break;
    case cache::MissClass::Capacity: ++hm.capacity; break;
    case cache::MissClass::Conflict: ++hm.conflict; break;
    case cache::MissClass::None: break;
  }
}

}  // namespace

VarStatsCollector::VarStatsCollector(const trace::TraceContext& ctx)
    : ctx_(&ctx) {}

void VarStatsCollector::on_access(const trace::TraceRecord& rec,
                                  const cache::AccessOutcome& outcome) {
  tally(by_variable_[var_name(*ctx_, rec)], outcome);
  tally(by_function_[std::string(ctx_->name(rec.function))], outcome);
}

std::string VarStatsCollector::report() const {
  std::string out;
  auto emit = [&](const char* title,
                  const std::map<std::string, HitMiss>& map) {
    TextTable t({title, "hits", "misses", "miss%", "compulsory", "capacity",
                 "conflict"});
    for (const auto& [name, hm] : map) {
      t.add(name, hm.hits, hm.misses, 100.0 * hm.miss_ratio(), hm.compulsory,
            hm.capacity, hm.conflict);
    }
    out += t.render();
    out += '\n';
  };
  emit("variable", by_variable_);
  emit("function", by_function_);
  return out;
}

ConflictCollector::ConflictCollector(const trace::TraceContext& ctx)
    : ctx_(&ctx) {}

void ConflictCollector::on_access(const trace::TraceRecord& rec,
                                  const cache::AccessOutcome& outcome) {
  const std::string name = var_name(*ctx_, rec);
  if (!outcome.hit && outcome.evicted) {
    if (auto it = block_owner_.find(outcome.evicted_block);
        it != block_owner_.end()) {
      ++pairs_[{name, it->second}];
      block_owner_.erase(it);
    }
  }
  if (!outcome.hit) {
    block_owner_[outcome.block] = name;
  }
}

std::string ConflictCollector::report(std::size_t top_n) const {
  std::vector<std::pair<std::pair<std::string, std::string>, std::uint64_t>>
      rows(pairs_.begin(), pairs_.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (rows.size() > top_n) rows.resize(top_n);
  TextTable t({"evictor", "evicted", "evictions"});
  for (const auto& [pair, count] : rows) {
    t.add(pair.first, pair.second, count);
  }
  return t.render();
}

}  // namespace tdt::analysis
