#include "analysis/set_activity.hpp"

#include "util/error.hpp"

namespace tdt::analysis {

SetActivityCollector::SetActivityCollector(const trace::TraceContext& ctx,
                                           std::uint64_t num_sets)
    : ctx_(&ctx), num_sets_(num_sets) {
  internal_check(num_sets > 0, "collector needs at least one set");
  empty_.assign(num_sets_, SetCell{});
}

void SetActivityCollector::on_access(const trace::TraceRecord& rec,
                                     const cache::AccessOutcome& outcome) {
  internal_check(outcome.set < num_sets_,
                 "outcome set exceeds collector width");
  const std::string name = rec.var.empty()
                               ? std::string("<anon>")
                               : std::string(ctx_->name(rec.var.base));
  auto [it, fresh] = cells_.try_emplace(name);
  if (fresh) {
    it->second.assign(num_sets_, SetCell{});
    order_.push_back(name);
  }
  SetCell& cell = it->second[outcome.set];
  if (outcome.hit) {
    ++cell.hits;
  } else {
    ++cell.misses;
  }
}

const std::vector<SetCell>& SetActivityCollector::series(
    const std::string& variable) const {
  if (auto it = cells_.find(variable); it != cells_.end()) {
    return it->second;
  }
  return empty_;
}

std::vector<SetCell> SetActivityCollector::totals() const {
  std::vector<SetCell> out(num_sets_);
  for (const auto& [name, cells] : cells_) {
    for (std::uint64_t s = 0; s < num_sets_; ++s) {
      out[s].hits += cells[s].hits;
      out[s].misses += cells[s].misses;
    }
  }
  return out;
}

std::vector<std::uint64_t> SetActivityCollector::active_sets(
    const std::string& variable) const {
  std::vector<std::uint64_t> out;
  const std::vector<SetCell>& cells = series(variable);
  for (std::uint64_t s = 0; s < cells.size(); ++s) {
    if (cells[s].hits != 0 || cells[s].misses != 0) out.push_back(s);
  }
  return out;
}

}  // namespace tdt::analysis
