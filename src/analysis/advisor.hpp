// Transformation advisor: turns the simulator's per-variable statistics
// and eviction-conflict pairs into concrete suggestions, closing the loop
// the paper describes — "a user is able to observe conflicts between
// program structures and analyze if any transformation should be
// considered to improve an application's cache behavior" (§I).
//
// Heuristics, not guarantees: each suggestion names the paper
// transformation (T1/T2/T3-style) that targets the observed symptom.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/var_stats.hpp"

namespace tdt::analysis {

/// Kind of suggested transformation.
enum class SuggestionKind : std::uint8_t {
  PadOrDisplace,   ///< T3-style: two structures fight over the same sets
  SplitHotCold,    ///< T2-style: capacity-bound aggregate
  Interleave,      ///< T1-style: paired streaming over parallel arrays
  NoAction,        ///< statistics look healthy
};

[[nodiscard]] std::string_view to_string(SuggestionKind k) noexcept;

/// One advisor finding.
struct Suggestion {
  SuggestionKind kind = SuggestionKind::NoAction;
  std::vector<std::string> variables;
  std::string rationale;
};

/// Tunable thresholds.
struct AdvisorOptions {
  /// Minimum evictions between a pair to flag a conflict.
  std::uint64_t min_conflict_evictions = 32;
  /// Conflict misses must exceed this fraction of a variable's misses for
  /// a PadOrDisplace suggestion.
  double conflict_fraction = 0.25;
  /// Capacity misses must exceed this fraction for SplitHotCold.
  double capacity_fraction = 0.5;
  /// Miss ratio below which a variable is considered healthy.
  double healthy_miss_ratio = 0.02;
  /// Max suggestions returned, strongest first.
  std::size_t max_suggestions = 8;
  /// Minimum far-apart adjacent accesses for an Interleave suggestion.
  std::uint64_t min_adjacency = 256;
};

/// Tracks which aggregates are accessed in tight alternation with each
/// other but far apart in memory — the T1 (interleave) symptom: paired
/// walks over parallel arrays whose elements could share lines.
class AdjacencyCollector final : public cache::AccessObserver {
 public:
  explicit AdjacencyCollector(const trace::TraceContext& ctx,
                              std::uint64_t far_bytes = 64);

  void on_access(const trace::TraceRecord& rec,
                 const cache::AccessOutcome& outcome) override;

  /// Unordered variable pair -> count of adjacent accesses more than
  /// `far_bytes` apart. Scalar-to-scalar pairs are ignored.
  [[nodiscard]] const std::map<std::pair<std::string, std::string>,
                               std::uint64_t>&
  pairs() const noexcept {
    return pairs_;
  }

 private:
  const trace::TraceContext* ctx_;
  std::uint64_t far_bytes_;
  bool have_prev_ = false;
  std::uint64_t prev_addr_ = 0;
  std::string prev_var_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> pairs_;
};

/// Analyzes collected statistics and returns ranked suggestions. The
/// result always contains at least one entry (NoAction when healthy).
/// `adjacency` is optional; with it the advisor can also propose T1-style
/// interleaving.
[[nodiscard]] std::vector<Suggestion> advise(
    const VarStatsCollector& vars, const ConflictCollector& conflicts,
    AdvisorOptions options = {}, const AdjacencyCollector* adjacency = nullptr);

/// Renders suggestions for terminal output.
[[nodiscard]] std::string render(const std::vector<Suggestion>& suggestions);

}  // namespace tdt::analysis
