// Experiment runner: the full analysis cycle of the paper's Figure 2 in
// one call — trace a kernel, optionally transform the trace through a
// rule set, simulate both traces on a cache configuration, and collect
// per-set activity plus a trace diff. Every figure-reproduction bench and
// most examples are thin wrappers over this.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/set_activity.hpp"
#include "cache/config.hpp"
#include "cache/cache.hpp"
#include "core/rules.hpp"
#include "core/transformer.hpp"
#include "trace/diff.hpp"
#include "trace/record.hpp"
#include "tracer/ast.hpp"

namespace tdt::analysis {

/// Everything one trace → simulate pass produces.
struct SimulationResult {
  cache::LevelStats l1;
  std::map<std::string, std::vector<SetCell>> per_set;  ///< variable -> sets
  std::vector<std::string> variable_order;
  std::uint64_t num_sets = 0;
};

/// Result of a full before/after experiment.
struct ExperimentResult {
  std::vector<trace::TraceRecord> original;
  std::vector<trace::TraceRecord> transformed;  ///< == original when no rules
  SimulationResult before;
  SimulationResult after;  ///< meaningful only when rules were applied
  core::TransformStats transform_stats;
  trace::DiffSummary diff;
  bool transformed_ran = false;
};

/// Traces `program` (types in `types`), simulates on `config`, and — when
/// `rules` is non-null — transforms and re-simulates. `ctx` supplies name
/// interning and must outlive the result.
ExperimentResult run_experiment(layout::TypeTable& types,
                                trace::TraceContext& ctx,
                                const tracer::Program& program,
                                const cache::CacheConfig& config,
                                const core::RuleSet* rules = nullptr,
                                core::TransformOptions transform_options = {});

/// Simulates an existing trace on `config`, collecting per-set activity.
SimulationResult simulate_trace(const trace::TraceContext& ctx,
                                std::span<const trace::TraceRecord> records,
                                const cache::CacheConfig& config);

}  // namespace tdt::analysis
