// Per-set, per-variable hit/miss histograms — the data behind every
// figure in the paper (Figures 3, 4, 6, 7, 10, 11 plot, for each cache
// set, the hits and misses attributed to each program structure). This is
// the "modified DineroIV" capability of tracking cache statistics at
// variable-level accuracy.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/sim.hpp"
#include "trace/record.hpp"

namespace tdt::analysis {

/// Hit/miss counters of one variable in one set.
struct SetCell {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Collects per-(set, variable) counters from a simulation.
class SetActivityCollector final : public cache::AccessObserver {
 public:
  /// `ctx` resolves variable symbols to names for reports; `num_sets`
  /// fixes the histogram width (use the L1 config's num_sets()).
  SetActivityCollector(const trace::TraceContext& ctx, std::uint64_t num_sets);

  void on_access(const trace::TraceRecord& rec,
                 const cache::AccessOutcome& outcome) override;

  /// Variable names observed, in first-touch order. Records without
  /// symbol information are accumulated under "<anon>".
  [[nodiscard]] const std::vector<std::string>& variables() const noexcept {
    return order_;
  }

  /// Series for one variable: one SetCell per cache set.
  [[nodiscard]] const std::vector<SetCell>& series(
      const std::string& variable) const;

  /// Total hits+misses per set across all variables.
  [[nodiscard]] std::vector<SetCell> totals() const;

  [[nodiscard]] std::uint64_t num_sets() const noexcept { return num_sets_; }

  /// Sets where a variable recorded any activity.
  [[nodiscard]] std::vector<std::uint64_t> active_sets(
      const std::string& variable) const;

 private:
  const trace::TraceContext* ctx_;
  std::uint64_t num_sets_;
  std::vector<std::string> order_;
  std::map<std::string, std::vector<SetCell>> cells_;
  std::vector<SetCell> empty_;
};

}  // namespace tdt::analysis
