#include "analysis/advisor.hpp"

#include <algorithm>
#include <map>

namespace tdt::analysis {

std::string_view to_string(SuggestionKind k) noexcept {
  switch (k) {
    case SuggestionKind::PadOrDisplace: return "pad-or-displace";
    case SuggestionKind::SplitHotCold: return "split-hot-cold";
    case SuggestionKind::Interleave: return "interleave";
    case SuggestionKind::NoAction: return "no-action";
  }
  return "?";
}

AdjacencyCollector::AdjacencyCollector(const trace::TraceContext& ctx,
                                       std::uint64_t far_bytes)
    : ctx_(&ctx), far_bytes_(far_bytes) {}

void AdjacencyCollector::on_access(const trace::TraceRecord& rec,
                                   const cache::AccessOutcome&) {
  // Only aggregate-element accesses participate; intervening scalar loads
  // (loop counters, pointers) do not break the alternation chain.
  if (rec.var.empty() || rec.var.steps.empty()) return;
  // Label = base plus the first field in the chain, so the two field
  // arrays of one SoA struct ("lSoA.mX" vs "lSoA.mY") count as a pair.
  std::string label(ctx_->name(rec.var.base));
  for (const trace::VarStep& step : rec.var.steps) {
    if (step.is_field) {
      label += '.';
      label += ctx_->name(step.field);
      break;
    }
  }
  if (have_prev_ && label != prev_var_) {
    const std::uint64_t gap = rec.address > prev_addr_
                                  ? rec.address - prev_addr_
                                  : prev_addr_ - rec.address;
    if (gap > far_bytes_) {
      auto key = label < prev_var_ ? std::make_pair(label, prev_var_)
                                   : std::make_pair(prev_var_, label);
      ++pairs_[key];
    }
  }
  have_prev_ = true;
  prev_addr_ = rec.address;
  prev_var_ = label;
}

std::vector<Suggestion> advise(const VarStatsCollector& vars,
                               const ConflictCollector& conflicts,
                               AdvisorOptions options,
                               const AdjacencyCollector* adjacency) {
  std::vector<std::pair<double, Suggestion>> scored;

  // --- T3-style: mutual eviction pairs -----------------------------------
  // Sum both directions of each unordered pair.
  std::map<std::pair<std::string, std::string>, std::uint64_t> mutual;
  for (const auto& [pair, count] : conflicts.pairs()) {
    auto key = pair.first < pair.second
                   ? pair
                   : std::make_pair(pair.second, pair.first);
    mutual[key] += count;
  }
  for (const auto& [pair, count] : mutual) {
    if (count < options.min_conflict_evictions) continue;
    if (pair.first == pair.second) continue;  // self-eviction = capacity
    Suggestion s;
    s.kind = SuggestionKind::PadOrDisplace;
    s.variables = {pair.first, pair.second};
    s.rationale = pair.first + " and " + pair.second + " evicted each other " +
                  std::to_string(count) +
                  " times: displace one of them (stride rule) or pad so "
                  "their hot lines map to different sets";
    scored.emplace_back(static_cast<double>(count), std::move(s));
  }

  // --- per-variable symptoms ---------------------------------------------
  for (const auto& [name, hm] : vars.by_variable()) {
    if (name == "<anon>") continue;
    if (hm.accesses() < 64 || hm.miss_ratio() < options.healthy_miss_ratio) {
      continue;
    }
    const double conflict_frac =
        hm.misses == 0 ? 0.0
                       : static_cast<double>(hm.conflict) /
                             static_cast<double>(hm.misses);
    const double capacity_frac =
        hm.misses == 0 ? 0.0
                       : static_cast<double>(hm.capacity) /
                             static_cast<double>(hm.misses);
    if (conflict_frac >= options.conflict_fraction) {
      Suggestion s;
      s.kind = SuggestionKind::PadOrDisplace;
      s.variables = {name};
      s.rationale = name + ": " + std::to_string(hm.conflict) + " of " +
                    std::to_string(hm.misses) +
                    " misses are set conflicts; consider a displacement or "
                    "set-pinning rule";
      scored.emplace_back(static_cast<double>(hm.conflict), std::move(s));
    } else if (capacity_frac >= options.capacity_fraction &&
               hm.misses >= options.min_conflict_evictions) {
      Suggestion s;
      s.kind = SuggestionKind::SplitHotCold;
      s.variables = {name};
      s.rationale = name + ": " + std::to_string(hm.capacity) + " of " +
                    std::to_string(hm.misses) +
                    " misses are capacity misses; if only part of each "
                    "element is hot, outline the cold part behind a pointer "
                    "to shrink the streamed footprint";
      scored.emplace_back(static_cast<double>(hm.capacity) * 0.5,
                          std::move(s));
    }
  }

  // --- T1-style: paired far-apart walks -----------------------------------
  if (adjacency != nullptr) {
    for (const auto& [pair, count] : adjacency->pairs()) {
      if (count < options.min_adjacency) continue;
      Suggestion s;
      s.kind = SuggestionKind::Interleave;
      s.variables = {pair.first, pair.second};
      s.rationale = pair.first + " and " + pair.second +
                    " are accessed in alternation " + std::to_string(count) +
                    " times but far apart in memory: interleaving them "
                    "(SoA -> AoS rule) would pair their elements in one "
                    "cache line";
      scored.emplace_back(static_cast<double>(count) * 0.75, std::move(s));
    }
  }

  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<Suggestion> out;
  for (auto& [score, s] : scored) {
    if (out.size() >= options.max_suggestions) break;
    out.push_back(std::move(s));
  }
  if (out.empty()) {
    Suggestion s;
    s.kind = SuggestionKind::NoAction;
    s.rationale =
        "no structure exceeds the conflict/capacity thresholds; the layout "
        "looks healthy at this cache configuration";
    out.push_back(std::move(s));
  }
  return out;
}

std::string render(const std::vector<Suggestion>& suggestions) {
  std::string out = "transformation advisor:\n";
  for (const Suggestion& s : suggestions) {
    out += "  [";
    out += to_string(s.kind);
    out += "] ";
    out += s.rationale;
    out += '\n';
  }
  return out;
}

}  // namespace tdt::analysis
