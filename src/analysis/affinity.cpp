#include "analysis/affinity.hpp"

#include <algorithm>
#include <cstdio>

#include "util/table.hpp"

namespace tdt::analysis {

namespace {

/// Primary (element) index of a field access: the leading index for
/// AoS-style chains, the trailing index otherwise.
bool primary_index(const trace::VarRef& var, bool leading,
                   std::uint64_t& out) {
  if (var.steps.empty()) return false;
  if (leading && !var.steps[0].is_field) {
    out = var.steps[0].index;
    return true;
  }
  const trace::VarStep& last = var.steps[var.steps.size() - 1];
  if (!last.is_field) {
    out = last.index;
    return true;
  }
  return false;
}

}  // namespace

std::string_view to_string(StructShape s) noexcept {
  switch (s) {
    case StructShape::Unknown: return "unknown";
    case StructShape::FlatArray: return "flat-array";
    case StructShape::Soa: return "soa";
    case StructShape::Aos: return "aos";
  }
  return "unknown";
}

std::int64_t FieldProfile::dominant_stride() const noexcept {
  std::uint64_t total = 0;
  std::int64_t best = 0;
  std::uint64_t best_count = 0;
  for (const auto& [delta, count] : stride_hist) {
    total += count;
    if (count > best_count) {
      best_count = count;
      best = delta;
    }
  }
  if (total == 0 || best_count * 2 < total) return 0;
  return best;
}

std::uint64_t StructProfile::affinity_at(std::size_t a,
                                         std::size_t b) const noexcept {
  const std::size_t n = fields.size();
  if (a >= n || b >= n) return 0;
  return affinity[a * n + b];
}

double StructProfile::affinity_norm(std::size_t a, std::size_t b) const {
  const std::uint64_t co = affinity_at(a, b);
  if (co == 0) return 0.0;
  const std::uint64_t combined = fields[a].accesses + fields[b].accesses;
  if (combined == 0) return 0.0;
  return static_cast<double>(co) / static_cast<double>(combined);
}

AffinityCollector::AffinityCollector(const trace::TraceContext& ctx,
                                     AffinityOptions options)
    : ctx_(&ctx), options_(options) {
  if (options_.window == 0) options_.window = 1;
  window_.resize(options_.window);
}

void AffinityCollector::on_record(const trace::TraceRecord& rec) {
  if (!trace::is_structure_scope(rec.scope) || rec.var.empty()) return;
  ++seen_;

  // Structure slot.
  auto it = by_symbol_.find(rec.var.base.id());
  std::uint32_t struct_slot;
  if (it != by_symbol_.end()) {
    struct_slot = it->second;
  } else {
    if (states_.size() >= options_.max_structs) return;
    struct_slot = static_cast<std::uint32_t>(states_.size());
    by_symbol_.emplace(rec.var.base.id(), struct_slot);
    StructState st;
    st.name = std::string(ctx_->name(rec.var.base));
    st.scope = rec.scope;
    states_.push_back(std::move(st));
  }
  StructState& st = states_[struct_slot];
  ++st.accesses;
  st.base_addr = std::min(st.base_addr, rec.address);

  // Field slot by pattern.
  scratch_key_.clear();
  for (const trace::VarStep& step : rec.var.steps) {
    scratch_key_.push_back(
        step.is_field ? ((static_cast<std::uint64_t>(step.field.id()) << 1) | 1)
                      : 0);
  }
  std::uint32_t field_slot = ~0u;
  for (std::size_t i = 0; i < st.fields.size(); ++i) {
    if (st.fields[i].key == scratch_key_) {
      field_slot = static_cast<std::uint32_t>(i);
      break;
    }
  }
  if (field_slot == ~0u) {
    if (st.fields.size() >= options_.max_fields) {
      st.overflowed = true;
      return;
    }
    field_slot = static_cast<std::uint32_t>(st.fields.size());
    FieldState fs;
    fs.key = scratch_key_;
    fs.first_seen = seen_;
    FieldProfile& p = fs.profile;
    for (const trace::VarStep& step : rec.var.steps) {
      if (step.is_field) {
        if (!p.pattern.empty()) p.pattern += '.';
        p.pattern += ctx_->name(step.field);
        p.chain.emplace_back(ctx_->name(step.field));
      } else {
        p.pattern += "[*]";
        ++p.wildcards;
      }
    }
    p.leading_index = !rec.var.steps[0].is_field;
    p.trailing_index = !rec.var.steps[rec.var.steps.size() - 1].is_field;
    st.fields.push_back(std::move(fs));
  }

  FieldState& fs = st.fields[field_slot];
  FieldProfile& p = fs.profile;
  ++p.accesses;
  switch (rec.kind) {
    case trace::AccessKind::Load: ++p.reads; break;
    case trace::AccessKind::Store: ++p.writes; break;
    case trace::AccessKind::Modify: ++p.reads; ++p.writes; break;
    default: break;
  }
  ++fs.sizes[rec.size];
  p.min_addr = std::min(p.min_addr, rec.address);
  p.max_addr = std::max(p.max_addr, rec.address);

  std::uint64_t elem_index = 0;
  if (primary_index(rec.var, p.leading_index, elem_index)) {
    p.max_elem_index = std::max(p.max_elem_index, elem_index);
    if (fs.have_prev_index) {
      const std::int64_t delta = static_cast<std::int64_t>(elem_index) -
                                 static_cast<std::int64_t>(fs.prev_index);
      auto hist_it = p.stride_hist.find(delta);
      if (hist_it != p.stride_hist.end()) {
        ++hist_it->second;
      } else if (p.stride_hist.size() < options_.max_stride_entries) {
        p.stride_hist.emplace(delta, 1);
      }
    }
    fs.have_prev_index = true;
    fs.prev_index = elem_index;
  }
  // Secondary index of [*].field[*] chains (the within-element array).
  if (p.leading_index && p.wildcards == 2 && p.trailing_index) {
    p.max_minor_index = std::max(
        p.max_minor_index, rec.var.steps[rec.var.steps.size() - 1].index);
  }

  // Window pass: count co-access with every other field of the same
  // structure currently inside the reuse window — at most once per field
  // per record, so affinity_norm stays a bounded fraction no matter how
  // densely the window is populated.
  pair_mask_.assign((options_.max_fields + 63) / 64, 0);
  for (const WindowEntry& e : window_) {
    if (!e.valid || e.struct_slot != struct_slot ||
        e.field_slot == field_slot) {
      continue;
    }
    std::uint64_t& word = pair_mask_[e.field_slot / 64];
    const std::uint64_t bit = 1ULL << (e.field_slot % 64);
    if ((word & bit) != 0) continue;
    word |= bit;
    const auto key = std::minmax(e.field_slot, field_slot);
    ++st.pairs[{key.first, key.second}];
  }
  window_[window_cursor_] = {struct_slot, field_slot, true};
  window_cursor_ = (window_cursor_ + 1) % window_.size();
}

void AffinityCollector::finalize_struct(StructState& st) {
  StructProfile prof;
  prof.name = st.name;
  prof.scope = st.scope;
  prof.accesses = st.accesses;
  prof.base_addr = st.base_addr;

  // Derive per-field values, then order fields by inferred layout offset.
  std::vector<std::size_t> order(st.fields.size());
  for (std::size_t i = 0; i < st.fields.size(); ++i) {
    order[i] = i;
    FieldState& fs = st.fields[i];
    FieldProfile& p = fs.profile;
    p.offset = p.min_addr >= st.base_addr ? p.min_addr - st.base_addr : 0;
    p.heat = st.accesses == 0 ? 0.0
                              : static_cast<double>(p.accesses) /
                                    static_cast<double>(st.accesses);
    std::uint64_t best = 0;
    for (const auto& [size, count] : fs.sizes) {
      if (count > best) {
        best = count;
        p.leaf_size = size;
      }
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FieldState& fa = st.fields[a];
    const FieldState& fb = st.fields[b];
    if (fa.profile.offset != fb.profile.offset) {
      return fa.profile.offset < fb.profile.offset;
    }
    return fa.first_seen < fb.first_seen;
  });
  std::vector<std::uint32_t> slot_to_row(st.fields.size());
  for (std::size_t row = 0; row < order.size(); ++row) {
    slot_to_row[order[row]] = static_cast<std::uint32_t>(row);
    prof.fields.push_back(st.fields[order[row]].profile);
  }

  const std::size_t n = prof.fields.size();
  prof.affinity.assign(n * n, 0);
  for (const auto& [pair, count] : st.pairs) {
    const std::uint32_t a = slot_to_row[pair.first];
    const std::uint32_t b = slot_to_row[pair.second];
    prof.affinity[a * n + b] += count;
    prof.affinity[b * n + a] += count;
  }

  // Shape classification. Field chains the rule engine cannot express
  // (intermediate indices, depth > 2, whole-aggregate accesses) force
  // Unknown, which the candidate generator skips.
  bool all_flat = !prof.fields.empty();
  bool all_aos = !prof.fields.empty();
  bool all_soa = !prof.fields.empty();
  for (const FieldProfile& p : prof.fields) {
    const bool flat = p.chain.empty() && p.wildcards == 1 && p.leading_index;
    const bool aos = p.leading_index && !p.chain.empty() &&
                     p.chain.size() <= 2 &&
                     (p.wildcards == 1 || (p.wildcards == 2 && p.trailing_index));
    const bool soa = !p.leading_index && !p.chain.empty() &&
                     p.chain.size() == 1 &&
                     (p.wildcards == 0 || (p.wildcards == 1 && p.trailing_index));
    all_flat = all_flat && flat;
    all_aos = all_aos && aos;
    all_soa = all_soa && soa;
  }
  if (st.overflowed) {
    prof.shape = StructShape::Unknown;
  } else if (all_flat) {
    prof.shape = StructShape::FlatArray;
  } else if (all_aos) {
    prof.shape = StructShape::Aos;
  } else if (all_soa) {
    prof.shape = StructShape::Soa;
  }

  std::uint64_t extent = 0;
  for (const FieldProfile& p : prof.fields) {
    if (p.wildcards > 0) extent = std::max(extent, p.max_elem_index + 1);
  }
  prof.extent = extent;

  profiles_.push_back(std::move(prof));
}

void AffinityCollector::on_end() {
  if (finalized_) return;
  finalized_ = true;
  profiles_.clear();
  for (StructState& st : states_) finalize_struct(st);
  std::stable_sort(profiles_.begin(), profiles_.end(),
                   [](const StructProfile& a, const StructProfile& b) {
                     return a.accesses > b.accesses;
                   });
}

const StructProfile* AffinityCollector::find(std::string_view name) const {
  for (const StructProfile& p : profiles_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string AffinityCollector::report() const {
  std::string out;
  char buf[160];
  for (const StructProfile& st : profiles_) {
    std::snprintf(buf, sizeof buf,
                  "%s (%s, %s): %llu accesses, %llu elements\n",
                  st.name.c_str(),
                  std::string(trace::var_scope_code(st.scope)).c_str(),
                  std::string(to_string(st.shape)).c_str(),
                  static_cast<unsigned long long>(st.accesses),
                  static_cast<unsigned long long>(st.extent));
    out += buf;

    TextTable heat({"field", "accesses", "heat", "reads", "writes", "size",
                    "stride"});
    for (const FieldProfile& f : st.fields) {
      std::snprintf(buf, sizeof buf, "%.3f", f.heat);
      heat.add(f.pattern, f.accesses, std::string(buf), f.reads, f.writes,
               f.leaf_size, f.dominant_stride());
    }
    out += heat.render();

    // Affinity: one row per pair with a nonzero count, strongest first.
    struct Pair {
      std::size_t a, b;
      std::uint64_t co;
      double norm;
    };
    std::vector<Pair> pairs;
    for (std::size_t a = 0; a < st.fields.size(); ++a) {
      for (std::size_t b = a + 1; b < st.fields.size(); ++b) {
        const std::uint64_t co = st.affinity_at(a, b);
        if (co != 0) pairs.push_back({a, b, co, st.affinity_norm(a, b)});
      }
    }
    if (!pairs.empty()) {
      std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
        return x.co > y.co;
      });
      TextTable aff({"field a", "field b", "co-access", "affinity"});
      for (const Pair& p : pairs) {
        std::snprintf(buf, sizeof buf, "%.3f", p.norm);
        aff.add(st.fields[p.a].pattern, st.fields[p.b].pattern, p.co,
                std::string(buf));
      }
      out += aff.render();
    }
    out += '\n';
  }
  if (profiles_.empty()) out = "no aggregate accesses profiled\n";
  return out;
}

}  // namespace tdt::analysis
