// Field-affinity and heat profiling: the evidence-gathering pass of the
// layout autotuner (docs/AUTOTUNE.md). One streaming pass over a trace
// builds, per aggregate variable, a field-affinity matrix (how often two
// fields are touched within a short reuse window — the signal that they
// belong in the same cache line) plus per-field heat: access counts, the
// read/write mix, element-index stride histograms, and observed extents.
// The candidate generator (analysis/autotune.hpp) turns these profiles
// into concrete transformation rules.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace tdt::analysis {

/// Profiling knobs.
struct AffinityOptions {
  /// Reuse window in records: two fields co-accessed within this many
  /// structure-scope records count as affine. The paper's transformations
  /// target same-line reuse, so a few cache lines' worth of accesses is
  /// the right scale.
  std::uint32_t window = 32;
  /// Safety caps: structures / per-structure field patterns beyond these
  /// are ignored (traces of generated code can have unbounded name sets).
  std::size_t max_structs = 64;
  std::size_t max_fields = 64;
  /// Distinct element-index deltas tracked per field.
  std::size_t max_stride_entries = 32;
};

/// Access shape of an aggregate, inferred from its selector chains.
enum class StructShape : std::uint8_t {
  Unknown,    ///< mixed or unsupported selector chains
  FlatArray,  ///< every access is base[i] (paper T3 input)
  Soa,        ///< struct of arrays: base.field[i] (paper T1 input)
  Aos,        ///< array of structs: base[i].field... (paper T1/T2 input)
};

[[nodiscard]] std::string_view to_string(StructShape s) noexcept;

/// Heat and shape of one field pattern (a selector chain with array
/// indices abstracted to wildcards, e.g. "[*].mRarelyUsed.mY").
struct FieldProfile {
  std::string pattern;              ///< rendered chain, indices as '*'
  std::vector<std::string> chain;   ///< field names only, outermost first
  std::uint64_t wildcards = 0;      ///< number of index slots
  bool leading_index = false;       ///< chain starts with an index (AoS)
  bool trailing_index = false;      ///< chain ends with an index (SoA)
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;          ///< Load + Modify
  std::uint64_t writes = 0;         ///< Store + Modify
  std::uint32_t leaf_size = 0;      ///< dominant record size in bytes
  std::uint64_t min_addr = ~0ULL;
  std::uint64_t max_addr = 0;
  std::uint64_t max_elem_index = 0;  ///< max primary (element) index
  std::uint64_t max_minor_index = 0; ///< max secondary (within-elem) index
  /// Element-index delta -> occurrences, between consecutive accesses to
  /// this field. The dominant non-unit delta is the T3 stride signal.
  std::map<std::int64_t, std::uint64_t> stride_hist;
  // Derived at finalization:
  double heat = 0.0;           ///< accesses / structure accesses
  std::uint64_t offset = 0;    ///< min_addr - structure base (layout order)

  /// The stride covering at least half of the observed index deltas;
  /// 0 when accesses are too irregular to call.
  [[nodiscard]] std::int64_t dominant_stride() const noexcept;
};

/// Profile of one aggregate variable (LS/GS scope).
struct StructProfile {
  std::string name;
  trace::VarScope scope = trace::VarScope::Unknown;
  StructShape shape = StructShape::Unknown;
  std::uint64_t accesses = 0;
  std::uint64_t base_addr = ~0ULL;   ///< min observed address
  std::uint64_t extent = 0;          ///< elements (max element index + 1)
  std::vector<FieldProfile> fields;  ///< layout order (by offset)
  /// Symmetric co-access counts, row-major fields.size() x fields.size().
  std::vector<std::uint64_t> affinity;

  [[nodiscard]] std::uint64_t affinity_at(std::size_t a,
                                          std::size_t b) const noexcept;
  /// Affinity normalized to [0, 1]: co-access count over the two fields'
  /// combined accesses. Each record counts a pair at most once, so 1.0
  /// means virtually every access of either field had the other inside
  /// the reuse window.
  [[nodiscard]] double affinity_norm(std::size_t a, std::size_t b) const;
};

/// Streaming profiler: a terminal TraceSink (tee it next to whatever else
/// consumes the trace for a genuinely one-pass analysis). Profiles are
/// finalized by on_end().
class AffinityCollector final : public trace::TraceSink {
 public:
  explicit AffinityCollector(const trace::TraceContext& ctx,
                             AffinityOptions options = {});

  void on_record(const trace::TraceRecord& rec) override;
  void on_end() override;

  /// Finalized profiles, hottest structure first. Valid after on_end().
  [[nodiscard]] const std::vector<StructProfile>& structs() const noexcept {
    return profiles_;
  }

  /// Finds a finalized profile by variable name; nullptr when absent.
  [[nodiscard]] const StructProfile* find(std::string_view name) const;

  [[nodiscard]] std::uint64_t records_seen() const noexcept { return seen_; }

  /// Human-readable heat + affinity report.
  [[nodiscard]] std::string report() const;

 private:
  // A field pattern key: field steps as (symbol id << 1) | 1, index steps
  // as 0. Distinct because field symbols are never the empty string.
  using PatternKey = std::vector<std::uint64_t>;

  struct FieldState {
    PatternKey key;
    FieldProfile profile;
    std::map<std::uint32_t, std::uint64_t> sizes;  // record size -> count
    bool have_prev_index = false;
    std::uint64_t prev_index = 0;
    std::uint64_t first_seen = 0;  // arrival order, offset tie-break
  };

  struct StructState {
    std::string name;
    trace::VarScope scope = trace::VarScope::Unknown;
    std::uint64_t accesses = 0;
    std::uint64_t base_addr = ~0ULL;
    bool overflowed = false;  // hit max_fields; profile is untrustworthy
    std::vector<FieldState> fields;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> pairs;
  };

  struct WindowEntry {
    std::uint32_t struct_slot = 0;
    std::uint32_t field_slot = 0;
    bool valid = false;
  };

  void finalize_struct(StructState& st);

  const trace::TraceContext* ctx_;
  AffinityOptions options_;
  std::uint64_t seen_ = 0;
  std::map<std::uint32_t, std::uint32_t> by_symbol_;  // base symbol id -> slot
  std::vector<StructState> states_;
  std::vector<WindowEntry> window_;
  std::size_t window_cursor_ = 0;
  PatternKey scratch_key_;
  std::vector<std::uint64_t> pair_mask_;  // per-record pair dedupe scratch
  std::vector<StructProfile> profiles_;
  bool finalized_ = false;
};

}  // namespace tdt::analysis
