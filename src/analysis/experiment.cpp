#include "analysis/experiment.hpp"

#include "analysis/set_activity.hpp"
#include "cache/hierarchy.hpp"
#include "cache/sim.hpp"
#include "tracer/interp.hpp"

namespace tdt::analysis {

SimulationResult simulate_trace(const trace::TraceContext& ctx,
                                std::span<const trace::TraceRecord> records,
                                const cache::CacheConfig& config) {
  cache::CacheHierarchy hierarchy(config);
  cache::TraceCacheSim sim(hierarchy);
  SetActivityCollector collector(ctx, config.num_sets());
  sim.add_observer(&collector);
  sim.simulate(records);

  SimulationResult result;
  result.l1 = hierarchy.l1().stats();
  result.num_sets = config.num_sets();
  result.variable_order = collector.variables();
  for (const std::string& v : result.variable_order) {
    result.per_set.emplace(v, collector.series(v));
  }
  return result;
}

ExperimentResult run_experiment(layout::TypeTable& types,
                                trace::TraceContext& ctx,
                                const tracer::Program& program,
                                const cache::CacheConfig& config,
                                const core::RuleSet* rules,
                                core::TransformOptions transform_options) {
  ExperimentResult result;
  result.original = tracer::run_program(types, ctx, program);
  result.before = simulate_trace(ctx, result.original, config);

  if (rules != nullptr) {
    result.transformed =
        core::transform_trace(*rules, ctx, result.original, transform_options,
                              &result.transform_stats);
    result.after = simulate_trace(ctx, result.transformed, config);
    result.diff =
        trace::summarize(trace::diff_traces(result.original, result.transformed));
    result.transformed_ran = true;
  } else {
    result.transformed = result.original;
  }
  return result;
}

}  // namespace tdt::analysis
