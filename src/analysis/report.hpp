// Report renderers for per-set activity: fixed-width tables (the series
// the paper's figures plot), CSV/gnuplot output matching the paper's
// plotting pipeline ("plotting the graphs is supplemented through scripts
// that parse DineroIV output"), and an ASCII chart for terminals.
#pragma once

#include <string>
#include <vector>

#include "analysis/set_activity.hpp"

namespace tdt::analysis {

/// Table with one row per cache set and hit/miss columns per variable —
/// the exact series of Figures 3/4/6/7/10/11.
[[nodiscard]] std::string set_table(const SetActivityCollector& collector,
                                    const std::vector<std::string>& variables,
                                    bool skip_empty_sets = true);

/// CSV with columns: set, <var>_hits, <var>_misses, ...
[[nodiscard]] std::string set_csv(const SetActivityCollector& collector,
                                  const std::vector<std::string>& variables);

/// Gnuplot-ready data file + plot script (written side by side as
/// `<prefix>.dat` and `<prefix>.gp`). Throws Error{Io} on failure.
void write_gnuplot(const SetActivityCollector& collector,
                   const std::vector<std::string>& variables,
                   const std::string& prefix, const std::string& title);

/// Log-scale ASCII bar chart of one variable's hits (upper panel) and
/// misses (lower panel) per set, visually mirroring the paper's figures.
[[nodiscard]] std::string ascii_chart(const SetActivityCollector& collector,
                                      const std::string& variable,
                                      std::size_t max_width = 64);

}  // namespace tdt::analysis
