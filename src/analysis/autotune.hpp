// The layout autotuner (docs/AUTOTUNE.md): turns affinity/heat profiles
// (analysis/affinity.hpp) into concrete candidate RuleSets — T1 SoA<->AoS
// regrouping driven by affinity clusters, T2 hot/cold outlining of fields
// below a heat threshold, T3-style stride remaps for non-unit dominant
// strides — then evaluates every candidate by replaying the trace through
// the TraceTransformer into a cache sweep and ranking by simulated miss
// reduction against the untransformed baseline.
//
// Candidates are built programmatically, serialized to the rules DSL
// (core::write_rules), and REPARSED before evaluation: the RuleSet that
// is scored is bit-for-bit the one a user gets by feeding the emitted
// file to `dinerosim --rules`.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/affinity.hpp"
#include "cache/sweep.hpp"
#include "trace/record.hpp"
#include "util/obs.hpp"

namespace tdt::analysis {

/// Candidate-generation and evaluation knobs.
struct AutotuneOptions {
  /// Structures with fewer accesses than this are not worth transforming.
  std::uint64_t min_accesses = 64;
  /// A field whose share of its structure's accesses is below this is
  /// cold (T2 outlining candidate).
  double cold_fraction = 0.10;
  /// Normalized co-access (StructProfile::affinity_norm) at or above
  /// which two fields are clustered into the same out structure (T1).
  double affinity_threshold = 0.5;
  /// Cap on generated candidates (hottest structures win).
  std::size_t max_candidates = 16;
  /// Model the index-arithmetic load a stride remap adds per access
  /// (paper Figure 9) as an injected scalar load.
  bool stride_injects = true;
};

/// One generated transformation, carried as serialized rule text.
struct Candidate {
  std::string name;       ///< e.g. "t2:lS1:outline"
  std::string kind;       ///< "T1" | "T2" | "T3"
  std::string target;     ///< structure the rule matches
  std::string rationale;  ///< why the generator proposed it
  std::string rules_text; ///< rules-DSL serialization (parse_rules input)
};

/// Simulated cost of one trace variant.
struct EvalStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  double miss_ratio = 0.0;
  std::uint64_t rewritten = 0;  ///< records remapped by the rule set
  std::uint64_t inserted = 0;   ///< indirection/inject records added
};

/// A candidate with its evaluation, ranked against the baseline.
struct RankedCandidate {
  Candidate candidate;
  EvalStats eval;
  /// eval.misses - baseline.misses; negative = fewer misses than baseline.
  std::int64_t miss_delta = 0;
};

/// Outcome of one autotuning run.
struct AutotuneResult {
  EvalStats baseline;
  std::vector<RankedCandidate> ranked;  ///< fewest misses first

  /// Best candidate that strictly beats the baseline; nullptr when none.
  [[nodiscard]] const RankedCandidate* best() const noexcept;

  /// Ranked table for terminal output.
  [[nodiscard]] std::string table() const;

  /// JSON report (schema tdt-autotune/1).
  [[nodiscard]] std::string json() const;
};

/// Generates candidate rule sets from finalized profiles, hottest
/// structure first, capped at options.max_candidates.
[[nodiscard]] std::vector<Candidate> generate_candidates(
    std::span<const StructProfile> structs, const AutotuneOptions& options = {});

/// Evaluates candidates over an in-memory trace. Each candidate's rule
/// text is reparsed, applied with default TransformOptions (matching
/// `dinerosim --rules`), and simulated through a fresh ParallelSweep of
/// `points`; results merge across points (cache::ParallelSweep::merged_l1).
/// `jobs` threads drive each sweep (0 = inline; results are identical at
/// any job count). When `registry` is non-null, autotune.* metrics and
/// per-candidate spans are recorded.
class Autotuner {
 public:
  explicit Autotuner(trace::TraceContext& ctx, AutotuneOptions options = {});

  [[nodiscard]] AutotuneResult evaluate(
      std::span<const trace::TraceRecord> records,
      std::vector<Candidate> candidates,
      const std::vector<cache::SweepPoint>& points,
      cache::SimOptions sim = {}, cache::PageMapSpec page = {},
      std::size_t jobs = 0, obs::Registry* registry = nullptr) const;

 private:
  trace::TraceContext* ctx_;
  AutotuneOptions options_;
};

}  // namespace tdt::analysis
