#include "analysis/autotune.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <optional>

#include "core/rule_parser.hpp"
#include "core/rules.hpp"
#include "core/transformer.hpp"
#include "trace/parallel.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace tdt::analysis {

namespace {

using core::Formula;
using core::RuleSet;
using core::StructRule;

/// Primitive for a leaf of `size` bytes; kInvalidType for sizes the rule
/// DSL has no natural spelling for (candidates over such fields are
/// skipped).
layout::TypeId leaf_type(layout::TypeTable& types, std::uint32_t size) {
  switch (size) {
    case 1: return types.char_type();
    case 2: return types.short_type();
    case 4: return types.int_type();
    case 8: return types.double_type();
    default: return layout::kInvalidType;
  }
}

/// Field type for one profiled field on the in side: the leaf itself, or
/// an array of it when the chain carries its own index.
layout::TypeId field_type(layout::TypeTable& types, const FieldProfile& f,
                          bool minor_index) {
  const layout::TypeId leaf = leaf_type(types, f.leaf_size);
  if (leaf == layout::kInvalidType) return layout::kInvalidType;
  if (!minor_index) return leaf;
  const std::uint64_t extent =
      (f.leading_index ? f.max_minor_index : f.max_elem_index) + 1;
  return types.array_of(leaf, extent);
}

/// Seals a built rule set into a Candidate: validates it, serializes it,
/// and proves the serialization reparses to a clean set. Returns nullopt
/// (no candidate) when validation finds an error.
std::optional<Candidate> seal(RuleSet&& set, std::string name,
                              std::string kind, std::string target,
                              std::string rationale) {
  for (const core::RuleDiagnostic& d : set.validate()) {
    if (d.severity == core::RuleDiagnostic::Severity::Error) return {};
  }
  Candidate c;
  c.name = std::move(name);
  c.kind = std::move(kind);
  c.target = std::move(target);
  c.rationale = std::move(rationale);
  c.rules_text = core::write_rules_string(set);
  // The serialized form is what evaluation (and the user) will parse;
  // prove the round trip now rather than at ranking time.
  const RuleSet reparsed = core::parse_rules(c.rules_text);
  for (const core::RuleDiagnostic& d : reparsed.validate()) {
    if (d.severity == core::RuleDiagnostic::Severity::Error) return {};
  }
  return c;
}

/// Union-find clustering of a structure's fields by normalized affinity.
/// Returns cluster ids in field order (dense, first-appearance order).
std::vector<std::size_t> affinity_clusters(const StructProfile& st,
                                           double threshold) {
  const std::size_t n = st.fields.size();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (st.affinity_norm(a, b) >= threshold) {
        parent[find(a)] = find(b);
      }
    }
  }
  std::vector<std::size_t> cluster(n);
  std::vector<std::size_t> seen;  // root -> dense id by first appearance
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    auto it = std::find(seen.begin(), seen.end(), root);
    if (it == seen.end()) {
      seen.push_back(root);
      it = seen.end() - 1;
    }
    cluster[i] = static_cast<std::size_t>(it - seen.begin());
  }
  return cluster;
}

/// Builds the in-side struct for a SoA-shaped profile:
///   struct <name> { T f[Nf]; ... };
layout::TypeId build_soa_in(layout::TypeTable& types, const StructProfile& st) {
  std::vector<layout::PendingField> fields;
  for (const FieldProfile& f : st.fields) {
    const layout::TypeId ft = field_type(types, f, f.wildcards == 1);
    if (ft == layout::kInvalidType) return layout::kInvalidType;
    fields.push_back({f.chain[0], ft});
  }
  return types.define_struct(st.name, std::move(fields));
}

/// Builds the in-side type for an AoS-shaped profile without nested
/// chains: struct <name> { T f; ... }[extent].
layout::TypeId build_aos_in(layout::TypeTable& types, const StructProfile& st) {
  std::vector<layout::PendingField> fields;
  for (const FieldProfile& f : st.fields) {
    if (f.chain.size() != 1) return layout::kInvalidType;
    const layout::TypeId ft = field_type(types, f, f.wildcards == 2);
    if (ft == layout::kInvalidType) return layout::kInvalidType;
    fields.push_back({f.chain[0], ft});
  }
  const layout::TypeId elem = types.define_struct(st.name, std::move(fields));
  return types.array_of(elem, st.extent);
}

/// T1, full interleave: SoA -> one AoS structure holding every field.
std::optional<Candidate> t1_soa_to_aos(const StructProfile& st) {
  for (const FieldProfile& f : st.fields) {
    if (f.wildcards != 1) return {};  // scalar members cannot interleave
  }
  RuleSet set;
  layout::TypeTable& types = set.types();
  const layout::TypeId in_type = build_soa_in(types, st);
  if (in_type == layout::kInvalidType) return {};
  std::vector<layout::PendingField> out_fields;
  for (const FieldProfile& f : st.fields) {
    out_fields.push_back({f.chain[0], leaf_type(types, f.leaf_size)});
  }
  const layout::TypeId out_st =
      types.define_struct(st.name + "_aos", std::move(out_fields));
  StructRule rule;
  rule.in_name = st.name;
  rule.in_type = in_type;
  rule.outs.push_back({st.name + "_aos", types.array_of(out_st, st.extent)});
  set.add(std::move(rule));
  return seal(std::move(set), "t1:" + st.name + ":aos", "T1", st.name,
              "structure of arrays; interleaving all " +
                  std::to_string(st.fields.size()) +
                  " parallel arrays puts co-accessed elements on one line");
}

/// T1, full scatter: AoS -> one structure of arrays.
std::optional<Candidate> t1_aos_to_soa(const StructProfile& st) {
  for (const FieldProfile& f : st.fields) {
    if (f.chain.size() != 1 || f.wildcards != 1) return {};
  }
  RuleSet set;
  layout::TypeTable& types = set.types();
  const layout::TypeId in_type = build_aos_in(types, st);
  if (in_type == layout::kInvalidType) return {};
  std::vector<layout::PendingField> out_fields;
  for (const FieldProfile& f : st.fields) {
    out_fields.push_back({f.chain[0], types.array_of(
                                          leaf_type(types, f.leaf_size),
                                          st.extent)});
  }
  types.define_struct(st.name + "_soa", std::move(out_fields));
  StructRule rule;
  rule.in_name = st.name;
  rule.in_type = in_type;
  rule.outs.push_back(
      {st.name + "_soa", types.find_struct(st.name + "_soa")});
  set.add(std::move(rule));
  return seal(std::move(set), "t1:" + st.name + ":soa", "T1", st.name,
              "array of structs walked field-wise; splitting into parallel "
              "arrays removes unused bytes from every fetched line");
}

/// T1, affinity-guided regrouping: fields clustered by windowed
/// co-access; each multi-field cluster becomes an interleaved AoS out
/// structure, singleton clusters become plain arrays.
std::optional<Candidate> t1_affinity_groups(const StructProfile& st,
                                            const AutotuneOptions& options) {
  const std::size_t n = st.fields.size();
  if (n < 3) return {};  // groupings below 3 fields degenerate to all/none
  for (const FieldProfile& f : st.fields) {
    if (f.chain.size() != 1 || f.wildcards != 1) return {};
  }
  const std::vector<std::size_t> cluster =
      affinity_clusters(st, options.affinity_threshold);
  const std::size_t groups =
      *std::max_element(cluster.begin(), cluster.end()) + 1;
  if (groups <= 1 || groups >= n) return {};  // same as :aos / :soa

  RuleSet set;
  layout::TypeTable& types = set.types();
  const layout::TypeId in_type = st.shape == StructShape::Soa
                                     ? build_soa_in(types, st)
                                     : build_aos_in(types, st);
  if (in_type == layout::kInvalidType) return {};

  StructRule rule;
  rule.in_name = st.name;
  rule.in_type = in_type;
  std::string grouping;
  for (std::size_t g = 0; g < groups; ++g) {
    std::vector<layout::PendingField> fields;
    std::size_t members = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (cluster[i] != g) continue;
      ++members;
      fields.push_back({st.fields[i].chain[0],
                        leaf_type(types, st.fields[i].leaf_size)});
      if (!grouping.empty()) grouping += members == 1 ? " | " : " ";
      grouping += st.fields[i].chain[0];
    }
    const std::string out_name = st.name + "_g" + std::to_string(g);
    if (members >= 2) {
      const layout::TypeId out_st =
          types.define_struct(out_name, std::move(fields));
      rule.outs.push_back({out_name, types.array_of(out_st, st.extent)});
    } else {
      // Singleton: keep it a plain array so it stops polluting the
      // interleaved lines.
      std::vector<layout::PendingField> arr;
      arr.push_back({fields[0].name,
                     types.array_of(fields[0].type, st.extent)});
      rule.outs.push_back(
          {out_name, types.define_struct(out_name, std::move(arr))});
    }
  }
  set.add(std::move(rule));
  return seal(std::move(set), "t1:" + st.name + ":affinity", "T1", st.name,
              "co-access clusters " + grouping +
                  " regrouped so each cluster shares cache lines");
}

/// T2, hot/cold outlining: cold nested structures move behind a pointer
/// into a pool (paper Listing 8); cold leaf fields split into a side
/// array-of-structs. Requires at least one cold and one hot member.
std::optional<Candidate> t2_outline(const StructProfile& st,
                                    const AutotuneOptions& options) {
  // Group field chains by their leading field name.
  struct Group {
    std::string name;
    std::vector<const FieldProfile*> members;
    std::uint64_t accesses = 0;
    bool nested = false;
  };
  std::vector<Group> top;
  for (const FieldProfile& f : st.fields) {
    if (f.chain.empty()) return {};
    Group* g = nullptr;
    for (Group& existing : top) {
      if (existing.name == f.chain[0]) {
        g = &existing;
        break;
      }
    }
    if (g == nullptr) {
      top.push_back({f.chain[0], {}, 0, false});
      g = &top.back();
    }
    g->members.push_back(&f);
    g->accesses += f.accesses;
    g->nested = g->nested || f.chain.size() == 2;
  }
  for (const Group& g : top) {
    for (const FieldProfile* f : g.members) {
      // Mixed depth under one name (both `f` and `f.x`), deep nesting,
      // or indexed nested leaves are beyond the rule DSL subset we emit.
      if (g.nested && (f->chain.size() != 2 || f->wildcards != 1)) return {};
      if (!g.nested && f->chain.size() != 1) return {};
    }
  }

  std::vector<const Group*> hot, cold;
  for (const Group& g : top) {
    const double heat = st.accesses == 0
                            ? 0.0
                            : static_cast<double>(g.accesses) /
                                  static_cast<double>(st.accesses);
    (heat < options.cold_fraction ? cold : hot).push_back(&g);
  }
  if (cold.empty() || hot.empty()) return {};
  for (const Group* g : hot) {
    if (g->nested) return {};  // hot nested members stay unsupported
  }

  RuleSet set;
  layout::TypeTable& types = set.types();

  // In side: nested defs first, then the element struct, in field order.
  std::vector<layout::PendingField> elem_fields;
  for (const Group& g : top) {
    if (g.nested) {
      std::vector<layout::PendingField> sub;
      for (const FieldProfile* f : g.members) {
        const layout::TypeId leaf = leaf_type(types, f->leaf_size);
        if (leaf == layout::kInvalidType) return {};
        sub.push_back({f->chain[1], leaf});
      }
      elem_fields.push_back({g.name, types.define_struct(g.name,
                                                         std::move(sub))});
    } else {
      const layout::TypeId ft =
          field_type(types, *g.members[0], g.members[0]->wildcards == 2);
      if (ft == layout::kInvalidType) return {};
      elem_fields.push_back({g.name, ft});
    }
  }
  const layout::TypeId in_elem =
      types.define_struct(st.name, std::move(elem_fields));

  StructRule rule;
  rule.in_name = st.name;
  rule.in_type = types.array_of(in_elem, st.extent);

  // Out side: pools first (the parser requires a pool to be declared
  // before its owner), then the cold-leaf split, then the hot owner.
  std::string cold_names;
  std::vector<std::pair<std::string, layout::TypeId>> pools;  // field, struct
  for (const Group* g : cold) {
    if (!g->nested) continue;
    std::vector<layout::PendingField> sub;
    for (const FieldProfile* f : g->members) {
      sub.push_back({f->chain[1], leaf_type(types, f->leaf_size)});
    }
    const std::string pool_name = st.name + "_" + g->name;
    const layout::TypeId pool_st =
        types.define_struct(pool_name, std::move(sub));
    rule.outs.push_back({pool_name, types.array_of(pool_st, st.extent)});
    pools.emplace_back(g->name, pool_st);
    if (!cold_names.empty()) cold_names += ", ";
    cold_names += g->name;
  }
  std::vector<layout::PendingField> cold_leaves;
  for (const Group* g : cold) {
    if (g->nested) continue;
    cold_leaves.push_back(
        {g->name, field_type(types, *g->members[0],
                             g->members[0]->wildcards == 2)});
    if (!cold_names.empty()) cold_names += ", ";
    cold_names += g->name;
  }
  if (!cold_leaves.empty()) {
    const std::string split_name = st.name + "_cold";
    const layout::TypeId split_st =
        types.define_struct(split_name, std::move(cold_leaves));
    rule.outs.push_back({split_name, types.array_of(split_st, st.extent)});
  }
  std::vector<layout::PendingField> owner_fields;
  for (const Group* g : hot) {
    owner_fields.push_back(
        {g->name, field_type(types, *g->members[0],
                             g->members[0]->wildcards == 2)});
  }
  for (const auto& [field, pool_st] : pools) {
    owner_fields.push_back({field, types.pointer_to(pool_st)});
  }
  const std::string owner_name = st.name + "_hot";
  const layout::TypeId owner_st =
      types.define_struct(owner_name, std::move(owner_fields));
  rule.outs.push_back({owner_name, types.array_of(owner_st, st.extent)});
  for (const auto& [field, pool_st] : pools) {
    rule.links.push_back(
        {owner_name, field, st.name + "_" + field});
  }
  const bool outlined = !pools.empty();
  set.add(std::move(rule));

  char pct[32];
  std::snprintf(pct, sizeof pct, "%.1f", options.cold_fraction * 100.0);
  return seal(std::move(set),
              "t2:" + st.name + (outlined ? ":outline" : ":split"), "T2",
              st.name,
              "cold member(s) " + cold_names + " (< " + pct +
                  "% of accesses) " +
                  (outlined ? "outlined behind a pointer"
                            : "split into a side structure") +
                  " so hot lines stay dense");
}

/// T3-style stride remap: a flat array walked with a dominant non-unit
/// stride k is regrouped so every k-th element becomes contiguous.
std::optional<Candidate> t3_stride(const StructProfile& st,
                                   const AutotuneOptions& options) {
  if (st.fields.size() != 1) return {};
  const FieldProfile& f = st.fields[0];
  const std::int64_t stride = f.dominant_stride();
  if (stride < 2) return {};
  const std::uint64_t k = static_cast<std::uint64_t>(stride);
  const std::uint64_t n = st.extent;
  if (n < 2 * k) return {};

  RuleSet set;
  layout::TypeTable& types = set.types();
  const layout::TypeId elem = leaf_type(types, f.leaf_size);
  if (elem == layout::kInvalidType) return {};

  // new_index = lI/k + (lI%k) * ceil(n/k): a stride-k walk becomes a
  // unit-stride walk over the gathered copy.
  const std::uint64_t columns = (n + k - 1) / k;
  core::StrideRule rule;
  rule.in_name = st.name;
  rule.elem_type = elem;
  rule.in_count = n;
  rule.out_name = st.name + "_remap";
  rule.out_count = k * columns;
  rule.formula = Formula::binary(
      Formula::Op::Add,
      Formula::binary(Formula::Op::Div, Formula::variable("lI"),
                      Formula::constant(static_cast<std::int64_t>(k))),
      Formula::binary(
          Formula::Op::Mul,
          Formula::binary(Formula::Op::Mod, Formula::variable("lI"),
                          Formula::constant(static_cast<std::int64_t>(k))),
          Formula::constant(static_cast<std::int64_t>(columns))));
  if (options.stride_injects) {
    // One index-arithmetic load per remapped access, the honest cost of
    // computing the gathered index (paper Figure 9).
    rule.injects.push_back({trace::AccessKind::Load, "lSTRIDE", 4});
  }
  set.add(std::move(rule));
  return seal(std::move(set),
              "t3:" + st.name + ":stride" + std::to_string(k), "T3", st.name,
              "dominant access stride " + std::to_string(k) +
                  " over " + std::to_string(n) +
                  " elements; gathering strided walks into unit stride");
}

void append(std::vector<Candidate>& out, std::optional<Candidate> c,
            std::size_t cap) {
  if (c.has_value() && out.size() < cap) out.push_back(std::move(*c));
}

/// Simulates `records` through a fresh sweep of `points` and merges L1.
EvalStats run_sweep(const std::vector<cache::SweepPoint>& points,
                    const cache::SimOptions& sim,
                    const cache::PageMapSpec& page, std::size_t jobs,
                    std::span<const trace::TraceRecord> records) {
  cache::ParallelSweep sweep(points, sim, page);
  trace::ParallelOptions po;
  po.jobs = jobs <= 1 ? 0 : jobs;
  trace::ParallelFanOut fanout(sweep.sinks(), po);
  fanout.push_batch(records);
  fanout.on_end();
  const cache::LevelStats merged = sweep.merged_l1();
  EvalStats e;
  e.accesses = merged.accesses();
  e.misses = merged.misses();
  e.miss_ratio = merged.miss_ratio();
  return e;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const RankedCandidate* AutotuneResult::best() const noexcept {
  if (ranked.empty() || ranked.front().miss_delta >= 0) return nullptr;
  return &ranked.front();
}

std::string AutotuneResult::table() const {
  TextTable t({"rank", "candidate", "kind", "accesses", "misses",
               "miss-ratio", "miss-delta", "reduction", "inserted"});
  char buf[32];
  auto ratio = [&](double r) {
    std::snprintf(buf, sizeof buf, "%.4f", r);
    return std::string(buf);
  };
  auto reduction = [&](std::int64_t delta) {
    if (baseline.misses == 0) return std::string("-");
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  -100.0 * static_cast<double>(delta) /
                      static_cast<double>(baseline.misses));
    return std::string(buf);
  };
  t.add("-", "(baseline)", "-", baseline.accesses, baseline.misses,
        ratio(baseline.miss_ratio), 0, "0.0%", 0);
  std::size_t rank = 1;
  for (const RankedCandidate& rc : ranked) {
    t.add(rank++, rc.candidate.name, rc.candidate.kind, rc.eval.accesses,
          rc.eval.misses, ratio(rc.eval.miss_ratio), rc.miss_delta,
          reduction(rc.miss_delta), rc.eval.inserted);
  }
  return t.render();
}

std::string AutotuneResult::json() const {
  std::string out = "{\"schema\":\"tdt-autotune/1\",";
  auto stats = [](const EvalStats& e) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\"accesses\":%llu,\"misses\":%llu,\"miss_ratio\":%.6f",
                  static_cast<unsigned long long>(e.accesses),
                  static_cast<unsigned long long>(e.misses), e.miss_ratio);
    return std::string(buf);
  };
  out += "\"baseline\":{" + stats(baseline) + "},\"candidates\":[";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const RankedCandidate& rc = ranked[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + json_escape(rc.candidate.name) + "\",";
    out += "\"kind\":\"" + json_escape(rc.candidate.kind) + "\",";
    out += "\"target\":\"" + json_escape(rc.candidate.target) + "\",";
    out += "\"rationale\":\"" + json_escape(rc.candidate.rationale) + "\",";
    out += stats(rc.eval) + ",";
    char buf[120];
    std::snprintf(buf, sizeof buf,
                  "\"miss_delta\":%lld,\"rewritten\":%llu,\"inserted\":%llu}",
                  static_cast<long long>(rc.miss_delta),
                  static_cast<unsigned long long>(rc.eval.rewritten),
                  static_cast<unsigned long long>(rc.eval.inserted));
    out += buf;
  }
  out += "]}\n";
  return out;
}

std::vector<Candidate> generate_candidates(
    std::span<const StructProfile> structs, const AutotuneOptions& options) {
  std::vector<Candidate> out;
  for (const StructProfile& st : structs) {
    if (st.accesses < options.min_accesses || st.extent == 0) continue;
    try {
      switch (st.shape) {
        case StructShape::Soa:
          append(out, t1_soa_to_aos(st), options.max_candidates);
          append(out, t1_affinity_groups(st, options), options.max_candidates);
          break;
        case StructShape::Aos:
          append(out, t2_outline(st, options), options.max_candidates);
          append(out, t1_aos_to_soa(st), options.max_candidates);
          append(out, t1_affinity_groups(st, options), options.max_candidates);
          break;
        case StructShape::FlatArray:
          append(out, t3_stride(st, options), options.max_candidates);
          break;
        case StructShape::Unknown:
          break;
      }
    } catch (const Error&) {
      // A builder tripping over an inexpressible layout (name collisions,
      // formula overflow, ...) costs that structure its candidates, not
      // the run.
    }
    if (out.size() >= options.max_candidates) break;
  }
  return out;
}

Autotuner::Autotuner(trace::TraceContext& ctx, AutotuneOptions options)
    : ctx_(&ctx), options_(options) {}

AutotuneResult Autotuner::evaluate(
    std::span<const trace::TraceRecord> records,
    std::vector<Candidate> candidates,
    const std::vector<cache::SweepPoint>& points, cache::SimOptions sim,
    cache::PageMapSpec page, std::size_t jobs,
    obs::Registry* registry) const {
  AutotuneResult result;
  {
    obs::PhaseTimer phase(registry, "autotune-baseline");
    result.baseline = run_sweep(points, sim, page, jobs, records);
  }
  for (Candidate& candidate : candidates) {
    obs::PhaseTimer phase(registry, "autotune:" + candidate.name);
    // Reparse the serialized form: the scored rule set is exactly the one
    // a user gets from the emitted file.
    const RuleSet rules = core::parse_rules(candidate.rules_text);
    core::TransformStats tstats;
    const std::vector<trace::TraceRecord> transformed =
        core::transform_trace(rules, *ctx_, records, {}, &tstats);
    EvalStats eval = run_sweep(points, sim, page, jobs, transformed);
    eval.rewritten = tstats.rewritten;
    eval.inserted = tstats.inserted;
    RankedCandidate rc;
    rc.candidate = std::move(candidate);
    rc.eval = eval;
    rc.miss_delta = static_cast<std::int64_t>(eval.misses) -
                    static_cast<std::int64_t>(result.baseline.misses);
    result.ranked.push_back(std::move(rc));
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              if (a.eval.misses != b.eval.misses) {
                return a.eval.misses < b.eval.misses;
              }
              if (a.eval.inserted != b.eval.inserted) {
                return a.eval.inserted < b.eval.inserted;
              }
              return a.candidate.name < b.candidate.name;
            });
  if (registry != nullptr) {
    registry->counter("autotune.candidates").add(result.ranked.size());
    registry->gauge("autotune.baseline_misses")
        .set(static_cast<double>(result.baseline.misses));
    if (const RankedCandidate* best = result.best()) {
      registry->gauge("autotune.best_misses")
          .set(static_cast<double>(best->eval.misses));
      registry->gauge("autotune.best_delta")
          .set(static_cast<double>(best->miss_delta));
    }
  }
  return result;
}

}  // namespace tdt::analysis
