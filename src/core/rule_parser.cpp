#include "core/rule_parser.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "layout/decl_parser.hpp"
#include "util/error.hpp"

namespace tdt::core {
namespace {

using layout::DeclParser;
using layout::PendingField;
using layout::StructDecl;
using layout::TypeId;
using layout::TypeTable;

/// Section keyword ("in" / "out" / "inject") followed by ':'.
bool at_section(Lexer& lex, std::string_view word) {
  return lex.peek().is(word);
}

void expect_section(Lexer& lex, std::string_view word) {
  Token t = lex.expect(TokKind::Ident, "section keyword");
  if (t.text != word) {
    throw_parse_error("expected '" + std::string(word) + ":', got '" +
                          std::string(t.text) + "'",
                      t.loc);
  }
  lex.expect(":");
}

/// Parses one out struct whose body may contain `+ field:pool;` pointer
/// links. Returns the OutVar and appends links.
OutVar parse_out_struct(Lexer& lex, TypeTable& types,
                        std::vector<PointerLink>& links) {
  DeclParser decls(types);
  lex.expect("struct");
  Token name = lex.expect(TokKind::Ident, "struct name");
  lex.expect("{");
  std::vector<PendingField> fields;
  std::vector<std::pair<std::string, std::string>> pending_links;
  while (!lex.accept("}")) {
    if (lex.accept("+")) {
      Token field = lex.expect(TokKind::Ident, "pointer field name");
      lex.expect(":");
      Token pool = lex.expect(TokKind::Ident, "pool variable name");
      lex.expect(";");
      const TypeId pool_struct = types.find_struct(std::string(pool.text));
      if (pool_struct == layout::kInvalidType) {
        throw_parse_error("pointer link references unknown structure '" +
                              std::string(pool.text) +
                              "' (declare the pool before its owner)",
                          pool.loc);
      }
      fields.push_back(PendingField{std::string(field.text),
                                    types.pointer_to(pool_struct)});
      pending_links.emplace_back(std::string(field.text),
                                 std::string(pool.text));
      continue;
    }
    if (lex.peek().is("struct")) {
      lex.next();
      Token inner = lex.expect(TokKind::Ident, "struct name");
      const TypeId st = types.find_struct(inner.text);
      if (st == layout::kInvalidType) {
        throw_parse_error("reference to undefined struct '" +
                              std::string(inner.text) + "'",
                          inner.loc);
      }
      if (lex.accept(";")) {
        fields.push_back(PendingField{std::string(inner.text), st});
        continue;
      }
      layout::VarDecl d = decls.parse_declarator(lex, st);
      lex.expect(";");
      fields.push_back(PendingField{std::move(d.name), d.type});
      continue;
    }
    const TypeId base = decls.parse_type_spec(lex);
    layout::VarDecl d = decls.parse_declarator(lex, base);
    lex.expect(";");
    fields.push_back(PendingField{std::move(d.name), d.type});
  }
  std::uint64_t count = 0;
  if (lex.accept("[")) {
    count = lex.expect(TokKind::Number, "array length").number();
    lex.expect("]");
  }
  lex.expect(";");

  const TypeId struct_type =
      types.define_struct(std::string(name.text), std::move(fields));
  OutVar out;
  out.name = std::string(name.text);
  out.type = count == 0 ? struct_type : types.array_of(struct_type, count);
  for (auto& [field, pool] : pending_links) {
    links.push_back(PointerLink{out.name, std::move(field), std::move(pool)});
  }
  return out;
}

/// Parses the in-section of a stride rule after the element type:
///   <name>[N]:<out name>;
StrideRule parse_stride_in(Lexer& lex, TypeTable& types, TypeId elem) {
  StrideRule rule;
  rule.elem_type = elem;
  Token name = lex.expect(TokKind::Ident, "array name");
  rule.in_name = std::string(name.text);
  lex.expect("[");
  rule.in_count = lex.expect(TokKind::Number, "array length").number();
  lex.expect("]");
  lex.expect(":");
  Token out = lex.expect(TokKind::Ident, "target array name");
  rule.out_name = std::string(out.text);
  lex.expect(";");
  (void)types;
  return rule;
}

/// Parses the out-section of a stride rule:
///   int <name>[<count>(<formula>)];
void parse_stride_out(Lexer& lex, TypeTable& types, StrideRule& rule) {
  DeclParser decls(types);
  const TypeId elem = decls.parse_type_spec(lex);
  if (elem != rule.elem_type) {
    throw_parse_error("stride out element type differs from in element type",
                      lex.loc());
  }
  Token name = lex.expect(TokKind::Ident, "array name");
  if (name.text != rule.out_name) {
    throw_parse_error("stride out array is named '" + std::string(name.text) +
                          "' but the in rule targets '" + rule.out_name + "'",
                      name.loc);
  }
  lex.expect("[");
  rule.out_count = lex.expect(TokKind::Number, "array length").number();
  lex.expect("(");
  rule.formula = parse_formula(lex);
  lex.expect(")");
  lex.expect("]");
  lex.expect(";");
}

/// Parses the optional inject section body: `<K> <name> <size>;`*
std::vector<InjectSpec> parse_injects(Lexer& lex) {
  std::vector<InjectSpec> out;
  while (!lex.at_end() && !at_section(lex, "in")) {
    Token kind = lex.expect(TokKind::Ident, "access kind (L/S/M)");
    InjectSpec spec;
    if (kind.text.size() != 1 ||
        !trace::parse_access_kind(kind.text[0], spec.kind)) {
      throw_parse_error("bad inject access kind '" + std::string(kind.text) +
                            "'",
                        kind.loc);
    }
    spec.name =
        std::string(lex.expect(TokKind::Ident, "inject variable name").text);
    spec.size = static_cast<std::uint32_t>(
        lex.expect(TokKind::Number, "access size").number());
    lex.expect(";");
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace

RuleSet parse_rules(std::string_view text) {
  TypeTable types;
  std::vector<TransformRule> parsed;
  Lexer lex(text);
  DeclParser decls(types);

  while (!lex.at_end()) {
    expect_section(lex, "in");
    if (lex.peek().is("struct")) {
      // Struct rule: struct definitions; the last one is the matched
      // variable.
      StructRule rule;
      StructDecl last;
      bool any = false;
      while (lex.peek().is("struct")) {
        last = decls.parse_struct_decl(lex);
        any = true;
      }
      if (!any) {
        throw_parse_error("in-section has no struct definition", lex.loc());
      }
      rule.in_name = last.name;
      rule.in_type = last.array_count == 0
                         ? last.type
                         : types.array_of(last.type, last.array_count);

      expect_section(lex, "out");
      while (!lex.at_end() && lex.peek().is("struct")) {
        rule.outs.push_back(parse_out_struct(lex, types, rule.links));
      }
      if (rule.outs.empty()) {
        throw_parse_error("out-section has no struct definition", lex.loc());
      }
      if (!lex.at_end() && at_section(lex, "inject")) {
        expect_section(lex, "inject");
        // Injects on struct rules are accepted but rarely useful.
        auto injects = parse_injects(lex);
        if (!injects.empty()) {
          throw_parse_error(
              "inject sections are only supported on stride rules");
        }
      }
      parsed.emplace_back(std::move(rule));
    } else {
      // Stride rule.
      const TypeId elem = decls.parse_type_spec(lex);
      StrideRule rule = parse_stride_in(lex, types, elem);
      expect_section(lex, "out");
      parse_stride_out(lex, types, rule);
      if (!lex.at_end() && at_section(lex, "inject")) {
        expect_section(lex, "inject");
        rule.injects = parse_injects(lex);
      }
      parsed.emplace_back(std::move(rule));
    }
  }

  RuleSet set(std::move(types));
  for (TransformRule& r : parsed) set.add(std::move(r));
  // Surface validation errors immediately; warnings are the caller's to
  // inspect via RuleSet::validate().
  for (const RuleDiagnostic& d : set.validate()) {
    if (d.severity == RuleDiagnostic::Severity::Error) {
      throw_semantic_error("rule validation failed: " + d.message);
    }
  }
  return set;
}

RuleSet parse_rules_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw_io_error("cannot open rule file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_rules(buf.str());
}

namespace {

/// Emits definitions of structs referenced by `struct_type`'s fields
/// (recursively) so the rendered rule reparses standalone.
void render_nested_defs(const TypeTable& types, TypeId struct_type,
                        std::vector<std::string>& emitted, std::string& out) {
  for (const layout::FieldInfo& f : types.fields(struct_type)) {
    TypeId t = f.type;
    while (types.kind(t) == layout::TypeKind::Array) t = types.element(t);
    if (types.kind(t) != layout::TypeKind::Struct) continue;
    const std::string name(types.name(t));
    if (std::find(emitted.begin(), emitted.end(), name) != emitted.end()) {
      continue;
    }
    emitted.push_back(name);
    render_nested_defs(types, t, emitted, out);
    out += "struct " + name + " {\n";
    for (const layout::FieldInfo& inner : types.fields(t)) {
      TypeId it = inner.type;
      std::string dims;
      while (types.kind(it) == layout::TypeKind::Array) {
        dims += "[" + std::to_string(types.array_count(it)) + "]";
        it = types.element(it);
      }
      out += "  " + types.render(it) + " " + inner.name + dims + ";\n";
    }
    out += "};\n";
  }
}

void render_struct_body(const TypeTable& types, TypeId struct_type,
                        const std::vector<PointerLink>& links,
                        std::string_view owner, std::string& out) {
  out += " {\n";
  for (const layout::FieldInfo& f : types.fields(struct_type)) {
    bool is_link = false;
    for (const PointerLink& link : links) {
      if (link.owner == owner && link.field == f.name) {
        out += "  + " + link.field + ":" + link.pool + ";\n";
        is_link = true;
        break;
      }
    }
    if (is_link) continue;
    if (types.kind(f.type) == layout::TypeKind::Struct &&
        types.name(f.type) == f.name) {
      out += "  struct " + f.name + ";\n";
      continue;
    }
    // Render `elem name[dims...]`.
    TypeId t = f.type;
    std::string dims;
    while (types.kind(t) == layout::TypeKind::Array) {
      dims += "[" + std::to_string(types.array_count(t)) + "]";
      t = types.element(t);
    }
    out += "  " + types.render(t) + " " + f.name + dims + ";\n";
  }
  out += "}";
}

}  // namespace

std::string render_rule(const layout::TypeTable& types,
                        const TransformRule& rule) {
  std::string out;
  if (const auto* stride = std::get_if<StrideRule>(&rule)) {
    out += "in:\n" + types.render(stride->elem_type) + " " + stride->in_name +
           "[" + std::to_string(stride->in_count) + "]:" + stride->out_name +
           ";\nout:\n" + types.render(stride->elem_type) + " " +
           stride->out_name + "[" + std::to_string(stride->out_count) + "(" +
           stride->formula.render() + ")];\n";
    if (!stride->injects.empty()) {
      out += "inject:\n";
      for (const InjectSpec& inj : stride->injects) {
        out += std::string(1, trace::access_kind_code(inj.kind)) + " " +
               inj.name + " " + std::to_string(inj.size) + ";\n";
      }
    }
    return out;
  }
  const auto& sr = std::get<StructRule>(rule);
  out += "in:\n";
  TypeId in_struct = sr.in_type;
  std::uint64_t in_count = 0;
  if (types.kind(in_struct) == layout::TypeKind::Array) {
    in_count = types.array_count(in_struct);
    in_struct = types.element(in_struct);
  }
  std::vector<std::string> emitted{sr.in_name};
  render_nested_defs(types, in_struct, emitted, out);
  out += "struct " + sr.in_name;
  render_struct_body(types, in_struct, {}, sr.in_name, out);
  if (in_count != 0) out += "[" + std::to_string(in_count) + "]";
  out += ";\nout:\n";
  for (const OutVar& o : sr.outs) {
    out += "struct " + o.name;
    TypeId st = o.type;
    std::uint64_t count = 0;
    if (types.kind(st) == layout::TypeKind::Array) {
      count = types.array_count(st);
      st = types.element(st);
    }
    render_struct_body(types, st, sr.links, o.name, out);
    if (count != 0) out += "[" + std::to_string(count) + "]";
    out += ";\n";
  }
  return out;
}

std::string write_rules_string(const RuleSet& set) {
  std::string out;
  for (const TransformRule& rule : set.rules()) {
    out += render_rule(set.types(), rule);
  }
  return out;
}

void write_rules(const RuleSet& set, std::ostream& out) {
  const std::string text = write_rules_string(set);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

void write_rules_file(const RuleSet& set, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw_io_error("cannot open rule file '" + path + "' for writing");
  }
  write_rules(set, out);
}

}  // namespace tdt::core
