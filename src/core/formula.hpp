// Integer index formulas for stride rules (paper Listing 11):
//
//   int lSetHashingArray[256((lI/8)*(16*8)+(lI%8))];
//                            ^^^^^^^^^^^^^^^^^^^^ formula over lI
//
// The paper hard-codes the stride computation in the simulator; we parse
// it as a real expression AST so arbitrary remap formulas work.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/lexer.hpp"

namespace tdt::core {

/// Node of an integer expression over named variables.
class Formula {
 public:
  enum class Op : std::uint8_t {
    Const, Var, Add, Sub, Mul, Div, Mod, Neg,
  };

  /// Integer constant.
  static Formula constant(std::int64_t v);
  /// Named variable (e.g. "lI", the original flat index).
  static Formula variable(std::string name);
  static Formula binary(Op op, Formula lhs, Formula rhs);
  static Formula negate(Formula operand);

  Formula() = default;
  Formula(Formula&&) noexcept = default;
  Formula& operator=(Formula&&) noexcept = default;
  Formula(const Formula& other);
  Formula& operator=(const Formula& other);

  /// Evaluates with every variable bound to `value` (single-variable
  /// formulas, the common case). Throws Error{Semantic} on division by
  /// zero.
  [[nodiscard]] std::int64_t eval(std::int64_t value) const;

  /// Renders with explicit parentheses, e.g. "((lI/8)*(128))+(lI%8)".
  [[nodiscard]] std::string render() const;

  /// True when the formula contains at least one variable.
  [[nodiscard]] bool has_variable() const;

  [[nodiscard]] Op op() const noexcept { return op_; }

 private:
  Op op_ = Op::Const;
  std::int64_t value_ = 0;
  std::string name_;
  std::unique_ptr<Formula> lhs_;
  std::unique_ptr<Formula> rhs_;
};

/// Parses a formula from `lex` (stops at the first token that cannot
/// continue an expression). Grammar:
///   expr   := term (('+'|'-') term)*
///   term   := unary (('*'|'/'|'%') unary)*
///   unary  := '-' unary | primary
///   primary:= number | identifier | '(' expr ')'
[[nodiscard]] Formula parse_formula(Lexer& lex);

/// Parses a formula from a standalone string; requires full consumption.
[[nodiscard]] Formula parse_formula(std::string_view text);

}  // namespace tdt::core
