#include "core/transformer.hpp"

#include "layout/path.hpp"
#include "util/error.hpp"

namespace tdt::core {

using layout::PathStep;
using layout::TypeKind;
using layout::align_up;
using trace::TraceRecord;

namespace {

/// Shape key words for a record's selector chain (see PlanKey).
template <typename Vec>
void encode_shape(const trace::VarRef& var, Vec& words) {
  for (const trace::VarStep& step : var.steps) {
    words.push_back(step.is_field
                        ? (std::uint64_t{step.field.id()} << 1) | 1
                        : 0);
  }
}

}  // namespace

TraceTransformer::TraceTransformer(const RuleSet& rules,
                                   trace::TraceContext& ctx,
                                   trace::TraceSink& downstream,
                                   TransformOptions options)
    : rules_(&rules),
      ctx_(&ctx),
      downstream_(&downstream),
      options_(options),
      stack_arena_cursor_(options.stack_arena_base),
      global_arena_cursor_(options.global_arena_base) {
  for (const TransformRule& rule : rules.rules()) {
    if (const auto* sr = std::get_if<StructRule>(&rule)) {
      const auto index = struct_states_.size();
      struct_by_name_.emplace(sr->in_name, index);
      by_symbol_.emplace(ctx.intern(sr->in_name).id(),
                         static_cast<std::uint32_t>(index));
      struct_states_.emplace_back(rules.types(), *sr);
    } else {
      const auto& stride = std::get<StrideRule>(rule);
      const auto index = stride_states_.size();
      stride_by_name_.emplace(stride.in_name, index);
      by_symbol_.emplace(ctx.intern(stride.in_name).id(),
                         static_cast<std::uint32_t>(index) | kStrideTag);
      StrideState st;
      st.rule = &stride;
      st.elem_size = rules.types().size_of(stride.elem_type);
      st.out_sym = ctx.intern(stride.out_name);
      for (const InjectSpec& inj : stride.injects) {
        st.inject_syms.push_back(ctx.intern(inj.name));
        st.inject_addrs.push_back(std::nullopt);
      }
      stride_states_.push_back(std::move(st));
    }
  }
}

void TraceTransformer::diag(std::string message) {
  if (options_.diags != nullptr) {
    options_.diags->report(DiagSeverity::Warning, DiagCode::XformUnmatchedVar,
                           message);
  }
  if (stats_.diagnostics.size() < options_.max_diagnostics) {
    stats_.diagnostics.push_back(std::move(message));
  }
}

void TraceTransformer::forward(const TraceRecord& rec, bool inserted_record) {
  ++stats_.records_out;
  if (inserted_record) ++stats_.inserted;
  downstream_->on_record(rec);
}

std::uint64_t TraceTransformer::arena_alloc(std::uint64_t size,
                                            std::uint64_t align,
                                            bool stack_side) {
  if (stack_side) {
    std::uint64_t addr = stack_arena_cursor_ - size;
    addr -= addr % align;
    stack_arena_cursor_ = addr;
    return addr;
  }
  global_arena_cursor_ = align_up(global_arena_cursor_, align);
  const std::uint64_t addr = global_arena_cursor_;
  global_arena_cursor_ += size;
  return addr;
}

std::uint64_t TraceTransformer::ensure_out_base(StructState& st,
                                                std::size_t out_index,
                                                std::uint64_t in_address) {
  std::optional<std::uint64_t>& slot = st.out_bases[out_index];
  if (slot.has_value()) return *slot;
  const OutVar& out = st.rule->outs[out_index];
  const bool primary = out_index == 0;
  const auto& types = rules_->types();
  const std::uint64_t out_size = types.size_of(out.type);
  const std::uint64_t out_align = types.align_of(out.type);
  const std::uint64_t in_size = types.size_of(st.rule->in_type);
  const bool stack_side = in_address >= options_.stack_segment_min;

  std::uint64_t base;
  if (primary && options_.reuse_in_footprint && st.in_base.has_value() &&
      align_up(*st.in_base, out_align) + out_size <= *st.in_base + in_size) {
    // The out structure fits inside the in structure's footprint: keep it
    // there so the surrounding address neighbourhood stays comparable.
    base = align_up(*st.in_base, out_align);
  } else {
    base = arena_alloc(out_size, out_align, stack_side);
  }
  slot = base;
  return base;
}

trace::VarRef TraceTransformer::make_var(
    std::string_view base, std::span<const PathStep> path) {
  trace::VarRef var;
  var.base = ctx_->intern(base);
  for (const PathStep& step : path) {
    var.steps.push_back(step.is_field()
                            ? trace::VarStep::make_field(ctx_->intern(step.field))
                            : trace::VarStep::make_index(step.index));
  }
  return var;
}

TraceTransformer::AffineOffset TraceTransformer::affine_of(
    layout::TypeId root, std::span<const TemplateStep> steps) const {
  const auto& types = rules_->types();
  AffineOffset off;
  layout::TypeId type = root;
  for (const TemplateStep& step : steps) {
    if (step.is_field) {
      const layout::FieldInfo* f = types.find_field(type, step.field);
      internal_check(f != nullptr, "template field vanished from its type");
      off.constant += f->offset;
      type = f->type;
    } else {
      const layout::TypeId elem = types.element(type);
      off.strides.push_back(types.size_of(elem));
      off.extents.push_back(step.extent);
      type = elem;
    }
  }
  return off;
}

TraceTransformer::VarTemplate TraceTransformer::make_var_template(
    std::string_view base, std::span<const TemplateStep> steps) {
  VarTemplate t;
  t.var.base = ctx_->intern(base);
  for (const TemplateStep& step : steps) {
    if (step.is_field) {
      t.var.steps.push_back(trace::VarStep::make_field(ctx_->intern(step.field)));
    } else {
      t.slots.push_back(static_cast<std::uint32_t>(t.var.steps.size()));
      t.var.steps.push_back(trace::VarStep::make_index(0));
    }
  }
  return t;
}

trace::VarRef TraceTransformer::instantiate_var(
    const VarTemplate& t, std::span<const std::uint64_t> indices) {
  trace::VarRef var = t.var;
  for (std::size_t k = 0; k < t.slots.size(); ++k) {
    var.steps[t.slots[k]].index = indices[k];
  }
  return var;
}

void TraceTransformer::memoize_struct_plan(StructState& st,
                                           const TraceRecord& rec) {
  // Re-resolve the route the slow path just took and freeze it. Runs once
  // per shape; on any surprise the shape stays uncached (correctness
  // never depends on a plan existing).
  try {
    layout::Path in_path;
    for (const trace::VarStep& step : rec.var.steps) {
      in_path.push_back(step.is_field
                            ? PathStep::make_field(
                                  std::string(ctx_->name(step.field)))
                            : PathStep::make_index(step.index));
    }
    const ChainKey key = chain_key_of({in_path.data(), in_path.size()});
    const ChainRoute route = st.matcher.route(key.chain);
    if (route.out == nullptr) return;
    const LeafTemplate* in_leaf = st.matcher.in_index().find(key.chain);
    if (in_leaf == nullptr || in_leaf->wildcards != key.indices.size()) return;

    StructPlan plan;
    for (const TemplateStep& step : in_leaf->steps) {
      if (!step.is_field) plan.in_extents.push_back(step.extent);
    }
    plan.out_index =
        static_cast<std::uint32_t>(route.out - st.rule->outs.data());
    plan.leaf_size = static_cast<std::uint32_t>(route.leaf->leaf_size);
    plan.out_off = affine_of(route.out->type,
                             {route.leaf->steps.data(),
                              route.leaf->steps.size()});
    if (plan.out_off.strides.size() != key.indices.size()) return;
    plan.out_var = make_var_template(route.out->name,
                                     {route.leaf->steps.data(),
                                      route.leaf->steps.size()});
    if (route.link != nullptr) {
      if (route.pointer_leaf == nullptr || route.link_owner == nullptr) return;
      if (route.pointer_leaf->wildcards > key.indices.size()) return;
      plan.has_pointer = true;
      plan.owner_index =
          static_cast<std::uint32_t>(route.link_owner - st.rule->outs.data());
      plan.ptr_off = affine_of(route.link_owner->type,
                               {route.pointer_leaf->steps.data(),
                                route.pointer_leaf->steps.size()});
      plan.ptr_var = make_var_template(route.link_owner->name,
                                       {route.pointer_leaf->steps.data(),
                                        route.pointer_leaf->steps.size()});
    }
    PlanKey shape;
    encode_shape(rec.var, shape.words);
    st.plans.emplace(std::move(shape), std::move(plan));
  } catch (const Error&) {
    // Leave the shape uncached; the slow path keeps handling it.
  }
}

bool TraceTransformer::apply_struct_fast(StructState& st,
                                         const TraceRecord& rec) {
  SmallVector<std::uint64_t, 6> shape;
  SmallVector<std::uint64_t, 4> indices;
  for (const trace::VarStep& step : rec.var.steps) {
    if (step.is_field) {
      shape.push_back((std::uint64_t{step.field.id()} << 1) | 1);
    } else {
      shape.push_back(0);
      indices.push_back(step.index);
    }
  }
  const auto it = st.plans.find(
      std::span<const std::uint64_t>(shape.data(), shape.size()));
  if (it == st.plans.end()) return false;
  const StructPlan& plan = it->second;

  // Prove the record in-bounds on both sides before emitting anything; a
  // violation falls back to the slow path, which owns the diagnostic.
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= plan.in_extents[k] ||
        indices[k] >= plan.out_off.extents[k]) {
      return false;
    }
  }
  // The slow path created every out base this plan references when it
  // succeeded for the shape's first record; absent bases mean the state
  // is unexpected, so defer to the slow path.
  if (!st.out_bases[plan.out_index].has_value()) return false;
  if (plan.has_pointer) {
    if (!st.out_bases[plan.owner_index].has_value()) return false;
    for (std::size_t k = 0; k < plan.ptr_off.strides.size(); ++k) {
      if (indices[k] >= plan.ptr_off.extents[k]) return false;
    }
  }

  if (plan.has_pointer) {
    // The pointer-indirection load precedes each outlined access
    // (paper Fig 8).
    std::uint64_t addr = *st.out_bases[plan.owner_index] +
                         plan.ptr_off.constant;
    for (std::size_t k = 0; k < plan.ptr_off.strides.size(); ++k) {
      addr += indices[k] * plan.ptr_off.strides[k];
    }
    TraceRecord ptr_rec = rec;
    ptr_rec.kind = trace::AccessKind::Load;
    ptr_rec.address = addr;
    ptr_rec.size = 8;
    ptr_rec.var = instantiate_var(plan.ptr_var, {indices.data(),
                                                 indices.size()});
    forward(ptr_rec, /*inserted_record=*/true);
  }

  std::uint64_t addr = *st.out_bases[plan.out_index] + plan.out_off.constant;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    addr += indices[k] * plan.out_off.strides[k];
  }
  TraceRecord out_rec = rec;
  out_rec.address = addr;
  out_rec.size = plan.leaf_size;
  out_rec.var = instantiate_var(plan.out_var, {indices.data(),
                                               indices.size()});
  ++stats_.rewritten;
  ++stats_.plan_hits;
  forward(out_rec);
  return true;
}

bool TraceTransformer::apply_struct(StructState& st, const TraceRecord& rec) {
  const auto& types = rules_->types();
  // Convert the trace variable's steps to a layout path.
  layout::Path in_path;
  for (const trace::VarStep& step : rec.var.steps) {
    in_path.push_back(step.is_field
                          ? PathStep::make_field(
                                std::string(ctx_->name(step.field)))
                          : PathStep::make_index(step.index));
  }
  layout::Resolved resolved;
  try {
    resolved = layout::resolve_path(types, st.rule->in_type,
                                    {in_path.data(), in_path.size()});
  } catch (const Error& e) {
    diag("record variable '" + ctx_->format_var(rec.var) +
         "' does not fit rule '" + st.rule->in_name + "': " + e.message());
    return false;
  }
  if (!st.in_base.has_value()) {
    st.in_base = rec.address - resolved.offset;
  }

  const ChainKey key = chain_key_of({in_path.data(), in_path.size()});
  const ChainRoute route = st.matcher.route(key.chain);
  if (route.out == nullptr) {
    diag("no out mapping for element '" + ctx_->format_var(rec.var) +
         "' under rule '" + st.rule->in_name + "'");
    return false;
  }
  layout::Path out_path;
  try {
    out_path = route.leaf->instantiate(key.indices);
  } catch (const Error& e) {
    diag("cannot instantiate out path for '" + ctx_->format_var(rec.var) +
         "': " + e.message());
    return false;
  }
  const layout::Resolved out_resolved = layout::resolve_path(
      types, route.out->type, {out_path.data(), out_path.size()});

  // Insert the pointer-indirection load first (paper Fig 8: the green
  // `L ... lS2[i].mRarelyUsed` lines precede each outlined access).
  if (route.link != nullptr) {
    internal_check(route.pointer_leaf != nullptr && route.link_owner != nullptr,
                   "validated rule lost its pointer template");
    const std::uint64_t w = route.pointer_leaf->wildcards;
    if (w > key.indices.size()) {
      diag("pointer field of rule '" + st.rule->in_name +
           "' needs more indices than access '" + ctx_->format_var(rec.var) +
           "' provides");
      return false;
    }
    const std::uint64_t owner_base = ensure_out_base(
        st,
        static_cast<std::size_t>(route.link_owner - st.rule->outs.data()),
        rec.address);
    const layout::Path ptr_path = route.pointer_leaf->instantiate(
        {key.indices.data(), static_cast<std::size_t>(w)});
    const layout::Resolved ptr_resolved = layout::resolve_path(
        types, route.link_owner->type, {ptr_path.data(), ptr_path.size()});
    TraceRecord ptr_rec = rec;
    ptr_rec.kind = trace::AccessKind::Load;
    ptr_rec.address = owner_base + ptr_resolved.offset;
    ptr_rec.size = 8;
    ptr_rec.var = make_var(route.link_owner->name,
                           {ptr_path.data(), ptr_path.size()});
    forward(ptr_rec, /*inserted_record=*/true);
  }

  const std::uint64_t out_base = ensure_out_base(
      st, static_cast<std::size_t>(route.out - st.rule->outs.data()),
      rec.address);

  TraceRecord out_rec = rec;
  out_rec.address = out_base + out_resolved.offset;
  out_rec.size = static_cast<std::uint32_t>(route.leaf->leaf_size);
  out_rec.var = make_var(route.out->name, {out_path.data(), out_path.size()});
  ++stats_.rewritten;
  forward(out_rec);
  return true;
}

bool TraceTransformer::apply_stride_fast(StrideState& st,
                                         const TraceRecord& rec) {
  const StrideRule& rule = *st.rule;
  // Anything irregular — wrong access shape, out-of-range remap, bases or
  // inject scalars not yet allocated — defers to the slow path before a
  // single record is emitted, so no partial output can double up.
  if (rec.var.steps.size() != 1 || rec.var.steps[0].is_field) return false;
  const std::uint64_t i = rec.var.steps[0].index;
  const std::int64_t j = rule.formula.eval(static_cast<std::int64_t>(i));
  if (j < 0 || static_cast<std::uint64_t>(j) >= rule.out_count) return false;
  if (!st.out_base.has_value()) return false;
  for (const std::optional<std::uint64_t>& addr : st.inject_addrs) {
    if (!addr.has_value()) return false;
  }

  for (std::size_t k = 0; k < rule.injects.size(); ++k) {
    const InjectSpec& inj = rule.injects[k];
    TraceRecord aux = rec;
    aux.kind = inj.kind;
    aux.address = *st.inject_addrs[k];
    aux.size = inj.size;
    aux.scope = trace::VarScope::LocalVariable;
    aux.var = trace::VarRef{st.inject_syms[k], {}};
    forward(aux, /*inserted_record=*/true);
  }
  TraceRecord out_rec = rec;
  out_rec.address = *st.out_base + static_cast<std::uint64_t>(j) * st.elem_size;
  out_rec.size = static_cast<std::uint32_t>(st.elem_size);
  out_rec.var.base = st.out_sym;
  out_rec.var.steps.clear();
  out_rec.var.steps.push_back(
      trace::VarStep::make_index(static_cast<std::uint64_t>(j)));
  ++stats_.rewritten;
  ++stats_.plan_hits;
  forward(out_rec);
  return true;
}

bool TraceTransformer::apply_stride(StrideState& st, const TraceRecord& rec) {
  const StrideRule& rule = *st.rule;
  if (rec.var.steps.size() != 1 || rec.var.steps[0].is_field) {
    diag("stride rule '" + rule.in_name +
         "' expects a flat array access, got '" + ctx_->format_var(rec.var) +
         "'");
    return false;
  }
  const std::uint64_t i = rec.var.steps[0].index;
  const std::int64_t j = rule.formula.eval(static_cast<std::int64_t>(i));
  if (j < 0 || static_cast<std::uint64_t>(j) >= rule.out_count) {
    diag("stride rule '" + rule.in_name + "': index " + std::to_string(i) +
         " maps outside the out array");
    return false;
  }
  const bool stack_side = rec.address >= options_.stack_segment_min;
  if (!st.out_base.has_value()) {
    st.out_base = arena_alloc(rule.out_count * st.elem_size,
                              rules_->types().align_of(rule.elem_type),
                              stack_side);
  }
  // Injected index-arithmetic accesses (the paper's "additional
  // instructions ... accounted for in the trace").
  for (std::size_t k = 0; k < rule.injects.size(); ++k) {
    const InjectSpec& inj = rule.injects[k];
    if (!st.inject_addrs[k].has_value()) {
      st.inject_addrs[k] = arena_alloc(8, 8, stack_side);
    }
    TraceRecord aux = rec;
    aux.kind = inj.kind;
    aux.address = *st.inject_addrs[k];
    aux.size = inj.size;
    aux.scope = trace::VarScope::LocalVariable;
    aux.var = trace::VarRef{st.inject_syms[k], {}};
    forward(aux, /*inserted_record=*/true);
  }
  TraceRecord out_rec = rec;
  out_rec.address = *st.out_base + static_cast<std::uint64_t>(j) * st.elem_size;
  out_rec.size = static_cast<std::uint32_t>(st.elem_size);
  out_rec.var.base = st.out_sym;
  out_rec.var.steps.clear();
  out_rec.var.steps.push_back(
      trace::VarStep::make_index(static_cast<std::uint64_t>(j)));
  ++stats_.rewritten;
  forward(out_rec);
  return true;
}

void TraceTransformer::on_record(const TraceRecord& rec) { process(rec); }

void TraceTransformer::push_batch(std::span<const TraceRecord> batch) {
  for (const TraceRecord& rec : batch) process(rec);
}

void TraceTransformer::process(const TraceRecord& rec) {
  ++stats_.records_in;
  if (rec.var.empty()) {
    ++stats_.passthrough;
    forward(rec);
    return;
  }
  const auto dispatch = by_symbol_.find(rec.var.base.id());
  if (dispatch == by_symbol_.end()) {
    ++stats_.passthrough;
    forward(rec);
    return;
  }
  // A mapping error (unresolvable out path, unknown type, bad rule state)
  // aborts the run under Strict, but with a Skip/Repair engine the record
  // degrades to an untransformed passthrough — a hostile trace must not
  // kill a multi-gigabyte simulation at record N.
  const auto apply_guarded = [&](auto& state, auto apply) {
    try {
      return (this->*apply)(state, rec);
    } catch (const Error& e) {
      if (options_.diags == nullptr || options_.diags->strict()) throw;
      options_.diags->report(DiagSeverity::Warning,
                             DiagCode::XformFailedRecord,
                             "cannot transform '" + ctx_->format_var(rec.var) +
                                 "': " + e.message());
      return false;
    }
  };
  if ((dispatch->second & kStrideTag) == 0) {
    StructState& st = struct_states_[dispatch->second];
    if (options_.plan_cache && apply_struct_fast(st, rec)) return;
    if (apply_guarded(st, &TraceTransformer::apply_struct)) {
      if (options_.plan_cache) {
        ++stats_.plan_misses;
        memoize_struct_plan(st, rec);
      }
      return;
    }
    ++stats_.skipped;
    forward(rec);
    return;
  }
  StrideState& st = stride_states_[dispatch->second & ~kStrideTag];
  if (options_.plan_cache && apply_stride_fast(st, rec)) return;
  if (apply_guarded(st, &TraceTransformer::apply_stride)) {
    if (options_.plan_cache) ++stats_.plan_misses;
    return;
  }
  ++stats_.skipped;
  forward(rec);
  return;
}

void TraceTransformer::on_end() { downstream_->on_end(); }

std::optional<std::uint64_t> TraceTransformer::out_base(
    std::string_view in_name, std::string_view out_name) const {
  if (auto it = struct_by_name_.find(in_name); it != struct_by_name_.end()) {
    const StructState& st = struct_states_[it->second];
    for (std::size_t i = 0; i < st.rule->outs.size(); ++i) {
      if (st.rule->outs[i].name == out_name) return st.out_bases[i];
    }
    return std::nullopt;
  }
  if (auto it = stride_by_name_.find(in_name); it != stride_by_name_.end()) {
    return stride_states_[it->second].out_base;
  }
  return std::nullopt;
}

std::vector<TraceRecord> transform_trace(
    const RuleSet& rules, trace::TraceContext& ctx,
    std::span<const TraceRecord> records, TransformOptions options,
    TransformStats* stats) {
  trace::VectorSink sink;
  sink.records().reserve(records.size());  // output is ~input-sized
  TraceTransformer transformer(rules, ctx, sink, options);
  transformer.push_batch(records);
  transformer.on_end();
  if (stats != nullptr) *stats = transformer.stats();
  return sink.take();
}

}  // namespace tdt::core
