#include "core/transformer.hpp"

#include "layout/path.hpp"
#include "util/error.hpp"

namespace tdt::core {

using layout::PathStep;
using layout::TypeKind;
using layout::align_up;
using trace::TraceRecord;

TraceTransformer::TraceTransformer(const RuleSet& rules,
                                   trace::TraceContext& ctx,
                                   trace::TraceSink& downstream,
                                   TransformOptions options)
    : rules_(&rules),
      ctx_(&ctx),
      downstream_(&downstream),
      options_(options),
      stack_arena_cursor_(options.stack_arena_base),
      global_arena_cursor_(options.global_arena_base) {
  for (const TransformRule& rule : rules.rules()) {
    if (const auto* sr = std::get_if<StructRule>(&rule)) {
      struct_by_name_.emplace(sr->in_name, struct_states_.size());
      struct_states_.emplace_back(rules.types(), *sr);
    } else {
      const auto& stride = std::get<StrideRule>(rule);
      stride_by_name_.emplace(stride.in_name, stride_states_.size());
      stride_states_.push_back(StrideState{&stride, std::nullopt, {}});
    }
  }
}

void TraceTransformer::diag(std::string message) {
  if (options_.diags != nullptr) {
    options_.diags->report(DiagSeverity::Warning, DiagCode::XformUnmatchedVar,
                           message);
  }
  if (stats_.diagnostics.size() < options_.max_diagnostics) {
    stats_.diagnostics.push_back(std::move(message));
  }
}

void TraceTransformer::forward(const TraceRecord& rec, bool inserted_record) {
  ++stats_.records_out;
  if (inserted_record) ++stats_.inserted;
  downstream_->on_record(rec);
}

std::uint64_t TraceTransformer::arena_alloc(std::uint64_t size,
                                            std::uint64_t align,
                                            bool stack_side) {
  if (stack_side) {
    std::uint64_t addr = stack_arena_cursor_ - size;
    addr -= addr % align;
    stack_arena_cursor_ = addr;
    return addr;
  }
  global_arena_cursor_ = align_up(global_arena_cursor_, align);
  const std::uint64_t addr = global_arena_cursor_;
  global_arena_cursor_ += size;
  return addr;
}

std::uint64_t TraceTransformer::ensure_out_base(StructState& st,
                                                const OutVar& out,
                                                bool primary,
                                                std::uint64_t in_address) {
  if (auto it = st.out_bases.find(out.name); it != st.out_bases.end()) {
    return it->second;
  }
  const auto& types = rules_->types();
  const std::uint64_t out_size = types.size_of(out.type);
  const std::uint64_t out_align = types.align_of(out.type);
  const std::uint64_t in_size = types.size_of(st.rule->in_type);
  const bool stack_side = in_address >= options_.stack_segment_min;

  std::uint64_t base;
  if (primary && options_.reuse_in_footprint && st.in_base.has_value() &&
      align_up(*st.in_base, out_align) + out_size <= *st.in_base + in_size) {
    // The out structure fits inside the in structure's footprint: keep it
    // there so the surrounding address neighbourhood stays comparable.
    base = align_up(*st.in_base, out_align);
  } else {
    base = arena_alloc(out_size, out_align, stack_side);
  }
  st.out_bases.emplace(out.name, base);
  return base;
}

trace::VarRef TraceTransformer::make_var(
    std::string_view base, std::span<const PathStep> path) {
  trace::VarRef var;
  var.base = ctx_->intern(base);
  for (const PathStep& step : path) {
    var.steps.push_back(step.is_field()
                            ? trace::VarStep::make_field(ctx_->intern(step.field))
                            : trace::VarStep::make_index(step.index));
  }
  return var;
}

bool TraceTransformer::apply_struct(StructState& st, const TraceRecord& rec) {
  const auto& types = rules_->types();
  // Convert the trace variable's steps to a layout path.
  layout::Path in_path;
  for (const trace::VarStep& step : rec.var.steps) {
    in_path.push_back(step.is_field
                          ? PathStep::make_field(
                                std::string(ctx_->name(step.field)))
                          : PathStep::make_index(step.index));
  }
  layout::Resolved resolved;
  try {
    resolved = layout::resolve_path(types, st.rule->in_type,
                                    {in_path.data(), in_path.size()});
  } catch (const Error& e) {
    diag("record variable '" + ctx_->format_var(rec.var) +
         "' does not fit rule '" + st.rule->in_name + "': " + e.message());
    return false;
  }
  if (!st.in_base.has_value()) {
    st.in_base = rec.address - resolved.offset;
  }

  const ChainKey key = chain_key_of({in_path.data(), in_path.size()});
  const ChainRoute route = st.matcher.route(key.chain);
  if (route.out == nullptr) {
    diag("no out mapping for element '" + ctx_->format_var(rec.var) +
         "' under rule '" + st.rule->in_name + "'");
    return false;
  }
  layout::Path out_path;
  try {
    out_path = route.leaf->instantiate(key.indices);
  } catch (const Error& e) {
    diag("cannot instantiate out path for '" + ctx_->format_var(rec.var) +
         "': " + e.message());
    return false;
  }
  const layout::Resolved out_resolved = layout::resolve_path(
      types, route.out->type, {out_path.data(), out_path.size()});

  // Insert the pointer-indirection load first (paper Fig 8: the green
  // `L ... lS2[i].mRarelyUsed` lines precede each outlined access).
  if (route.link != nullptr) {
    internal_check(route.pointer_leaf != nullptr && route.link_owner != nullptr,
                   "validated rule lost its pointer template");
    const std::uint64_t w = route.pointer_leaf->wildcards;
    if (w > key.indices.size()) {
      diag("pointer field of rule '" + st.rule->in_name +
           "' needs more indices than access '" + ctx_->format_var(rec.var) +
           "' provides");
      return false;
    }
    const std::uint64_t owner_base = ensure_out_base(
        st, *route.link_owner, /*primary=*/route.link_owner == &st.rule->outs.front(),
        rec.address);
    const layout::Path ptr_path = route.pointer_leaf->instantiate(
        {key.indices.data(), static_cast<std::size_t>(w)});
    const layout::Resolved ptr_resolved = layout::resolve_path(
        types, route.link_owner->type, {ptr_path.data(), ptr_path.size()});
    TraceRecord ptr_rec = rec;
    ptr_rec.kind = trace::AccessKind::Load;
    ptr_rec.address = owner_base + ptr_resolved.offset;
    ptr_rec.size = 8;
    ptr_rec.var = make_var(route.link_owner->name,
                           {ptr_path.data(), ptr_path.size()});
    forward(ptr_rec, /*inserted_record=*/true);
  }

  const bool primary = route.out == &st.rule->outs.front();
  const std::uint64_t out_base =
      ensure_out_base(st, *route.out, primary, rec.address);

  TraceRecord out_rec = rec;
  out_rec.address = out_base + out_resolved.offset;
  out_rec.size = static_cast<std::uint32_t>(route.leaf->leaf_size);
  out_rec.var = make_var(route.out->name, {out_path.data(), out_path.size()});
  ++stats_.rewritten;
  forward(out_rec);
  return true;
}

bool TraceTransformer::apply_stride(StrideState& st, const TraceRecord& rec) {
  const StrideRule& rule = *st.rule;
  if (rec.var.steps.size() != 1 || rec.var.steps[0].is_field) {
    diag("stride rule '" + rule.in_name +
         "' expects a flat array access, got '" + ctx_->format_var(rec.var) +
         "'");
    return false;
  }
  const auto& types = rules_->types();
  const std::uint64_t elem_size = types.size_of(rule.elem_type);
  const std::uint64_t i = rec.var.steps[0].index;
  const std::int64_t j = rule.formula.eval(static_cast<std::int64_t>(i));
  if (j < 0 || static_cast<std::uint64_t>(j) >= rule.out_count) {
    diag("stride rule '" + rule.in_name + "': index " + std::to_string(i) +
         " maps outside the out array");
    return false;
  }
  const bool stack_side = rec.address >= options_.stack_segment_min;
  if (!st.out_base.has_value()) {
    st.out_base = arena_alloc(rule.out_count * elem_size,
                              types.align_of(rule.elem_type), stack_side);
  }
  // Injected index-arithmetic accesses (the paper's "additional
  // instructions ... accounted for in the trace").
  for (const InjectSpec& inj : rule.injects) {
    auto [it, fresh] = st.inject_addrs.try_emplace(inj.name, 0);
    if (fresh) {
      it->second = arena_alloc(8, 8, stack_side);
    }
    TraceRecord aux = rec;
    aux.kind = inj.kind;
    aux.address = it->second;
    aux.size = inj.size;
    aux.scope = trace::VarScope::LocalVariable;
    aux.var = trace::VarRef{ctx_->intern(inj.name), {}};
    forward(aux, /*inserted_record=*/true);
  }
  TraceRecord out_rec = rec;
  out_rec.address = *st.out_base + static_cast<std::uint64_t>(j) * elem_size;
  out_rec.size = static_cast<std::uint32_t>(elem_size);
  const PathStep step = PathStep::make_index(static_cast<std::uint64_t>(j));
  out_rec.var = make_var(rule.out_name, {&step, 1});
  ++stats_.rewritten;
  forward(out_rec);
  return true;
}

void TraceTransformer::on_record(const TraceRecord& rec) { process(rec); }

void TraceTransformer::push_batch(std::span<const TraceRecord> batch) {
  for (const TraceRecord& rec : batch) process(rec);
}

void TraceTransformer::process(const TraceRecord& rec) {
  ++stats_.records_in;
  if (rec.var.empty()) {
    ++stats_.passthrough;
    forward(rec);
    return;
  }
  // A mapping error (unresolvable out path, unknown type, bad rule state)
  // aborts the run under Strict, but with a Skip/Repair engine the record
  // degrades to an untransformed passthrough — a hostile trace must not
  // kill a multi-gigabyte simulation at record N.
  const auto apply_guarded = [&](auto& state, auto apply) {
    try {
      return (this->*apply)(state, rec);
    } catch (const Error& e) {
      if (options_.diags == nullptr || options_.diags->strict()) throw;
      options_.diags->report(DiagSeverity::Warning,
                             DiagCode::XformFailedRecord,
                             "cannot transform '" + ctx_->format_var(rec.var) +
                                 "': " + e.message());
      return false;
    }
  };
  const std::string base_name(ctx_->name(rec.var.base));
  if (auto it = struct_by_name_.find(base_name); it != struct_by_name_.end()) {
    if (apply_guarded(struct_states_[it->second],
                      &TraceTransformer::apply_struct)) {
      return;
    }
    ++stats_.skipped;
    forward(rec);
    return;
  }
  if (auto it = stride_by_name_.find(base_name); it != stride_by_name_.end()) {
    if (apply_guarded(stride_states_[it->second],
                      &TraceTransformer::apply_stride)) {
      return;
    }
    ++stats_.skipped;
    forward(rec);
    return;
  }
  ++stats_.passthrough;
  forward(rec);
}

void TraceTransformer::on_end() { downstream_->on_end(); }

std::optional<std::uint64_t> TraceTransformer::out_base(
    std::string_view in_name, std::string_view out_name) const {
  if (auto it = struct_by_name_.find(std::string(in_name));
      it != struct_by_name_.end()) {
    const StructState& st = struct_states_[it->second];
    if (auto b = st.out_bases.find(std::string(out_name));
        b != st.out_bases.end()) {
      return b->second;
    }
    return std::nullopt;
  }
  if (auto it = stride_by_name_.find(std::string(in_name));
      it != stride_by_name_.end()) {
    return stride_states_[it->second].out_base;
  }
  return std::nullopt;
}

std::vector<TraceRecord> transform_trace(
    const RuleSet& rules, trace::TraceContext& ctx,
    std::span<const TraceRecord> records, TransformOptions options,
    TransformStats* stats) {
  trace::VectorSink sink;
  TraceTransformer transformer(rules, ctx, sink, options);
  for (const TraceRecord& rec : records) transformer.on_record(rec);
  transformer.on_end();
  if (stats != nullptr) *stats = transformer.stats();
  return sink.take();
}

}  // namespace tdt::core
