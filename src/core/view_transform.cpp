// View::transform — the DAG's bridge into the rule-driven transformer.
// Lives in tdt_core (not tdt_trace) because tdt_core already links
// against the trace library; view.hpp only forward-declares the core
// types, so the header dependency stays one-way.
#include "core/transformer.hpp"
#include "trace/view.hpp"

namespace tdt::trace {

namespace {

/// Runs a fresh TraceTransformer per evaluation, collecting its output
/// into the stage's batch vector. The transformer pushes per-record into
/// a downstream sink; pointing that sink at the current output vector
/// turns the push pipeline into a pull stage.
class TransformStage final : public ViewStage {
 public:
  TransformStage(const core::RuleSet& rules, TraceContext& ctx,
                 core::TransformOptions options,
                 core::TransformStats* stats_out)
      : transformer_(rules, ctx, collector_, options), stats_out_(stats_out) {}

  void on_batch(std::span<const TraceRecord> in,
                std::vector<TraceRecord>& out) override {
    collector_.target = &out;
    transformer_.push_batch(in);
    collector_.target = nullptr;
  }

  void on_end(std::vector<TraceRecord>& out) override {
    collector_.target = &out;
    transformer_.on_end();
    collector_.target = nullptr;
    if (stats_out_ != nullptr) *stats_out_ = transformer_.stats();
  }

 private:
  struct Collector final : TraceSink {
    void on_record(const TraceRecord& rec) override {
      target->push_back(rec);
    }
    void push_batch(std::span<const TraceRecord> batch) override {
      target->insert(target->end(), batch.begin(), batch.end());
    }
    void on_end() override {}  // the stage's own on_end handles the tail

    std::vector<TraceRecord>* target = nullptr;
  };

  Collector collector_;  // must precede transformer_ (bound by reference)
  core::TraceTransformer transformer_;
  core::TransformStats* stats_out_;
};

}  // namespace

View View::transform(const core::RuleSet& rules) const {
  return transform(rules, core::TransformOptions{});
}

View View::transform(const core::RuleSet& rules,
                     const core::TransformOptions& options,
                     core::TransformStats* stats_out) const {
  return pipe(
      [&rules, options, stats_out](TraceContext& ctx) {
        return std::make_unique<TransformStage>(rules, ctx, options,
                                                stats_out);
      },
      "transform");
}

}  // namespace tdt::trace
