#include "core/mapping.hpp"

#include "util/error.hpp"

namespace tdt::core {

using layout::PathStep;
using layout::TypeId;
using layout::TypeKind;
using layout::TypeTable;

layout::Path LeafTemplate::instantiate(
    std::span<const std::uint64_t> indices) const {
  if (indices.size() != wildcards) {
    throw_semantic_error("template expects " + std::to_string(wildcards) +
                         " indices, got " + std::to_string(indices.size()));
  }
  layout::Path path;
  std::size_t next_index = 0;
  for (const TemplateStep& step : steps) {
    if (step.is_field) {
      path.push_back(PathStep::make_field(step.field));
    } else {
      const std::uint64_t idx = indices[next_index++];
      if (idx >= step.extent) {
        throw_semantic_error("index " + std::to_string(idx) +
                             " out of range for extent " +
                             std::to_string(step.extent));
      }
      path.push_back(PathStep::make_index(idx));
    }
  }
  return path;
}

namespace {

void enumerate_impl(const TypeTable& table, TypeId type,
                    std::vector<TemplateStep>& prefix,
                    std::vector<std::string>& chain, std::uint64_t wildcards,
                    std::vector<LeafTemplate>& out) {
  switch (table.kind(type)) {
    case TypeKind::Primitive:
    case TypeKind::Pointer: {
      LeafTemplate t;
      t.steps = prefix;
      t.chain = chain;
      t.wildcards = wildcards;
      t.leaf_type = type;
      t.leaf_size = table.size_of(type);
      out.push_back(std::move(t));
      return;
    }
    case TypeKind::Array: {
      prefix.push_back(TemplateStep{false, {}, table.array_count(type)});
      enumerate_impl(table, table.element(type), prefix, chain, wildcards + 1,
                     out);
      prefix.pop_back();
      return;
    }
    case TypeKind::Struct: {
      for (const layout::FieldInfo& f : table.fields(type)) {
        prefix.push_back(TemplateStep{true, f.name, 0});
        chain.push_back(f.name);
        enumerate_impl(table, f.type, prefix, chain, wildcards, out);
        chain.pop_back();
        prefix.pop_back();
      }
      return;
    }
  }
}

}  // namespace

std::vector<LeafTemplate> enumerate_leaf_templates(const TypeTable& table,
                                                   TypeId root) {
  std::vector<LeafTemplate> out;
  std::vector<TemplateStep> prefix;
  std::vector<std::string> chain;
  enumerate_impl(table, root, prefix, chain, 0, out);
  return out;
}

ChainKey chain_key_of(std::span<const PathStep> path) {
  ChainKey key;
  for (const PathStep& step : path) {
    if (step.is_field()) {
      key.chain.push_back(step.field);
    } else {
      key.indices.push_back(step.index);
    }
  }
  return key;
}

TemplateIndex::TemplateIndex(const TypeTable& table, TypeId root)
    : templates_(enumerate_leaf_templates(table, root)) {}

const LeafTemplate* TemplateIndex::find(
    std::span<const std::string> chain) const {
  for (const LeafTemplate& t : templates_) {
    if (t.chain.size() == chain.size() &&
        std::equal(t.chain.begin(), t.chain.end(), chain.begin())) {
      return &t;
    }
  }
  return nullptr;
}

}  // namespace tdt::core
