#include "core/formula.hpp"

#include "util/error.hpp"

namespace tdt::core {

Formula Formula::constant(std::int64_t v) {
  Formula f;
  f.op_ = Op::Const;
  f.value_ = v;
  return f;
}

Formula Formula::variable(std::string name) {
  Formula f;
  f.op_ = Op::Var;
  f.name_ = std::move(name);
  return f;
}

Formula Formula::binary(Op op, Formula lhs, Formula rhs) {
  Formula f;
  f.op_ = op;
  f.lhs_ = std::make_unique<Formula>(std::move(lhs));
  f.rhs_ = std::make_unique<Formula>(std::move(rhs));
  return f;
}

Formula Formula::negate(Formula operand) {
  Formula f;
  f.op_ = Op::Neg;
  f.lhs_ = std::make_unique<Formula>(std::move(operand));
  return f;
}

Formula::Formula(const Formula& other)
    : op_(other.op_), value_(other.value_), name_(other.name_) {
  if (other.lhs_) lhs_ = std::make_unique<Formula>(*other.lhs_);
  if (other.rhs_) rhs_ = std::make_unique<Formula>(*other.rhs_);
}

Formula& Formula::operator=(const Formula& other) {
  if (this != &other) {
    Formula copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::int64_t Formula::eval(std::int64_t value) const {
  switch (op_) {
    case Op::Const: return value_;
    case Op::Var: return value;
    case Op::Neg: return -lhs_->eval(value);
    case Op::Add: return lhs_->eval(value) + rhs_->eval(value);
    case Op::Sub: return lhs_->eval(value) - rhs_->eval(value);
    case Op::Mul: return lhs_->eval(value) * rhs_->eval(value);
    case Op::Div: {
      const std::int64_t d = rhs_->eval(value);
      if (d == 0) throw_semantic_error("formula division by zero");
      return lhs_->eval(value) / d;
    }
    case Op::Mod: {
      const std::int64_t d = rhs_->eval(value);
      if (d == 0) throw_semantic_error("formula modulo by zero");
      return lhs_->eval(value) % d;
    }
  }
  return 0;
}

std::string Formula::render() const {
  switch (op_) {
    case Op::Const: return std::to_string(value_);
    case Op::Var: return name_;
    case Op::Neg: return "-(" + lhs_->render() + ")";
    case Op::Add: return "(" + lhs_->render() + "+" + rhs_->render() + ")";
    case Op::Sub: return "(" + lhs_->render() + "-" + rhs_->render() + ")";
    case Op::Mul: return "(" + lhs_->render() + "*" + rhs_->render() + ")";
    case Op::Div: return "(" + lhs_->render() + "/" + rhs_->render() + ")";
    case Op::Mod: return "(" + lhs_->render() + "%" + rhs_->render() + ")";
  }
  return "?";
}

bool Formula::has_variable() const {
  if (op_ == Op::Var) return true;
  if (lhs_ && lhs_->has_variable()) return true;
  if (rhs_ && rhs_->has_variable()) return true;
  return false;
}

namespace {

Formula parse_expr(Lexer& lex);

Formula parse_primary(Lexer& lex) {
  const Token& t = lex.peek();
  if (t.kind == TokKind::Number) {
    return Formula::constant(static_cast<std::int64_t>(lex.next().number()));
  }
  if (t.kind == TokKind::Ident) {
    return Formula::variable(std::string(lex.next().text));
  }
  if (t.is("(")) {
    lex.next();
    Formula inner = parse_expr(lex);
    lex.expect(")");
    return inner;
  }
  throw_parse_error("expected number, variable or '(' in formula, got '" +
                        std::string(t.kind == TokKind::End ? "<end>" : t.text) +
                        "'",
                    t.loc);
}

Formula parse_unary(Lexer& lex) {
  if (lex.accept("-")) {
    return Formula::negate(parse_unary(lex));
  }
  return parse_primary(lex);
}

Formula parse_term(Lexer& lex) {
  Formula out = parse_unary(lex);
  for (;;) {
    if (lex.accept("*")) {
      out = Formula::binary(Formula::Op::Mul, std::move(out),
                            parse_unary(lex));
    } else if (lex.accept("/")) {
      out = Formula::binary(Formula::Op::Div, std::move(out),
                            parse_unary(lex));
    } else if (lex.accept("%")) {
      out = Formula::binary(Formula::Op::Mod, std::move(out),
                            parse_unary(lex));
    } else {
      return out;
    }
  }
}

Formula parse_expr(Lexer& lex) {
  Formula out = parse_term(lex);
  for (;;) {
    if (lex.accept("+")) {
      out = Formula::binary(Formula::Op::Add, std::move(out), parse_term(lex));
    } else if (lex.accept("-")) {
      out = Formula::binary(Formula::Op::Sub, std::move(out), parse_term(lex));
    } else {
      return out;
    }
  }
}

}  // namespace

Formula parse_formula(Lexer& lex) { return parse_expr(lex); }

Formula parse_formula(std::string_view text) {
  Lexer lex(text);
  Formula f = parse_expr(lex);
  if (!lex.at_end()) {
    throw_parse_error("trailing tokens after formula", lex.loc());
  }
  return f;
}

}  // namespace tdt::core
