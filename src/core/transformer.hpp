// The trace transformation engine (the paper's §IV contribution).
//
// A TraceTransformer sits between a trace producer and any consumer
// (cache simulator, trace writer): every record whose variable matches a
// rule's `in` structure is rewritten to reference the `out` layout — new
// base address, new offset, renamed variable — and, where the out layout
// introduces indirection or index arithmetic, extra records are inserted
// (pointer loads for outlined structures, auxiliary scalar loads for
// stride remaps). Records that match no rule pass through unchanged.
//
// Process (paper §IV-A): 1) initialize rules and allocate new base
// addresses; 2) check each trace line's variable against the rules;
// 3) apply the mapping, inserting indirection accesses as needed;
// 4) emit the transformed trace; 5) compare with the original
// (trace/diff.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rules.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"
#include "util/diag.hpp"

namespace tdt::core {

/// Placement and diagnostics knobs.
struct TransformOptions {
  /// Arena for relocated stack-side structures; grows downward.
  std::uint64_t stack_arena_base = 0x7fe800000ULL;
  /// Arena for relocated global/heap-side structures; grows upward.
  std::uint64_t global_arena_base = 0x000900000ULL;
  /// Addresses at or above this are considered stack-side.
  std::uint64_t stack_segment_min = 0x700000000ULL;
  /// Place the first out variable inside the in variable's footprint when
  /// it fits (keeps neighbourhood effects comparable, like the paper's
  /// Fig 5 where lAoS lands near lSoA). Pools and oversized structures
  /// always go to an arena.
  bool reuse_in_footprint = true;
  /// Cap on retained diagnostic messages.
  std::size_t max_diagnostics = 64;
  /// Optional diagnostics engine. When set and its policy is Skip or
  /// Repair, a record whose mapping raises an error is passed through
  /// untransformed (warning X002) instead of aborting the run, and every
  /// unmatched-element message is additionally counted as warning X001.
  /// Not owned; must outlive the transformer.
  DiagEngine* diags = nullptr;
};

/// Counters describing what the transformer did.
struct TransformStats {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t rewritten = 0;    ///< records remapped by a rule
  std::uint64_t inserted = 0;     ///< extra indirection/inject records
  std::uint64_t passthrough = 0;  ///< untouched records
  std::uint64_t skipped = 0;      ///< matched a rule but could not be mapped
  std::vector<std::string> diagnostics;
};

/// Streaming transformer; also usable one-shot via transform_trace().
class TraceTransformer final : public trace::TraceSink {
 public:
  /// `rules`, `ctx` and `downstream` must outlive the transformer.
  TraceTransformer(const RuleSet& rules, trace::TraceContext& ctx,
                   trace::TraceSink& downstream,
                   TransformOptions options = {});

  // TraceSink
  void on_record(const trace::TraceRecord& rec) override;
  void push_batch(std::span<const trace::TraceRecord> batch) override;
  void on_end() override;

  [[nodiscard]] const TransformStats& stats() const noexcept { return stats_; }

  /// Address the transformer assigned to `out_name` of the rule matching
  /// `in_name`; nullopt until the first matching record arrives.
  [[nodiscard]] std::optional<std::uint64_t> out_base(
      std::string_view in_name, std::string_view out_name) const;

 private:
  struct StructState {
    const StructRule* rule = nullptr;
    StructRuleMatcher matcher;
    std::optional<std::uint64_t> in_base;
    std::unordered_map<std::string, std::uint64_t> out_bases;

    StructState(const layout::TypeTable& types, const StructRule& r)
        : rule(&r), matcher(types, r) {}
  };

  struct StrideState {
    const StrideRule* rule = nullptr;
    std::optional<std::uint64_t> out_base;
    std::unordered_map<std::string, std::uint64_t> inject_addrs;
  };

  void process(const trace::TraceRecord& rec);
  void diag(std::string message);
  void forward(const trace::TraceRecord& rec, bool inserted_record = false);
  std::uint64_t arena_alloc(std::uint64_t size, std::uint64_t align,
                            bool stack_side);
  std::uint64_t ensure_out_base(StructState& st, const OutVar& out,
                                bool primary, std::uint64_t in_address);
  trace::VarRef make_var(std::string_view base,
                         std::span<const layout::PathStep> path);

  bool apply_struct(StructState& st, const trace::TraceRecord& rec);
  bool apply_stride(StrideState& st, const trace::TraceRecord& rec);

  const RuleSet* rules_;
  trace::TraceContext* ctx_;
  trace::TraceSink* downstream_;
  TransformOptions options_;
  TransformStats stats_;

  std::unordered_map<std::string, std::size_t> struct_by_name_;
  std::unordered_map<std::string, std::size_t> stride_by_name_;
  std::vector<StructState> struct_states_;
  std::vector<StrideState> stride_states_;

  std::uint64_t stack_arena_cursor_;
  std::uint64_t global_arena_cursor_;
};

/// One-shot transformation of an in-memory trace. Stats are written to
/// *stats when non-null.
[[nodiscard]] std::vector<trace::TraceRecord> transform_trace(
    const RuleSet& rules, trace::TraceContext& ctx,
    std::span<const trace::TraceRecord> records,
    TransformOptions options = {}, TransformStats* stats = nullptr);

}  // namespace tdt::core
