// The trace transformation engine (the paper's §IV contribution).
//
// A TraceTransformer sits between a trace producer and any consumer
// (cache simulator, trace writer): every record whose variable matches a
// rule's `in` structure is rewritten to reference the `out` layout — new
// base address, new offset, renamed variable — and, where the out layout
// introduces indirection or index arithmetic, extra records are inserted
// (pointer loads for outlined structures, auxiliary scalar loads for
// stride remaps). Records that match no rule pass through unchanged.
//
// Process (paper §IV-A): 1) initialize rules and allocate new base
// addresses; 2) check each trace line's variable against the rules;
// 3) apply the mapping, inserting indirection accesses as needed;
// 4) emit the transformed trace; 5) compare with the original
// (trace/diff.hpp).
//
// Hot-path design: traces repeat a tiny set of distinct variable-reference
// *shapes* (base symbol + field chain, with array indices abstracted to
// wildcards) millions of times. The transformer therefore dispatches on
// the record's interned base-symbol id (no per-record std::string) and
// memoizes, per shape, the fully resolved route: byte offsets decomposed
// into constant + per-index strides, the leaf size, a prebuilt out VarRef
// template, and — for outlined (T2) chains — the pointer-indirection
// record template. A cache hit rewrites a record with pure integer
// arithmetic: no resolve_path() type walk, no layout::Path of copied
// field strings, no re-interning. The first record of each shape (and
// every record a plan cannot prove in-bounds) runs the original slow path,
// which is also the authoritative source of diagnostics, so cached and
// uncached runs are bit-identical (options.plan_cache toggles the cache).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rules.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"
#include "util/diag.hpp"
#include "util/small_vector.hpp"
#include "util/string_util.hpp"

namespace tdt::core {

/// Placement and diagnostics knobs.
struct TransformOptions {
  /// Arena for relocated stack-side structures; grows downward.
  std::uint64_t stack_arena_base = 0x7fe800000ULL;
  /// Arena for relocated global/heap-side structures; grows upward.
  std::uint64_t global_arena_base = 0x000900000ULL;
  /// Addresses at or above this are considered stack-side.
  std::uint64_t stack_segment_min = 0x700000000ULL;
  /// Place the first out variable inside the in variable's footprint when
  /// it fits (keeps neighbourhood effects comparable, like the paper's
  /// Fig 5 where lAoS lands near lSoA). Pools and oversized structures
  /// always go to an arena.
  bool reuse_in_footprint = true;
  /// Memoize resolved routes per variable shape (see file comment).
  /// Disabling forces every record through the reference slow path;
  /// output is bit-identical either way.
  bool plan_cache = true;
  /// Cap on retained diagnostic messages.
  std::size_t max_diagnostics = 64;
  /// Optional diagnostics engine. When set and its policy is Skip or
  /// Repair, a record whose mapping raises an error is passed through
  /// untransformed (warning X002) instead of aborting the run, and every
  /// unmatched-element message is additionally counted as warning X001.
  /// Not owned; must outlive the transformer.
  DiagEngine* diags = nullptr;
};

/// Counters describing what the transformer did.
struct TransformStats {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t rewritten = 0;    ///< records remapped by a rule
  std::uint64_t inserted = 0;     ///< extra indirection/inject records
  std::uint64_t passthrough = 0;  ///< untouched records
  std::uint64_t skipped = 0;      ///< matched a rule but could not be mapped
  std::uint64_t plan_hits = 0;    ///< records served from the plan cache
  std::uint64_t plan_misses = 0;  ///< matched records resolved the slow way
  std::vector<std::string> diagnostics;
};

/// Streaming transformer; also usable one-shot via transform_trace().
class TraceTransformer final : public trace::TraceSink {
 public:
  /// `rules`, `ctx` and `downstream` must outlive the transformer.
  TraceTransformer(const RuleSet& rules, trace::TraceContext& ctx,
                   trace::TraceSink& downstream,
                   TransformOptions options = {});

  // TraceSink
  void on_record(const trace::TraceRecord& rec) override;
  void push_batch(std::span<const trace::TraceRecord> batch) override;
  void on_end() override;

  [[nodiscard]] const TransformStats& stats() const noexcept { return stats_; }

  /// Address the transformer assigned to `out_name` of the rule matching
  /// `in_name`; nullopt until the first matching record arrives.
  [[nodiscard]] std::optional<std::uint64_t> out_base(
      std::string_view in_name, std::string_view out_name) const;

 private:
  /// Affine decomposition of a leaf's byte offset inside its out
  /// variable: offset = constant + Σ index[k] * stride[k]. Exact because
  /// layouts are static (resolve_path adds a field offset per field step
  /// and index * element-size per index step). extent[k] bounds index[k].
  struct AffineOffset {
    std::uint64_t constant = 0;
    SmallVector<std::uint64_t, 4> strides;
    SmallVector<std::uint64_t, 4> extents;
  };

  /// A prebuilt VarRef whose index steps are holes, filled per record.
  struct VarTemplate {
    trace::VarRef var;                    // index steps hold 0
    SmallVector<std::uint32_t, 4> slots;  // positions of the index steps
  };

  /// Memoized resolution of one in-access shape against a StructRule.
  struct StructPlan {
    SmallVector<std::uint64_t, 4> in_extents;  // in-side wildcard bounds
    std::uint32_t out_index = 0;               // index into rule->outs
    std::uint32_t leaf_size = 0;
    AffineOffset out_off;
    VarTemplate out_var;
    // T2 pointer-indirection record, emitted before the rewritten access.
    bool has_pointer = false;
    std::uint32_t owner_index = 0;
    AffineOffset ptr_off;  // affine over the leading ptr wildcards only
    VarTemplate ptr_var;
  };

  /// Shape key: the record's selector chain with interned field-symbol
  /// ids, indices abstracted to wildcards. Field steps encode as
  /// (id << 1) | 1, index steps as 0 — distinct because field symbols are
  /// never Symbol{0} (the empty string).
  struct PlanKey {
    SmallVector<std::uint64_t, 6> words;
  };
  struct PlanKeyHash {
    using is_transparent = void;
    std::size_t operator()(std::span<const std::uint64_t> words) const noexcept {
      std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the words
      for (const std::uint64_t w : words) {
        h ^= w;
        h *= 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
    std::size_t operator()(const PlanKey& k) const noexcept {
      return (*this)(std::span<const std::uint64_t>(k.words.data(),
                                                    k.words.size()));
    }
  };
  struct PlanKeyEq {
    using is_transparent = void;
    static bool eq(std::span<const std::uint64_t> a,
                   std::span<const std::uint64_t> b) noexcept {
      return a.size() == b.size() &&
             std::equal(a.begin(), a.end(), b.begin());
    }
    bool operator()(const PlanKey& a, const PlanKey& b) const noexcept {
      return eq({a.words.data(), a.words.size()},
                {b.words.data(), b.words.size()});
    }
    bool operator()(const PlanKey& a,
                    std::span<const std::uint64_t> b) const noexcept {
      return eq({a.words.data(), a.words.size()}, b);
    }
    bool operator()(std::span<const std::uint64_t> a,
                    const PlanKey& b) const noexcept {
      return eq(a, {b.words.data(), b.words.size()});
    }
  };

  struct StructState {
    const StructRule* rule = nullptr;
    StructRuleMatcher matcher;
    std::optional<std::uint64_t> in_base;
    std::vector<std::optional<std::uint64_t>> out_bases;  // by out index
    std::unordered_map<PlanKey, StructPlan, PlanKeyHash, PlanKeyEq> plans;

    StructState(const layout::TypeTable& types, const StructRule& r)
        : rule(&r), matcher(types, r), out_bases(r.outs.size()) {}
  };

  struct StrideState {
    const StrideRule* rule = nullptr;
    std::optional<std::uint64_t> out_base;
    std::uint64_t elem_size = 0;  // cached size_of(rule->elem_type)
    Symbol out_sym;               // pre-interned rule->out_name
    SmallVector<Symbol, 2> inject_syms;  // pre-interned inject names
    SmallVector<std::optional<std::uint64_t>, 2> inject_addrs;  // by index
  };

  void process(const trace::TraceRecord& rec);
  void diag(std::string message);
  void forward(const trace::TraceRecord& rec, bool inserted_record = false);
  std::uint64_t arena_alloc(std::uint64_t size, std::uint64_t align,
                            bool stack_side);
  std::uint64_t ensure_out_base(StructState& st, std::size_t out_index,
                                std::uint64_t in_address);
  trace::VarRef make_var(std::string_view base,
                         std::span<const layout::PathStep> path);

  bool apply_struct(StructState& st, const trace::TraceRecord& rec);
  bool apply_stride(StrideState& st, const trace::TraceRecord& rec);

  /// Serves `rec` from a memoized plan. Returns false (emitting nothing)
  /// on a cache miss or when the plan cannot prove the record in-bounds;
  /// the caller then runs the slow path, which owns all diagnostics.
  bool apply_struct_fast(StructState& st, const trace::TraceRecord& rec);
  bool apply_stride_fast(StrideState& st, const trace::TraceRecord& rec);

  /// Builds and stores the plan for `rec`'s shape after a slow-path
  /// success. Never throws; on any surprise the shape simply stays
  /// uncached.
  void memoize_struct_plan(StructState& st, const trace::TraceRecord& rec);

  AffineOffset affine_of(layout::TypeId root,
                         std::span<const TemplateStep> steps) const;
  VarTemplate make_var_template(std::string_view base,
                                std::span<const TemplateStep> steps);
  static trace::VarRef instantiate_var(const VarTemplate& t,
                                       std::span<const std::uint64_t> indices);

  const RuleSet* rules_;
  trace::TraceContext* ctx_;
  trace::TraceSink* downstream_;
  TransformOptions options_;
  TransformStats stats_;

  // Name-keyed lookups (transparent hash: string_view queries allocate
  // nothing) serve the public out_base() API; the per-record dispatch
  // goes through by_symbol_ below.
  std::unordered_map<std::string, std::size_t, StringViewHash,
                     std::equal_to<>>
      struct_by_name_;
  std::unordered_map<std::string, std::size_t, StringViewHash,
                     std::equal_to<>>
      stride_by_name_;

  /// Interned base-symbol id -> rule state. Stride states are tagged with
  /// the high bit. Rule names are interned at construction so any record
  /// whose base matches a rule carries one of these ids.
  static constexpr std::uint32_t kStrideTag = 0x80000000u;
  std::unordered_map<std::uint32_t, std::uint32_t> by_symbol_;

  std::vector<StructState> struct_states_;
  std::vector<StrideState> stride_states_;

  std::uint64_t stack_arena_cursor_;
  std::uint64_t global_arena_cursor_;
};

/// One-shot transformation of an in-memory trace. Stats are written to
/// *stats when non-null.
[[nodiscard]] std::vector<trace::TraceRecord> transform_trace(
    const RuleSet& rules, trace::TraceContext& ctx,
    std::span<const trace::TraceRecord> records,
    TransformOptions options = {}, TransformStats* stats = nullptr);

}  // namespace tdt::core
