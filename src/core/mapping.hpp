// Leaf-template mapping: the heart of structure-layout rewriting.
//
// The paper matches `in` and `out` structures "by element name" (§IV-A.1:
// "structure's element names must match because we rely on the element's
// name to map"). We formalize that: every leaf of a type is described by
// its *field chain* (the sequence of field names on the way down, ignoring
// array indices) plus a list of wildcard index slots (one per array
// dimension crossed). Two layouts correspond when they expose the same
// field chains with the same wildcard counts; an access is rewritten by
// extracting its (chain, indices) and substituting the indices into the
// matching template of the out layout.
//
//   in  lSoA.mX[7]      chain ["mX"], indices [7]
//   out lAoS[16]{mX,..} template chain ["mX"], steps [*, .mX]
//   =>  lAoS[7].mX
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "layout/path.hpp"
#include "layout/type.hpp"

namespace tdt::core {

/// One step of a leaf template: a concrete field name or an index
/// wildcard with its array extent.
struct TemplateStep {
  bool is_field = false;
  std::string field;        // when is_field
  std::uint64_t extent = 0; // when !is_field (array dimension size)
};

/// A leaf of a type with wildcard indices.
struct LeafTemplate {
  std::vector<TemplateStep> steps;
  std::vector<std::string> chain;  ///< field names only, in order
  std::uint64_t wildcards = 0;     ///< number of index slots
  layout::TypeId leaf_type = layout::kInvalidType;
  std::uint64_t leaf_size = 0;

  /// Substitutes `indices` (one per wildcard, in order) producing a
  /// concrete path. Throws Error{Semantic} when an index exceeds the
  /// extent or the count mismatches.
  [[nodiscard]] layout::Path instantiate(
      std::span<const std::uint64_t> indices) const;
};

/// All leaf templates of `root`, in layout order.
[[nodiscard]] std::vector<LeafTemplate> enumerate_leaf_templates(
    const layout::TypeTable& table, layout::TypeId root);

/// Decomposition of a concrete access path into chain + indices.
struct ChainKey {
  std::vector<std::string> chain;
  std::vector<std::uint64_t> indices;
};

/// Extracts the chain key from a concrete layout path.
[[nodiscard]] ChainKey chain_key_of(std::span<const layout::PathStep> path);

/// Index of leaf templates searchable by field chain.
class TemplateIndex {
 public:
  TemplateIndex() = default;
  TemplateIndex(const layout::TypeTable& table, layout::TypeId root);

  /// Finds the template whose chain equals `chain`; nullptr when absent.
  [[nodiscard]] const LeafTemplate* find(
      std::span<const std::string> chain) const;

  [[nodiscard]] const std::vector<LeafTemplate>& all() const noexcept {
    return templates_;
  }

 private:
  std::vector<LeafTemplate> templates_;
};

}  // namespace tdt::core
