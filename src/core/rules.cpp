#include "core/rules.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::core {

const std::string& rule_in_name(const TransformRule& rule) {
  if (const auto* s = std::get_if<StructRule>(&rule)) return s->in_name;
  return std::get<StrideRule>(rule).in_name;
}

void RuleSet::add(TransformRule rule) {
  const std::string& name = rule_in_name(rule);
  if (find(name) != nullptr) {
    throw_semantic_error("duplicate rule for variable '" + name +
                         "' (rules are one-to-one)");
  }
  rules_.push_back(std::move(rule));
}

const TransformRule* RuleSet::find(std::string_view in_name) const {
  for (const TransformRule& r : rules_) {
    if (rule_in_name(r) == in_name) return &r;
  }
  return nullptr;
}

StructRuleMatcher::StructRuleMatcher(const layout::TypeTable& types,
                                     const StructRule& rule)
    : rule_(&rule), in_index_(types, rule.in_type) {
  out_indices_.reserve(rule.outs.size());
  for (const OutVar& out : rule.outs) {
    out_indices_.emplace_back(types, out.type);
  }
}

ChainRoute StructRuleMatcher::route(
    std::span<const std::string> chain) const {
  ChainRoute route;
  // Outlined chains take priority: a chain starting with a linked nested
  // field is served from the pool, never from a direct out field of the
  // same name.
  for (const PointerLink& link : rule_->links) {
    if (chain.empty() || chain.front() != link.field) continue;
    // Strip the nested-field name; the remainder is looked up in the pool.
    std::vector<std::string> rest(chain.begin() + 1, chain.end());
    for (std::size_t i = 0; i < rule_->outs.size(); ++i) {
      if (rule_->outs[i].name != link.pool) continue;
      const LeafTemplate* leaf = out_indices_[i].find(rest);
      if (leaf == nullptr) break;
      route.out = &rule_->outs[i];
      route.leaf = leaf;
      route.link = &link;
      // Locate the owner out var and its pointer-field template.
      for (std::size_t k = 0; k < rule_->outs.size(); ++k) {
        if (rule_->outs[k].name != link.owner) continue;
        route.link_owner = &rule_->outs[k];
        const std::vector<std::string> ptr_chain{link.field};
        route.pointer_leaf = out_indices_[k].find(ptr_chain);
        break;
      }
      return route;
    }
  }
  // Direct match in any out variable.
  for (std::size_t i = 0; i < rule_->outs.size(); ++i) {
    if (const LeafTemplate* leaf = out_indices_[i].find(chain)) {
      route.out = &rule_->outs[i];
      route.leaf = leaf;
      return route;
    }
  }
  return route;  // .out == nullptr: unmappable
}

std::vector<RuleDiagnostic> RuleSet::validate() const {
  std::vector<RuleDiagnostic> diags;
  auto warn = [&](std::string msg) {
    diags.push_back({RuleDiagnostic::Severity::Warning, std::move(msg)});
  };
  auto error = [&](std::string msg) {
    diags.push_back({RuleDiagnostic::Severity::Error, std::move(msg)});
  };

  for (const TransformRule& rule : rules_) {
    if (const auto* stride = std::get_if<StrideRule>(&rule)) {
      if (!stride->formula.has_variable()) {
        warn("stride rule '" + stride->in_name +
             "': formula has no index variable; every access maps to one "
             "element");
      }
      // The formula must keep all remapped indices inside the out array.
      for (std::uint64_t i = 0; i < stride->in_count; ++i) {
        const std::int64_t j =
            stride->formula.eval(static_cast<std::int64_t>(i));
        if (j < 0 || static_cast<std::uint64_t>(j) >= stride->out_count) {
          error("stride rule '" + stride->in_name + "': formula maps index " +
                std::to_string(i) + " to " + std::to_string(j) +
                ", outside " + stride->out_name + "[" +
                std::to_string(stride->out_count) + "]");
          break;
        }
      }
      continue;
    }

    const auto& sr = std::get<StructRule>(rule);
    StructRuleMatcher matcher(types_, sr);
    // Every link must reference existing out vars and a pointer field.
    for (const PointerLink& link : sr.links) {
      ChainRoute probe;
      bool owner_found = false, pool_found = false;
      for (const OutVar& o : sr.outs) {
        owner_found |= o.name == link.owner;
        pool_found |= o.name == link.pool;
      }
      (void)probe;
      if (!owner_found) {
        error("rule '" + sr.in_name + "': link owner '" + link.owner +
              "' is not an out variable");
      }
      if (!pool_found) {
        error("rule '" + sr.in_name + "': link pool '" + link.pool +
              "' is not an out variable");
      }
    }
    // Route every in leaf.
    std::vector<bool> out_leaf_covered;
    std::vector<const LeafTemplate*> all_out_leaves;
    for (std::size_t i = 0; i < sr.outs.size(); ++i) {
      for (const LeafTemplate& t : matcher.out_index(i).all()) {
        all_out_leaves.push_back(&t);
      }
    }
    out_leaf_covered.assign(all_out_leaves.size(), false);

    for (const LeafTemplate& in_leaf : matcher.in_index().all()) {
      const ChainRoute route = matcher.route(in_leaf.chain);
      if (route.out == nullptr) {
        error("rule '" + sr.in_name + "': in element '" +
              join(in_leaf.chain, ".") + "' has no out mapping");
        continue;
      }
      if (route.leaf->wildcards != in_leaf.wildcards) {
        error("rule '" + sr.in_name + "': element '" +
              join(in_leaf.chain, ".") + "' has " +
              std::to_string(in_leaf.wildcards) + " array dimensions in, " +
              std::to_string(route.leaf->wildcards) + " out");
        continue;
      }
      if (route.leaf->leaf_size != in_leaf.leaf_size) {
        warn("rule '" + sr.in_name + "': element '" +
             join(in_leaf.chain, ".") + "' changes size " +
             std::to_string(in_leaf.leaf_size) + " -> " +
             std::to_string(route.leaf->leaf_size));
      }
      if (route.link != nullptr && route.pointer_leaf == nullptr) {
        error("rule '" + sr.in_name + "': out variable '" + route.link->owner +
              "' lacks pointer field '" + route.link->field + "'");
      }
      for (std::size_t k = 0; k < all_out_leaves.size(); ++k) {
        if (all_out_leaves[k] == route.leaf) out_leaf_covered[k] = true;
      }
    }
    // Pointer fields themselves are "covered" by construction.
    for (std::size_t k = 0; k < all_out_leaves.size(); ++k) {
      if (out_leaf_covered[k]) continue;
      const LeafTemplate* t = all_out_leaves[k];
      bool is_pointer_field = false;
      for (const PointerLink& link : sr.links) {
        if (t->chain.size() == 1 && t->chain.front() == link.field) {
          is_pointer_field = true;
        }
      }
      if (!is_pointer_field) {
        warn("rule '" + sr.in_name + "': out element '" + join(t->chain, ".") +
             "' receives no in data (padding?)");
      }
    }
  }
  return diags;
}

}  // namespace tdt::core
