// Transformation rules: the data model behind the paper's rule files
// (Listings 5, 8, 11). A RuleSet owns the TypeTable holding the rule
// structures and a list of rules keyed by the trace variable they match.
//
// Rule kinds:
//  * StructRule — layout rewriting between an `in` structure and one or
//    more `out` variables, matched by element name. Covers SoA<->AoS
//    (paper T1), field reordering, hot/cold splitting, and — when a
//    PointerLink is present — outlining behind a pointer with inserted
//    indirection loads (paper T2).
//  * StrideRule — index remapping of a flat array through a formula, with
//    optional injected auxiliary accesses (paper T3 set pinning).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/formula.hpp"
#include "core/mapping.hpp"
#include "layout/type.hpp"
#include "trace/record.hpp"

namespace tdt::core {

/// One output variable of a StructRule.
struct OutVar {
  std::string name;
  layout::TypeId type = layout::kInvalidType;
};

/// A pointer field in an out variable: in-accesses to the nested field
/// `field` are outlined into `pool` and preceded by a load of
/// `owner[...].field` (the pointer), reproducing the indirection the
/// rewritten program would perform (paper §IV-A.2).
struct PointerLink {
  std::string owner;  ///< out variable holding the pointer field
  std::string field;  ///< pointer/nested-struct field name
  std::string pool;   ///< out variable receiving the outlined elements
};

/// Layout / outlining rule.
struct StructRule {
  std::string in_name;
  layout::TypeId in_type = layout::kInvalidType;
  std::vector<OutVar> outs;
  std::vector<PointerLink> links;
};

/// Auxiliary access injected per transformed record of a stride rule
/// (the paper "hand forced the simulator to inject additional
/// instructions" for the index arithmetic; we declare them in the rule).
struct InjectSpec {
  trace::AccessKind kind = trace::AccessKind::Load;
  std::string name;
  std::uint32_t size = 4;
};

/// Stride / set-pinning rule.
struct StrideRule {
  std::string in_name;
  layout::TypeId elem_type = layout::kInvalidType;
  std::uint64_t in_count = 0;
  std::string out_name;
  std::uint64_t out_count = 0;
  Formula formula;  ///< maps the original flat index to the new index
  std::vector<InjectSpec> injects;
};

using TransformRule = std::variant<StructRule, StrideRule>;

/// Name of the variable a rule matches.
[[nodiscard]] const std::string& rule_in_name(const TransformRule& rule);

/// One validation finding (rule-load time).
struct RuleDiagnostic {
  enum class Severity : std::uint8_t { Warning, Error };
  Severity severity = Severity::Warning;
  std::string message;
};

/// A set of rules plus the types they define.
class RuleSet {
 public:
  RuleSet() = default;
  explicit RuleSet(layout::TypeTable types) : types_(std::move(types)) {}

  RuleSet(RuleSet&&) noexcept = default;
  RuleSet& operator=(RuleSet&&) noexcept = default;

  /// Adds a rule. Throws Error{Semantic} when a rule for the same in
  /// variable already exists ("each rule is one to one mapping", §IV-A).
  void add(TransformRule rule);

  /// Finds the rule matching `in_name`; nullptr when none.
  [[nodiscard]] const TransformRule* find(std::string_view in_name) const;

  [[nodiscard]] const std::vector<TransformRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] layout::TypeTable& types() noexcept { return types_; }
  [[nodiscard]] const layout::TypeTable& types() const noexcept {
    return types_;
  }

  /// Validates every rule: each in leaf chain must map to exactly one out
  /// template (directly or through a PointerLink) with matching wildcard
  /// counts. Size changes and uncovered out leaves produce warnings;
  /// unmappable in leaves produce errors.
  [[nodiscard]] std::vector<RuleDiagnostic> validate() const;

 private:
  layout::TypeTable types_;
  std::vector<TransformRule> rules_;
};

/// Resolution of one in-chain against a StructRule's outs: which out
/// variable, which template, and (for outlined chains) the pointer link
/// with the owner's pointer template.
struct ChainRoute {
  const OutVar* out = nullptr;
  const LeafTemplate* leaf = nullptr;
  const PointerLink* link = nullptr;        // non-null for outlined chains
  const OutVar* link_owner = nullptr;       // out var holding the pointer
  const LeafTemplate* pointer_leaf = nullptr;  // template of the pointer field
};

/// Precomputed per-StructRule matching state used by the transformer and
/// by RuleSet::validate().
class StructRuleMatcher {
 public:
  StructRuleMatcher(const layout::TypeTable& types, const StructRule& rule);

  /// Routes an in-access chain; nullptr Route.out when unmappable.
  [[nodiscard]] ChainRoute route(std::span<const std::string> chain) const;

  [[nodiscard]] const TemplateIndex& in_index() const noexcept {
    return in_index_;
  }
  [[nodiscard]] const TemplateIndex& out_index(std::size_t i) const {
    return out_indices_[i];
  }
  [[nodiscard]] const StructRule& rule() const noexcept { return *rule_; }

 private:
  const StructRule* rule_;
  TemplateIndex in_index_;
  std::vector<TemplateIndex> out_indices_;
};

}  // namespace tdt::core
