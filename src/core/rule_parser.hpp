// Parser for the transformation-rule DSL (paper Listings 5, 8, 11).
//
// A rule file is a sequence of rules, each:
//
//   in:
//     <struct definitions; the LAST one names the matched trace variable>
//   out:
//     <one or more out structures; `}[N];` suffixes make them arrays;
//      a `+ field:pool;` member declares a pointer link (outlining)>
//   inject:                          (optional extension, see DESIGN.md)
//     L <name> <size>;               (auxiliary accesses per remap)
//
// Stride rules use scalar array syntax instead of structs:
//
//   in:
//     int lContiguousArray[1024]:lSetHashingArray;
//   out:
//     int lSetHashingArray[16384((lI/8)*(16*8)+(lI%8))];
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/rules.hpp"

namespace tdt::core {

/// Parses a rule file's text into a RuleSet with its own TypeTable.
/// Throws Error{Parse} / Error{Semantic} on malformed input.
[[nodiscard]] RuleSet parse_rules(std::string_view text);

/// Reads and parses a rule file from disk. Throws Error{Io} when the file
/// cannot be read.
[[nodiscard]] RuleSet parse_rules_file(const std::string& path);

/// Renders a rule back to canonical DSL text (round-trip/debugging aid).
[[nodiscard]] std::string render_rule(const layout::TypeTable& types,
                                      const TransformRule& rule);

/// Serializes every rule of `set` in canonical DSL text, in rule order.
/// The output reparses with parse_rules() to an equivalent RuleSet
/// (same rules, same layouts) and re-serializes to identical text — the
/// round-trip contract the autotuner's candidate generator relies on.
void write_rules(const RuleSet& set, std::ostream& out);

/// String form of write_rules.
[[nodiscard]] std::string write_rules_string(const RuleSet& set);

/// Writes a rule file to disk. Throws Error{Io} when the file cannot be
/// opened.
void write_rules_file(const RuleSet& set, const std::string& path);

}  // namespace tdt::core
