#include "util/lexer.hpp"

#include <array>
#include <cctype>

#include "util/string_util.hpp"

namespace tdt {
namespace {

// Two-character punctuation recognized before single characters.
// ("--" is deliberately absent: it would break unary minus chains like
// "--5" in index formulas; kernels write `i = i - 1` instead.)
constexpr std::array<std::string_view, 8> kTwoCharPunct = {
    "->", "::", "==", "!=", "<=", ">=", "++", "+="};

bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::uint64_t Token::number() const {
  internal_check(kind == TokKind::Number, "number() on non-number token");
  if (is_float()) {
    throw_parse_error("expected an integer, got floating literal '" +
                          std::string(text) + "'",
                      loc);
  }
  auto v = parse_uint(text);
  if (!v.has_value()) {
    throw_parse_error("integer literal out of range: '" + std::string(text) +
                          "'",
                      loc);
  }
  return *v;
}

bool Token::is_float() const noexcept {
  return kind == TokKind::Number &&
         text.find('.') != std::string_view::npos;
}

double Token::real() const {
  internal_check(kind == TokKind::Number, "real() on non-number token");
  if (is_float()) {
    try {
      return std::stod(std::string(text));
    } catch (const std::exception&) {
      throw_parse_error("floating literal out of range: '" +
                            std::string(text) + "'",
                        loc);
    }
  }
  return static_cast<double>(number());
}

Lexer::Lexer(std::string_view source) : src_(source) {}

void Lexer::skip_space_and_comments() {
  while (pos_ < src_.size()) {
    const char c = src_[pos_];
    if (c == '\n') {
      ++line_;
      col_ = 1;
      ++pos_;
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++col_;
      ++pos_;
    } else if (c == '#' ||
               (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/')) {
      while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
      pos_ += 2;
      col_ += 2;
      while (pos_ + 1 < src_.size() &&
             !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
        if (src_[pos_] == '\n') {
          ++line_;
          col_ = 1;
        } else {
          ++col_;
        }
        ++pos_;
      }
      if (pos_ + 1 < src_.size()) {
        pos_ += 2;
        col_ += 2;
      } else {
        throw_parse_error("unterminated block comment", {line_, col_});
      }
    } else {
      return;
    }
  }
}

Token Lexer::lex() {
  skip_space_and_comments();
  SourceLoc loc{line_, col_};
  if (pos_ >= src_.size()) {
    return Token{TokKind::End, {}, loc};
  }
  const char c = src_[pos_];
  if (is_ident_start(c)) {
    std::size_t start = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) {
      ++pos_;
      ++col_;
    }
    return Token{TokKind::Ident, src_.substr(start, pos_ - start), loc};
  }
  if (is_digit(c)) {
    std::size_t start = pos_;
    if (c == '0' && pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
      pos_ += 2;
      col_ += 2;
      while (pos_ < src_.size() &&
             std::isxdigit(static_cast<unsigned char>(src_[pos_])) != 0) {
        ++pos_;
        ++col_;
      }
    } else {
      while (pos_ < src_.size() && is_digit(src_[pos_])) {
        ++pos_;
        ++col_;
      }
      // Floating literal: digits '.' digit+ (a bare '.' stays punctuation
      // so member access after an index, `a[1].f`, lexes correctly).
      if (pos_ + 1 < src_.size() && src_[pos_] == '.' &&
          is_digit(src_[pos_ + 1])) {
        ++pos_;
        ++col_;
        while (pos_ < src_.size() && is_digit(src_[pos_])) {
          ++pos_;
          ++col_;
        }
      }
    }
    return Token{TokKind::Number, src_.substr(start, pos_ - start), loc};
  }
  for (std::string_view two : kTwoCharPunct) {
    if (src_.substr(pos_).size() >= 2 && src_.substr(pos_, 2) == two) {
      pos_ += 2;
      col_ += 2;
      return Token{TokKind::Punct, two, loc};
    }
  }
  std::string_view one = src_.substr(pos_, 1);
  ++pos_;
  ++col_;
  return Token{TokKind::Punct, one, loc};
}

const Token& Lexer::peek() {
  if (!has_lookahead_) {
    lookahead_ = lex();
    has_lookahead_ = true;
  }
  return lookahead_;
}

Token Lexer::next() {
  (void)peek();
  has_lookahead_ = false;
  return lookahead_;
}

bool Lexer::accept(std::string_view text) {
  if (peek().is(text)) {
    next();
    return true;
  }
  return false;
}

Token Lexer::expect(std::string_view text) {
  const Token& t = peek();
  if (!t.is(text)) {
    throw_parse_error("expected '" + std::string(text) + "', got '" +
                          std::string(t.kind == TokKind::End ? "<end>" : t.text) +
                          "'",
                      t.loc);
  }
  return next();
}

Token Lexer::expect(TokKind k, std::string_view what) {
  const Token& t = peek();
  if (t.kind != k) {
    throw_parse_error("expected " + std::string(what) + ", got '" +
                          std::string(t.kind == TokKind::End ? "<end>" : t.text) +
                          "'",
                      t.loc);
  }
  return next();
}

bool Lexer::at_end() { return peek().kind == TokKind::End; }

SourceLoc Lexer::loc() { return peek().loc; }

}  // namespace tdt
