// Unified observability: a lightweight metrics registry shared by the
// CLI tools, the streaming pipeline, and the benchmarks.
//
// The paper's whole methodology is measure -> transform -> re-measure,
// so every stage must emit machine-consumable numbers, not ad-hoc text.
// A Registry owns three metric kinds plus phase spans:
//
//   Counter   — monotonically increasing u64; add() is wait-free on a
//               per-thread stripe, value() folds the stripes.
//   Gauge     — last-written double (rates, ratios, configuration).
//   Histogram — log2-bucketed u64 distribution with count/sum/min/max
//               (batch latencies, per-set activity).
//
// PhaseTimer is an RAII span: it accumulates wall time under a phase
// name and records a span for the Chrome trace_event export. Two
// exporters render a Registry:
//
//   metrics_json() — stable-schema snapshot ("tdt-metrics/1", top-level
//                    keys tool/phases/counters/gauges/histograms), the
//                    file written by the tools' --metrics-json flag.
//   spans_json()   — Chrome trace_event array loadable by Perfetto /
//                    chrome://tracing, written by --trace-spans.
//
// Heartbeat backs the tools' --progress flag: a rate-limited one-line
// records/s report on stderr, cheap enough to tick per batch.
//
// Everything is optional-by-pointer: passing a null Registry* anywhere
// is a no-op, so instrumented code paths stay byte-identical to
// uninstrumented ones when the flags are off. See docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tdt::obs {

/// Number of log2 histogram buckets: bucket 0 holds the value 0, bucket
/// i >= 1 holds values in [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index of a value (0 for 0, else bit_width).
[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t v) noexcept {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

/// Exclusive upper bound of bucket `i` (saturates at u64 max).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_le(std::size_t i) noexcept {
  if (i == 0) return 1;
  if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
  return std::uint64_t{1} << i;
}

/// Plain (single-threaded) histogram accumulator. Worker threads record
/// into a private HistogramData and merge it into the shared Histogram
/// once at the end — the "per-thread shard folded on snapshot" pattern
/// without any hot-path atomics.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  void record(std::uint64_t v) noexcept {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    ++buckets[histogram_bucket(v)];
  }

  void merge(const HistogramData& o) noexcept {
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      buckets[i] += o.buckets[i];
    }
  }

  [[nodiscard]] bool empty() const noexcept { return count == 0; }
};

/// Monotonic counter, sharded across cache-line-padded stripes so
/// concurrent add() calls from pipeline workers never contend on one
/// line; value() folds the stripes (snapshot semantics).
class Counter {
 public:
  void add(std::uint64_t v = 1) noexcept {
    stripes_[stripe_index()].value.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  static constexpr std::size_t kStripes = 8;

  static std::size_t stripe_index() noexcept;

  std::array<Stripe, kStripes> stripes_{};
};

/// Last-write-wins double (rates, ratios, small configuration values).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe log2 histogram (atomic buckets; min/max via CAS).
class Histogram {
 public:
  void record(std::uint64_t v) noexcept;

  /// Folds a privately accumulated shard in (one atomic pass).
  void merge(const HistogramData& shard) noexcept;

  [[nodiscard]] HistogramData snapshot() const noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

/// Wall time and hit count of one named phase.
struct PhaseInfo {
  std::uint64_t count = 0;
  double seconds = 0;
};

/// Central metric store for one tool run. Metric handles returned by
/// counter()/gauge()/histogram() are get-or-create, stable for the
/// registry's lifetime, and safe to use from any thread.
class Registry {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Registry(std::string tool);

  [[nodiscard]] const std::string& tool() const noexcept { return tool_; }

  /// Start of the run; span timestamps are relative to this.
  [[nodiscard]] Clock::time_point epoch() const noexcept { return epoch_; }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Accumulates wall time under `name` (PhaseTimer calls this).
  void add_phase(std::string_view name, double seconds);

  /// Records one completed span for the trace_event export. `tid` is a
  /// small stable lane id (0 = main thread, workers use 1..N).
  void add_span(std::string_view name, Clock::time_point begin,
                Clock::time_point end, std::uint32_t tid = 0);

  /// Stable-schema metrics snapshot; see docs/OBSERVABILITY.md.
  [[nodiscard]] std::string metrics_json() const;

  /// Chrome trace_event JSON (Perfetto / chrome://tracing).
  [[nodiscard]] std::string spans_json() const;

  /// Writes metrics_json()/spans_json() to `path`. Throws Error{Io} when
  /// the file cannot be opened.
  void write_metrics_file(const std::string& path) const;
  void write_spans_file(const std::string& path) const;

 private:
  struct SpanRecord {
    std::string name;
    std::uint32_t tid = 0;
    double start_us = 0;
    double dur_us = 0;
  };

  std::string tool_;
  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  // Node-based maps: references handed out stay valid forever, and
  // iteration is name-ordered, which keeps the JSON deterministic.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, PhaseInfo, std::less<>> phases_;
  std::vector<SpanRecord> spans_;
};

/// RAII phase span: accumulates into Registry::add_phase and records a
/// trace_event span on destruction (or explicit stop()). A null registry
/// makes every operation a no-op, so callers can instrument
/// unconditionally.
class PhaseTimer {
 public:
  PhaseTimer(Registry* registry, std::string name, std::uint32_t tid = 0)
      : registry_(registry),
        name_(std::move(name)),
        tid_(tid),
        begin_(registry ? Registry::Clock::now()
                        : Registry::Clock::time_point{}) {}

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { stop(); }

  /// Ends the span early; idempotent.
  void stop() {
    if (registry_ == nullptr) return;
    const auto end = Registry::Clock::now();
    registry_->add_phase(name_, std::chrono::duration<double>(end - begin_)
                                    .count());
    registry_->add_span(name_, begin_, end, tid_);
    registry_ = nullptr;
  }

 private:
  Registry* registry_;
  std::string name_;
  std::uint32_t tid_;
  Registry::Clock::time_point begin_;
};

/// Rate-limited records/s progress reporter (the --progress flag): tick()
/// is cheap enough for per-batch calls, and at most one line per
/// `interval_seconds` is printed:
///
///   dinerosim: 12.6M records (8.12 Mrec/s)
class Heartbeat {
 public:
  explicit Heartbeat(std::string label, std::ostream& out,
                     double interval_seconds = 1.0);

  /// Accounts `n` more records; prints when the interval elapsed.
  void tick(std::uint64_t n) noexcept;

  /// Prints the final total (always, even under the rate limit).
  void finish();

  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  void maybe_report();
  void report_line(double seconds, bool final_line);

  std::string label_;
  std::ostream* out_;
  double interval_;
  std::uint64_t records_ = 0;
  std::uint64_t next_check_ = 1;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_report_;
  bool finished_ = false;

  // Re-check the clock at most every this many records.
  static constexpr std::uint64_t kCheckStride = 65536;
};

}  // namespace tdt::obs
