// Structured diagnostics for the trace pipeline. Parsers and the
// transformer report problems to a DiagEngine instead of (or before)
// throwing; the engine applies the configured error-recovery policy:
//
//   Strict — every error-severity diagnostic throws tdt::Error
//            (today's fail-fast behaviour).
//   Skip   — malformed input is dropped; the diagnostic is counted and
//            processing resumes at the next record.
//   Repair — like Skip, but the reporting site first attempts a
//            best-effort salvage (e.g. keep a trace line's address and
//            size when only its variable annotation is malformed).
//
// Every diagnostic carries a stable code so runs can be compared and
// tests can assert exact per-code counts. The engine enforces a
// --max-errors cap (a stream producing garbage forever still terminates)
// and renders an end-of-run summary.
//
// Exit-code contract shared by all CLI tools (docs/robustness.md):
//   0 = clean run, 1 = completed with recovered errors, 2 = fatal/usage.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace tdt {

/// How bad one diagnostic is.
enum class DiagSeverity : std::uint8_t {
  Note,     ///< informational; never affects the exit code
  Warning,  ///< suspicious but handled; never affects the exit code
  Error,    ///< malformed input that was dropped or repaired; exit code 1
  Fatal,    ///< unrecoverable under any policy; always throws
};

/// Short lower-case name ("note", "warning", "error", "fatal").
[[nodiscard]] std::string_view to_string(DiagSeverity severity) noexcept;

/// Stable identity of a diagnostic kind.
enum class DiagCode : std::uint8_t {
  // Gleipnir text reader.
  TraceBadLine,       ///< record line unparseable, dropped
  TraceBadMarker,     ///< START/END marker malformed, dropped
  TraceRepairedLine,  ///< record salvaged without its symbol annotation
  TraceIoError,       ///< read failed mid-trace; prefix salvaged
  // din reader.
  DinBadLine,       ///< din line unparseable, dropped
  DinRepairedLine,  ///< din line salvaged with the default access size
  // TDTB binary reader.
  BinBadMagic,       ///< missing TDTB magic (fatal)
  BinBadVersion,     ///< unsupported format version (fatal)
  BinTruncated,      ///< stream ended mid-entry; prefix salvaged
  BinBadVarint,      ///< varint longer than 10 bytes or overflowing 64 bits
  BinFieldOverflow,  ///< varint value too large for its target field
  BinBadSymbol,      ///< reference to an undefined string id
  BinBadTag,         ///< unknown entry tag
  BinStringTooLong,  ///< string definition above the sanity cap
  BinBadFooter,      ///< v2 footer missing or short
  BinCrcMismatch,    ///< v2 footer CRC32 does not match the payload
  BinCountMismatch,  ///< v2 footer record count does not match
  BinBadCodec,       ///< v3 frame names an unknown or unavailable codec
  BinBadIndex,       ///< v3 frame index / container footer is corrupt
  BinFrameCorrupt,   ///< v3 frame failed its CRC or decompression
  // Transformer.
  XformUnmatchedVar,  ///< matched rule but no out mapping; passed through
  XformFailedRecord,  ///< mapping raised an error; passed through
  // Pipeline supervision.
  PipeWorkerStalled,  ///< watchdog detected a stalled worker; recovered
  PipeWorkerFailed,   ///< worker thread threw or exited early; recovered
};

/// Stable short id ("T001", "B003", ...), unique per code.
[[nodiscard]] std::string_view diag_code_id(DiagCode code) noexcept;

/// Human-readable kebab-case name ("trace-bad-line", ...).
[[nodiscard]] std::string_view diag_code_name(DiagCode code) noexcept;

/// Error-recovery policy selected with --on-error.
enum class ErrorPolicy : std::uint8_t { Strict, Skip, Repair };

/// Parses "strict" | "skip" | "repair"; throws Error{Config} otherwise.
[[nodiscard]] ErrorPolicy parse_error_policy(std::string_view text);

/// Name of a policy ("strict", "skip", "repair").
[[nodiscard]] std::string_view to_string(ErrorPolicy policy) noexcept;

/// One reported problem.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  DiagCode code = DiagCode::TraceBadLine;
  SourceLoc loc;
  std::string message;

  /// "error T001 (trace-bad-line) at 3:1: ...".
  [[nodiscard]] std::string format() const;
};

/// Collects diagnostics, applies the recovery policy, and renders the
/// end-of-run summary. Thread-compatible (external synchronisation).
class DiagEngine {
 public:
  /// `max_errors` caps error-severity diagnostics before the engine gives
  /// up and throws; 0 means unlimited.
  explicit DiagEngine(ErrorPolicy policy = ErrorPolicy::Strict,
                      std::uint64_t max_errors = kDefaultMaxErrors);

  static constexpr std::uint64_t kDefaultMaxErrors = 100;

  [[nodiscard]] ErrorPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] bool strict() const noexcept {
    return policy_ == ErrorPolicy::Strict;
  }
  [[nodiscard]] bool repair() const noexcept {
    return policy_ == ErrorPolicy::Repair;
  }

  /// Echoes every diagnostic to `os` as it is reported (CLI tools pass
  /// stderr). Pass nullptr to disable. Not owned.
  void set_echo(std::ostream* os) noexcept { echo_ = os; }

  /// Reports one diagnostic. Throws tdt::Error when the severity is
  /// Fatal, when the policy is Strict and the severity is Error, or when
  /// the error count exceeds the cap; otherwise records and returns.
  void report(DiagSeverity severity, DiagCode code, std::string message,
              SourceLoc loc = {});

  /// Count of error-severity diagnostics reported so far.
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }

  /// Count of warning-severity diagnostics reported so far.
  [[nodiscard]] std::uint64_t warnings() const noexcept { return warnings_; }

  /// Per-code counts (all severities).
  [[nodiscard]] const std::map<DiagCode, std::uint64_t>& counts()
      const noexcept {
    return counts_;
  }

  /// Count for one code.
  [[nodiscard]] std::uint64_t count(DiagCode code) const noexcept;

  /// First `retain_cap` diagnostics, verbatim.
  [[nodiscard]] const std::vector<Diagnostic>& retained() const noexcept {
    return retained_;
  }

  /// True when no error-severity diagnostic was reported.
  [[nodiscard]] bool clean() const noexcept { return errors_ == 0; }

  /// Exit code under the shared CLI contract: 0 clean, 1 recovered errors.
  [[nodiscard]] int exit_code() const noexcept { return clean() ? 0 : 1; }

  /// Multi-line end-of-run summary ("diagnostics: 3 errors, 1 warning"
  /// plus a per-code breakdown); empty string when nothing was reported.
  [[nodiscard]] std::string summary() const;

 private:
  ErrorPolicy policy_;
  std::uint64_t max_errors_;
  std::uint64_t errors_ = 0;
  std::uint64_t warnings_ = 0;
  std::uint64_t notes_ = 0;
  std::map<DiagCode, std::uint64_t> counts_;
  std::vector<Diagnostic> retained_;
  std::ostream* echo_ = nullptr;

  static constexpr std::size_t kRetainCap = 64;
};

}  // namespace tdt
