#include "util/table.hpp"

#include <algorithm>

namespace tdt {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  aligns_.assign(header_.size(), Align::Right);
  if (!aligns_.empty()) aligns_[0] = Align::Left;
}

void TextTable::set_align(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const std::size_t pad = widths[c] - cell.size();
      if (c != 0) out += "  ";
      if (aligns_[c] == Align::Right) out.append(pad, ' ');
      out += cell;
      if (aligns_[c] == Align::Left && c + 1 != header_.size()) {
        out.append(pad, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  emit_row(out, header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out;
}

std::string TextTable::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace tdt
