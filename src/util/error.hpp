// Error type used throughout tdt for recoverable failures (parse errors,
// bad configuration, malformed rule files). Carries an error kind, a
// human-readable message, and an optional source location (file:line:col)
// within the input being parsed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tdt {

/// Broad classification of recoverable errors.
enum class ErrorKind : std::uint8_t {
  Parse,      ///< malformed textual input (trace file, rule file, declaration)
  Config,     ///< invalid configuration value (cache geometry, CLI flag)
  Semantic,   ///< structurally valid input with inconsistent meaning
  Io,         ///< file could not be opened / read / written
  Resource,   ///< resource limit exhausted (--max-memory budget)
  Internal,   ///< invariant violation that should never happen
};

/// Returns a short lower-case name for an error kind ("parse", "config", ...).
std::string_view to_string(ErrorKind kind) noexcept;

/// Location inside a textual input, 1-based. line == 0 means "unknown".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool known() const noexcept { return line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Exception thrown for all recoverable tdt errors.
///
/// The `what()` string is pre-formatted as
/// `"<kind> error[ at <line>:<col>]: <message>"`.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, std::string message, SourceLoc loc = {});

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] const SourceLoc& where() const noexcept { return loc_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

 private:
  ErrorKind kind_;
  SourceLoc loc_;
  std::string message_;
};

/// Throws Error{ErrorKind::Parse, ...} with location info.
[[noreturn]] void throw_parse_error(std::string message, SourceLoc loc = {});

/// Throws Error{ErrorKind::Config, ...}.
[[noreturn]] void throw_config_error(std::string message);

/// Throws Error{ErrorKind::Semantic, ...}.
[[noreturn]] void throw_semantic_error(std::string message, SourceLoc loc = {});

/// Throws Error{ErrorKind::Io, ...}.
[[noreturn]] void throw_io_error(std::string message);

/// Throws Error{ErrorKind::Resource, ...}.
[[noreturn]] void throw_resource_error(std::string message);

/// Checks an internal invariant; throws Error{ErrorKind::Internal} when
/// `condition` is false. Used where a failed check indicates a tdt bug
/// rather than bad user input.
void internal_check(bool condition, std::string_view what);

}  // namespace tdt
