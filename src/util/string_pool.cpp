#include "util/string_pool.hpp"

#include "util/error.hpp"

namespace tdt {

StringPool::StringPool() {
  intern("");  // Symbol{0} == ""
}

StringPool::StringPool(StringPool&& other) noexcept
    : chunks_(std::move(other.chunks_)),
      size_(other.size_.load(std::memory_order_relaxed)),
      index_(std::move(other.index_)) {
  other.size_.store(0, std::memory_order_relaxed);
  other.index_.clear();
}

StringPool& StringPool::operator=(StringPool&& other) noexcept {
  if (this != &other) {
    chunks_ = std::move(other.chunks_);
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    index_ = std::move(other.index_);
    other.size_.store(0, std::memory_order_relaxed);
    other.index_.clear();
  }
  return *this;
}

Symbol StringPool::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) {
    return Symbol{it->second};
  }
  const std::uint32_t id = size_.load(std::memory_order_relaxed);
  const std::size_t k = chunk_of(id);
  if (!chunks_[k]) {
    chunks_[k] = std::make_unique<std::string[]>(
        static_cast<std::size_t>(chunk_capacity(k)));
  }
  std::string& slot = chunks_[k][id - chunk_first(k)];
  slot.assign(s);
  index_.emplace(std::string_view(slot), id);
  // Publish after the slot is fully constructed; concurrent readers only
  // look up ids they received through a synchronizing channel anyway.
  size_.store(id + 1, std::memory_order_release);
  return Symbol{id};
}

Symbol StringPool::find(std::string_view s) const noexcept {
  if (auto it = index_.find(s); it != index_.end()) {
    return Symbol{it->second};
  }
  return Symbol{};
}

std::string_view StringPool::view(Symbol sym) const {
  internal_check(sym.id() < size_.load(std::memory_order_acquire),
                 "Symbol from foreign pool");
  const std::size_t k = chunk_of(sym.id());
  return chunks_[k][sym.id() - chunk_first(k)];
}

}  // namespace tdt
