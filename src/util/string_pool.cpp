#include "util/string_pool.hpp"

#include "util/error.hpp"

namespace tdt {

StringPool::StringPool() {
  intern("");  // Symbol{0} == ""
}

Symbol StringPool::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) {
    return Symbol{it->second};
  }
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return Symbol{id};
}

Symbol StringPool::find(std::string_view s) const noexcept {
  if (auto it = index_.find(s); it != index_.end()) {
    return Symbol{it->second};
  }
  return Symbol{};
}

std::string_view StringPool::view(Symbol sym) const {
  internal_check(sym.id() < strings_.size(), "Symbol from foreign pool");
  return strings_[sym.id()];
}

}  // namespace tdt
