// Minimal declarative CLI flag parser for the tools (gtracer, dinerosim,
// tracediff, traceinfo). Supports --name value, --name=value, boolean
// switches, and positional arguments; generates --help text.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tdt {

/// Declarative command-line parser.
///
///   FlagParser p("dinerosim", "Trace-driven cache simulator");
///   auto trace  = p.add_string("trace", "", "input trace file");
///   auto warm   = p.add_bool("warm", false, "skip cold-start stats");
///   auto size   = p.add_uint("cache-size", 32768, "total bytes");
///   p.parse(argc, argv);            // throws tdt::Error on bad input
///   use(*trace, *warm, *size);
///
/// The returned pointers stay owned by the parser and are filled in by
/// parse(); they remain valid for the parser's lifetime.
class FlagParser {
 public:
  FlagParser(std::string program, std::string description);

  /// Registers a string-valued flag; returns pointer to the parsed value.
  const std::string* add_string(std::string name, std::string default_value,
                                std::string help);

  /// Registers an unsigned integer flag (accepts decimal or 0x hex).
  const std::uint64_t* add_uint(std::string name, std::uint64_t default_value,
                                std::string help);

  /// Registers a signed integer flag.
  const std::int64_t* add_int(std::string name, std::int64_t default_value,
                              std::string help);

  /// Registers a boolean switch (`--name` sets true, `--name=false` clears).
  const bool* add_bool(std::string name, bool default_value, std::string help);

  /// Parses argv. Throws Error{Config} on unknown flags or bad values.
  /// Returns false (after printing usage to stdout) when --help was given.
  bool parse(int argc, const char* const* argv);

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Renders the --help text.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { String, Uint, Int, Bool };

  struct Flag {
    std::string name;
    Kind kind;
    std::string help;
    std::string default_repr;
    std::string str_value;
    std::uint64_t uint_value = 0;
    std::int64_t int_value = 0;
    bool bool_value = false;
  };

  Flag* find(std::string_view name);
  static void assign(Flag& flag, std::string_view value);

  std::string program_;
  std::string description_;
  // deque-like stability not needed: we hand out pointers into flags_, so
  // the vector must never reallocate after the first add; reserve a fixed
  // generous capacity instead.
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tdt
