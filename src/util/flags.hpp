// Minimal declarative CLI flag parser for the tools (gtracer, dinerosim,
// tracediff, traceinfo). Supports --name value, --name=value, boolean
// switches, and positional arguments; generates --help text.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tdt {

/// Declarative command-line parser.
///
///   FlagParser p("dinerosim", "Trace-driven cache simulator");
///   auto trace  = p.add_string("trace", "", "input trace file");
///   auto warm   = p.add_bool("warm", false, "skip cold-start stats");
///   auto size   = p.add_uint("cache-size", 32768, "total bytes");
///   p.parse(argc, argv);            // throws tdt::Error on bad input
///   use(*trace, *warm, *size);
///
/// The returned pointers stay owned by the parser and are filled in by
/// parse(); they remain valid for the parser's lifetime.
class FlagParser {
 public:
  FlagParser(std::string program, std::string description);

  /// Registers a string-valued flag; returns pointer to the parsed value.
  const std::string* add_string(std::string name, std::string default_value,
                                std::string help);

  /// Registers an unsigned integer flag (accepts decimal or 0x hex).
  const std::uint64_t* add_uint(std::string name, std::uint64_t default_value,
                                std::string help);

  /// Registers a signed integer flag.
  const std::int64_t* add_int(std::string name, std::int64_t default_value,
                              std::string help);

  /// Registers a boolean switch (`--name` sets true, `--name=false` clears).
  const bool* add_bool(std::string name, bool default_value, std::string help);

  /// Registers `alias` as a hidden deprecated spelling of the existing
  /// flag `canonical`: it parses exactly like the canonical flag, is kept
  /// out of --help, and the first use prints a one-line deprecation
  /// warning to stderr ("<program>: warning: --alias is deprecated; use
  /// --canonical"). Aliases keep old command lines working byte-identically
  /// on stdout while the tools converge on one spelling.
  void add_deprecated_alias(std::string alias, std::string canonical);

  /// Redirects parse()-time output: --help usage goes to `out`,
  /// deprecation warnings to `err` (defaults: stdout/stderr). Tools set
  /// these to their ToolIO streams so a daemon-served run captures the
  /// same bytes a standalone run would print.
  void set_streams(std::FILE* out, std::FILE* err) noexcept {
    out_ = out;
    err_ = err;
  }

  /// Parses argv. Throws Error{Config} on unknown flags or bad values.
  /// Returns false (after printing usage to the out stream) when --help
  /// was given.
  bool parse(int argc, const char* const* argv);

  /// Deprecated aliases used by the last parse() call, in first-use order
  /// (each listed once).
  [[nodiscard]] const std::vector<std::string>& deprecated_used()
      const noexcept {
    return deprecated_used_;
  }

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Renders the --help text.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { String, Uint, Int, Bool };

  struct Flag {
    std::string name;
    Kind kind;
    std::string help;
    std::string default_repr;
    std::string str_value;
    std::uint64_t uint_value = 0;
    std::int64_t int_value = 0;
    bool bool_value = false;
  };

  struct Alias {
    std::string name;
    std::string canonical;
    bool warned = false;
  };

  Flag* find(std::string_view name);
  static void assign(Flag& flag, std::string_view value);

  std::string program_;
  std::string description_;
  std::FILE* out_ = stdout;
  std::FILE* err_ = stderr;
  // deque-like stability not needed: we hand out pointers into flags_, so
  // the vector must never reallocate after the first add; reserve a fixed
  // generous capacity instead.
  std::vector<Flag> flags_;
  std::vector<Alias> aliases_;
  std::vector<std::string> positional_;
  std::vector<std::string> deprecated_used_;
};

}  // namespace tdt
