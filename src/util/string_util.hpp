// Small string helpers shared by the parsers (trace reader, rule DSL,
// declaration parser) and the report writers. All functions operate on
// string_view and never allocate unless they return std::string.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tdt {

/// True for the six ASCII whitespace characters (the set split_ws and
/// trim use; locale-independent, unlike std::isspace).
[[nodiscard]] constexpr bool is_ascii_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

/// Hash functor for string-keyed maps that enables heterogeneous
/// (string_view) lookup: declare the map as
///   std::unordered_map<std::string, T, StringViewHash, std::equal_to<>>
/// and find() accepts a string_view without building a temporary
/// std::string.
struct StringViewHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Removes leading ASCII whitespace.
[[nodiscard]] std::string_view trim_left(std::string_view s) noexcept;

/// Removes trailing ASCII whitespace.
[[nodiscard]] std::string_view trim_right(std::string_view s) noexcept;

/// Splits `s` on `sep`, keeping empty fields. "a,,b" -> {"a","","b"}.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Allocation-free split_ws: clears `out` and appends up to `max_fields`
/// whitespace-separated fields. Returns false (with `out` truncated at
/// `max_fields`) when `s` has more fields — callers treat that as "line
/// too exotic for the fast path" and fall back to split_ws. `Vec` is any
/// push_back-able container of string_view (typically a SmallVector whose
/// inline capacity is >= max_fields, so the hot path never allocates).
template <typename Vec>
bool split_ws_into(std::string_view s, Vec& out, std::size_t max_fields) {
  out.clear();
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_ascii_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_ascii_space(s[i])) ++i;
    if (i > start) {
      if (out.size() == max_fields) return false;
      out.push_back(s.substr(start, i - start));
    }
  }
  return true;
}

/// True when `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// True when `s` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view s,
                             std::string_view suffix) noexcept;

/// Parses a decimal signed integer; returns nullopt on any deviation
/// (empty, trailing junk, overflow).
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s);

/// Parses an unsigned integer in base 10 or, with "0x" prefix, base 16.
[[nodiscard]] std::optional<std::uint64_t> parse_uint(std::string_view s);

/// Parses a hexadecimal unsigned integer (no 0x prefix required).
[[nodiscard]] std::optional<std::uint64_t> parse_hex(std::string_view s);

/// Formats `value` as lower-case hex, zero padded to `width` digits
/// (Gleipnir prints addresses as 9-digit hex, e.g. "7ff000108").
[[nodiscard]] std::string to_hex(std::uint64_t value, int width = 0);

/// True when `c` is a valid identifier start ([A-Za-z_]).
[[nodiscard]] bool is_ident_start(char c) noexcept;

/// True when `c` is a valid identifier continuation ([A-Za-z0-9_]).
[[nodiscard]] bool is_ident_char(char c) noexcept;

/// True when `s` is a non-empty well-formed identifier.
[[nodiscard]] bool is_identifier(std::string_view s) noexcept;

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Human-readable byte size: 32768 -> "32 KiB", 32 -> "32 B".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace tdt
