// SmallVector<T, N>: vector with inline storage for the first N elements.
// VarRef selector chains (a handful of field/index steps) and transformer
// output bursts (1-3 records) are tiny in the common case; keeping them
// inline removes an allocation per trace line on the hot path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tdt {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (const T& v : other) push_back(v);
  }

  SmallVector(SmallVector&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    move_from(std::move(other));
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& v : other) push_back(v);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      destroy_all();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { destroy_all(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while elements still live in the inline buffer (no heap spill).
  [[nodiscard]] bool is_inline() const noexcept { return data_ == inline_ptr(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T& front() noexcept { return data_[0]; }
  const T& front() const noexcept { return data_[0]; }
  T& back() noexcept { return data_[size_ - 1]; }
  const T& back() const noexcept { return data_[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() noexcept {
    data_[--size_].~T();
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void resize(std::size_t n) {
    reserve(n);
    while (size_ < n) emplace_back();
    while (size_ > n) pop_back();
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* inline_ptr() noexcept { return std::launder(reinterpret_cast<T*>(inline_storage_)); }
  const T* inline_ptr() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void grow(std::size_t new_cap) {
    new_cap = std::max(new_cap, N + 1);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = new_cap;
  }

  void move_from(SmallVector&& other) {
    if (other.is_inline()) {
      data_ = inline_ptr();
      capacity_ = N;
      size_ = 0;
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        ++size_;
      }
      other.clear();
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_ptr();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  void destroy_all() noexcept {
    clear();
    if (!is_inline()) {
      ::operator delete(data_);
      data_ = inline_ptr();
      capacity_ = N;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_ptr();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace tdt
