#include "util/flags.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt {
namespace {

constexpr std::size_t kMaxFlags = 64;

std::string_view kind_name(int kind) {
  switch (kind) {
    case 0: return "string";
    case 1: return "uint";
    case 2: return "int";
    case 3: return "bool";
  }
  return "?";
}

}  // namespace

FlagParser::FlagParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  flags_.reserve(kMaxFlags);  // pointer stability for handed-out values
}

const std::string* FlagParser::add_string(std::string name,
                                          std::string default_value,
                                          std::string help) {
  internal_check(flags_.size() < kMaxFlags, "too many flags");
  Flag f{std::move(name), Kind::String, std::move(help), default_value,
         std::move(default_value)};
  flags_.push_back(std::move(f));
  return &flags_.back().str_value;
}

const std::uint64_t* FlagParser::add_uint(std::string name,
                                          std::uint64_t default_value,
                                          std::string help) {
  internal_check(flags_.size() < kMaxFlags, "too many flags");
  Flag f{std::move(name), Kind::Uint, std::move(help),
         std::to_string(default_value), {}};
  f.uint_value = default_value;
  flags_.push_back(std::move(f));
  return &flags_.back().uint_value;
}

const std::int64_t* FlagParser::add_int(std::string name,
                                        std::int64_t default_value,
                                        std::string help) {
  internal_check(flags_.size() < kMaxFlags, "too many flags");
  Flag f{std::move(name), Kind::Int, std::move(help),
         std::to_string(default_value), {}};
  f.int_value = default_value;
  flags_.push_back(std::move(f));
  return &flags_.back().int_value;
}

const bool* FlagParser::add_bool(std::string name, bool default_value,
                                 std::string help) {
  internal_check(flags_.size() < kMaxFlags, "too many flags");
  Flag f{std::move(name), Kind::Bool, std::move(help),
         default_value ? "true" : "false", {}};
  f.bool_value = default_value;
  flags_.push_back(std::move(f));
  return &flags_.back().bool_value;
}

void FlagParser::add_deprecated_alias(std::string alias,
                                      std::string canonical) {
  internal_check(find(canonical) != nullptr,
                 "deprecated alias targets an unregistered flag");
  internal_check(find(alias) == nullptr, "deprecated alias shadows a flag");
  aliases_.push_back(Alias{std::move(alias), std::move(canonical)});
}

FlagParser::Flag* FlagParser::find(std::string_view name) {
  for (Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void FlagParser::assign(Flag& flag, std::string_view value) {
  switch (flag.kind) {
    case Kind::String:
      flag.str_value = std::string(value);
      return;
    case Kind::Uint:
      if (auto v = parse_uint(value)) {
        flag.uint_value = *v;
        return;
      }
      throw_config_error("flag --" + flag.name + " expects an unsigned value, got '" +
                         std::string(value) + "'");
    case Kind::Int:
      if (auto v = parse_int(value)) {
        flag.int_value = *v;
        return;
      }
      throw_config_error("flag --" + flag.name + " expects an integer, got '" +
                         std::string(value) + "'");
    case Kind::Bool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        throw_config_error("flag --" + flag.name + " expects true/false, got '" +
                           std::string(value) + "'");
      }
      return;
  }
}

bool FlagParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), out_);
      return false;
    }
    if (arg == "--") {  // end of flags: the rest is positional verbatim
      for (int j = i + 1; j < argc; ++j) positional_.emplace_back(argv[j]);
      break;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string_view value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string_view::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    Flag* flag = find(body);
    if (flag == nullptr) {
      for (Alias& alias : aliases_) {
        if (alias.name != body) continue;
        flag = find(alias.canonical);
        if (!alias.warned) {
          alias.warned = true;
          deprecated_used_.push_back(alias.name);
          std::fprintf(err_, "%s: warning: --%s is deprecated; use --%s\n",
                       program_.c_str(), alias.name.c_str(),
                       alias.canonical.c_str());
        }
        break;
      }
    }
    if (flag == nullptr) {
      throw_config_error("unknown flag --" + std::string(body));
    }
    if (!has_value) {
      if (flag->kind == Kind::Bool) {
        flag->bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        throw_config_error("flag --" + flag->name + " needs a value");
      }
      value = argv[++i];
    }
    assign(*flag, value);
  }
  return true;
}

std::string FlagParser::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const Flag& f : flags_) {
    out += "  --" + f.name + " <" + std::string(kind_name(static_cast<int>(f.kind))) +
           ">  " + f.help + " (default: " + f.default_repr + ")\n";
  }
  return out;
}

}  // namespace tdt
