#include "util/error.hpp"

#include <utility>

namespace tdt {
namespace {

std::string format_what(ErrorKind kind, const std::string& message,
                        SourceLoc loc) {
  std::string out;
  out += to_string(kind);
  out += " error";
  if (loc.known()) {
    out += " at ";
    out += std::to_string(loc.line);
    out += ':';
    out += std::to_string(loc.column);
  }
  out += ": ";
  out += message;
  return out;
}

}  // namespace

std::string_view to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::Parse: return "parse";
    case ErrorKind::Config: return "config";
    case ErrorKind::Semantic: return "semantic";
    case ErrorKind::Io: return "io";
    case ErrorKind::Resource: return "resource";
    case ErrorKind::Internal: return "internal";
  }
  return "unknown";
}

Error::Error(ErrorKind kind, std::string message, SourceLoc loc)
    : std::runtime_error(format_what(kind, message, loc)),
      kind_(kind),
      loc_(loc),
      message_(std::move(message)) {}

void throw_parse_error(std::string message, SourceLoc loc) {
  throw Error(ErrorKind::Parse, std::move(message), loc);
}

void throw_config_error(std::string message) {
  throw Error(ErrorKind::Config, std::move(message));
}

void throw_semantic_error(std::string message, SourceLoc loc) {
  throw Error(ErrorKind::Semantic, std::move(message), loc);
}

void throw_io_error(std::string message) {
  throw Error(ErrorKind::Io, std::move(message));
}

void throw_resource_error(std::string message) {
  throw Error(ErrorKind::Resource, std::move(message));
}

void internal_check(bool condition, std::string_view what) {
  if (!condition) {
    throw Error(ErrorKind::Internal, std::string(what));
  }
}

}  // namespace tdt
