#include "util/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/error.hpp"

namespace tdt::fault {
namespace {

// splitmix64: tiny, stateless, and well-mixed — perfect for turning
// (seed, site, opportunity) into an independent uniform draw without any
// shared RNG state that threads would have to serialize on.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The injector armed by install() must outlive every pipeline thread
// that might still be observing it, so replaced injectors are parked in
// a retirement chain rather than destroyed. Specs are installed a
// handful of times per process (usually once); the leak is bounded and
// deliberate.
struct Retired {
  FaultInjector* injector;
  Retired* next;
};
std::atomic<Retired*> g_retired{nullptr};

void retire(FaultInjector* injector) noexcept {
  if (injector == nullptr) return;
  auto* node = new Retired{injector, g_retired.load(std::memory_order_relaxed)};
  while (!g_retired.compare_exchange_weak(node->next, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
  }
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  if (text.empty()) throw_config_error("fault spec: empty " + std::string(what));
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw_config_error("fault spec: bad " + std::string(what) + " '" +
                         std::string(text) + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

double parse_probability(std::string_view text) {
  if (text.empty()) throw_config_error("fault spec: empty probability");
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(std::string(text), &consumed);
  } catch (const std::exception&) {
    throw_config_error("fault spec: bad probability '" + std::string(text) +
                       "'");
  }
  if (consumed != text.size() || value < 0.0 || value > 1.0) {
    throw_config_error("fault spec: probability '" + std::string(text) +
                       "' outside [0, 1]");
  }
  return value;
}

}  // namespace

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};
std::atomic<bool> FaultInjector::stall_release_{false};

std::string_view site_name(Site site) noexcept {
  switch (site) {
    case Site::ReaderRead: return "reader.read";
    case Site::BinaryShortRead: return "binary.short-read";
    case Site::BinaryCrcFlip: return "binary.crc-flip";
    case Site::BinaryBadFooter: return "binary.bad-footer";
    case Site::WriterFlush: return "writer.flush";
    case Site::QueuePushDelay: return "queue.push-delay";
    case Site::QueuePopDelay: return "queue.pop-delay";
    case Site::WorkerThrow: return "worker.throw";
    case Site::WorkerStall: return "worker.stall";
    case Site::WorkerExit: return "worker.exit";
    case Site::SinkPushBatch: return "sink.push-batch";
    case Site::FrameDecode: return "binary.frame-decode";
  }
  return "unknown";
}

std::optional<Site> parse_site(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const Site site = static_cast<Site>(i);
    if (site_name(site) == text) return site;
  }
  return std::nullopt;
}

void FaultInjector::install(std::string_view spec) {
  if (spec.empty()) {
    reset();
    return;
  }
  auto injector = std::make_unique<FaultInjector>();
  bool any_site = false;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view element = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                         : rest.substr(semi + 1);
    if (element.empty()) continue;
    if (element.substr(0, 5) == "seed=") {
      injector->seed_ = parse_u64(element.substr(5), "seed");
      continue;
    }
    const std::size_t colon = element.find(':');
    if (colon == std::string_view::npos) {
      throw_config_error("fault spec: element '" + std::string(element) +
                         "' is not 'seed=N' or 'site:probability[:after_n]'");
    }
    const std::string_view name = element.substr(0, colon);
    const std::optional<Site> site = parse_site(name);
    if (!site) {
      throw_config_error("fault spec: unknown site '" + std::string(name) +
                         "'");
    }
    std::string_view tail = element.substr(colon + 1);
    const std::size_t colon2 = tail.find(':');
    Rule rule;
    rule.armed = true;
    rule.probability =
        parse_probability(colon2 == std::string_view::npos
                              ? tail
                              : tail.substr(0, colon2));
    if (colon2 != std::string_view::npos) {
      rule.after_n = parse_u64(tail.substr(colon2 + 1), "after_n");
    }
    injector->sites_[static_cast<std::size_t>(*site)].rule = rule;
    any_site = true;
  }
  if (!any_site) {
    throw_config_error("fault spec: no sites armed in '" + std::string(spec) +
                       "'");
  }
  stall_release_.store(false, std::memory_order_release);
  retire(active_.exchange(injector.release(), std::memory_order_acq_rel));
}

void FaultInjector::install_from_env() {
  const char* spec = std::getenv("TDT_FAULT_SPEC");
  if (spec != nullptr && spec[0] != '\0') install(spec);
}

void FaultInjector::reset() noexcept {
  retire(active_.exchange(nullptr, std::memory_order_acq_rel));
  stall_release_.store(false, std::memory_order_release);
}

bool FaultInjector::fire(Site site) noexcept {
  SiteState& state = sites_[static_cast<std::size_t>(site)];
  if (!state.rule.armed) return false;
  const std::uint64_t n =
      state.opportunities.fetch_add(1, std::memory_order_relaxed);
  if (n < state.rule.after_n) return false;
  bool fires;
  if (state.rule.probability >= 1.0) {
    fires = true;
  } else if (state.rule.probability <= 0.0) {
    fires = false;
  } else {
    const std::uint64_t draw =
        mix64(seed_ ^ (static_cast<std::uint64_t>(site) << 56) ^ n);
    fires = static_cast<double>(draw) <
            state.rule.probability * 18446744073709551616.0;  // 2^64
  }
  if (fires) state.fired.fetch_add(1, std::memory_order_relaxed);
  return fires;
}

std::uint64_t FaultInjector::opportunities(Site site) const noexcept {
  return sites_[static_cast<std::size_t>(site)].opportunities.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(Site site) const noexcept {
  return sites_[static_cast<std::size_t>(site)].fired.load(
      std::memory_order_relaxed);
}

const FaultInjector::Rule& FaultInjector::rule(Site site) const noexcept {
  return sites_[static_cast<std::size_t>(site)].rule;
}

void FaultInjector::release_stalls() noexcept {
  stall_release_.store(true, std::memory_order_release);
}

bool FaultInjector::stalls_released() noexcept {
  return stall_release_.load(std::memory_order_acquire);
}

void maybe_delay(Site site) noexcept {
  if (should_fire(site)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

bool maybe_stall() noexcept {
  if (!should_fire(Site::WorkerStall)) return false;
  // Park in small slices so release_stalls() frees the thread promptly;
  // the 60 s cap keeps an unsupervised run from hanging forever.
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::seconds(60);
  while (!FaultInjector::stalls_released() && clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace tdt::fault
