// Hand-written lexer shared by the C-declaration parser (tdt::layout) and
// the transformation-rule DSL parser (tdt::core). Produces identifiers,
// integer literals, and punctuation; skips `//`, `/* */` and `#` comments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace tdt {

/// Token classification.
enum class TokKind : std::uint8_t {
  Ident,   ///< [A-Za-z_][A-Za-z0-9_]*
  Number,  ///< decimal or 0x-hex integer literal
  Punct,   ///< one of the punctuation strings (possibly two chars: "->")
  End,     ///< end of input
};

/// A lexed token. `text` views into the source buffer passed to Lexer.
struct Token {
  TokKind kind = TokKind::End;
  std::string_view text;
  SourceLoc loc;

  [[nodiscard]] bool is(TokKind k) const noexcept { return kind == k; }
  [[nodiscard]] bool is(std::string_view t) const noexcept {
    return text == t && kind != TokKind::End;
  }
  /// Numeric value of an integer Number token.
  [[nodiscard]] std::uint64_t number() const;

  /// True for a Number token with a fractional part ("1.5").
  [[nodiscard]] bool is_float() const noexcept;

  /// Value of a Number token as double (integer or floating).
  [[nodiscard]] double real() const;
};

/// Single-pass lexer with one token of lookahead.
/// The source buffer must outlive the lexer and all produced tokens.
class Lexer {
 public:
  explicit Lexer(std::string_view source);

  /// Returns the next token without consuming it.
  [[nodiscard]] const Token& peek();

  /// Consumes and returns the next token.
  Token next();

  /// Consumes the next token when it matches `text`; returns whether it did.
  bool accept(std::string_view text);

  /// Consumes the next token, requiring it to match `text`;
  /// throws Error{Parse} otherwise.
  Token expect(std::string_view text);

  /// Consumes the next token, requiring kind `k` (e.g. an identifier).
  Token expect(TokKind k, std::string_view what);

  /// True when all input has been consumed.
  [[nodiscard]] bool at_end();

  /// Location of the next token (for error reporting by parsers).
  [[nodiscard]] SourceLoc loc();

 private:
  void skip_space_and_comments();
  Token lex();

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
  Token lookahead_;
  bool has_lookahead_ = false;
};

}  // namespace tdt
