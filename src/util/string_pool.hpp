// Interned strings. Trace files repeat the same function and variable
// names millions of times; interning them lets TraceRecord store a 4-byte
// Symbol instead of a std::string, and makes per-variable statistics a
// dense-array lookup instead of a hash of strings.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tdt {

/// Handle to an interned string. Symbol{0} is always the empty string.
class Symbol {
 public:
  constexpr Symbol() noexcept = default;
  constexpr explicit Symbol(std::uint32_t id) noexcept : id_(id) {}

  [[nodiscard]] constexpr std::uint32_t id() const noexcept { return id_; }
  /// True for any symbol other than the interned empty string.
  [[nodiscard]] constexpr bool empty() const noexcept { return id_ == 0; }

  friend constexpr bool operator==(Symbol, Symbol) noexcept = default;
  friend constexpr auto operator<=>(Symbol, Symbol) noexcept = default;

 private:
  std::uint32_t id_ = 0;
};

/// Append-only intern table. Not thread-safe; each pipeline owns one pool
/// (typically via TraceContext).
class StringPool {
 public:
  StringPool();

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) noexcept = default;
  StringPool& operator=(StringPool&&) noexcept = default;

  /// Interns `s`, returning its stable Symbol.
  Symbol intern(std::string_view s);

  /// Looks up an already-interned string; returns Symbol{0} ("") when absent.
  [[nodiscard]] Symbol find(std::string_view s) const noexcept;

  /// Returns the string for `sym`. `sym` must come from this pool.
  [[nodiscard]] std::string_view view(Symbol sym) const;

  /// Number of interned strings (including the empty string).
  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }

 private:
  // deque gives stable storage for string_view keys into the map.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace tdt

template <>
struct std::hash<tdt::Symbol> {
  std::size_t operator()(tdt::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.id());
  }
};
