// Interned strings. Trace files repeat the same function and variable
// names millions of times; interning them lets TraceRecord store a 4-byte
// Symbol instead of a std::string, and makes per-variable statistics a
// dense-array lookup instead of a hash of strings.
//
// Storage is chunked and append-only: a string, once interned, never
// moves, and appending never relocates storage that holds earlier
// strings. view() is therefore safe to call from other threads for any
// symbol whose interning happens-before the call — e.g. a symbol carried
// by a record that crossed one of the parallel pipeline's queues — while
// the owning thread keeps interning. intern() and find() themselves
// remain single-threaded (one writer per pool).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tdt {

/// Handle to an interned string. Symbol{0} is always the empty string.
class Symbol {
 public:
  constexpr Symbol() noexcept = default;
  constexpr explicit Symbol(std::uint32_t id) noexcept : id_(id) {}

  [[nodiscard]] constexpr std::uint32_t id() const noexcept { return id_; }
  /// True for any symbol other than the interned empty string.
  [[nodiscard]] constexpr bool empty() const noexcept { return id_ == 0; }

  friend constexpr bool operator==(Symbol, Symbol) noexcept = default;
  friend constexpr auto operator<=>(Symbol, Symbol) noexcept = default;

 private:
  std::uint32_t id_ = 0;
};

/// Append-only intern table. Single writer; concurrent view() of already
/// published symbols is safe (see file comment).
class StringPool {
 public:
  StringPool();

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&& other) noexcept;
  StringPool& operator=(StringPool&& other) noexcept;

  /// Interns `s`, returning its stable Symbol.
  Symbol intern(std::string_view s);

  /// Looks up an already-interned string; returns Symbol{0} ("") when absent.
  [[nodiscard]] Symbol find(std::string_view s) const noexcept;

  /// Returns the string for `sym`. `sym` must come from this pool.
  [[nodiscard]] std::string_view view(Symbol sym) const;

  /// Number of interned strings (including the empty string).
  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  // Chunk k holds ids [kBase*(2^k - 1), kBase*(2^(k+1) - 1)): capacities
  // double, so 32 fixed top-level slots cover the whole 32-bit id space
  // and growth never reallocates the table a concurrent view() indexes.
  static constexpr std::uint32_t kBase = 64;
  static constexpr std::size_t kMaxChunks = 32;

  static constexpr std::size_t chunk_of(std::uint32_t id) noexcept {
    return static_cast<std::size_t>(std::bit_width(id / kBase + 1)) - 1;
  }
  static constexpr std::uint64_t chunk_first(std::size_t k) noexcept {
    return kBase * ((std::uint64_t{1} << k) - 1);
  }
  static constexpr std::uint64_t chunk_capacity(std::size_t k) noexcept {
    return std::uint64_t{kBase} << k;
  }

  std::array<std::unique_ptr<std::string[]>, kMaxChunks> chunks_;
  std::atomic<std::uint32_t> size_{0};
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace tdt

template <>
struct std::hash<tdt::Symbol> {
  std::size_t operator()(tdt::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.id());
  }
};
