// Resource governance for pipeline runs: a byte-accounted memory Budget
// and a wall-clock deadline, bundled into a Governor that tools thread
// through the streaming layer.
//
// Contract (docs/robustness.md):
//  * --max-memory: accounted allocations charge the Budget. Components
//    that can degrade (the fan-out's recovery-replay retention) *spill* —
//    they release their charge and shed the optional capability; hard
//    requirements (result sinks that must hold both traces) *fail* with
//    Error{Resource} → exit 2. Which of the two a component does is fixed
//    per call-site, never load-dependent, so a given trace + limit always
//    produces the same outcome.
//  * --deadline: checked at batch granularity in the streaming loop.
//    When it expires the run stops reading, finishes the sinks normally,
//    reports partial results, and exits >= 1 (recovered-but-incomplete),
//    never mid-batch and never with a half-written report.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tdt {

namespace obs {
class Registry;
}  // namespace obs

/// Thread-safe byte budget. A zero limit means "unlimited"; all charges
/// succeed and only the high-water mark is tracked.
class Budget {
 public:
  Budget() = default;
  explicit Budget(std::uint64_t limit_bytes) : limit_(limit_bytes) {}

  void set_limit(std::uint64_t limit_bytes) noexcept { limit_ = limit_bytes; }
  [[nodiscard]] std::uint64_t limit() const noexcept { return limit_; }
  [[nodiscard]] bool unlimited() const noexcept { return limit_ == 0; }

  /// Charges `bytes` if it fits under the limit; false (and no charge)
  /// when it would not. Always succeeds on an unlimited budget.
  [[nodiscard]] bool try_charge(std::uint64_t bytes) noexcept;

  /// Charges `bytes` or throws Error{Resource} naming `what`.
  void charge(std::uint64_t bytes, const char* what);

  /// Returns previously charged bytes.
  void release(std::uint64_t bytes) noexcept;

  [[nodiscard]] std::uint64_t used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Number of rejected try_charge/charge attempts.
  [[nodiscard]] std::uint64_t denials() const noexcept {
    return denials_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t limit_ = 0;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> denials_{0};
};

/// Per-run resource limits: a memory budget plus an optional wall-clock
/// deadline. Tools build one from --max-memory/--deadline and hand it to
/// stream_trace*; a default-constructed Governor governs nothing.
class Governor {
 public:
  Budget memory;

  /// Arms a wall-clock deadline `seconds` from now (<= 0 disarms).
  void set_deadline(double seconds) noexcept;
  [[nodiscard]] bool has_deadline() const noexcept { return armed_; }

  /// True once the deadline has passed. Latches: after the first true
  /// result the clock is no longer consulted, so callers can use it both
  /// to stop work and to report why they stopped.
  [[nodiscard]] bool expired() noexcept;

  /// True when expired() ever returned true (does not consult the clock).
  [[nodiscard]] bool deadline_hit() const noexcept {
    return hit_.load(std::memory_order_relaxed);
  }

  /// Folds governor.* gauges (memory used/peak/limit/denials, deadline
  /// state) into `registry`; no-op on nullptr.
  void fold(obs::Registry* registry) const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<bool> hit_{false};
};

}  // namespace tdt
