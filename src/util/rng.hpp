// Deterministic, header-only PRNGs for workload generation and the Random
// replacement policy. std::mt19937 is avoided deliberately: benchmark
// reproducibility across standard libraries requires a fully specified
// generator.
#pragma once

#include <cstdint>

namespace tdt {

/// SplitMix64 — used to seed Xoshiro and for cheap one-off hashing.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — main generator for synthetic workloads.
class Xoshiro256 {
 public:
  constexpr explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire-style rejection-free reduction is overkill here; modulo bias
    // is irrelevant for workload shuffling with bound << 2^64.
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace tdt
