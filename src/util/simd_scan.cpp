#include "util/simd_scan.hpp"

#include <cstdlib>
#include <cstring>

#include "util/string_util.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define TDT_SIMD_X86 1
#include <immintrin.h>
#endif

namespace tdt::simd {
namespace {

// ---------------------------------------------------------------------------
// Shared bit-walk: every vector tier reduces a line to a whitespace
// bitmap (bit i set = byte i is ASCII whitespace) and the field spans
// are extracted from the bitmap by one common routine, so the tiers can
// only disagree if their bitmaps disagree — which the differential
// tests rule out.

/// Longest line tokenized through the stack bitmap; anything longer
/// goes through the scalar loop in every tier (identical results, and
/// real record lines are far shorter).
constexpr std::size_t kMaxBitmapLine = 1024;
constexpr std::size_t kBitmapWords = kMaxBitmapLine / 64;

/// Reference tokenizer: the split_ws_into loop, span-emitting. Also the
/// whole scalar tier.
int tokenize_scalar(const char* p, std::size_t n, FieldSpan* out,
                    std::size_t max_fields) noexcept {
  std::size_t i = 0;
  int count = 0;
  while (i < n) {
    while (i < n && is_ascii_space(p[i])) ++i;
    const std::size_t start = i;
    while (i < n && !is_ascii_space(p[i])) ++i;
    if (i > start) {
      if (static_cast<std::size_t>(count) == max_fields) return -1;
      out[count++] = {static_cast<std::uint32_t>(start),
                      static_cast<std::uint32_t>(i)};
    }
  }
  return count;
}

/// Extracts field spans from a single whitespace word: the whole line
/// fits in 64 bits, so there is no word-boundary bookkeeping. Bits at
/// and past `n` must be set (whitespace padding) so every field is
/// terminated. A field starts at a 1->0 transition and ends at a 0->1
/// transition of the whitespace mask; materializing both transition
/// masks up front turns the walk into two independent ctz/clear-lowest
/// chains (~2 cycles per field) instead of one serial scan. Real record
/// lines are ~30 bytes, so this is the path virtually every line takes.
inline int walk_word(std::uint64_t ws, std::size_t n, FieldSpan* out,
                     std::size_t max_fields) noexcept {
  const std::uint64_t nonws = ~ws;
  // Padding keeps every nonws bit below n and below bit 63, so the
  // shifted copies cannot lose a transition.
  std::uint64_t starts = nonws & ~(nonws << 1);  // first byte of each field
  std::uint64_t ends = nonws & ~(nonws >> 1);    // last byte of each field
  const int count = __builtin_popcountll(starts);
  const int emit =
      static_cast<std::size_t>(count) > max_fields
          ? static_cast<int>(max_fields)  // overflow still yields the
          : count;                        // first max_fields spans
  for (int k = 0; k < emit; ++k) {
    out[k] = {static_cast<std::uint32_t>(__builtin_ctzll(starts)),
              static_cast<std::uint32_t>(__builtin_ctzll(ends)) + 1};
    starts &= starts - 1;
    ends &= ends - 1;
  }
  (void)n;
  return emit == count ? count : -1;
}

/// Extracts field spans from a whitespace bitmap. Bits at and past `n`
/// must be set (whitespace padding) so every field is terminated.
int walk_bitmap(const std::uint64_t* words, std::size_t nwords, std::size_t n,
                FieldSpan* out, std::size_t max_fields) noexcept {
  int count = 0;
  std::size_t w = 0;
  std::uint64_t nonws = ~words[0];
  for (;;) {
    // Next field start: first clear whitespace bit.
    while (nonws == 0) {
      if (++w == nwords) return count;
      nonws = ~words[w];
    }
    const std::size_t start =
        w * 64 + static_cast<std::size_t>(__builtin_ctzll(nonws));
    if (start >= n) return count;
    // Field end: first set whitespace bit after the start.
    std::uint64_t ws = words[w] & ~(nonws ^ (nonws - 1));
    std::size_t ew = w;
    std::size_t end;
    for (;;) {
      if (ws != 0) {
        end = ew * 64 + static_cast<std::size_t>(__builtin_ctzll(ws));
        break;
      }
      if (++ew == nwords) {  // field runs to the end of the line
        end = n;
        break;
      }
      ws = words[ew];
    }
    if (end > n) end = n;
    if (static_cast<std::size_t>(count) == max_fields) return -1;
    out[count++] = {static_cast<std::uint32_t>(start),
                    static_cast<std::uint32_t>(end)};
    if (end >= n) return count;
    // Resume the start scan just past the terminating whitespace byte.
    w = ew;
    nonws = ~words[w] & (end % 64 == 63 ? 0 : ~0ULL << (end % 64 + 1));
    if (end % 64 == 63) {
      if (++w == nwords) return count;
      nonws = ~words[w];
    }
  }
}

/// Scalar bitmap builder (reference for the vector builders).
void build_bitmap_scalar(const char* p, std::size_t n,
                         std::uint64_t* words) noexcept {
  const std::size_t nwords = (n + 63) / 64;
  for (std::size_t w = 0; w < nwords; ++w) words[w] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_ascii_space(p[i])) words[i / 64] |= 1ULL << (i % 64);
  }
  // Pad the tail with whitespace so the walk terminates every field.
  if (n % 64 != 0) words[nwords - 1] |= ~0ULL << (n % 64);
}

std::size_t find_newline_scalar(const char* p, std::size_t n) noexcept {
  const void* hit = std::memchr(p, '\n', n);
  return hit == nullptr
             ? n
             : static_cast<std::size_t>(static_cast<const char*>(hit) - p);
}

#if TDT_SIMD_X86

// -- SSE2 -------------------------------------------------------------------
// Whitespace = (c == ' ') | ((uint8)(c - 0x09) <= 4)  [0x09..0x0D].

inline __m128i ws_mask_128(__m128i v) noexcept {
  const __m128i sp = _mm_cmpeq_epi8(v, _mm_set1_epi8(' '));
  const __m128i t = _mm_sub_epi8(v, _mm_set1_epi8(0x09));
  const __m128i ctl = _mm_cmpeq_epi8(_mm_min_epu8(t, _mm_set1_epi8(4)), t);
  return _mm_or_si128(sp, ctl);
}

void build_bitmap_sse2(const char* p, std::size_t n,
                       std::uint64_t* words) noexcept {
  const std::size_t nwords = (n + 63) / 64;
  std::size_t i = 0;
  for (std::size_t w = 0; w < nwords; ++w) words[w] = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const std::uint64_t m =
        static_cast<std::uint32_t>(_mm_movemask_epi8(ws_mask_128(v)));
    words[i / 64] |= m << (i % 64);
  }
  for (; i < n; ++i) {
    if (is_ascii_space(p[i])) words[i / 64] |= 1ULL << (i % 64);
  }
  if (n % 64 != 0) words[nwords - 1] |= ~0ULL << (n % 64);
}

/// Whitespace word for a line of at most 64 bytes. The line is copied
/// into a padded stack block first so the full-width loads never touch
/// bytes outside it (a line may end flush against a mapping or buffer
/// edge, and sanitizers rightly flag the overread).
inline std::uint64_t ws_word_sse2(const char* p, std::size_t n) noexcept {
  alignas(16) char buf[64];
  std::memset(buf, ' ', sizeof buf);  // pad = whitespace, terminates fields
  std::memcpy(buf, p, n);
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < 64; i += 16) {
    const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(buf + i));
    m |= static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(_mm_movemask_epi8(ws_mask_128(v))))
         << i;
  }
  return m;
}

int tokenize_sse2(const char* p, std::size_t n, FieldSpan* out,
                  std::size_t max_fields) noexcept {
  if (n <= 64) return walk_word(ws_word_sse2(p, n), n, out, max_fields);
  if (n > kMaxBitmapLine) return tokenize_scalar(p, n, out, max_fields);
  std::uint64_t words[kBitmapWords];
  build_bitmap_sse2(p, n, words);
  return walk_bitmap(words, (n + 63) / 64, n, out, max_fields);
}

std::size_t find_newline_sse2(const char* p, std::size_t n) noexcept {
  const __m128i nl = _mm_set1_epi8('\n');
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const int m = _mm_movemask_epi8(_mm_cmpeq_epi8(v, nl));
    if (m != 0) return i + static_cast<std::size_t>(__builtin_ctz(m));
  }
  return i + find_newline_scalar(p + i, n - i);
}

// -- AVX2 -------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i ws_mask_256(__m256i v) noexcept {
  const __m256i sp = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(' '));
  const __m256i t = _mm256_sub_epi8(v, _mm256_set1_epi8(0x09));
  const __m256i ctl =
      _mm256_cmpeq_epi8(_mm256_min_epu8(t, _mm256_set1_epi8(4)), t);
  return _mm256_or_si256(sp, ctl);
}

__attribute__((target("avx2"))) void build_bitmap_avx2(
    const char* p, std::size_t n, std::uint64_t* words) noexcept {
  const std::size_t nwords = (n + 63) / 64;
  std::size_t i = 0;
  for (std::size_t w = 0; w < nwords; ++w) words[w] = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const std::uint64_t m = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(ws_mask_256(v)));
    words[i / 64] |= m << (i % 64);
  }
  for (; i < n; ++i) {
    if (is_ascii_space(p[i])) words[i / 64] |= 1ULL << (i % 64);
  }
  if (n % 64 != 0) words[nwords - 1] |= ~0ULL << (n % 64);
}

__attribute__((target("avx2"))) inline std::uint64_t ws_word_avx2(
    const char* p, std::size_t n) noexcept {
  alignas(32) char buf[64];
  std::memset(buf, ' ', sizeof buf);  // pad = whitespace, terminates fields
  std::memcpy(buf, p, n);
  const __m256i v0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
  const __m256i v1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(buf + 32));
  const auto lo = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(ws_mask_256(v0)));
  const auto hi = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(ws_mask_256(v1)));
  return static_cast<std::uint64_t>(lo) | static_cast<std::uint64_t>(hi) << 32;
}

__attribute__((target("avx2"))) int tokenize_avx2(
    const char* p, std::size_t n, FieldSpan* out,
    std::size_t max_fields) noexcept {
  if (n <= 64) return walk_word(ws_word_avx2(p, n), n, out, max_fields);
  if (n > kMaxBitmapLine) return tokenize_scalar(p, n, out, max_fields);
  std::uint64_t words[kBitmapWords];
  build_bitmap_avx2(p, n, words);
  return walk_bitmap(words, (n + 63) / 64, n, out, max_fields);
}

__attribute__((target("avx2"))) std::size_t find_newline_avx2(
    const char* p, std::size_t n) noexcept {
  const __m256i nl = _mm256_set1_epi8('\n');
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const int m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, nl));
    if (m != 0) return i + static_cast<std::size_t>(__builtin_ctz(m));
  }
  return i + find_newline_scalar(p + i, n - i);
}

#endif  // TDT_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch.

using FindFn = std::size_t (*)(const char*, std::size_t) noexcept;
using TokenizeFn = int (*)(const char*, std::size_t, FieldSpan*,
                           std::size_t) noexcept;

struct Dispatch {
  Tier tier = Tier::Scalar;
  FindFn find = &find_newline_scalar;
  TokenizeFn tokenize = &tokenize_scalar;
};

Dispatch for_tier(Tier t) noexcept {
  Dispatch d;
#if TDT_SIMD_X86
  if (t >= Tier::Avx2) {
    d.tier = Tier::Avx2;
    d.find = &find_newline_avx2;
    d.tokenize = &tokenize_avx2;
    return d;
  }
  if (t >= Tier::Sse2) {
    d.tier = Tier::Sse2;
    d.find = &find_newline_sse2;
    d.tokenize = &tokenize_sse2;
    return d;
  }
#else
  (void)t;
#endif
  return d;
}

bool simd_disabled_by_env() noexcept {
  const char* v = std::getenv("TDT_NO_SIMD");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

Dispatch& dispatch() noexcept {
  static Dispatch d =
      for_tier(simd_disabled_by_env() ? Tier::Scalar : best_supported_tier());
  return d;
}

}  // namespace

std::string_view tier_name(Tier t) noexcept {
  switch (t) {
    case Tier::Scalar: return "scalar";
    case Tier::Sse2: return "sse2";
    case Tier::Avx2: return "avx2";
  }
  return "scalar";
}

Tier best_supported_tier() noexcept {
#if TDT_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Tier::Avx2;
  if (__builtin_cpu_supports("sse2")) return Tier::Sse2;
#endif
  return Tier::Scalar;
}

Tier active_tier() noexcept { return dispatch().tier; }

Tier set_active_tier(Tier t) noexcept {
  const Tier best = best_supported_tier();
  dispatch() = for_tier(t > best ? best : t);
  return dispatch().tier;
}

std::size_t find_newline(std::string_view s, std::size_t from) noexcept {
  if (from >= s.size()) return s.size();
  return from + dispatch().find(s.data() + from, s.size() - from);
}

FindNewlineFn find_newline_fn() noexcept { return dispatch().find; }

TokenizeFieldsFn tokenize_fields_fn() noexcept { return dispatch().tokenize; }

int tokenize_fields(std::string_view line, FieldSpan* out,
                    std::size_t max_fields) noexcept {
  return dispatch().tokenize(line.data(), line.size(), out, max_fields);
}

}  // namespace tdt::simd
