#include "util/governor.hpp"

#include <string>

#include "util/error.hpp"
#include "util/obs.hpp"

namespace tdt {

bool Budget::try_charge(std::uint64_t bytes) noexcept {
  std::uint64_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next = used + bytes;
    if (limit_ != 0 && (next < used || next > limit_)) {
      denials_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
      std::uint64_t peak = peak_.load(std::memory_order_relaxed);
      while (next > peak && !peak_.compare_exchange_weak(
                                peak, next, std::memory_order_relaxed)) {
      }
      return true;
    }
  }
}

void Budget::charge(std::uint64_t bytes, const char* what) {
  if (!try_charge(bytes)) {
    throw Error(ErrorKind::Resource,
                std::string(what) + ": memory budget exhausted (" +
                    std::to_string(used()) + " of " + std::to_string(limit_) +
                    " bytes in use, " + std::to_string(bytes) +
                    " more requested); raise --max-memory");
  }
}

void Budget::release(std::uint64_t bytes) noexcept {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void Governor::set_deadline(double seconds) noexcept {
  if (seconds <= 0) {
    armed_ = false;
    return;
  }
  armed_ = true;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
}

bool Governor::expired() noexcept {
  if (!armed_) return false;
  if (hit_.load(std::memory_order_relaxed)) return true;
  if (std::chrono::steady_clock::now() < deadline_) return false;
  hit_.store(true, std::memory_order_relaxed);
  return true;
}

void Governor::fold(obs::Registry* registry) const {
  if (registry == nullptr) return;
  if (memory.limit() != 0 || memory.peak() != 0) {
    registry->gauge("governor.memory_limit_bytes")
        .set(static_cast<double>(memory.limit()));
    registry->gauge("governor.memory_peak_bytes")
        .set(static_cast<double>(memory.peak()));
    registry->gauge("governor.memory_used_bytes")
        .set(static_cast<double>(memory.used()));
    registry->gauge("governor.memory_denials")
        .set(static_cast<double>(memory.denials()));
  }
  if (armed_) {
    registry->gauge("governor.deadline_hit").set(deadline_hit() ? 1.0 : 0.0);
  }
}

}  // namespace tdt
