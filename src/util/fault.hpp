// Deterministic fault injection for the trace pipeline. Production-scale
// runs fail in ways unit inputs never exercise — a read() that dies
// mid-trace, a disk that fills under the transformed-trace writer, a
// worker thread that stalls or exits — and the only way to keep those
// paths honest is to make failure an *input*: named injection sites
// threaded through the readers, writers, queues, and workers, armed from
// one seeded, process-global spec.
//
//   TDT_FAULT_SPEC="worker.stall:1:2"   dinerosim --jobs 4 ...
//   dinerosim --fault-spec "binary.crc-flip:1" --trace big.tdtb ...
//
// Spec grammar (docs/robustness.md):
//
//   spec     := element (';' element)*
//   element  := 'seed=' N | site ':' probability [':' after_n]
//   site     := reader.read | binary.short-read | binary.crc-flip
//             | binary.bad-footer | binary.frame-decode | writer.flush
//             | queue.push-delay | queue.pop-delay | worker.throw
//             | worker.stall | worker.exit | sink.push-batch
//
// Each *opportunity* (a pass over an armed site) is numbered; the first
// `after_n` opportunities never fire, later ones fire with `probability`
// decided by a pure hash of (seed, site, opportunity index) — so a fixed
// seed reproduces the exact same fault schedule run after run, even with
// worker threads racing on the opportunity counter only within one site.
//
// Disarmed cost: one relaxed atomic load and a predicted-not-taken
// branch per site pass (`enabled()`), nothing else — output stays
// byte-identical to a build without the hooks.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tdt::fault {

/// Named injection sites. Keep site_name()/parse_site() and the table in
/// docs/robustness.md in sync when extending.
enum class Site : std::uint8_t {
  ReaderRead,       ///< Gleipnir istream refill fails mid-trace (I/O error)
  BinaryShortRead,  ///< TDTB stream ends at a record boundary (short read)
  BinaryCrcFlip,    ///< TDTB running CRC corrupted (bit-flip simulation)
  BinaryBadFooter,  ///< TDTB v2 footer read comes back short
  WriterFlush,      ///< trace writer flush fails (ENOSPC simulation)
  QueuePushDelay,   ///< bounded-queue push delayed (backpressure jitter)
  QueuePopDelay,    ///< bounded-queue pop delayed (consumer jitter)
  WorkerThrow,      ///< pipeline worker throws before a batch
  WorkerStall,      ///< pipeline worker stalls (watchdog fodder)
  WorkerExit,       ///< pipeline worker exits without draining its queue
  SinkPushBatch,    ///< sink push_batch throws
  FrameDecode,      ///< TDTB v3 frame fails to decode (corrupt shard)
};

inline constexpr std::size_t kSiteCount = 12;

/// Canonical spelling used in specs ("worker.stall", ...).
[[nodiscard]] std::string_view site_name(Site site) noexcept;

/// Inverse of site_name(); nullopt for unknown spellings.
[[nodiscard]] std::optional<Site> parse_site(std::string_view text) noexcept;

/// The process-global injection registry. At most one spec is armed at a
/// time; install() replaces it. Arm before spawning pipeline threads.
class FaultInjector {
 public:
  /// One armed site's schedule.
  struct Rule {
    bool armed = false;
    double probability = 1.0;    ///< chance per opportunity once past after_n
    std::uint64_t after_n = 0;   ///< opportunities skipped before arming
  };

  /// Parses `spec` and arms it process-wide; an empty spec disarms.
  /// Throws Error{Config} on bad grammar, unknown sites, or probability
  /// outside [0, 1].
  static void install(std::string_view spec);

  /// Arms from the TDT_FAULT_SPEC environment variable when set and
  /// non-empty; otherwise leaves the current state alone.
  static void install_from_env();

  /// Disarms everything (tests).
  static void reset() noexcept;

  /// The armed registry, or nullptr when injection is off.
  [[nodiscard]] static FaultInjector* active() noexcept {
    return active_.load(std::memory_order_acquire);
  }

  /// Hot-path guard: one relaxed load.
  [[nodiscard]] static bool enabled() noexcept {
    return active_.load(std::memory_order_relaxed) != nullptr;
  }

  /// Counts one opportunity at `site` and decides whether the fault
  /// fires there. Deterministic for a fixed (seed, site, opportunity).
  [[nodiscard]] bool fire(Site site) noexcept;

  /// Observability for tests and the end-of-run fault report.
  [[nodiscard]] std::uint64_t opportunities(Site site) const noexcept;
  [[nodiscard]] std::uint64_t fired(Site site) const noexcept;
  [[nodiscard]] const Rule& rule(Site site) const noexcept;
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Injected worker stalls park in maybe_stall() until the watchdog
  /// declares the worker dead and releases them (so the stalled thread
  /// can exit and be joined). Real stalls have no such courtesy; the
  /// supervisor abandons threads that ignore the release.
  static void release_stalls() noexcept;
  [[nodiscard]] static bool stalls_released() noexcept;

 private:
  struct SiteState {
    Rule rule;
    std::atomic<std::uint64_t> opportunities{0};
    std::atomic<std::uint64_t> fired{0};
  };

  static std::atomic<FaultInjector*> active_;
  static std::atomic<bool> stall_release_;

  std::uint64_t seed_ = 1;
  SiteState sites_[kSiteCount];
};

/// Counts an opportunity and reports whether the fault fires; false in
/// one relaxed load when injection is disarmed.
[[nodiscard]] inline bool should_fire(Site site) noexcept {
  if (!FaultInjector::enabled()) [[likely]] return false;
  FaultInjector* f = FaultInjector::active();
  return f != nullptr && f->fire(site);
}

/// Delay site helper: sleeps a couple of milliseconds when the site
/// fires (queue push/pop jitter). No-op when disarmed.
void maybe_delay(Site site) noexcept;

/// Stall site helper: when Site::WorkerStall fires, parks the calling
/// thread until release_stalls() (or a 60 s safety cap). Returns true
/// when a stall happened — the caller must then re-check whether its
/// supervisor gave up on it before touching shared state.
[[nodiscard]] bool maybe_stall() noexcept;

}  // namespace tdt::fault
