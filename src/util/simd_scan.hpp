// SIMD line scanning and field tokenization for the trace ingest path.
//
// Two primitives sit under the Gleipnir reader's hot loop: find_newline
// (locate the end of the current line inside a source chunk) and
// tokenize_fields (split a record line on runs of ASCII whitespace).
// Both come in three implementation tiers — AVX2, SSE2, and a portable
// scalar loop — selected once at startup by runtime CPU detection.
// Every tier is bit-for-bit equivalent: same positions, same field
// spans, same overflow behaviour; the differential tests in
// tests/util/simd_scan_test.cpp and the fuzz harness in
// tests/trace/tokenizer_fuzz_test.cpp hold them to that.
//
// Setting TDT_NO_SIMD=1 in the environment forces the scalar tier (CI
// runs the byte-identity suites both ways); set_active_tier() lets a
// test walk every supported tier inside one process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tdt::simd {

/// Implementation tiers, ordered weakest to strongest. Dispatch picks
/// the strongest tier the CPU supports unless overridden.
enum class Tier : std::uint8_t { Scalar = 0, Sse2 = 1, Avx2 = 2 };

/// Canonical tier name ("scalar", "sse2", "avx2").
[[nodiscard]] std::string_view tier_name(Tier t) noexcept;

/// Strongest tier this CPU can run (ignores TDT_NO_SIMD).
[[nodiscard]] Tier best_supported_tier() noexcept;

/// Tier the dispatched entry points currently use. Resolved on first
/// use: TDT_NO_SIMD=1 (or any non-empty value other than "0") forces
/// Scalar, otherwise best_supported_tier().
[[nodiscard]] Tier active_tier() noexcept;

/// Test hook: redirects dispatch to `t`, clamped to the best supported
/// tier. Returns the tier actually in effect. Not thread-safe; call
/// only from single-threaded test setup.
Tier set_active_tier(Tier t) noexcept;

/// Index of the first '\n' in `s` at or after `from`; s.size() when
/// there is none. Identical to memchr semantics on the suffix.
[[nodiscard]] std::size_t find_newline(std::string_view s,
                                       std::size_t from = 0) noexcept;

/// Raw handle to the active tier's newline scanner: returns the offset
/// of the first '\n' in [p, p+n), or n. For callers hot enough that the
/// per-call dispatch lookup matters (the trace reader calls this once
/// per line). Snapshot of the active tier — re-fetch after
/// set_active_tier.
using FindNewlineFn = std::size_t (*)(const char* p, std::size_t n) noexcept;
[[nodiscard]] FindNewlineFn find_newline_fn() noexcept;

/// One whitespace-separated field, as offsets into the scanned line.
struct FieldSpan {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  ///< one past the last byte
};

/// Splits `line` on runs of the six ASCII whitespace characters
/// (is_ascii_space) into at most `max_fields` spans written to `out`.
/// Returns the field count, or -1 the moment a (max_fields+1)-th field
/// starts — mirroring split_ws_into's "line too exotic for the fast
/// path" contract, with out[0..max_fields) holding the first
/// max_fields spans. Empty fields never occur (runs are collapsed).
[[nodiscard]] int tokenize_fields(std::string_view line, FieldSpan* out,
                                  std::size_t max_fields) noexcept;

/// Raw handle to the active tier's tokenizer (same contract as
/// tokenize_fields). Snapshot — re-fetch after set_active_tier.
using TokenizeFieldsFn = int (*)(const char* p, std::size_t n, FieldSpan* out,
                                 std::size_t max_fields) noexcept;
[[nodiscard]] TokenizeFieldsFn tokenize_fields_fn() noexcept;

}  // namespace tdt::simd
