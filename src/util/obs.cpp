#include "util/obs.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace tdt::obs {

namespace {

/// Escapes a string for a JSON literal (control chars, quote, backslash).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// %.17g round-trips doubles; trims to a compact form for whole numbers.
void append_double(std::string& out, double v) {
  // JSON has no inf/nan literals; clamp to zero.
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::size_t Counter::stripe_index() noexcept {
  // A process-wide atomic hands every thread a distinct id once; the id
  // maps round-robin onto the stripes.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % kStripes;
}

void Histogram::record(std::uint64_t v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const HistogramData& shard) noexcept {
  if (shard.empty()) return;
  count_.fetch_add(shard.count, std::memory_order_relaxed);
  sum_.fetch_add(shard.sum, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (shard.buckets[i] != 0) {
      buckets_[i].fetch_add(shard.buckets[i], std::memory_order_relaxed);
    }
  }
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (shard.min < cur && !min_.compare_exchange_weak(
                                cur, shard.min, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (shard.max > cur && !max_.compare_exchange_weak(
                                cur, shard.max, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::snapshot() const noexcept {
  HistogramData out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Registry::Registry(std::string tool)
    : tool_(std::move(tool)), epoch_(Clock::now()) {}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::add_phase(std::string_view name, double seconds) {
  std::lock_guard lock(mutex_);
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string(name), PhaseInfo{}).first;
  }
  ++it->second.count;
  it->second.seconds += seconds;
}

void Registry::add_span(std::string_view name, Clock::time_point begin,
                        Clock::time_point end, std::uint32_t tid) {
  SpanRecord span;
  span.name = std::string(name);
  span.tid = tid;
  span.start_us =
      std::chrono::duration<double, std::micro>(begin - epoch_).count();
  span.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  if (span.start_us < 0) span.start_us = 0;
  if (span.dur_us < 0) span.dur_us = 0;
  std::lock_guard lock(mutex_);
  spans_.push_back(std::move(span));
}

std::string Registry::metrics_json() const {
  std::lock_guard lock(mutex_);
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"tdt-metrics/1\",\n";
  out += "  \"tool\": \"" + json_escape(tool_) + "\",\n";

  out += "  \"phases\": [";
  bool first = true;
  for (const auto& [name, info] : phases_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(name) + "\", \"count\": ";
    append_u64(out, info.count);
    out += ", \"seconds\": ";
    append_double(out, info.seconds);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": ";
    append_u64(out, counter->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": ";
    append_double(out, gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramData h = histogram->snapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"min\": ";
    append_u64(out, h.empty() ? 0 : h.min);
    out += ", \"max\": ";
    append_u64(out, h.max);
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"le\": ";
      append_u64(out, histogram_bucket_le(i));
      out += ", \"count\": ";
      append_u64(out, h.buckets[i]);
      out += "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";

  out += "}\n";
  return out;
}

std::string Registry::spans_json() const {
  std::lock_guard lock(mutex_);
  std::string out;
  out += "{\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"traceEvents\": [\n";
  out += "    {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"name\": \"process_name\", \"args\": {\"name\": \"" +
         json_escape(tool_) + "\"}}";
  for (const SpanRecord& span : spans_) {
    out += ",\n    {\"ph\": \"X\", \"pid\": 1, \"tid\": ";
    append_u64(out, span.tid);
    out += ", \"name\": \"" + json_escape(span.name) +
           "\", \"cat\": \"phase\", \"ts\": ";
    append_double(out, span.start_us);
    out += ", \"dur\": ";
    append_double(out, span.dur_us);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void Registry::write_metrics_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw_io_error("cannot open metrics file '" + path + "'");
  out << metrics_json();
}

void Registry::write_spans_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw_io_error("cannot open span file '" + path + "'");
  out << spans_json();
}

Heartbeat::Heartbeat(std::string label, std::ostream& out,
                     double interval_seconds)
    : label_(std::move(label)),
      out_(&out),
      interval_(interval_seconds),
      start_(std::chrono::steady_clock::now()),
      last_report_(start_) {}

void Heartbeat::tick(std::uint64_t n) noexcept {
  records_ += n;
  if (records_ >= next_check_) maybe_report();
}

void Heartbeat::maybe_report() {
  next_check_ = records_ + kCheckStride;
  const auto now = std::chrono::steady_clock::now();
  if (std::chrono::duration<double>(now - last_report_).count() < interval_) {
    return;
  }
  last_report_ = now;
  report_line(std::chrono::duration<double>(now - start_).count(), false);
}

void Heartbeat::finish() {
  if (finished_) return;
  finished_ = true;
  report_line(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count(),
              true);
}

void Heartbeat::report_line(double seconds, bool final_line) {
  const double rate =
      seconds > 0 ? static_cast<double>(records_) / seconds : 0.0;
  char line[160];
  if (records_ >= 10'000'000) {
    std::snprintf(line, sizeof(line), "%s: %.1fM records (%.2f Mrec/s)%s\n",
                  label_.c_str(), static_cast<double>(records_) / 1e6,
                  rate / 1e6, final_line ? " done" : "");
  } else {
    std::snprintf(line, sizeof(line), "%s: %" PRIu64
                  " records (%.2f Mrec/s)%s\n",
                  label_.c_str(), records_, rate / 1e6,
                  final_line ? " done" : "");
  }
  *out_ << line << std::flush;
}

}  // namespace tdt::obs
