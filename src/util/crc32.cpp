#include "util/crc32.hpp"

#include <array>

namespace tdt {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32::update(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  Crc32 crc;
  crc.update(data, len);
  return crc.value();
}

std::uint32_t crc32(std::string_view s) noexcept {
  return crc32(s.data(), s.size());
}

}  // namespace tdt
