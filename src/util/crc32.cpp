#include "util/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace tdt {
namespace {

// Slicing-by-8: eight derived tables let the hot loop fold 8 input bytes
// per iteration instead of one, turning the byte-serial table walk into
// eight independent lookups the CPU can overlap. Table 0 is the classic
// byte-at-a-time table and still serves the unaligned head/tail.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t slice = 1; slice < 8; ++slice) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[slice][i] = c;
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables =
    make_tables();

}  // namespace

void Crc32::update(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  // The word-folding path XORs the running state into a raw 32-bit load,
  // which is only the right bytes on little-endian targets.
  while (std::endian::native == std::endian::little && len >= 8) {
    // Little-endian load of the first word; memcpy keeps it alignment-safe
    // and compiles to a single load on the targets we build for.
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i) {
    c = kTables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  Crc32 crc;
  crc.update(data, len);
  return crc.value();
}

std::uint32_t crc32(std::string_view s) noexcept {
  return crc32(s.data(), s.size());
}

}  // namespace tdt
