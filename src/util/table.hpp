// Fixed-width text table writer used by the stats reports and the bench
// harnesses that print the paper's figure series as rows.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdt {

/// Column alignment inside a TextTable.
enum class Align : std::uint8_t { Left, Right };

/// Accumulates rows of strings and renders them with aligned columns.
///
///   TextTable t({"set", "hits", "misses"});
///   t.add_row({"0", "124", "8"});
///   std::fputs(t.render().c_str(), stdout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Sets the alignment for a column (default: Right for all but column 0).
  void set_align(std::size_t column, Align align);

  /// Appends a data row; pads / truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells via std::to_string.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({cell_to_string(cells)...});
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule:  `set  hits  misses\n---  ----  ------\n...`
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (no alignment, comma-separated, header first).
  [[nodiscard]] std::string render_csv() const;

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(std::string_view s) {
    return std::string(s);
  }
  template <typename T>
  static std::string cell_to_string(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4g", static_cast<double>(v));
      return buf;
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tdt
