// Bounded blocking queue over a fixed ring buffer — the stage-connecting
// primitive of the parallel trace pipeline (reader -> workers). Producers
// block while the ring is full (backpressure) and consumers block while
// it is empty (starvation); both stall kinds and the queue occupancy are
// counted so the pipeline can report where time is lost. close() ends
// the stream gracefully (consumers drain what is queued); abort() tears
// it down (pending items dropped, everyone wakes immediately).
//
// Multi-producer / multi-consumer safe; all state lives under one mutex,
// which is plenty for batch-granular traffic (thousands of operations
// per second, not millions). close() and abort() are idempotent and safe
// to race with each other and with concurrent push/pop from any thread —
// the supervision watchdog aborts queues out from under live workers.
//
// Fault sites queue.push-delay / queue.pop-delay inject scheduling
// jitter here (timing perturbation only — results must stay
// bit-identical, which is exactly what the chaos tests assert).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "util/fault.hpp"

namespace tdt {

template <typename T>
class BoundedQueue {
 public:
  /// Observability counters, snapshot via counters().
  struct Counters {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t push_stalls = 0;  ///< pushes that blocked (queue full)
    std::uint64_t pop_stalls = 0;   ///< pops that blocked (queue empty)
    std::uint64_t occupancy_sum = 0;  ///< depth sampled after each push
    std::uint64_t peak_occupancy = 0;
  };

  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (item dropped) when the queue is
  /// closed or aborted.
  bool push(T item) {
    if (fault::FaultInjector::enabled()) [[unlikely]] {
      fault::maybe_delay(fault::Site::QueuePushDelay);
    }
    std::unique_lock lock(mu_);
    if (count_ == ring_.size() && !closed_) {
      ++counters_.push_stalls;
      not_full_.wait(lock, [&] { return count_ < ring_.size() || closed_; });
    }
    if (closed_) return false;
    ring_[(head_ + count_) % ring_.size()] = std::move(item);
    ++count_;
    ++counters_.pushes;
    counters_.occupancy_sum += count_;
    counters_.peak_occupancy = std::max<std::uint64_t>(
        counters_.peak_occupancy, count_);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: returns false (item dropped, no wait) when the
  /// queue is full, closed, or aborted. Admission-control entry point —
  /// callers that must not stall a caller-facing thread (the tdtd request
  /// scheduler) use this and surface "busy" instead of blocking.
  bool try_push(T item) {
    std::unique_lock lock(mu_);
    if (closed_ || count_ == ring_.size()) return false;
    ring_[(head_ + count_) % ring_.size()] = std::move(item);
    ++count_;
    ++counters_.pushes;
    counters_.occupancy_sum += count_;
    counters_.peak_occupancy = std::max<std::uint64_t>(
        counters_.peak_occupancy, count_);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed and
  /// drained, or aborted.
  std::optional<T> pop() {
    if (fault::FaultInjector::enabled()) [[unlikely]] {
      fault::maybe_delay(fault::Site::QueuePopDelay);
    }
    std::unique_lock lock(mu_);
    if (count_ == 0 && !closed_) {
      ++counters_.pop_stalls;
      not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    }
    if (count_ == 0) return std::nullopt;
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++counters_.pops;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Rejects further pushes; queued items still drain through pop().
  /// Idempotent, and safe to race with push/pop/abort from any thread.
  void close() {
    {
      std::lock_guard lock(mu_);
      if (closed_) return;
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// close() plus: drops everything still queued. Idempotent; also
  /// demotes an earlier plain close() by discarding the backlog.
  void abort() {
    {
      std::lock_guard lock(mu_);
      if (closed_ && count_ == 0) return;
      closed_ = true;
      head_ = 0;
      count_ = 0;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return count_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  [[nodiscard]] Counters counters() const {
    std::lock_guard lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
  Counters counters_;
};

}  // namespace tdt
