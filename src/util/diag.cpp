#include "util/diag.hpp"

#include <utility>

namespace tdt {

std::string_view to_string(DiagSeverity severity) noexcept {
  switch (severity) {
    case DiagSeverity::Note: return "note";
    case DiagSeverity::Warning: return "warning";
    case DiagSeverity::Error: return "error";
    case DiagSeverity::Fatal: return "fatal";
  }
  return "unknown";
}

std::string_view diag_code_id(DiagCode code) noexcept {
  switch (code) {
    case DiagCode::TraceBadLine: return "T001";
    case DiagCode::TraceBadMarker: return "T002";
    case DiagCode::TraceRepairedLine: return "T003";
    case DiagCode::TraceIoError: return "T004";
    case DiagCode::DinBadLine: return "D001";
    case DiagCode::DinRepairedLine: return "D002";
    case DiagCode::BinBadMagic: return "B001";
    case DiagCode::BinBadVersion: return "B002";
    case DiagCode::BinTruncated: return "B003";
    case DiagCode::BinBadVarint: return "B004";
    case DiagCode::BinFieldOverflow: return "B005";
    case DiagCode::BinBadSymbol: return "B006";
    case DiagCode::BinBadTag: return "B007";
    case DiagCode::BinStringTooLong: return "B008";
    case DiagCode::BinBadFooter: return "B009";
    case DiagCode::BinCrcMismatch: return "B010";
    case DiagCode::BinCountMismatch: return "B011";
    case DiagCode::BinBadCodec: return "B012";
    case DiagCode::BinBadIndex: return "B013";
    case DiagCode::BinFrameCorrupt: return "B014";
    case DiagCode::XformUnmatchedVar: return "X001";
    case DiagCode::XformFailedRecord: return "X002";
    case DiagCode::PipeWorkerStalled: return "P001";
    case DiagCode::PipeWorkerFailed: return "P002";
  }
  return "????";
}

std::string_view diag_code_name(DiagCode code) noexcept {
  switch (code) {
    case DiagCode::TraceBadLine: return "trace-bad-line";
    case DiagCode::TraceBadMarker: return "trace-bad-marker";
    case DiagCode::TraceRepairedLine: return "trace-repaired-line";
    case DiagCode::TraceIoError: return "trace-io-error";
    case DiagCode::DinBadLine: return "din-bad-line";
    case DiagCode::DinRepairedLine: return "din-repaired-line";
    case DiagCode::BinBadMagic: return "bin-bad-magic";
    case DiagCode::BinBadVersion: return "bin-bad-version";
    case DiagCode::BinTruncated: return "bin-truncated";
    case DiagCode::BinBadVarint: return "bin-bad-varint";
    case DiagCode::BinFieldOverflow: return "bin-field-overflow";
    case DiagCode::BinBadSymbol: return "bin-bad-symbol";
    case DiagCode::BinBadTag: return "bin-bad-tag";
    case DiagCode::BinStringTooLong: return "bin-string-too-long";
    case DiagCode::BinBadFooter: return "bin-bad-footer";
    case DiagCode::BinCrcMismatch: return "bin-crc-mismatch";
    case DiagCode::BinCountMismatch: return "bin-count-mismatch";
    case DiagCode::BinBadCodec: return "bin-bad-codec";
    case DiagCode::BinBadIndex: return "bin-bad-index";
    case DiagCode::BinFrameCorrupt: return "bin-frame-corrupt";
    case DiagCode::XformUnmatchedVar: return "xform-unmatched-var";
    case DiagCode::XformFailedRecord: return "xform-failed-record";
    case DiagCode::PipeWorkerStalled: return "pipe-worker-stalled";
    case DiagCode::PipeWorkerFailed: return "pipe-worker-failed";
  }
  return "unknown";
}

ErrorPolicy parse_error_policy(std::string_view text) {
  if (text == "strict") return ErrorPolicy::Strict;
  if (text == "skip") return ErrorPolicy::Skip;
  if (text == "repair") return ErrorPolicy::Repair;
  throw_config_error("unknown error policy '" + std::string(text) +
                     "' (strict|skip|repair)");
}

std::string_view to_string(ErrorPolicy policy) noexcept {
  switch (policy) {
    case ErrorPolicy::Strict: return "strict";
    case ErrorPolicy::Skip: return "skip";
    case ErrorPolicy::Repair: return "repair";
  }
  return "unknown";
}

std::string Diagnostic::format() const {
  std::string out;
  out += to_string(severity);
  out += ' ';
  out += diag_code_id(code);
  out += " (";
  out += diag_code_name(code);
  out += ')';
  if (loc.known()) {
    out += " at ";
    out += std::to_string(loc.line);
    out += ':';
    out += std::to_string(loc.column);
  }
  out += ": ";
  out += message;
  return out;
}

DiagEngine::DiagEngine(ErrorPolicy policy, std::uint64_t max_errors)
    : policy_(policy), max_errors_(max_errors) {}

void DiagEngine::report(DiagSeverity severity, DiagCode code,
                        std::string message, SourceLoc loc) {
  Diagnostic diag{severity, code, loc, std::move(message)};
  ++counts_[code];
  switch (severity) {
    case DiagSeverity::Note: ++notes_; break;
    case DiagSeverity::Warning: ++warnings_; break;
    case DiagSeverity::Error:
    case DiagSeverity::Fatal: ++errors_; break;
  }
  if (retained_.size() < kRetainCap) retained_.push_back(diag);
  if (echo_ != nullptr) *echo_ << diag.format() << '\n';

  if (severity == DiagSeverity::Fatal ||
      (severity == DiagSeverity::Error && policy_ == ErrorPolicy::Strict)) {
    throw Error(ErrorKind::Parse, diag.format(), loc);
  }
  if (max_errors_ != 0 && errors_ > max_errors_) {
    throw Error(ErrorKind::Parse,
                "too many errors (--max-errors=" +
                    std::to_string(max_errors_) + " exceeded), giving up",
                loc);
  }
}

std::uint64_t DiagEngine::count(DiagCode code) const noexcept {
  const auto it = counts_.find(code);
  return it == counts_.end() ? 0 : it->second;
}

std::string DiagEngine::summary() const {
  if (errors_ == 0 && warnings_ == 0 && notes_ == 0) return {};
  std::string out = "diagnostics: ";
  out += std::to_string(errors_);
  out += errors_ == 1 ? " error" : " errors";
  out += ", ";
  out += std::to_string(warnings_);
  out += warnings_ == 1 ? " warning" : " warnings";
  if (notes_ != 0) {
    out += ", ";
    out += std::to_string(notes_);
    out += notes_ == 1 ? " note" : " notes";
  }
  out += '\n';
  for (const auto& [code, n] : counts_) {
    out += "  ";
    out += diag_code_id(code);
    out += ' ';
    out += diag_code_name(code);
    out += ": ";
    out += std::to_string(n);
    out += '\n';
  }
  return out;
}

}  // namespace tdt
