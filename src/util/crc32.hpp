// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used by the TDTB v2 trace
// footer to detect bit corruption. Incremental: feed chunks as they are
// written/read and take value() at the end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tdt {

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  /// Feeds `len` bytes into the checksum.
  void update(const void* data, std::size_t len) noexcept;

  /// Feeds a single byte.
  void update_byte(std::uint8_t byte) noexcept {
    update(&byte, 1);
  }

  /// Final checksum over everything fed so far.
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  /// Resets to the empty-input state.
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte buffer.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len) noexcept;

/// One-shot CRC-32 of a string.
[[nodiscard]] std::uint32_t crc32(std::string_view s) noexcept;

}  // namespace tdt
