#include "util/string_util.hpp"

#include <cctype>
#include <charconv>

namespace tdt {
namespace {

bool is_space(char c) noexcept { return is_ascii_space(c); }

}  // namespace

std::string_view trim_left(std::string_view s) noexcept {
  std::size_t i = 0;
  while (i < s.size() && is_space(s[i])) ++i;
  return s.substr(i);
}

std::string_view trim_right(std::string_view s) noexcept {
  std::size_t n = s.size();
  while (n > 0 && is_space(s[n - 1])) --n;
  return s.substr(0, n);
}

std::string_view trim(std::string_view s) noexcept {
  return trim_right(trim_left(s));
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc() || ptr != last || s.empty()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    return parse_hex(s.substr(2));
  }
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value, 10);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::uint64_t> parse_hex(std::string_view s) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value, 16);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    return std::nullopt;
  }
  return value;
}

std::string to_hex(std::uint64_t value, int width) {
  char buf[16];
  int n = 0;
  if (value == 0) {
    buf[n++] = '0';
  } else {
    while (value != 0) {
      buf[n++] = "0123456789abcdef"[value & 0xF];
      value >>= 4;
    }
  }
  std::string out;
  for (int pad = width - n; pad > 0; --pad) out += '0';
  for (int i = n - 1; i >= 0; --i) out += buf[i];
  return out;
}

bool is_ident_start(char c) noexcept {
  return c == '_' || std::isalpha(static_cast<unsigned char>(c)) != 0;
}

bool is_ident_char(char c) noexcept {
  return c == '_' || std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool is_identifier(std::string_view s) noexcept {
  if (s.empty() || !is_ident_start(s[0])) return false;
  for (char c : s) {
    if (!is_ident_char(c)) return false;
  }
  return true;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= (1ULL << 30) && bytes % (1ULL << 30) == 0) {
    return std::to_string(bytes >> 30) + " GiB";
  }
  if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
    return std::to_string(bytes >> 20) + " MiB";
  }
  if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
    return std::to_string(bytes >> 10) + " KiB";
  }
  return std::to_string(bytes) + " B";
}

}  // namespace tdt
