// Multi-core trace simulation: routes each record to a core by its thread
// id and runs the MESI system, with a false-sharing detector that
// attributes invalidations to variable pairs — the coherence analogue of
// the paper's per-structure conflict analysis.
#pragma once

#include <map>
#include <span>
#include <string>
#include <unordered_map>

#include "cache/coherence.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace tdt::cache {

/// TraceSink running a MesiSystem. Records with thread id T execute on
/// core (T-1) mod cores (Gleipnir threads are 1-based).
class MultiCoreSim final : public trace::TraceSink {
 public:
  /// `ctx` names variables for the false-sharing report.
  MultiCoreSim(MesiSystem& system, const trace::TraceContext& ctx);

  void on_record(const trace::TraceRecord& rec) override;

  /// Convenience for whole traces.
  void simulate(std::span<const trace::TraceRecord> records);

  [[nodiscard]] MesiSystem& system() noexcept { return *system_; }

  /// Invalidations where the writer's bytes did NOT overlap the bytes the
  /// invalidated core last touched in that line — false sharing.
  [[nodiscard]] std::uint64_t false_sharing_invalidations() const noexcept {
    return false_sharing_;
  }

  /// True sharing invalidations (byte ranges overlapped).
  [[nodiscard]] std::uint64_t true_sharing_invalidations() const noexcept {
    return true_sharing_;
  }

  /// (writer variable, victim variable) -> false-sharing invalidations.
  [[nodiscard]] const std::map<std::pair<std::string, std::string>,
                               std::uint64_t>&
  false_sharing_pairs() const noexcept {
    return pairs_;
  }

  /// Renders the false-sharing report.
  [[nodiscard]] std::string report() const;

 private:
  struct Touch {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    Symbol var;
    bool valid = false;
  };

  MesiSystem* system_;
  const trace::TraceContext* ctx_;
  // last touch per (core, block)
  std::unordered_map<std::uint64_t, Touch> last_touch_;
  std::uint64_t false_sharing_ = 0;
  std::uint64_t true_sharing_ = 0;
  std::map<std::pair<std::string, std::string>, std::uint64_t> pairs_;
};

}  // namespace tdt::cache

namespace tdt::trace {

/// Merges per-thread traces into one interleaved trace: thread i's
/// records get thread id i+1 and are taken `chunk` records at a time,
/// round-robin — a deterministic stand-in for a concurrent schedule.
[[nodiscard]] std::vector<TraceRecord> interleave_threads(
    std::vector<std::vector<TraceRecord>> threads, std::size_t chunk = 1);

}  // namespace tdt::trace
