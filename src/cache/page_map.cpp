#include "cache/page_map.hpp"

#include "util/error.hpp"

namespace tdt::cache {

std::string_view to_string(PagePolicy p) noexcept {
  switch (p) {
    case PagePolicy::Identity: return "identity";
    case PagePolicy::FirstTouch: return "first-touch";
    case PagePolicy::Random: return "random";
  }
  return "?";
}

PageMapper::PageMapper(PagePolicy policy, std::uint64_t page_size,
                       std::uint64_t frame_count, std::uint64_t seed)
    : policy_(policy),
      page_size_(page_size),
      frame_count_(frame_count),
      rng_(seed) {
  if (page_size == 0 || (page_size & (page_size - 1)) != 0) {
    throw_config_error("page size must be a power of two, got " +
                       std::to_string(page_size));
  }
}

std::uint64_t PageMapper::translate(std::uint64_t vaddr) {
  if (policy_ == PagePolicy::Identity) return vaddr;
  const std::uint64_t vpage = vaddr / page_size_;
  const std::uint64_t offset = vaddr % page_size_;
  auto [it, fresh] = map_.try_emplace(vpage, 0);
  if (fresh) {
    switch (policy_) {
      case PagePolicy::FirstTouch:
        it->second = next_frame_++;
        if (frame_count_ != 0) next_frame_ %= frame_count_;
        break;
      case PagePolicy::Random:
        it->second =
            frame_count_ != 0 ? rng_.next_below(frame_count_) : rng_.next();
        break;
      case PagePolicy::Identity:
        break;
    }
  }
  return it->second * page_size_ + offset;
}

}  // namespace tdt::cache
