// Virtual-to-physical page mapping — the paper's §VI future-work item:
// "the trace information is limited ... to private caches only because
// the addresses used are virtual addresses. ... This can be remedied ...
// by mapping kernel page-maps information directly into the trace."
//
// A PageMapper translates the trace's virtual addresses to synthetic
// physical frames under a chosen allocation policy, so physically-indexed
// (shared-level) caches can be simulated. First-touch sequential
// allocation models a freshly booted process; the random policy models a
// fragmented machine where page colouring is uncontrolled.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "util/rng.hpp"

namespace tdt::cache {

/// How physical frames are assigned to newly touched virtual pages.
enum class PagePolicy : std::uint8_t {
  Identity,    ///< paddr == vaddr (private-cache behaviour, the default)
  FirstTouch,  ///< frames handed out sequentially in first-touch order
  Random,      ///< frames drawn from a deterministic random stream
};

[[nodiscard]] std::string_view to_string(PagePolicy p) noexcept;

/// Deterministic virtual->physical translator.
class PageMapper {
 public:
  /// `page_size` must be a power of two. `frame_count` bounds the
  /// physical space for Random (frames may collide by design, modelling
  /// page-colour conflicts); 0 means unbounded.
  explicit PageMapper(PagePolicy policy, std::uint64_t page_size = 4096,
                      std::uint64_t frame_count = 0,
                      std::uint64_t seed = 1);

  /// Translates a virtual address.
  [[nodiscard]] std::uint64_t translate(std::uint64_t vaddr);

  /// Number of distinct virtual pages seen so far.
  [[nodiscard]] std::uint64_t pages_touched() const noexcept {
    return map_.size();
  }

  [[nodiscard]] PagePolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t page_size() const noexcept { return page_size_; }

 private:
  PagePolicy policy_;
  std::uint64_t page_size_;
  std::uint64_t frame_count_;
  std::uint64_t next_frame_ = 0;
  Xoshiro256 rng_;
  std::unordered_map<std::uint64_t, std::uint64_t> map_;  // vpage -> pframe
};

}  // namespace tdt::cache
