// TraceCacheSim: glues the trace stream to the cache hierarchy. It is a
// TraceSink, so it terminates any pipeline (tracer output, file reader,
// or the transformation engine's output). Observers receive each record
// together with its L1 outcome — the "modified DineroIV" feature that
// tracks statistics at function and variable accuracy lives there
// (tdt::analysis collectors).
#pragma once

#include <vector>

#include "cache/hierarchy.hpp"
#include "cache/page_map.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace tdt::cache {

/// Receives every simulated access paired with its L1 outcome.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void on_access(const trace::TraceRecord& rec,
                         const AccessOutcome& outcome) = 0;
  /// End of trace.
  virtual void on_done() {}
};

/// Simulation knobs.
struct SimOptions {
  /// Skip instruction-fetch records ('I'), as the paper does
  /// ("we do not explicitly trace instruction fetches", §III-A).
  bool ignore_instr = true;
  /// Treat Modify as read-modify-write (a read access followed by a write
  /// to the same line) rather than a single write. DineroIV counts both.
  bool modify_is_read_write = false;
  /// Optional virtual->physical translation applied before simulation
  /// (physically-indexed caches; paper §VI future work). Not owned; must
  /// outlive the simulator.
  PageMapper* page_mapper = nullptr;
};

/// Trace-driven simulator front end.
class TraceCacheSim final : public trace::TraceSink {
 public:
  explicit TraceCacheSim(CacheHierarchy& hierarchy, SimOptions options = {});

  /// Registers an observer (not owned). Observers fire in registration
  /// order on every simulated access.
  void add_observer(AccessObserver* observer);

  // TraceSink
  void on_record(const trace::TraceRecord& rec) override;
  void push_batch(std::span<const trace::TraceRecord> batch) override;
  void on_end() override;

  /// Convenience: simulate a whole in-memory trace.
  void simulate(std::span<const trace::TraceRecord> records);

  [[nodiscard]] CacheHierarchy& hierarchy() noexcept { return *hierarchy_; }
  [[nodiscard]] std::uint64_t records_simulated() const noexcept {
    return simulated_;
  }

 private:
  void step(const trace::TraceRecord& rec);

  CacheHierarchy* hierarchy_;
  SimOptions options_;
  std::vector<AccessObserver*> observers_;
  std::uint64_t simulated_ = 0;
};

}  // namespace tdt::cache
