#include "cache/hierarchy.hpp"

#include "util/error.hpp"
#include "util/table.hpp"

namespace tdt::cache {

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> configs) {
  internal_check(!configs.empty(), "hierarchy needs at least one level");
  // Build from the last level backwards so each level can point at its
  // successor, then reverse into front-first order.
  CacheLevel* next = nullptr;
  std::vector<std::unique_ptr<CacheLevel>> reversed;
  for (std::size_t i = configs.size(); i-- > 0;) {
    reversed.push_back(std::make_unique<CacheLevel>(configs[i], next));
    next = reversed.back().get();
  }
  for (std::size_t i = reversed.size(); i-- > 0;) {
    levels_.push_back(std::move(reversed[i]));
  }
}

CacheHierarchy::CacheHierarchy(CacheConfig config)
    : CacheHierarchy(std::vector<CacheConfig>{std::move(config)}) {}

void CacheHierarchy::reset() {
  for (auto& l : levels_) l->reset();
}

std::string CacheHierarchy::report() const {
  std::string out;
  for (const auto& l : levels_) {
    const LevelStats& s = l->stats();
    out += l->config().describe() + "\n";
    TextTable t({"metric", "reads", "writes", "total"});
    t.add("hits", s.read_hits, s.write_hits, s.hits());
    t.add("misses", s.read_misses, s.write_misses, s.misses());
    t.add("accesses", s.read_hits + s.read_misses,
          s.write_hits + s.write_misses, s.accesses());
    out += t.render();
    out += "miss ratio: " + std::to_string(s.miss_ratio()) + "\n";
    out += "miss classes: compulsory " + std::to_string(s.compulsory) +
           ", capacity " + std::to_string(s.capacity) + ", conflict " +
           std::to_string(s.conflict) + "\n";
    out += "evictions: " + std::to_string(s.evictions) + " (writebacks " +
           std::to_string(s.writebacks) + ")\n\n";
  }
  return out;
}

}  // namespace tdt::cache
