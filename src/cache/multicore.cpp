#include "cache/multicore.hpp"

#include "util/error.hpp"

namespace tdt::cache {
namespace {

std::uint64_t touch_key(std::uint32_t core, std::uint64_t block) {
  return (static_cast<std::uint64_t>(core) << 48) ^ block;
}

}  // namespace

MultiCoreSim::MultiCoreSim(MesiSystem& system, const trace::TraceContext& ctx)
    : system_(&system), ctx_(&ctx) {}

void MultiCoreSim::on_record(const trace::TraceRecord& rec) {
  if (rec.kind == trace::AccessKind::Instr) return;
  const std::uint32_t core =
      (rec.thread == 0 ? 0u : static_cast<std::uint32_t>(rec.thread) - 1u) %
      system_->cores();
  const bool is_write = rec.kind == trace::AccessKind::Store ||
                        rec.kind == trace::AccessKind::Modify;
  const CacheConfig& cfg = system_->config();
  const std::uint64_t first = cfg.block_of(rec.address);
  const std::uint64_t last = cfg.block_of(rec.address + rec.size - 1);

  for (std::uint64_t block = first; block <= last; ++block) {
    const std::uint64_t begin =
        std::max(rec.address, block * cfg.block_size);
    const std::uint64_t end = std::min(rec.address + rec.size,
                                       (block + 1) * cfg.block_size);
    const CoherenceOutcome outcome = system_->access(core, begin, is_write);

    if (outcome.invalidated != 0) {
      // Classify each remote copy we killed by whether the victim's last
      // bytes in this line overlap ours.
      for (std::uint32_t other = 0; other < system_->cores(); ++other) {
        if (other == core) continue;
        auto it = last_touch_.find(touch_key(other, block));
        if (it == last_touch_.end() || !it->second.valid) continue;
        const Touch& t = it->second;
        const bool overlap = begin < t.end && t.begin < end;
        if (overlap) {
          ++true_sharing_;
        } else {
          ++false_sharing_;
          const std::string writer = rec.var.empty()
                                         ? std::string("<anon>")
                                         : std::string(ctx_->name(rec.var.base));
          const std::string victim =
              t.var.empty() ? std::string("<anon>")
                            : std::string(ctx_->name(t.var));
          ++pairs_[{writer, victim}];
        }
        it->second.valid = false;  // the copy is gone
      }
    }
    // Record this core's touch.
    Touch& mine = last_touch_[touch_key(core, block)];
    mine.begin = begin;
    mine.end = end;
    mine.var = rec.var.base;
    mine.valid = true;
  }
}

void MultiCoreSim::simulate(std::span<const trace::TraceRecord> records) {
  for (const trace::TraceRecord& rec : records) on_record(rec);
  on_end();
}

std::string MultiCoreSim::report() const {
  std::string out = system_->report();
  out += "sharing: " + std::to_string(true_sharing_) + " true, " +
         std::to_string(false_sharing_) + " false invalidations\n";
  for (const auto& [pair, count] : pairs_) {
    out += "  false sharing: " + pair.first + " invalidates " + pair.second +
           " x" + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace tdt::cache

namespace tdt::trace {

std::vector<TraceRecord> interleave_threads(
    std::vector<std::vector<TraceRecord>> threads, std::size_t chunk) {
  internal_check(chunk > 0, "interleave chunk must be positive");
  std::vector<TraceRecord> out;
  std::size_t total = 0;
  for (const auto& t : threads) total += t.size();
  out.reserve(total);
  std::vector<std::size_t> cursor(threads.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t t = 0; t < threads.size(); ++t) {
      for (std::size_t k = 0; k < chunk && cursor[t] < threads[t].size();
           ++k) {
        TraceRecord rec = threads[t][cursor[t]++];
        rec.thread = static_cast<std::uint16_t>(t + 1);
        out.push_back(std::move(rec));
        progress = true;
      }
    }
  }
  return out;
}

}  // namespace tdt::trace
