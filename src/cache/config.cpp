#include "cache/config.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace tdt::cache {
namespace {

bool is_pow2(std::uint64_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

std::string_view to_string(ReplacementPolicy p) noexcept {
  switch (p) {
    case ReplacementPolicy::Lru: return "lru";
    case ReplacementPolicy::Fifo: return "fifo";
    case ReplacementPolicy::Random: return "random";
    case ReplacementPolicy::RoundRobin: return "round-robin";
  }
  return "?";
}

std::string_view to_string(WritePolicy p) noexcept {
  switch (p) {
    case WritePolicy::WriteBack: return "write-back";
    case WritePolicy::WriteThrough: return "write-through";
  }
  return "?";
}

std::string_view to_string(AllocPolicy p) noexcept {
  switch (p) {
    case AllocPolicy::WriteAllocate: return "write-allocate";
    case AllocPolicy::NoWriteAllocate: return "no-write-allocate";
  }
  return "?";
}

std::string_view to_string(PrefetchPolicy p) noexcept {
  switch (p) {
    case PrefetchPolicy::None: return "no-prefetch";
    case PrefetchPolicy::Always: return "prefetch-always";
    case PrefetchPolicy::Miss: return "prefetch-on-miss";
    case PrefetchPolicy::Tagged: return "tagged-prefetch";
  }
  return "?";
}

void CacheConfig::validate() const {
  if (!is_pow2(block_size)) {
    throw_config_error("cache '" + name + "': block_size " +
                       std::to_string(block_size) + " is not a power of two");
  }
  if (!is_pow2(size) || size < block_size) {
    throw_config_error("cache '" + name + "': size " + std::to_string(size) +
                       " must be a power of two >= block_size");
  }
  const std::uint64_t blocks = num_blocks();
  const std::uint32_t ways = effective_assoc();
  if (ways == 0 || blocks % ways != 0) {
    throw_config_error("cache '" + name + "': associativity " +
                       std::to_string(assoc) + " does not divide " +
                       std::to_string(blocks) + " blocks");
  }
  if (!is_pow2(num_sets())) {
    throw_config_error("cache '" + name + "': set count " +
                       std::to_string(num_sets()) + " is not a power of two");
  }
}

std::string CacheConfig::describe() const {
  std::string out = name;
  out += ' ';
  out += format_bytes(size);
  out += ", ";
  out += format_bytes(block_size);
  out += " blocks, ";
  out += assoc == 0 ? "fully" : std::to_string(assoc) + "-way";
  out += " associative, ";
  out += to_string(replacement);
  out += ", ";
  out += to_string(write);
  return out;
}

CacheConfig paper_direct_mapped() {
  CacheConfig c;
  c.name = "paper-dm";
  c.size = 32 * 1024;
  c.block_size = 32;
  c.assoc = 1;
  c.replacement = ReplacementPolicy::Lru;  // irrelevant at 1-way
  return c;
}

CacheConfig ppc440() {
  CacheConfig c;
  c.name = "ppc440";
  c.size = 32 * 1024;
  c.block_size = 32;
  c.assoc = 64;
  c.replacement = ReplacementPolicy::RoundRobin;
  return c;
}

CacheConfig modern_l1() {
  CacheConfig c;
  c.name = "modern-l1d";
  c.size = 32 * 1024;
  c.block_size = 64;
  c.assoc = 8;
  c.replacement = ReplacementPolicy::Lru;
  return c;
}

CacheConfig modern_l2() {
  CacheConfig c;
  c.name = "modern-l2";
  c.size = 256 * 1024;
  c.block_size = 64;
  c.assoc = 8;
  c.replacement = ReplacementPolicy::Lru;
  return c;
}

}  // namespace tdt::cache
